# Repo tooling. `make help` lists targets.

PYTHON ?= python
PYTHONPATH := src

.PHONY: help test bench docs-check

help:
	@echo "targets:"
	@echo "  test        tier-1 suite (tests/ + benchmarks/, what CI gates on)"
	@echo "  bench       artifact-regenerating benches only (-> benchmarks/results/)"
	@echo "  docs-check  fail on dangling file references in README.md / DESIGN.md"

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

docs-check:
	$(PYTHON) tools/docs_check.py README.md DESIGN.md
