# Repo tooling. `make help` lists targets.

PYTHON ?= python
PYTHONPATH := src

.PHONY: help test bench bench-smoke docs-check

help:
	@echo "targets:"
	@echo "  test        tier-1 suite (tests/ + benchmarks/, what CI gates on)"
	@echo "  bench       artifact-regenerating benches only (-> benchmarks/results/)"
	@echo "  bench-smoke fig1 store+resume round trip + warm-start speedup artifact"
	@echo "  docs-check  fail on dangling file references in README.md / DESIGN.md"

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

# The resumable-campaign smoke: the same fig1 command twice -- the first
# populates a fresh store (a --resume of an empty store is a fresh
# start), the second resumes it and must re-run nothing -- then the
# store summary.  The warm-start speedup bench publishing
# benchmarks/results/warmstart_speedup.txt runs only when `make test` /
# `make bench` has not already written the artifact (CI runs `make
# test` first, so the expensive cold campaign is not paid twice).
bench-smoke:
	rm -rf benchmarks/results/smoke_store
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli fig1 \
	  --workloads stringsearch --faults 20 --jobs 2 \
	  --store benchmarks/results/smoke_store --resume
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli fig1 \
	  --workloads stringsearch --faults 20 --jobs 2 \
	  --store benchmarks/results/smoke_store --resume
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli store \
	  benchmarks/results/smoke_store/*
	test -f benchmarks/results/warmstart_speedup.txt || \
	  PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
	    benchmarks/test_warmstart_speedup.py -q
	@echo "--- benchmarks/results/warmstart_speedup.txt:"
	@cat benchmarks/results/warmstart_speedup.txt

docs-check:
	$(PYTHON) tools/docs_check.py README.md DESIGN.md
