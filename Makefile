# Repo tooling. `make help` lists targets.

PYTHON ?= python
PYTHONPATH := src

.PHONY: help test bench bench-smoke bench-json docs-check typecheck lint

help:
	@echo "targets:"
	@echo "  test        tier-1 suite (tests/ + benchmarks/, what CI gates on)"
	@echo "  bench       artifact-regenerating benches only (-> benchmarks/results/)"
	@echo "  bench-smoke fig1 store+resume round trip, prune off/dead classification"
	@echo "              diff, prune static (capture-free dataflow pruning,"
	@echo "              REPRO_STATIC_XCHECK sanitizer on) vs off class diffs"
	@echo "              at all three tiers, sweep-scenario store+resume round"
	@echo "              trip (+ CSV artifact), binary vs jsonl store-format"
	@echo "              class diff, arch lanes=8 and rtl lanes=4 vs lanes=1"
	@echo "              class diffs (repro.batch), REPRO_CHAOS"
	@echo "              degraded-completion leg (crash+hang injection,"
	@echo "              quarantine, no-op resume) + warm-start speedup artifact"
	@echo "  bench-json  distill benchmarks/results/*.txt into BENCH_4.json"
	@echo "  docs-check  fail on dangling file references in README.md / DESIGN.md"
	@echo "  typecheck   mypy --strict over the typed surface (mypy.ini files=)"
	@echo "  lint        repro-study staticcheck --all + ruff (pyflakes, isort)"

test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

# Both tooling gates degrade politely when the tool is absent (the
# container images bake in only the runtime deps); CI installs
# mypy/ruff and runs them for real.  The workload linter needs no
# third-party tool and always runs.
typecheck:
	@if $(PYTHON) -c "import mypy" 2>/dev/null; then \
	  $(PYTHON) -m mypy --config-file mypy.ini; \
	else \
	  echo "typecheck: mypy not installed, skipping (CI runs it)"; \
	fi

lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli staticcheck --all
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
	  $(PYTHON) -m ruff check .; \
	else \
	  echo "lint: ruff not installed, skipping (CI runs it)"; \
	fi

bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest benchmarks -q

# The resumable-campaign smoke: the same fig1 command twice -- the first
# populates a fresh store (a --resume of an empty store is a fresh
# start), the second resumes it and must re-run nothing -- then the
# store summary.  The static legs re-run fig1's cells (and, below, the
# sweep's arch cell) with prune=static -- capture-free dataflow
# pruning, sanitizer cross-check live -- and diff classes against the
# prune=off stores: the static exactness contract at all three tiers.  The sweep-smoke scenario (2 levels x 2 prune modes)
# then exercises the scenario layer end to end the same way: run twice
# with store+resume, export the ResultSet CSV (a CI artifact), and diff
# each level's prune=off vs prune=dead store class-by-class (the
# exactness contract, via the sweep path).  The lanes legs re-run the
# sweep's cells with the vectorized lane engine into fresh stores and
# diff each prune mode's classes against a scalar store (the
# cross-lane exactness contract, via the CLI path): arch at
# execution.lanes=8 against the sweep store, rtl -- not part of the
# sweep preset, so run scalar first -- at execution.lanes=4 (the spec
# still rejects lanes>1 on the non-batchable uarch tier).  The jsonl
# leg re-runs the sweep's arch cells with execution.store_format=jsonl
# and diffs them against the (binary, format-2) sweep store -- the
# cross-format exactness contract, read straight off the mmap on the
# binary side.  The
# chaos leg re-runs the sweep's arch cells under deterministic fault
# injection into the *executor* (REPRO_CHAOS: one transient worker
# crash at fault #2, one persistent hang at fault #5): the campaign
# must complete degraded (assert_store_incidents.py requires at least
# one quarantined incident), a chaos-free resume must re-run nothing,
# and the surviving classifications must diff clean against the
# undisturbed sweep store (diff_store_classes.py masks quarantined
# indices out of both sides).  The
# warm-start speedup bench publishing
# benchmarks/results/warmstart_speedup.txt runs only when `make test` /
# `make bench` has not already written the artifact (CI runs `make
# test` first, so the expensive cold campaign is not paid twice).
bench-smoke:
	rm -rf benchmarks/results/smoke_store benchmarks/results/smoke_prune
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli fig1 \
	  --workloads stringsearch --faults 20 --jobs 2 \
	  --store benchmarks/results/smoke_store --resume
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli fig1 \
	  --workloads stringsearch --faults 20 --jobs 2 \
	  --store benchmarks/results/smoke_store --resume
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli store \
	  benchmarks/results/smoke_store/*
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli fig1 \
	  --workloads stringsearch --faults 20 --jobs 2 --prune off \
	  --store benchmarks/results/smoke_prune
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_store/uarch-stringsearch-regfile-pinout \
	  benchmarks/results/smoke_prune/uarch-stringsearch-regfile-pinout
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_store/rtl-stringsearch-regfile-pinout \
	  benchmarks/results/smoke_prune/rtl-stringsearch-regfile-pinout
	rm -rf benchmarks/results/smoke_static
	REPRO_STATIC_XCHECK=1 \
	  PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli fig1 \
	  --workloads stringsearch --faults 20 --jobs 2 --prune static \
	  --store benchmarks/results/smoke_static
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_static/uarch-stringsearch-regfile-pinout \
	  benchmarks/results/smoke_prune/uarch-stringsearch-regfile-pinout
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_static/rtl-stringsearch-regfile-pinout \
	  benchmarks/results/smoke_prune/rtl-stringsearch-regfile-pinout
	rm -rf benchmarks/results/smoke_sweep
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli run sweep-smoke \
	  --set execution.store=benchmarks/results/smoke_sweep \
	  --set execution.resume=true \
	  --csv benchmarks/results/sweep_smoke.csv
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli run sweep-smoke \
	  --set execution.store=benchmarks/results/smoke_sweep \
	  --set execution.resume=true \
	  --csv benchmarks/results/sweep_smoke.csv
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_sweep/arch-stringsearch-regfile-pinout-prune=off \
	  benchmarks/results/smoke_sweep/arch-stringsearch-regfile-pinout-prune=dead
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_sweep/uarch-stringsearch-regfile-pinout-prune=off \
	  benchmarks/results/smoke_sweep/uarch-stringsearch-regfile-pinout-prune=dead
	rm -rf benchmarks/results/smoke_static_arch
	REPRO_STATIC_XCHECK=1 \
	  PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli run sweep-smoke \
	  --set targets.levels=arch --set sweep.prune=static \
	  --set execution.store=benchmarks/results/smoke_static_arch
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_static_arch/arch-stringsearch-regfile-pinout-prune=static \
	  benchmarks/results/smoke_sweep/arch-stringsearch-regfile-pinout-prune=off
	rm -rf benchmarks/results/smoke_jsonl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli run sweep-smoke \
	  --set targets.levels=arch \
	  --set execution.store=benchmarks/results/smoke_jsonl \
	  --set execution.store_format=jsonl
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_jsonl/arch-stringsearch-regfile-pinout-prune=off \
	  benchmarks/results/smoke_sweep/arch-stringsearch-regfile-pinout-prune=off
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_jsonl/arch-stringsearch-regfile-pinout-prune=dead \
	  benchmarks/results/smoke_sweep/arch-stringsearch-regfile-pinout-prune=dead
	rm -rf benchmarks/results/smoke_lanes
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli run sweep-smoke \
	  --set targets.levels=arch --set execution.lanes=8 \
	  --set execution.store=benchmarks/results/smoke_lanes
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_lanes/arch-stringsearch-regfile-pinout-prune=off \
	  benchmarks/results/smoke_sweep/arch-stringsearch-regfile-pinout-prune=off
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_lanes/arch-stringsearch-regfile-pinout-prune=dead \
	  benchmarks/results/smoke_sweep/arch-stringsearch-regfile-pinout-prune=dead
	rm -rf benchmarks/results/smoke_rtl benchmarks/results/smoke_rtl_lanes
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli run sweep-smoke \
	  --set targets.levels=rtl \
	  --set execution.store=benchmarks/results/smoke_rtl
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli run sweep-smoke \
	  --set targets.levels=rtl --set execution.lanes=4 \
	  --set execution.store=benchmarks/results/smoke_rtl_lanes
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_rtl_lanes/rtl-stringsearch-regfile-pinout-prune=off \
	  benchmarks/results/smoke_rtl/rtl-stringsearch-regfile-pinout-prune=off
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_rtl_lanes/rtl-stringsearch-regfile-pinout-prune=dead \
	  benchmarks/results/smoke_rtl/rtl-stringsearch-regfile-pinout-prune=dead
	rm -rf benchmarks/results/smoke_chaos
	REPRO_CHAOS='segv@2,hang*@5' \
	  PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli run sweep-smoke \
	  --set targets.levels=arch \
	  --set execution.batch_size=1 --set execution.batch_timeout=5 \
	  --set execution.store=benchmarks/results/smoke_chaos
	$(PYTHON) tools/assert_store_incidents.py \
	  benchmarks/results/smoke_chaos 1
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli store \
	  benchmarks/results/smoke_chaos/*
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.cli run sweep-smoke \
	  --set targets.levels=arch \
	  --set execution.batch_size=1 \
	  --set execution.store=benchmarks/results/smoke_chaos \
	  --set execution.resume=true
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_chaos/arch-stringsearch-regfile-pinout-prune=off \
	  benchmarks/results/smoke_sweep/arch-stringsearch-regfile-pinout-prune=off
	$(PYTHON) tools/diff_store_classes.py \
	  benchmarks/results/smoke_chaos/arch-stringsearch-regfile-pinout-prune=dead \
	  benchmarks/results/smoke_sweep/arch-stringsearch-regfile-pinout-prune=dead
	test -f benchmarks/results/warmstart_speedup.txt || \
	  PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest \
	    benchmarks/test_warmstart_speedup.py -q
	@echo "--- benchmarks/results/warmstart_speedup.txt:"
	@cat benchmarks/results/warmstart_speedup.txt

bench-json:
	$(PYTHON) tools/bench_summary.py

docs-check:
	$(PYTHON) tools/docs_check.py README.md DESIGN.md
