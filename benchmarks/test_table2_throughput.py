"""Table II: simulation throughput and time per framework.

Regenerates the paper's throughput comparison: seconds per run and cycle
counts for the RT-level flow (signal tracing on, as NCSIM always pays)
vs the microarchitecture-level flow, plus the ratio.  The paper measures
198.6x average on NCSIM-vs-gem5; both of our models are Python, so the
reproduction target is the *ordering* and the per-benchmark cycle-count
differences, not the absolute ratio (see EXPERIMENTS.md).
"""

from conftest import bench_workloads, save_artifact

from repro.core.tables import (
    arch_tier_rows,
    render_arch_tier,
    render_table2,
    table2_rows,
)


def test_table2(benchmark):
    workloads = bench_workloads()

    def measure():
        return table2_rows(workloads, rtl_traced=True)

    rows, average = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Shape assertions: the RT-level flow must be slower on every
    # benchmark, and the in-order core must take more cycles.
    for row in rows:
        assert row["ratio"] > 1.0, row
        assert row["rtl_kcycles"] > row["gefin_kcycles"], row
    assert average > 1.5
    text = render_table2(rows, average)
    save_artifact("table2.txt", text)
    print()
    print(text)


def test_table2_arch_tier(benchmark):
    """The emulator row the paper's taxonomy implies (SS I): throughput
    of the ``arch`` backend vs the microarchitectural flow it would
    pre-screen for."""
    workloads = bench_workloads()

    def measure():
        return arch_tier_rows(workloads)

    rows, average = benchmark.pedantic(measure, rounds=1, iterations=1)
    # The ISS must beat the cycle-level model on every benchmark.
    for row in rows:
        assert row["ratio"] > 1.0, row
        assert row["kinsts"] > 0.0, row
    assert average > 1.0
    text = render_arch_tier(rows, average)
    save_artifact("table2_arch_tier.txt", text)
    print()
    print(text)
