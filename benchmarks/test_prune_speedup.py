"""Micro-benchmark: lifetime-aware fault pruning (``--prune dead``).

Runs the Fig. 1 register-file configuration (pinout OP, scaled
20 kcycle window, seed 2017) at both hardware tiers -- the GeFIN
(uarch) and Safety Verifier (rtl) series of Fig. 1 -- twice each:
``prune_mode="off"`` (simulate every sampled fault, the pre-pruning
baseline) and ``prune_mode="dead"`` (dead-interval faults classified
from the golden lifetime trace without simulation).

Asserted unconditionally:

* **exactness** -- per-fault classifications are bit-identical between
  the two modes, at both tiers (the cross-tier suite pins the same
  promise per backend; this bench re-checks it at bench scale);
* **the acceptance bar** -- >= 2x fewer simulated runs over the fig1
  regfile series, a deterministic count (no wall clock involved).

The artifact is fully deterministic for a fixed seed: reruns with
unchanged measurements produce empty diffs.

Knobs: ``REPRO_SFI_SAMPLES`` (faults, floor 40 here so the ratio is
statistically stable even under CI's reduced sample counts).
"""

from conftest import bench_samples, save_artifact

from repro.injection.gefin import GeFIN
from repro.injection.safety_verifier import SafetyVerifier

WORKLOAD = "stringsearch"
#: The fig1 series this bench re-runs: (label, front-end class).
SERIES = (("GeFIN", GeFIN), ("RTL", SafetyVerifier))


def run_series(front, prune_mode, samples):
    return front.campaign(
        "regfile", mode="pinout", samples=samples, seed=2017, jobs=1,
        prune_mode=prune_mode,
    )


def test_prune_speedup(benchmark):
    samples = max(bench_samples(default=60), 40)
    fronts = {label: cls(WORKLOAD) for label, cls in SERIES}
    baseline = {
        label: run_series(front, "off", samples)
        for label, front in fronts.items()
    }

    def measure():
        return {
            label: run_series(front, "dead", samples)
            for label, front in fronts.items()
        }

    pruned = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"workload={WORKLOAD} structure=regfile mode=pinout"
        f" samples={samples} seed=2017 (fig1 config)",
    ]
    total_off = total_dead = 0
    for label, _ in SERIES:
        off, dead = baseline[label], pruned[label]
        # Exactness first: pruning must never change a classification.
        assert [r.fclass for r in off.records] == \
            [r.fclass for r in dead.records], label
        assert dead.pruned_count > 0, label
        total_off += off.simulated_count
        total_dead += dead.simulated_count
        ratio = off.simulated_count / max(dead.simulated_count, 1)
        lines.append(
            f"{label:<6} prune=off : {off.simulated_count:>4} simulated"
            f" runs of {off.n}"
        )
        lines.append(
            f"{label:<6} prune=dead: {dead.simulated_count:>4} simulated"
            f" runs of {dead.n} ({dead.pruned_count} pruned,"
            f" {ratio:.2f}x fewer)"
        )
    combined = total_off / max(total_dead, 1)
    # The acceptance bar: >= 2x fewer simulated runs on the fig1
    # regfile config, asserted on the deterministic run counts.
    assert combined >= 2.0, (
        f"dead pruning simulated {total_dead} of {total_off} baseline "
        f"runs -- only {combined:.2f}x fewer"
    )
    lines.append(
        f"combined: {total_off} -> {total_dead} simulated runs,"
        f" {combined:.2f}x fewer (deterministic)"
    )
    lines.append("classifications identical: True")
    text = "\n".join(lines)
    save_artifact("prune_speedup.txt", text)
    print()
    print(text)
