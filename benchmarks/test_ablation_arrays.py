"""Ablation A5: which L1D array dominates vulnerability?

The paper injects the L1D *data* array; the GeFIN line of work
(Kaliorakis et al., IISWC 2015) also differentiates tag, valid, dirty
and replacement-state arrays.  This ablation measures per-array AVF on
one workload: data and tag faults can silently corrupt values, a valid
or dirty-bit fault usually manifests as lost updates or harmless
invalidations, and replacement-state faults only perturb timing.
"""

from conftest import bench_samples, save_artifact

from repro.analysis.report import render_table
from repro.injection import GeFIN

ARRAYS = ("l1d.data", "l1d.tag", "l1d.valid", "l1d.dirty", "l1d.age")
WORKLOAD = "qsort"


def test_array_sensitivity(benchmark):
    samples = bench_samples()

    def run():
        rows = []
        front = GeFIN(WORKLOAD)
        for structure in ARRAYS:
            result = front.campaign(structure, mode="avf",
                                    samples=samples)
            rows.append((structure, result.unsafeness,
                         result.summary()["sdc"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("array", "AVF", "SDC count"),
        [(s, f"{100 * u:.1f}%", c) for s, u, c in rows],
        title=f"A5: per-array L1D sensitivity on {WORKLOAD} "
              f"({samples} faults each)",
    )
    save_artifact("ablation_arrays.txt", text)
    print()
    print(text)
    avf = dict((s, u) for s, u, _ in rows)
    # Shape: replacement-state faults are architecturally invisible.
    assert avf["l1d.age"] == 0.0
