"""Fig. 1: register-file vulnerability (unsafeness), pinout OP.

Three series per benchmark, as in the paper: GeFIN (windowed), RTL
(windowed) and GeFIN-no-timer (run to end).  Shape targets: small
absolute unsafeness (the paper's Fig. 1 peaks below 20%), small
cross-level deltas on most benchmarks, no-timer >= windowed.
"""

from conftest import save_artifact

from repro.analysis.report import campaign_table
from repro.core.figures import figure1_chart


def test_fig1_regfile(benchmark, study):
    results = benchmark.pedantic(study.figure1, rounds=1, iterations=1)
    chart = figure1_chart(results)
    flat = [r for series in results.values() for r in series.values()]
    table = campaign_table(flat, title="Fig. 1 campaign details")
    save_artifact("fig1_regfile.txt", chart + "\n\n" + table)
    print()
    print(chart)
    # Shape: vulnerabilities are probabilities, and the run-to-end series
    # can only see more than the windowed series (same seed and faults).
    for series in results.values():
        for result in series.values():
            assert 0.0 <= result.unsafeness <= 1.0
    for workload in results["GeFIN"]:
        windowed = results["GeFIN"][workload].unsafeness
        to_end = results["GeFIN-no timer"][workload].unsafeness
        assert to_end >= windowed - 1e-9, workload
