"""Table I: the microarchitectural configuration of the Cortex-A9.

The paper's Table I is a static configuration listing; the bench asserts
our model is configured with exactly those values and measures the cost
of building a simulator from them.
"""

from conftest import save_artifact

from repro.core.tables import render_table1, table1_rows
from repro.isa import Toolchain
from repro.uarch import CortexA9Config, MicroArchSim
from repro.workloads import build

PAPER_TABLE1 = {
    "ISA / Core": "ARMv7 / Out-of-order",
    "Data cache": "32KB 4-way",
    "Instruction cache": "32KB 4-way",
    "Physical Register File": "56 registers",
    "Instruction queue": "32",
    "Reorder buffer": "40",
    "Fetch/Execute/Writeback width": "2/4/4",
}


def test_table1(benchmark):
    program = build("stringsearch", Toolchain("gnu"))

    def build_sim():
        return MicroArchSim(program, CortexA9Config())

    sim = benchmark(build_sim)
    assert dict(table1_rows(sim.config)) == PAPER_TABLE1
    text = render_table1()
    save_artifact("table1.txt", text)
    print()
    print(text)
