"""Micro-benchmark: serial vs parallel campaign executor wall clock.

Runs the same small campaign (one workload, register file, pinout OP)
with ``jobs=1`` and ``jobs=N`` and records both wall clocks plus the
records-identical check into ``benchmarks/results/parallel_speedup.txt``.

The wall-clock speedup is hardware-dependent: on an unloaded
multi-core host ``jobs=N`` approaches Nx, but in CPU-quota-limited
containers (cgroup ``cpu.max``) even an affinity-aware CPU count
overcounts the cores actually schedulable, and on loaded shared
runners the measurement is noisy.  So this bench asserts *equivalence*
unconditionally, always records the measured speedup, and only asserts
speedup > 1 when ``REPRO_BENCH_ASSERT_SPEEDUP=1`` opts in (set it on
dedicated multi-core hardware).

What *is* persisted as a number is the **modeled speedup**: the serial
run's per-fault replay+sim cycles, sharded into the exact work batches
``executor.shard`` would hand the pool, scheduled greedily onto the
least-loaded of ``jobs`` workers (the pool's dynamic dispatch).  The
ratio of total cycles to the makespan (the heaviest worker's load) is
the executor's achievable scaling for this campaign shape, independent
of the host -- deterministic for a fixed seed, so the perf trajectory
(``BENCH_4.json``) can track it PR over PR.

Knobs: ``REPRO_SFI_SAMPLES`` (faults, default 24), ``REPRO_BENCH_JOBS``
(parallel worker count, default min(4, available CPUs)),
``REPRO_BENCH_ASSERT_SPEEDUP`` (fail unless parallel beats serial).
"""

import os
import time

from conftest import bench_samples, record_keys, save_artifact

from repro.analysis.report import speedup_table
from repro.injection.executor import default_jobs, shard
from repro.injection.gefin import GeFIN

WORKLOAD = "caes"


def bench_jobs():
    default = min(4, default_jobs())
    return int(os.environ.get("REPRO_BENCH_JOBS", str(default)))


def modeled_speedup(serial, jobs):
    """Cycle-weighted achievable scaling of the pool for this campaign.

    Shards the serial run's faults exactly as ``executor.shard`` does,
    weighs each batch by its replay+sim cycles, and plays the pool's
    dynamic dispatch: each batch goes to the currently least-loaded
    worker, in order.  Speedup = total work / makespan.
    """
    weights = [r.replay_cycles + r.sim_cycles for r in serial.records]
    loads = [0] * jobs
    for _, batch in shard(list(range(len(weights))), jobs):
        loads[loads.index(min(loads))] += sum(weights[i] for i in batch)
    makespan = max(loads)
    return sum(weights) / makespan if makespan else 1.0


def run_campaign(front, jobs):
    # prune_mode="off": this bench measures executor scaling, so every
    # sampled fault must actually reach the pool.
    started = time.perf_counter()
    result = front.campaign("regfile", mode="pinout",
                            samples=bench_samples(default=24),
                            seed=2017, jobs=jobs, prune_mode="off")
    return result, time.perf_counter() - started


def test_parallel_speedup(benchmark):
    front = GeFIN(WORKLOAD)
    jobs = max(bench_jobs(), 2)
    serial, serial_s = run_campaign(front, jobs=1)

    def measure():
        return run_campaign(front, jobs=jobs)

    parallel, parallel_s = benchmark.pedantic(measure, rounds=1,
                                              iterations=1)
    # Correctness first: the executor must be a pure wall-clock
    # optimisation, never a result change.
    assert record_keys(parallel) == record_keys(serial)
    assert parallel.jobs == jobs

    cpus = default_jobs()
    speedup = serial_s / parallel_s if parallel_s > 0 else 1.0
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        assert speedup > 1.0, (
            f"jobs={jobs} not faster than serial on {cpus} CPUs:"
            f" {serial_s:.2f}s vs {parallel_s:.2f}s"
        )
    # The artifact records only deterministic facts (see
    # benchmarks/conftest.py): the wall-clock measurement is a property
    # of this host and is printed, not persisted, so an unchanged rerun
    # leaves the file untouched.
    modeled = modeled_speedup(serial, jobs)
    assert modeled > 1.0, (
        f"shard schedule cannot scale: modeled {modeled:.2f}x at"
        f" jobs={jobs}"
    )
    artifact = [
        f"workload={WORKLOAD} structure=regfile mode=pinout"
        f" samples={serial.n} jobs={jobs}",
        "records identical (jobs=1 vs jobs=N): True",
        f"modeled speedup (cycle-weighted shard schedule):"
        f" {modeled:.2f}x (deterministic)",
        "wall-clock speedup: printed at run time (host-dependent)",
    ]
    save_artifact("parallel_speedup.txt", "\n".join(artifact))
    print()
    print("\n".join(artifact))
    print(f"serial   (jobs=1): {serial_s:7.2f}s wall ({cpus} cpus)")
    print(f"parallel (jobs={jobs}): {parallel_s:7.2f}s wall"
          f"  -> {speedup:.2f}x measured")
    print(speedup_table([serial, parallel],
                        title="per-campaign accounting"))
