"""Ablation A2: the RTL inject-near-consumption optimisation (SS IV-B).

The paper attributes the RTL-vs-GeFIN gap in Fig. 2 to the RTL
framework "mov[ing] the fault injection time closer to its consumption
time", which "increases the probability to observe the fault effect
within the 20k time window".  This ablation runs the same L1D campaigns
with the optimisation on and off.
"""

from conftest import bench_samples, save_artifact

from repro.analysis.report import render_table
from repro.injection import SafetyVerifier

WORKLOADS = ("stringsearch", "caes")


def test_acceleration_on_off(benchmark):
    samples = bench_samples()

    def run():
        rows = []
        for workload in WORKLOADS:
            front = SafetyVerifier(workload)
            off = front.campaign("l1d.data", mode="pinout",
                                 samples=samples, accelerate=False)
            on = front.campaign("l1d.data", mode="pinout",
                                samples=samples, accelerate=True)
            moved = sum(1 for r in on.records if r.fault.accelerated)
            rows.append((workload, off.unsafeness, on.unsafeness, moved))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("workload", "natural instants", "accelerated", "moved faults"),
        [(w, f"{100 * off:.1f}%", f"{100 * on:.1f}%", moved)
         for w, off, on, moved in rows],
        title=f"A2: inject-near-consumption on RTL L1D ({samples} faults)",
    )
    save_artifact("ablation_acceleration.txt", text)
    print()
    print(text)
    for workload, off, on, moved in rows:
        assert on >= off - 1e-9, workload  # acceleration only reveals more
        assert moved > 0
