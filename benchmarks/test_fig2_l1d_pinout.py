"""Fig. 2: L1D vulnerability (unsafeness) at the core pinout.

The paper's central negative result: the short post-injection window
plus the pinout observation point almost completely fails to capture the
L1D's vulnerability (write-backs leave the core too rarely, too late).
The RTL series uses the inject-near-consumption acceleration, which is
why it reports *more* than GeFIN inside the same window.
"""

from conftest import save_artifact

from repro.analysis.report import campaign_table
from repro.core.figures import figure2_chart


def test_fig2_l1d_pinout(benchmark, study):
    results = benchmark.pedantic(study.figure2, rounds=1, iterations=1)
    chart = figure2_chart(results)
    flat = [r for series in results.values() for r in series.values()]
    table = campaign_table(flat, title="Fig. 2 campaign details")
    save_artifact("fig2_l1d_pinout.txt", chart + "\n\n" + table)
    print()
    print(chart)

    gefin = [results["GeFIN"][w].unsafeness for w in results["GeFIN"]]
    rtl = [results["RTL"][w].unsafeness for w in results["RTL"]]
    # Shape: the accelerated RTL flow sees at least as much as GeFIN in
    # the same window, on average (SS IV-B).
    assert sum(rtl) >= sum(gefin) - 1e-9
    # Shape: windowed pinout observation misses most of the L1D
    # vulnerability that the AVF mode (Fig. 3) reveals -- the average
    # windowed unsafeness stays low for the cache-resident benchmarks.
    for series in results.values():
        for result in series.values():
            assert 0.0 <= result.unsafeness <= 1.0
