"""Fig. 3: L1D AVF with the software observation point.

Run-to-end campaigns comparing program output -- the paper's AVF
extension of the RTL flow, applied (as in the paper) only to the shorter
benchmarks, because RTL run-to-end campaigns are the most expensive
experiments in the study.
"""

from conftest import save_artifact

from repro.analysis.report import campaign_table
from repro.core.figures import figure3_chart
from repro.core.study import FIG3_WORKLOADS


def test_fig3_l1d_avf(benchmark, study):
    workloads = [w for w in FIG3_WORKLOADS
                 if w in study.config.workloads]
    results = benchmark.pedantic(
        lambda: study.figure3(workloads=tuple(workloads)),
        rounds=1, iterations=1,
    )
    chart = figure3_chart(results)
    flat = [r for series in results.values() for r in series.values()]
    table = campaign_table(flat, title="Fig. 3 campaign details")
    save_artifact("fig3_l1d_avf.txt", chart + "\n\n" + table)
    print()
    print(chart)
    # Shape: the SOP reveals real L1D vulnerability that Fig. 2's pinout
    # window misses -- at least one benchmark shows nonzero AVF at both
    # levels.
    nonzero_levels = sum(
        1 for series in results.values()
        if any(r.unsafeness > 0 for r in series.values())
    )
    assert nonzero_levels == len(results)
