"""Micro-benchmark: format-2 binary store vs the JSONL debug format.

Writes the same synthetic 10^5-fault campaign (seeded, realistic field
magnitudes: multi-million-cycle windows, per-fault detail strings on
unsafe classifications, ``dead``-pruned masked faults) through both
record formats and records two deterministic headline numbers into
``benchmarks/results/store_codec.txt``:

* **bytes/record** for each format and their ratio -- the acceptance
  bar is >= 8x smaller on disk for the bitpacked format;
* the **peak-allocation ratio** of an mmap class tally against a full
  JSONL record load (tracemalloc): format 2 answers ``store`` /
  ``diff`` queries off numpy lanes without materializing per-record
  objects, so its footprint is a handful of lane arrays instead of
  hundreds of thousands of FaultRecord/FaultSpec instances.

Cross-format equivalence is asserted unconditionally: both stores must
tally identically, class for class.  Wall clock is printed, never
persisted (the artifact stability contract; see conftest.py).

Knobs: ``REPRO_STORE_RECORDS`` (synthetic faults, default 100000).
"""

import os
import random
import time
import tracemalloc

from conftest import save_artifact

from repro.injection.classify import FaultClass, FaultRecord
from repro.injection.faults import FaultSpec
from repro.injection.store import CampaignStore

SEED = 2017

STRUCTURES = ("regfile", "cpsr", "l1d")
#: Unsafe classes carry a detail string, with campaign-realistic
#: cardinality: classifier verdicts are fixed templates ("program
#: output differs", "watchdog expired"); only DUE details vary, with
#: the handful of abort addresses corrupted pointers actually land on.
DETAILS = {
    FaultClass.SDC: ("program output differs",),
    FaultClass.HANG: ("watchdog expired",),
    FaultClass.LATENT: ("hardware state differs",),
    FaultClass.DUE: tuple(
        f"data abort: unmapped load at {0x8000 + 4 * k:#010x}"
        for k in range(192)),
}


def record_count():
    return int(os.environ.get("REPRO_STORE_RECORDS", "100000"))


def synthesize(n):
    """A seeded synthetic campaign with campaign-shaped records."""
    rng = random.Random(SEED)
    out = []
    for index in range(n):
        original = rng.randrange(3_000_000)
        accelerated = rng.random() < 0.3
        cycle = original - rng.randrange(50_000) if accelerated else \
            original
        fclass = rng.choices(
            (FaultClass.MASKED, FaultClass.SDC, FaultClass.DUE,
             FaultClass.HANG, FaultClass.LATENT),
            weights=(70, 12, 8, 4, 6))[0]
        pool = DETAILS.get(fclass)
        detail = rng.choice(pool) if pool else ""
        pruned = "dead" if fclass is FaultClass.MASKED \
            and rng.random() < 0.4 else ""
        fault = FaultSpec(rng.choice(STRUCTURES), rng.randrange(4096),
                          max(cycle, 0), original_cycle=original)
        out.append(FaultRecord(
            fault, fclass, detail,
            sim_cycles=0 if pruned else rng.randrange(2_500_000),
            wall_seconds=rng.random() * 4.0,
            replay_cycles=0 if pruned else rng.randrange(500_000),
            pruned=pruned))
    return out


def write_store(path, records, fmt):
    store = CampaignStore(path, store_format=fmt)
    store.begin({"bench": "store_codec", "seed": SEED})
    for index, record in enumerate(records):
        store.append(index, record)
    store.close()
    return store


def store_bytes(store):
    paths = (store.binary_path, store.strings_path, store.records_path)
    return sum(p.stat().st_size for p in paths if p.exists())


def peak_alloc(fn):
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def test_store_codec_size_and_query(benchmark, tmp_path):
    n = record_count()
    records = synthesize(n)
    binary = write_store(tmp_path / "binary", records, "binary")
    jsonl = write_store(tmp_path / "jsonl", records, "jsonl")

    binary_bpr = store_bytes(binary) / n
    jsonl_bpr = store_bytes(jsonl) / n
    size_ratio = jsonl_bpr / binary_bpr
    assert size_ratio >= 8.0, (
        f"binary store only {size_ratio:.1f}x smaller than JSONL "
        f"({binary_bpr:.1f} vs {jsonl_bpr:.1f} bytes/record)")

    # The measured query: a full class tally off the mmap lanes.
    started = time.perf_counter()
    tally = benchmark.pedantic(binary.class_tally, rounds=1,
                               iterations=1)
    mmap_s = time.perf_counter() - started
    started = time.perf_counter()
    jsonl_tally = jsonl.class_tally()
    jsonl_s = time.perf_counter() - started
    assert tally == jsonl_tally  # cross-format exactness, class by class
    assert tally["n"] == n

    # Peak allocations: lane arrays vs materialized record objects.
    mmap_peak = peak_alloc(CampaignStore(binary.path).class_tally)
    load_peak = peak_alloc(CampaignStore(jsonl.path).records)
    alloc_ratio = int(load_peak / mmap_peak) if mmap_peak else 0
    assert alloc_ratio >= 2, (
        f"mmap tally peak {mmap_peak} B not clearly below JSONL load "
        f"peak {load_peak} B")

    lines = [
        f"store codec: synthetic campaign, records={n} seed={SEED}",
        f"binary:  {binary_bpr:.2f} bytes/record"
        f" (records.bin + strings.dat)",
        f"jsonl:   {jsonl_bpr:.2f} bytes/record",
        f"size ratio: {size_ratio:.1f}x smaller on disk"
        f" (deterministic)",
        f"mmap tally peak-alloc ratio: {alloc_ratio}x less than a"
        f" JSONL record load",
    ]
    text = "\n".join(lines)
    save_artifact("store_codec.txt", text)
    print()
    print(text)
    print(f"wall clock (this host): mmap tally {mmap_s:.3f}s, jsonl"
          f" load+tally {jsonl_s:.3f}s")
