"""Micro-benchmark: vectorized lane engine vs scalar arch campaigns.

Runs the Fig. 1 register-file configuration on the batchable arch tier
twice with the same seed: scalar (``batch_lanes=1``, one faulty run at
a time) and batched (``batch_lanes=8``, the lane engine steps eight
faulty runs per decoded golden instruction).  Records both into
``benchmarks/results/batch_speedup.txt``.

Two speedup numbers are reported:

* **deterministic** -- the ratio of scalar faulty-phase *simulated
  cycles* to the lane engine's *global stepped cycles*
  (``CampaignResult.batch_cycles``: one global step advances every
  live lane, so the batch denominator is the per-group
  restore-to-retire span, not lanes x that span).  Hardware-
  independent, so the >= 3x acceptance bar is asserted on it
  unconditionally.  The ratio grows with sample density (denser
  samples shrink the fault-cycle spread inside each lane group),
  hence the bench floor of 128 samples;
* **wall clock** -- the measured end-to-end ratio on this host.
  Informational by default (numpy per-step overhead dominates small
  windows); set ``REPRO_BENCH_ASSERT_SPEEDUP=1`` to fail unless it
  beats 1x.

Correctness is asserted unconditionally: batched and scalar records
must be bit-identical (``tests/test_batch_equivalence.py`` pins the
same promise across the execution matrix; this bench re-checks it at
bench scale).

The batched run also doubles as the copy-on-write memory probe: it
executes under ``tracemalloc`` (traced python peak printed per host)
and asserts the deterministic ``batch_lane_peak_bytes`` counter stays
below half the dense ``(lanes+1) x ram`` layout the paged lane store
replaced -- per-lane memory growth must be bounded by divergence, not
footprint.

Knobs: ``REPRO_SFI_SAMPLES`` (faults, floored at 128 here).
"""

import os
import time
import tracemalloc

from conftest import bench_samples, record_keys, save_artifact

from repro.injection.campaign import Campaign, CampaignConfig
from repro.sim import registry

WORKLOAD = "stringsearch"
LANES = 8
#: The cycle-ratio bar needs sample density (each lane group restores
#: once and retires at its last lane): 128 faults clears 3x with slack.
MIN_SAMPLES = 128


def run_campaign(factory, lanes):
    samples = max(bench_samples(default=MIN_SAMPLES), MIN_SAMPLES)
    config = CampaignConfig(samples=samples,
                            seed=2017, batch_lanes=lanes)
    campaign = Campaign(factory, "regfile", config,
                        workload=WORKLOAD, level="arch")
    started = time.perf_counter()
    result = campaign.run()
    return result, time.perf_counter() - started


def test_batch_speedup(benchmark):
    factory = registry.create_frontend("arch", WORKLOAD).sim_factory
    scalar, scalar_s = run_campaign(factory, lanes=1)

    def measure():
        tracemalloc.start()
        try:
            result, seconds = run_campaign(factory, lanes=LANES)
            traced_peak = tracemalloc.get_traced_memory()[1]
        finally:
            tracemalloc.stop()
        return result, seconds, traced_peak

    batch, batch_s, traced_peak = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    # Correctness first: the lane engine must be a pure throughput
    # optimisation, never a result change.
    assert record_keys(batch) == record_keys(scalar)
    assert batch.batch_cycles > 0, "lane engine never engaged"

    # The COW memory probe: private page bytes are bounded by actual
    # store divergence, far below dense per-lane RAM copies.
    ram_bytes = len(factory().checkpoint()["ram"])
    dense_bytes = (LANES + 1) * ram_bytes
    assert 0 < batch.batch_lane_peak_bytes < 0.5 * dense_bytes, (
        f"COW peak {batch.batch_lane_peak_bytes} bytes is not sub-"
        f"linear vs dense {dense_bytes}"
    )

    cycle_speedup = scalar.simulated_cycles / batch.batch_cycles
    wall_speedup = scalar_s / batch_s if batch_s > 0 else 1.0
    # The acceptance bar: >= 3x, asserted on the deterministic metric.
    assert cycle_speedup >= 3.0, (
        f"lane engine stepped {batch.batch_cycles} global cycles vs "
        f"{scalar.simulated_cycles} scalar -- only {cycle_speedup:.2f}x"
    )
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        assert wall_speedup > 1.0, (
            f"lane engine not faster on this host: {batch_s:.2f}s vs "
            f"{scalar_s:.2f}s scalar"
        )
    # Deterministic lines only in the artifact (cycle counts are exact
    # for a fixed seed); the host wall clock is printed, not persisted.
    lines = [
        f"workload={WORKLOAD} structure=regfile mode=pinout"
        f" samples={scalar.n} lanes={LANES} seed=2017 (fig1 config,"
        f" arch tier)",
        f"scalar (lanes=1): {scalar.simulated_cycles:>9} faulty-phase"
        f" cycles",
        f"batched (lanes={LANES}): {batch.batch_cycles:>9} global"
        f" stepped cycles",
        f"speedup: {cycle_speedup:.2f}x simulated cycles"
        f" (deterministic)",
        f"peak lane memory: {batch.batch_lane_peak_bytes} COW bytes"
        f" vs {dense_bytes} dense ((lanes+1) x ram) ->"
        f" {batch.batch_lane_peak_bytes / dense_bytes:.4f}x",
        "records identical: True",
    ]
    text = "\n".join(lines)
    save_artifact("batch_speedup.txt", text)
    print()
    print(text)
    print(f"wall clock (this host): scalar {scalar_s:.2f}s, batched"
          f" {batch_s:.2f}s -> {wall_speedup:.2f}x")
    print(f"tracemalloc peak (this host, batched run):"
          f" {traced_peak} bytes")
