"""Ablation A1: post-injection window size vs observed unsafeness.

The paper fixes 20 kcycles because "longer simulations are not feasible
using RTL models" and shows (Fig. 2 grey bars) what the early stop
hides.  This ablation sweeps the scaled window and regenerates that
trade-off curve on one register-file and one L1D series.
"""

from conftest import bench_samples, save_artifact

from repro.analysis.report import render_table
from repro.injection import GeFIN

WINDOWS = (250, 1000, 2000, 8000, None)
WORKLOAD = "stringsearch"


def test_window_sweep(benchmark):
    samples = bench_samples()

    def sweep():
        rows = []
        for structure in ("regfile", "l1d.data"):
            front = GeFIN(WORKLOAD)
            for window in WINDOWS:
                mode = "pinout" if window is not None else "pinout-notimer"
                result = front.campaign(structure, mode=mode,
                                        samples=samples, window=window)
                rows.append((structure, window, result.unsafeness))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    text = render_table(
        ("structure", "window (cycles)", "unsafeness"),
        [(s, "to-end" if w is None else w, f"{100 * u:.1f}%")
         for s, w, u in rows],
        title=f"A1: window sweep on {WORKLOAD} ({samples} faults each)",
    )
    save_artifact("ablation_window.txt", text)
    print()
    print(text)
    # Shape: unsafeness is monotone non-decreasing in the window, per
    # structure (same seed => same faults, longer observation).
    for structure in ("regfile", "l1d.data"):
        series = [u for s, _, u in rows if s == structure]
        for shorter, longer in zip(series, series[1:]):
            assert longer >= shorter - 1e-9
