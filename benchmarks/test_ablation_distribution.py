"""Ablation A4: injection-instant distribution (SS IV).

The paper injects "on a normal distribution"; most SFI studies use
uniform sampling.  This ablation measures how much the choice moves the
register-file estimate.
"""

from conftest import bench_samples, save_artifact

from repro.analysis.report import render_table
from repro.injection import GeFIN

WORKLOADS = ("sha", "fft")


def test_distribution_choice(benchmark):
    samples = bench_samples()

    def run():
        rows = []
        for workload in WORKLOADS:
            front = GeFIN(workload)
            normal = front.campaign("regfile", mode="pinout",
                                    samples=samples,
                                    distribution="normal")
            uniform = front.campaign("regfile", mode="pinout",
                                     samples=samples,
                                     distribution="uniform")
            rows.append((workload, normal.unsafeness,
                         uniform.unsafeness))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("workload", "normal (paper)", "uniform"),
        [(w, f"{100 * n:.1f}%", f"{100 * u:.1f}%") for w, n, u in rows],
        title=f"A4: injection-time distribution ({samples} RF faults)",
    )
    save_artifact("ablation_distribution.txt", text)
    print()
    print(text)
    for _, normal, uniform in rows:
        assert 0.0 <= normal <= 1.0 and 0.0 <= uniform <= 1.0
