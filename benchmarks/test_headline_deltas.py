"""SS V headline: average cross-level deltas.

Paper: "the average difference on the reported estimation is 10% for the
register file (Fig. 1) and 20% for the L1 data cache (Fig. 3), which
translates to 0.7 and 3 percentile points".  The bench reports our
percentile-unit and relative deltas with the same arithmetic.
"""

from conftest import save_artifact

from repro.analysis.report import render_table


def test_headline_deltas(benchmark, study):
    headline = benchmark.pedantic(study.headline, rounds=1, iterations=1)
    blocks = []
    for name, comparison in headline.items():
        blocks.append(render_table(
            ("workload", "GeFIN", "RTL", "delta (pp)", "delta (rel)"),
            comparison.rows(),
            title=f"Cross-level deltas: {name} "
                  f"(paper: RF 0.7pp/10%, L1D 3pp/20%)",
        ))
    text = "\n\n".join(blocks)
    save_artifact("headline_deltas.txt", text)
    print()
    print(text)
    rf = headline["regfile"]
    l1d = headline["l1d"]
    # Shape: both structures' estimates agree across levels to within a
    # modest band (the paper's point is that the cheap model is close).
    assert rf.mean_percentile_units < 25.0
    assert l1d.mean_percentile_units < 30.0
    assert rf.deltas and l1d.deltas
