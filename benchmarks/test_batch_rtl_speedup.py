"""Micro-benchmark: rtl-tier lane engine vs scalar rtl campaigns.

The rtl analogue of ``test_batch_speedup.py``: the Fig. 1 register-file
configuration on the RT-level pipeline, scalar (``batch_lanes=1``) vs
batched (``batch_lanes=8``, the lane engine ticks one shared pipeline
whose register file, flags and operands are lane arrays).  Records both
into ``benchmarks/results/batch_rtl_speedup.txt``.

The deterministic metric is the same cycle ratio: scalar faulty-phase
*simulated cycles* over the lane engine's *global stepped cycles*
(``CampaignResult.batch_cycles``, which also charges every
divergence-dropped lane its full scalar rerun).  The >= 2x acceptance
bar is asserted on it unconditionally.  The bar is lower than the arch
tier's 3x because rtl lanes genuinely diverge more: an injected value
reaching a branch, address or store splits the shared control
trajectory and drops the lane to the scalar path, whose cost stays in
the denominator.

Like ``test_parallel_speedup.py`` this bench runs ``prune_mode="off"``:
it measures engine throughput, so every sampled fault must actually
reach the engine rather than the lifetime pruner.  Signal tracing is
off (the scalar and batched runs would pay it identically; the lane
engine does not model per-lane traces).

The artifact also records the copy-on-write memory half of the PR:
``batch_lane_peak_bytes`` (deterministic high-water private-page bytes)
against the dense ``(lanes+1) x ram`` layout the paged store replaced.

Knobs: ``REPRO_SFI_SAMPLES`` (faults, floored at 128 here).
"""

import os
import time

from conftest import bench_samples, record_keys, save_artifact

from repro.injection.campaign import Campaign, CampaignConfig
from repro.rtl import RTLConfig, RTLSim
from repro.workloads import registry as workloads

WORKLOAD = "stringsearch"
LANES = 8
#: Group density drives the ratio exactly as on the arch tier: 128
#: faults over ~10 checkpoint segments keeps the lane groups full.
MIN_SAMPLES = 128

RTL_CFG = RTLConfig(trace_signals=False)


def run_campaign(program, lanes):
    samples = max(bench_samples(default=MIN_SAMPLES), MIN_SAMPLES)
    config = CampaignConfig(samples=samples, seed=2017,
                            batch_lanes=lanes, prune_mode="off")
    campaign = Campaign(lambda: RTLSim(program, RTL_CFG), "regfile",
                        config, workload=WORKLOAD, level="rtl")
    started = time.perf_counter()
    result = campaign.run()
    return result, time.perf_counter() - started


def test_batch_rtl_speedup(benchmark):
    program = workloads.build(WORKLOAD)
    scalar, scalar_s = run_campaign(program, lanes=1)

    def measure():
        return run_campaign(program, lanes=LANES)

    batch, batch_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Correctness first: the lane engine must be a pure throughput
    # optimisation, never a result change.
    assert record_keys(batch) == record_keys(scalar)
    assert batch.batch_cycles > 0, "lane engine never engaged"

    cycle_speedup = scalar.simulated_cycles / batch.batch_cycles
    wall_speedup = scalar_s / batch_s if batch_s > 0 else 1.0
    # The acceptance bar: >= 2x, asserted on the deterministic metric.
    assert cycle_speedup >= 2.0, (
        f"rtl lane engine stepped {batch.batch_cycles} global cycles vs "
        f"{scalar.simulated_cycles} scalar -- only {cycle_speedup:.2f}x"
    )
    # The memory half: private COW pages stay far below the dense
    # per-lane RAM copies they replaced.
    ram_bytes = len(RTLSim(program, RTL_CFG).checkpoint()["ram"])
    dense_bytes = (LANES + 1) * ram_bytes
    assert 0 < batch.batch_lane_peak_bytes < 0.5 * dense_bytes, (
        f"COW peak {batch.batch_lane_peak_bytes} bytes is not sub-"
        f"linear vs dense {dense_bytes}"
    )
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        assert wall_speedup > 1.0, (
            f"rtl lane engine not faster on this host: {batch_s:.2f}s "
            f"vs {scalar_s:.2f}s scalar"
        )
    lines = [
        f"workload={WORKLOAD} structure=regfile mode=pinout"
        f" samples={scalar.n} lanes={LANES} seed=2017 prune=off"
        f" (fig1 config, rtl tier, trace off)",
        f"scalar (lanes=1): {scalar.simulated_cycles:>9} faulty-phase"
        f" cycles",
        f"batched (lanes={LANES}): {batch.batch_cycles:>9} global"
        f" stepped cycles",
        f"speedup: {cycle_speedup:.2f}x simulated cycles"
        f" (deterministic)",
        f"peak lane memory: {batch.batch_lane_peak_bytes} COW bytes"
        f" vs {dense_bytes} dense ((lanes+1) x ram) ->"
        f" {batch.batch_lane_peak_bytes / dense_bytes:.4f}x",
        "records identical: True",
    ]
    text = "\n".join(lines)
    save_artifact("batch_rtl_speedup.txt", text)
    print()
    print(text)
    print(f"wall clock (this host): scalar {scalar_s:.2f}s, batched"
          f" {batch_s:.2f}s -> {wall_speedup:.2f}x")
