"""Micro-benchmark: warm-start vs cold-start campaign acceleration.

Runs the Fig. 1 register-file configuration (uarch level, pinout OP,
scaled 20 kcycle window) twice with the same seed: warm-start (restore
the nearest golden checkpoint before each injection) and cold-start
(replay the whole drain-punctuated prefix from the base checkpoint).
Records both into ``benchmarks/results/warmstart_speedup.txt``.

Two speedup numbers are reported:

* **deterministic** -- the ratio of faulty-phase *simulated cycles*
  (pre-injection replay + post-injection tail).  Hardware-independent,
  so the >= 3x acceptance bar is asserted on it unconditionally;
* **wall clock** -- the measured end-to-end ratio on this host.
  Informational by default (shared/loaded runners are noisy); set
  ``REPRO_BENCH_ASSERT_SPEEDUP=1`` to fail unless it beats 1x.

Correctness is asserted unconditionally: warm and cold records must be
bit-identical (the cross-tier equivalence suite pins the same promise
per backend; this bench re-checks it at bench scale).

Knobs: ``REPRO_SFI_SAMPLES`` (faults, default 24).
"""

import os
import time

from conftest import bench_samples, record_keys, save_artifact

from repro.injection.gefin import GeFIN

WORKLOAD = "stringsearch"
#: Checkpoint stride for the warm run: fine enough that the average
#: within-stride replay is small next to the post-injection window.
STRIDE = 1000


def run_campaign(front, warm):
    started = time.perf_counter()
    result = front.campaign(
        "regfile", mode="pinout", samples=bench_samples(default=24),
        seed=2017, jobs=1, warm_start=warm, checkpoint_interval=STRIDE,
    )
    return result, time.perf_counter() - started


def test_warmstart_speedup(benchmark):
    front = GeFIN(WORKLOAD)
    cold, cold_s = run_campaign(front, warm=False)

    def measure():
        return run_campaign(front, warm=True)

    warm, warm_s = benchmark.pedantic(measure, rounds=1, iterations=1)
    # Correctness first: warm-start must be a pure wall-clock
    # optimisation, never a result change.
    assert record_keys(warm) == record_keys(cold)

    cycle_speedup = (cold.simulated_cycles / warm.simulated_cycles
                     if warm.simulated_cycles else 1.0)
    wall_speedup = cold_s / warm_s if warm_s > 0 else 1.0
    # The acceptance bar: >= 3x, asserted on the deterministic metric.
    assert cycle_speedup >= 3.0, (
        f"warm-start replayed {warm.simulated_cycles} cycles vs "
        f"{cold.simulated_cycles} cold -- only {cycle_speedup:.2f}x"
    )
    if os.environ.get("REPRO_BENCH_ASSERT_SPEEDUP") == "1":
        assert wall_speedup > 1.0, (
            f"warm-start not faster on this host: {warm_s:.2f}s vs "
            f"{cold_s:.2f}s cold"
        )
    # Deterministic lines only in the artifact (cycle counts are exact
    # for a fixed seed); the host wall clock is printed, not persisted.
    lines = [
        f"workload={WORKLOAD} structure=regfile mode=pinout"
        f" samples={cold.n} stride={STRIDE} seed=2017 (fig1 config)",
        f"cold-start (jobs=1): {cold.simulated_cycles:>9} faulty-phase"
        f" cycles",
        f"warm-start (jobs=1): {warm.simulated_cycles:>9} faulty-phase"
        f" cycles",
        f"speedup: {cycle_speedup:.2f}x simulated cycles"
        f" (deterministic)",
        "records identical: True",
    ]
    text = "\n".join(lines)
    save_artifact("warmstart_speedup.txt", text)
    print()
    print(text)
    print(f"wall clock (this host): cold {cold_s:.2f}s, warm"
          f" {warm_s:.2f}s -> {wall_speedup:.2f}x")
