"""Micro-benchmark: the arch interpreter's decode cache.

The golden (fault-free) run at the emulator tier is the floor under
every arch campaign and under the cross-tier co-simulation suite.  Its
hot loop fetches one instruction per step; this bench compares the
memoized decode table (one dict hit per fetch, built once per program)
against the uncached baseline that re-decodes the binary word on every
fetch, over one full golden run each.

What the ratio means: the *uncached* path is what an emulator that
executes the binary image pays without memoization -- the speedup
quantifies what the per-program table saves *relative to per-fetch
decoding*, not relative to the repo's previous fetch path (the
assembler's pre-decoded list behind ``Program.inst_at``, which the
table matches in cost while fetching through the encoded image).

Correctness is asserted unconditionally (cached and uncached execution
are bit-identical); the wall-clock speedup is recorded in the artifact
as a host measurement.  The deterministic facts (instruction counts,
identity) come first so unchanged measurements rerun to unchanged
lines.
"""

from conftest import save_artifact

from repro.isa.interp import Interpreter
from repro.isa.toolchain import Toolchain
from repro.workloads import build

WORKLOAD = "susan_smooth"  # the longest workload: ~120k instructions


def golden_run(program, decode_cache):
    interp = Interpreter(program, decode_cache=decode_cache)
    return interp.run()


def test_decode_cache_speedup(benchmark):
    import time

    program = build(WORKLOAD, Toolchain("gnu"))
    program.decode_table()  # build outside the timed region

    started = time.perf_counter()
    uncached = golden_run(program, decode_cache=False)
    uncached_s = time.perf_counter() - started

    cached = benchmark.pedantic(
        lambda: golden_run(program, decode_cache=True),
        rounds=1, iterations=1,
    )
    cached_s = benchmark.stats.stats.mean

    assert cached.output == uncached.output
    assert cached.exit_code == uncached.exit_code
    assert cached.inst_count == uncached.inst_count
    speedup = uncached_s / cached_s if cached_s > 0 else 1.0
    # The cache must not be slower than re-decoding every fetch; the
    # generous floor keeps the assertion robust on noisy shared hosts.
    assert speedup > 1.2, (
        f"decode cache not faster: {cached_s:.3f}s cached vs "
        f"{uncached_s:.3f}s uncached"
    )
    # Deterministic artifact; the measured speedup is host-dependent
    # and printed, not persisted (see benchmarks/conftest.py).
    lines = [
        f"workload={WORKLOAD} insts={cached.inst_count}"
        f" (one golden run per variant)",
        "cached == uncached execution: True",
        "speedup floor asserted: > 1.2x golden-run wall clock"
        " (measured value printed at run time)",
    ]
    text = "\n".join(lines)
    save_artifact("decode_cache.txt", text)
    print()
    print(text)
    print(f"measured: {speedup:.1f}x ({uncached_s:.3f}s uncached vs"
          f" {cached_s:.3f}s cached, this host)")
