"""Shared fixtures for the table/figure regeneration benches.

Every bench both *measures* (via pytest-benchmark) and *regenerates* the
corresponding artifact, writing the rendered text to
``benchmarks/results/`` so EXPERIMENTS.md can cite actual output.

**Artifact stability contract**: result files are stable, sorted and
timestamp-free -- deterministic for a fixed seed -- so a rerun with
unchanged measurements produces an empty diff.  Host-dependent wall
clocks are *printed* by the benches, never persisted (the sole
exception is the Table II family, whose measurement *is* throughput).
Campaign artifacts therefore report deterministic cycle/run counts
(``campaign_table``'s ``kcyc/sim`` column, the warm-start cycle ratio,
the prune simulated-run ratio) instead of seconds.

Knobs:

* ``REPRO_SFI_SAMPLES``  -- faults per (workload, structure, mode)
  series (default 32 here; the Leveugle-exact count is ~4000 and every
  result records the error margin its sample size actually achieves);
* ``REPRO_BENCH_WORKLOADS`` -- comma-separated subset for quick runs.
"""

import os
import pathlib

import pytest

from repro.core.study import CrossLevelStudy, StudyConfig
from repro.workloads.registry import WORKLOAD_NAMES

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_samples(default=32):
    return int(os.environ.get("REPRO_SFI_SAMPLES", str(default)))


def bench_workloads():
    text = os.environ.get("REPRO_BENCH_WORKLOADS", "")
    if not text:
        return WORKLOAD_NAMES
    return tuple(w.strip() for w in text.split(",") if w.strip())


@pytest.fixture(scope="session")
def study():
    """One shared study: figure benches reuse cached campaign series."""
    config = StudyConfig(workloads=bench_workloads(),
                         samples=bench_samples(), seed=2017)
    return CrossLevelStudy(config)


def save_artifact(name, text):
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    return path


def record_keys(result):
    """A campaign's records projected onto the bit-identity contract
    (fault, class, detail, simulated tail -- wall clock and replay
    accounting excluded).  Mirrors tests/support.py."""
    return [
        (r.fault.bit, r.fault.cycle, r.fclass, r.detail, r.sim_cycles)
        for r in result.records
    ]
