"""Ablation A3: the "different toolchains" residual error (SS III-C).

The paper could not run identical binaries on the two flows and lists
that as an uncontrollable error source.  Our assembler *can* produce
identical binaries, so this ablation quantifies the error the paper
could not: cross-level RF deltas with different toolchains (the paper's
situation) vs the same binary on both levels.
"""

from conftest import bench_samples, save_artifact

from repro.analysis.compare import CrossLevelComparison
from repro.analysis.report import render_table
from repro.core.study import CrossLevelStudy, StudyConfig

WORKLOADS = ("sha", "qsort")


def _mean_delta(same_binaries, samples):
    config = StudyConfig(workloads=WORKLOADS, samples=samples,
                         same_binaries=same_binaries)
    study = CrossLevelStudy(config)
    fig1 = study.figure1()
    comparison = CrossLevelComparison("regfile")
    for workload in WORKLOADS:
        comparison.add_results(fig1["GeFIN"][workload],
                               fig1["RTL"][workload])
    return comparison


def test_toolchain_effect(benchmark):
    samples = bench_samples()

    def run():
        return (_mean_delta(False, samples), _mean_delta(True, samples))

    cross, same = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("binaries", "mean |delta| (pp)", "mean |delta| (rel)"),
        [
            ("different toolchains (paper's setup)",
             f"{cross.mean_percentile_units:.1f}",
             f"{100 * cross.mean_relative:.0f}%"),
            ("same binary on both levels",
             f"{same.mean_percentile_units:.1f}",
             f"{100 * same.mean_relative:.0f}%"),
        ],
        title=f"A3: toolchain-difference contribution to the cross-level "
              f"delta ({samples} faults/series)",
    )
    save_artifact("ablation_toolchain.txt", text)
    print()
    print(text)
    assert cross.deltas and same.deltas
