"""Extension E1: AVF vs HVF at the microarchitecture level.

The paper's SS III-C notes that GeFIN natively offers observation points
between the system layers, "offering HVF and AVF estimations" (refs
Sridharan & Kaeli).  This extension measures that gap: for the same fault
samples, how much hardware-state corruption never becomes program-visible
(the LATENT class)?  Only the microarchitectural flow can answer this --
at RTL, run-to-end state comparison is throughput-prohibitive, which is
the paper's recurring theme.
"""

from conftest import bench_samples, bench_workloads, save_artifact

from repro.analysis.report import render_table
from repro.injection import GeFIN


def test_avf_vs_hvf(benchmark):
    samples = bench_samples()
    workloads = bench_workloads()[:4]

    def run():
        rows = []
        for workload in workloads:
            front = GeFIN(workload)
            avf = front.campaign("regfile", mode="avf", samples=samples,
                                 seed=31)
            hvf = front.campaign("regfile", mode="hvf", samples=samples,
                                 seed=31)
            rows.append((workload, avf.unsafeness, hvf.unsafeness,
                         hvf.summary()["latent"]))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ("workload", "AVF (output)", "HVF (state)", "latent-only"),
        [(w, f"{100 * a:.1f}%", f"{100 * h:.1f}%", latent)
         for w, a, h, latent in rows],
        title=f"E1: register-file AVF vs HVF ({samples} faults each, "
              f"same samples)",
    )
    save_artifact("extension_hvf.txt", text)
    print()
    print(text)
    for workload, avf, hvf, _ in rows:
        assert hvf >= avf - 1e-9, workload  # HVF is a superset criterion
