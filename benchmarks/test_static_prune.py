"""Micro-benchmark: capture-free static pruning (``--prune static``).

Runs the Fig. 1 register-file configuration (pinout OP, scaled window,
seed 2017) at both statically-modeled tiers -- the architectural
emulator and the Safety Verifier (rtl) -- twice each:
``prune_mode="off"`` (simulate every sampled fault) and
``prune_mode="static"`` (faults whose cells are provably overwritten /
never read / unaddressable classified from the program text plus the
retired-PC stream, no access trace and no simulation).  The soundness
sanitizer (``REPRO_STATIC_XCHECK=1``) stays armed throughout, so every
static verdict in the measured runs is audited against the dynamic
trace as it lands.

Asserted unconditionally:

* **exactness** -- per-fault classifications are bit-identical between
  the two modes at both tiers (the matrix in tests/test_staticcheck.py
  pins the same promise per backend; this re-checks it at bench scale);
* **coverage** -- the static engine prunes at least one fault at each
  tier, a deterministic count (no wall clock involved).

The artifact (``static_prune.txt``, parsed into BENCH_4.json as the
``static_prune_rate`` series) is fully deterministic for a fixed seed.

Knobs: ``REPRO_SFI_SAMPLES`` (faults, floor 20 here so the rate is
meaningful under CI's reduced sample counts).
"""

from conftest import bench_samples, save_artifact

from repro.injection.arch_emu import ArchEmu
from repro.injection.safety_verifier import SafetyVerifier

WORKLOAD = "stringsearch"
#: The statically-modeled tiers: (label, front-end class).
SERIES = (("ArchEmu", ArchEmu), ("RTL", SafetyVerifier))


def run_series(front, prune_mode, samples):
    return front.campaign(
        "regfile", mode="pinout", samples=samples, seed=2017, jobs=1,
        prune_mode=prune_mode,
    )


def test_static_prune_rate(benchmark, monkeypatch):
    monkeypatch.setenv("REPRO_STATIC_XCHECK", "1")
    samples = max(bench_samples(default=60), 20)
    fronts = {label: cls(WORKLOAD) for label, cls in SERIES}
    baseline = {
        label: run_series(front, "off", samples)
        for label, front in fronts.items()
    }

    def measure():
        return {
            label: run_series(front, "static", samples)
            for label, front in fronts.items()
        }

    static = benchmark.pedantic(measure, rounds=1, iterations=1)

    lines = [
        f"workload={WORKLOAD} structure=regfile mode=pinout"
        f" samples={samples} seed=2017 (fig1 config, xcheck armed)",
    ]
    total_pruned = 0
    for label, _ in SERIES:
        off, pruned = baseline[label], static[label]
        # Exactness first: static pruning never changes a class.
        assert [r.fclass for r in off.records] == \
            [r.fclass for r in pruned.records], label
        assert pruned.pruned_count > 0, label
        assert all(r.pruned == "static"
                   for r in pruned.records if r.pruned), label
        total_pruned += pruned.pruned_count
        rate = 100.0 * pruned.pruned_count / pruned.n
        lines.append(
            f"{label:<7} prune=off   : {off.simulated_count:>4}"
            f" simulated runs of {off.n}"
        )
        lines.append(
            f"{label:<7} prune=static: {pruned.simulated_count:>4}"
            f" simulated runs of {pruned.n} ({pruned.pruned_count}"
            f" pruned, static_prune_rate {rate:.1f}%)"
        )
    combined = 100.0 * total_pruned / (samples * len(SERIES))
    lines.append(
        f"combined static_prune_rate: {combined:.1f}% (deterministic)"
    )
    lines.append("classifications identical: True")
    text = "\n".join(lines)
    save_artifact("static_prune.txt", text)
    print()
    print(text)
