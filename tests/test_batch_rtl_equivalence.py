"""The cross-lane equivalence matrix for the rtl-tier lane backend.

PR 6 pinned the arch-tier lane engine (``test_batch_equivalence.py``);
this file pins the rtl backend (:mod:`repro.batch.rtl`): for a fixed
seed, an rtl campaign run at ``batch_lanes=N`` yields records
bit-identical to the scalar path, fault for fault, across the same
strategy matrix --

* **prune modes** -- the simulate-only partition feeds the lane engine
  exactly the faults the scalar path would simulate;
* **jobs=1 vs jobs=N** -- each worker batches its own slice;
* **warm vs cold start** -- lane groups restore from the same
  checkpoint (or replay the same prefix) the scalar runner would;
* **scalar fallback** -- CPSR flips divert conditional branches within
  a few cycles, so the drop-to-scalar side must carry the campaign;
  cache-array structures never vectorize at all.

Identity is asserted on ``record_keys`` (fault identity, class, detail,
simulated cycles -- per-session accounting excluded, as everywhere).
The campaigns here run a small-cache, trace-free ``RTLConfig`` so the
matrix stays cheap; the full-size configuration is exercised by the
``bench-smoke`` sweep diff and ``benchmarks/test_batch_rtl_speedup.py``.
"""

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.rtl import RTLConfig, RTLSim
from repro.workloads import registry as workloads
from support import record_keys

SAMPLES = 8
SEED = 13
WINDOW = 800
LANES = 4

FAST_RTL = RTLConfig(trace_signals=False, dcache_size=1024,
                     icache_size=1024)


class RTLFactory:
    """Picklable sim factory (jobs=2 ships it to forked workers)."""

    def __init__(self, workload):
        self.workload = workload

    def __call__(self):
        return RTLSim(workloads.build(self.workload), FAST_RTL)


def run_campaign(factory, workload, structure="regfile", **config_kwargs):
    kwargs = {"samples": SAMPLES, "window": WINDOW, "seed": SEED}
    kwargs.update(config_kwargs)
    config = CampaignConfig(**kwargs)
    campaign = Campaign(factory, structure, config,
                        workload=workload, level="rtl")
    return campaign.run()


# ----------------------------------------------------------------------
# the matrix: workloads x prune x jobs x warm/cold
# ----------------------------------------------------------------------

@pytest.fixture(scope="module",
                params=[("stringsearch", "off"), ("stringsearch", "dead"),
                        ("sha", "off"), ("sha", "dead")],
                ids=lambda p: f"{p[0]}-prune_{p[1]}")
def scalar_reference(request):
    """Per (workload, prune): the factory plus the scalar warm serial
    reference records."""
    workload, prune = request.param
    factory = RTLFactory(workload)
    reference = run_campaign(factory, workload, prune_mode=prune)
    assert reference.n == SAMPLES
    return workload, prune, factory, record_keys(reference)


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
def test_rtl_lane_equivalence_matrix(scalar_reference, jobs, warm):
    """lanes=N x {jobs=1,2} x {warm,cold} x {prune off,dead} == the
    scalar warm serial reference."""
    workload, prune, factory, reference = scalar_reference
    result = run_campaign(factory, workload, prune_mode=prune,
                          warm_start=warm, jobs=jobs, batch_lanes=LANES)
    assert record_keys(result) == reference, (
        f"{workload}: lanes={LANES} prune={prune} warm={warm} "
        f"jobs={jobs} diverged from the scalar reference"
    )


def test_rtl_batch_cycles_accounted_serially(scalar_reference):
    """The serial lane engine reports its global stepped cycles -- the
    denominator of the published ``batch_rtl_speedup`` series."""
    workload, prune, factory, _ = scalar_reference
    result = run_campaign(factory, workload, prune_mode=prune,
                          batch_lanes=LANES)
    assert result.batch_cycles > 0
    assert result.batch_lane_peak_bytes > 0
    scalar = run_campaign(factory, workload, prune_mode=prune)
    assert scalar.batch_cycles == 0
    assert scalar.batch_lane_peak_bytes == 0


# ----------------------------------------------------------------------
# divergence-heavy configurations: the scalar-fallback side
# ----------------------------------------------------------------------

def test_cpsr_faults_force_pipeline_divergence():
    """CPSR flag flips divert conditional branches at the next
    ``cond_passed`` enforce point, flushing the shared pipeline
    trajectory -- most lanes are dropped to the scalar rerun path, and
    the records must still match the scalar campaign bit for bit."""
    factory = RTLFactory("stringsearch")
    scalar = run_campaign(factory, "stringsearch", structure="cpsr",
                          samples=16, window=4000)
    batch = run_campaign(factory, "stringsearch", structure="cpsr",
                         samples=16, window=4000, batch_lanes=8)
    keys = record_keys(batch)
    assert keys == record_keys(scalar)
    # The config earns its name: a real mix of survivors and casualties.
    assert len({k[2] for k in keys}) > 1, "all faults classified alike"


@pytest.mark.parametrize("structure", ["l1d.data", "l1d.dirty", "l1i.tag"])
def test_cache_structures_fall_back_to_scalar(structure):
    """Cache-array faults never vectorize (the lane store models RAM
    plus the fault-free cache image, not per-lane array state): the
    engine must route them through the scalar runner unchanged."""
    factory = RTLFactory("qsort")
    scalar = run_campaign(factory, "qsort", structure=structure)
    batch = run_campaign(factory, "qsort", structure=structure,
                         batch_lanes=LANES)
    assert record_keys(batch) == record_keys(scalar)
    # Nothing vectorized, so no lane store was ever materialized.
    assert batch.batch_lane_peak_bytes == 0
