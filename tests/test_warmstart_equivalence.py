"""The cross-tier warm-start equivalence matrix.

The campaign engine promises that its acceleration machinery is pure
wall-clock optimisation: for a fixed seed, the per-fault record sequence
is bit-identical across

* **warm vs cold start** -- restoring the nearest golden checkpoint vs
  replaying the whole drain-punctuated prefix from the base checkpoint;
* **jobs=1 vs jobs=N** -- the serial loop vs the process-pool executor;
* **bounded vs unbounded checkpoint cache** -- LRU eviction only moves
  the restore point, never the reached state.

This suite pins that promise on **every registered backend** (the
paper's three tiers: arch, uarch, rtl), which is the cross-tier
equivalence matrix the acceptance criteria name.  Identity is asserted
on everything a record carries except wall clock: fault identity,
class, detail and simulated cycles.
"""

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.sim import registry
from support import record_keys

WORKLOAD = "stringsearch"
SAMPLES = 6
SEED = 13
WINDOW = 800

ALL_LEVELS = registry.level_names()


def run_campaign(factory, level, **config_kwargs):
    config = CampaignConfig(samples=SAMPLES, window=WINDOW, seed=SEED,
                            **config_kwargs)
    campaign = Campaign(factory, "regfile", config,
                        workload=WORKLOAD, level=level)
    return campaign.run()


@pytest.fixture(scope="module", params=ALL_LEVELS)
def level_reference(request):
    """Per level: the factory plus the warm, serial reference records."""
    level = request.param
    factory = registry.create_frontend(level, WORKLOAD).sim_factory
    reference = run_campaign(factory, level)
    assert reference.n == SAMPLES
    return level, factory, record_keys(reference)


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("warm", [True, False],
                         ids=["warm", "cold"])
def test_equivalence_matrix(level_reference, jobs, warm):
    """backend x {jobs=1,2} x {warm,cold} == the serial warm reference."""
    level, factory, reference = level_reference
    result = run_campaign(factory, level, warm_start=warm, jobs=jobs)
    assert record_keys(result) == reference, (
        f"{level}: warm={warm} jobs={jobs} diverged from the serial "
        f"warm reference"
    )


def test_bounded_cache_matches_unbounded(level_reference):
    """LRU eviction moves restore points, never classifications."""
    level, factory, reference = level_reference
    bounded = run_campaign(factory, level, checkpoint_bound=2)
    assert record_keys(bounded) == reference, level


def test_warm_start_replays_less(level_reference):
    """The acceleration is real: warm replays strictly fewer cycles
    than cold (the faulty phases being bit-identical otherwise)."""
    level, factory, _ = level_reference
    warm = run_campaign(factory, level)
    cold = run_campaign(factory, level, warm_start=False)
    warm_replay = sum(r.replay_cycles for r in warm.records)
    cold_replay = sum(r.replay_cycles for r in cold.records)
    assert warm_replay < cold_replay, level
    assert warm.simulated_cycles < cold.simulated_cycles, level


def test_early_stop_preserves_classifications():
    """Early-stop (DRAIN_FREE tiers) terminates masked runs at the
    first re-convergent boundary without changing any classification,
    in every observation mode that runs to program end."""
    factory = registry.create_frontend("arch", WORKLOAD).sim_factory
    for observation in ("software", "arch"):
        results = {}
        for early in (True, False):
            config = CampaignConfig(samples=10, window=None,
                                    observation=observation, seed=7,
                                    early_stop=early)
            results[early] = Campaign(factory, "regfile", config,
                                      workload=WORKLOAD,
                                      level="arch").run()
        classes = [r.fclass for r in results[True].records]
        assert classes == [r.fclass for r in results[False].records]
        assert (results[True].simulated_cycles
                < results[False].simulated_cycles), observation
        converged = [r for r in results[True].records
                     if r.detail == "re-converged with golden"]
        assert converged, "early stop never fired on a masked run"
        assert all(r.fclass.safe for r in converged)
