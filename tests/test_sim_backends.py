"""The unified backend layer: registry, protocol, checkpoint round trips.

Parameterized over **all registered backends** via
:mod:`repro.sim.registry`, so a future fourth level is automatically
held to the same contract:

* checkpoint/restore round-trip equivalence -- restore-then-run must
  match straight-run output, architectural state and pinout;
* the injection interface (``fault_targets``/``inject``) is live state;
* the campaign engine runs end-to-end at every level.
"""

import pytest

from repro.injection import ArchEmu
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.classify import FaultClass
from repro.sim import registry
from repro.sim.base import RunStatus, SimulatorBase

WORKLOAD = "stringsearch"

ALL_LEVELS = registry.level_names()


def make_frontend(level):
    """Scaled front-end (small caches where the level models caches)."""
    return registry.create_frontend(level, WORKLOAD)


@pytest.fixture(scope="module", params=ALL_LEVELS)
def level_sim(request):
    """One simulator per registered level, shared within the module."""
    return request.param, make_frontend(request.param).sim_factory


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

def test_registry_lists_three_tiers_in_detail_order():
    # The paper's three tiers must be registered in increasing-detail
    # order.  Subsequence, not equality: plugins may register more
    # backends, and this suite picks them up rather than rejecting them.
    ranked = [n for n in ALL_LEVELS if n in ("arch", "uarch", "rtl")]
    assert ranked == ["arch", "uarch", "rtl"]


def test_registry_unknown_level_raises():
    with pytest.raises(KeyError, match="registered"):
        registry.get("netlist")


def test_registry_rejects_duplicate_registration():
    with pytest.raises(ValueError):
        registry.register("arch", rank=0, description="dupe",
                          simulator="x:y", frontend="x:z")


def test_registry_simulator_classes_subclass_base():
    for spec in registry.levels():
        cls = spec.simulator_class()
        assert issubclass(cls, SimulatorBase)
        assert cls.LEVEL == spec.name


def test_registry_frontends_carry_matching_level():
    for spec in registry.levels():
        assert spec.frontend_class().LEVEL == spec.name


def test_run_status_reexports_are_one_enum():
    from repro.injection.campaign import RunStatus as campaign_rs
    from repro.rtl.simulator import RunStatus as rtl_rs
    from repro.uarch.simulator import RunStatus as uarch_rs

    assert uarch_rs is RunStatus
    assert rtl_rs is RunStatus
    assert campaign_rs is RunStatus


# ----------------------------------------------------------------------
# protocol, per backend
# ----------------------------------------------------------------------

def test_fault_targets_match_injectable(level_sim):
    _, factory = level_sim
    sim = factory()
    targets = sim.fault_targets()
    assert set(targets) == set(sim.INJECTABLE)
    assert all(bits > 0 for bits in targets.values())
    assert targets["regfile"] % 32 == 0


def test_inject_flips_live_state(level_sim):
    _, factory = level_sim
    sim = factory()
    before = list(sim.arch_state()["regs"])
    # Flip bit 0 of every architectural register slot: at least one of
    # them must show up in the committed architectural state.
    for reg in range(15):
        sim.inject("regfile", reg * 32)
    after = list(sim.arch_state()["regs"])
    assert before != after


def test_checkpoint_restore_round_trip(level_sim):
    """Restore-then-run matches straight-run, for every backend."""
    level, factory = level_sim
    sim = factory()
    assert sim.run(stop_cycle=400) is RunStatus.STOPPED
    cp = sim.checkpoint()

    # Straight run: continue the checkpointed machine to completion.
    assert sim.run() is RunStatus.EXITED
    want_output = sim.output
    want_state = sim.arch_state()
    want_pinout = [t.key() for t in sim.pinout]
    want = (sim.cycle, sim.icount)

    # Restore into a *fresh* machine and run to completion.
    other = factory()
    other.restore(cp)
    assert other.cycle == cp["cycle"]
    assert other.run() is RunStatus.EXITED
    assert other.output == want_output
    assert other.arch_state() == want_state
    assert [t.key() for t in other.pinout] == want_pinout
    assert (other.cycle, other.icount) == want, level


def test_state_digest_round_trip_property(level_sim):
    """Property: for random checkpoint cycles, checkpoint() -> run N
    cycles -> state_digest equals the straight-line run's digest.

    This is the contract the warm-start subsystem leans on: a digest
    captures *all* behavior-determining state, so equal digests mean
    interchangeable machines.  Exercised at random cycles for every
    registered backend.
    """
    import random

    level, factory = level_sim
    rng = random.Random(2017)
    probe = factory()
    probe.run()
    end_cycle = probe.cycle
    for trial in range(3):
        cp_cycle = rng.randrange(1, max(end_cycle - 400, 2))
        tail = rng.randrange(50, 400)
        sim = factory()
        assert sim.run(stop_cycle=cp_cycle) is RunStatus.STOPPED
        cp = sim.checkpoint()
        # Straight line: the checkpointed machine continues in place.
        target = sim.cycle + tail
        sim.run(stop_cycle=target)
        want = sim.state_digest()
        # Round trip: a fresh machine restores and runs the same tail.
        other = factory()
        other.restore(cp)
        other.run(stop_cycle=target)
        assert other.state_digest() == want, (level, trial, cp_cycle)


def test_state_digest_sees_injected_faults(level_sim):
    """A digest must differ once live state is flipped (else early-stop
    could mask a real corruption)."""
    _, factory = level_sim
    sim = factory()
    sim.run(stop_cycle=300)
    before = sim.state_digest()
    for reg in range(15):
        sim.inject("regfile", reg * 32)
    assert sim.state_digest() != before


def test_checkpoint_at_hook(level_sim):
    """checkpoint_at advances and captures; past-the-end returns None."""
    level, factory = level_sim
    sim = factory()
    status, cp = sim.checkpoint_at(250)
    assert status is RunStatus.STOPPED
    assert cp is not None and cp["cycle"] >= 250
    status, cp = sim.checkpoint_at(10**9)
    assert status is RunStatus.EXITED
    assert cp is None


def test_campaign_runs_at_every_level(level_sim):
    level, factory = level_sim
    config = CampaignConfig(samples=6, window=1500, seed=13)
    campaign = Campaign(factory, "regfile", config,
                        workload=WORKLOAD, level=level)
    result = campaign.run()
    assert result.n == 6
    assert result.level == level
    assert result.count(FaultClass.MASKED) + result.unsafe_count == 6


# ----------------------------------------------------------------------
# access-trace contract (the fault-pruning capture hook)
# ----------------------------------------------------------------------

def test_access_trace_contract(level_sim):
    """Every backend's lifetime trace is well-formed: registered
    structures are injectable, events stay inside the fault-target bit
    space, per-cell cycle stamps are monotone, and every storage cell
    the golden run demonstrably touches (the SP at minimum) is
    covered."""
    level, factory = level_sim
    sim = factory()
    trace = sim.enable_access_trace()
    assert sim.run() is RunStatus.EXITED
    sim.seal_access_trace()
    assert sim.access_trace() is trace

    targets = sim.fault_targets()
    structures = trace.structures()
    assert "regfile" in structures
    assert set(structures) <= set(targets), level
    total_events = 0
    for structure in structures:
        bit_count = targets[structure]
        for cell in trace.cells(structure):
            events = trace.events(structure, cell)
            total_events += len(events)
            assert events, (level, structure, cell)
            # Cells stay inside the injectable bit space (the last
            # valid bit's cell bounds the cell ids) and only
            # machine-reachable cells ever see traffic.
            assert 0 <= cell <= trace.cell_of(structure, bit_count - 1)
            assert trace.reachable(structure, cell)
            cycles = [c for c, _ in events]
            assert cycles == sorted(cycles), (
                f"{level}/{structure}[{cell}]: events not monotone"
            )
            assert all(0 <= c <= sim.cycle for c in cycles)
    assert total_events > 0, level
    # The golden run touches many registers; the trace must cover a
    # spread of cells (not just one hot register), with both reads and
    # writes -- r0 (the syscall result register at every tier's
    # canonical layout) is always among them.
    assert len(trace.cells("regfile")) >= 4, level
    assert trace.events("regfile", 0), f"{level}: r0 never traced"
    reads = writes = 0
    for cell in trace.cells("regfile"):
        for _, is_write in trace.events("regfile", cell):
            writes += is_write
            reads += not is_write
    assert reads > 0 and writes > 0, level


def test_access_trace_round_trips_through_checkpoint_restore(level_sim):
    """A traced checkpoint carries the trace prefix: restoring it into
    a fresh traced simulator and continuing reproduces exactly the
    trace of the reference machine (which, like the campaign's golden
    capture, round-trips through its own checkpoint -- restore()
    canonicalizes renaming residue, so both suffixes start from the
    identical machine)."""
    level, factory = level_sim
    reference = factory()
    reference.enable_access_trace()
    assert reference.run(stop_cycle=400) is RunStatus.STOPPED
    cp = reference.checkpoint()
    assert "access_trace" in cp
    reference.restore(cp)
    assert reference.run() is RunStatus.EXITED
    reference.seal_access_trace()

    other = factory()
    other.enable_access_trace()
    other.restore(cp)
    assert other.run() is RunStatus.EXITED
    other.seal_access_trace()

    assert other.access_trace().snapshot() == \
        reference.access_trace().snapshot(), level


def test_untraced_checkpoints_stay_lean(level_sim):
    """Tracing is strictly opt-in: a plain simulator's checkpoints must
    not grow an access-trace payload, and access_trace() stays None."""
    _, factory = level_sim
    sim = factory()
    assert sim.access_trace() is None
    assert sim.run(stop_cycle=300) is RunStatus.STOPPED
    assert "access_trace" not in sim.checkpoint()


# ----------------------------------------------------------------------
# the arch tier specifically
# ----------------------------------------------------------------------

def test_arch_golden_matches_interpreter_reference():
    from repro.isa import Interpreter, Toolchain
    from repro.workloads import build

    front = ArchEmu(WORKLOAD)
    sim = front.golden_run()
    ref = Interpreter(build(WORKLOAD, Toolchain("gnu"))).run()
    assert sim.exited and sim.exit_code == 0
    assert sim.output == ref.output
    assert sim.icount == ref.inst_count


def test_arch_cycle_proxy_scales_with_cpi():
    from repro.sim.archsim import ArchConfig

    fast = ArchEmu(WORKLOAD).golden_run()
    slow = ArchEmu(WORKLOAD, arch_config=ArchConfig(
        cycles_per_inst=3)).golden_run()
    assert fast.cycle == fast.icount
    assert slow.cycle == 3 * slow.icount
    assert slow.output == fast.output


def test_arch_pinout_publishes_store_stream():
    sim = ArchEmu(WORKLOAD).golden_run()
    assert sim.pinout, "arch pinout must carry the store stream"
    assert all(t.kind == "wb" for t in sim.pinout)


def test_arch_regfile_campaign_produces_standard_counts():
    result = ArchEmu(WORKLOAD).campaign("regfile", mode="pinout",
                                        samples=10, seed=2017)
    summary = result.summary()
    assert summary["n"] == 10
    for key in ("masked", "sdc", "due", "hang", "mismatch", "latent"):
        assert summary[key] >= 0
    assert result.count(FaultClass.MASKED) + result.unsafe_count == 10


def test_arch_hvf_mode_sees_latent_state():
    # The layer-boundary observation point works without a cache model.
    result = ArchEmu(WORKLOAD).campaign("regfile", mode="hvf",
                                        samples=6, seed=5)
    assert result.n == 6


def test_arch_cpsr_injection():
    sim = ArchEmu(WORKLOAD).sim_factory()
    assert sim.fault_targets()["cpsr"] == 4
    before = sim.arch_state()["flags"]
    sim.inject("cpsr", 2)
    assert sim.arch_state()["flags"] == before ^ 0b100


def test_cli_golden_arch(capsys):
    from repro.cli import main

    assert main(["golden", WORKLOAD, "--level", "arch"]) == 0
    out = capsys.readouterr().out
    assert "(arch)" in out and "exited=True" in out
