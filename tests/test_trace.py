"""SignalTrace unit behaviour (change detection, CRC, VCD, restore)."""

from repro.isa import assemble
from repro.rtl import RTLConfig, RTLSim
from repro.rtl.trace import SignalTrace

SRC = """
    .text
_start:
    movw r4, #0
loop:
    add  r4, r4, #1
    cmp  r4, #40
    blt  loop
    movw r0, #0
    svc  #0
"""


def _traced_sim():
    program = assemble(SRC, name="tiny-loop")
    return RTLSim(program, RTLConfig(dcache_size=1024, icache_size=1024))


def test_change_detection_skips_stable_signals():
    sim = _traced_sim()
    sim.run(stop_cycle=50)
    names = {name for _, name, _ in sim.trace.changes}
    # The D-cache never gets used by this loop: no 'stall' changes beyond
    # the initial sample, while pc changes every fetch.
    pc_changes = sum(1 for _, n, _ in sim.trace.changes if n == "pc")
    stall_changes = sum(1 for _, n, _ in sim.trace.changes
                        if n == "stall")
    assert pc_changes > 10
    assert stall_changes <= 2
    assert "rf" in names


def test_crc_changes_only_with_activity():
    sim = _traced_sim()
    sim.run(stop_cycle=20)
    crc_mid = sim.trace.crc
    sim.run(stop_cycle=40)
    assert sim.trace.crc != crc_mid


def test_trace_snapshot_restore_truncates_changes():
    trace = SignalTrace()

    class _FakeCore:
        cycle = 1
        pc = 0
        retired_next_pc = 0

        class rf:
            import numpy as np
            regs = np.zeros(4, dtype=np.uint32)
            cpsr = 0

        fetch_buffer = []
        decode_q = []
        ex1 = []
        ex2 = []
        wb = []
        mul_uop = None
        mul_remaining = 0
        stall_until = 0
        fetch_stall_until = 0

    core = _FakeCore()
    trace.sample(core)
    snap = trace.snapshot()
    core.cycle = 2
    core.pc = 4
    trace.sample(core)
    assert len(trace.changes) > 0
    before = len(trace.changes)
    trace.restore(snap)
    assert len(trace.changes) < before


def test_vcd_round_numbers():
    sim = _traced_sim()
    sim.run(stop_cycle=30)
    vcd = sim.export_vcd("tiny")
    assert vcd.startswith("$comment tiny")
    # Every change line is binary + code.
    for line in vcd.splitlines():
        if line.startswith("b"):
            bits, _ = line[1:].split(" ")
            assert set(bits) <= {"0", "1"}


def test_toggle_counts_positive_for_pc():
    sim = _traced_sim()
    sim.run(stop_cycle=30)
    assert sim.trace.toggles.get("pc", 0) > 0


def test_max_changes_cap_respected():
    trace = SignalTrace(max_changes=5)
    sim = _traced_sim()
    sim.core.trace = trace
    sim.run(stop_cycle=100)
    assert len(trace.changes) == 5
    assert trace.samples > 5  # sampling continued, log capped
