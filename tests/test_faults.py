"""Fault specs, distributions and the inject-near-consumption move."""

from hypothesis import given, strategies as st
import pytest

from repro.injection.distributions import (
    TruncatedNormalDistribution,
    UniformDistribution,
    make_distribution,
    make_rng,
)
from repro.injection.faults import (
    FaultSpec,
    accelerate_fault,
    decode_cache_data_bit,
    sample_faults,
)
from repro.memory.cache import CacheConfig


@given(st.integers(min_value=0, max_value=2**20), st.integers(0, 100))
def test_distribution_bounds_uniform(seed, span):
    rng = make_rng(seed)
    dist = UniformDistribution(10, 10 + span)
    for _ in range(20):
        assert 10 <= dist.draw(rng) <= 10 + span


@given(st.integers(min_value=0, max_value=2**20))
def test_distribution_bounds_normal(seed):
    rng = make_rng(seed)
    dist = TruncatedNormalDistribution(100, 5000)
    for _ in range(50):
        assert 100 <= dist.draw(rng) <= 5000


def test_normal_centres_mid_run():
    rng = make_rng(7)
    dist = TruncatedNormalDistribution(0, 10_000)
    draws = [dist.draw(rng) for _ in range(3000)]
    mean = sum(draws) / len(draws)
    assert 4000 < mean < 6000


def test_uniform_spreads():
    rng = make_rng(7)
    dist = UniformDistribution(0, 9)
    seen = {dist.draw(rng) for _ in range(500)}
    assert len(seen) == 10


def test_make_distribution_names():
    assert make_distribution("uniform", 0, 1).name == "uniform"
    assert make_distribution("normal", 0, 1).name == "normal"
    with pytest.raises(ValueError):
        make_distribution("weird", 0, 1)


def test_empty_window_rejected():
    with pytest.raises(ValueError):
        UniformDistribution(10, 5)


def test_sample_faults_deterministic_per_seed():
    dist = UniformDistribution(1, 1000)
    a = sample_faults(make_rng(3), "regfile", 512, dist, 20)
    b = sample_faults(make_rng(3), "regfile", 512, dist, 20)
    assert [(f.bit, f.cycle) for f in a] == [(f.bit, f.cycle) for f in b]
    c = sample_faults(make_rng(4), "regfile", 512, dist, 20)
    assert [(f.bit, f.cycle) for f in a] != [(f.bit, f.cycle) for f in c]


def test_fault_spec_repr_and_acceleration_flag():
    fault = FaultSpec("l1d.data", 5, 100)
    assert not fault.accelerated
    moved = FaultSpec("l1d.data", 5, 200, original_cycle=100)
    assert moved.accelerated
    assert "l1d.data" in repr(moved)


@given(st.integers(min_value=0, max_value=1024 * 8 - 1))
def test_decode_cache_data_bit_inverse(bit_index):
    cfg = CacheConfig(1024, 4, 32)
    set_i, way, offset, bit = decode_cache_data_bit(bit_index, cfg)
    flat = (((set_i * cfg.ways) + way) * cfg.line_size + offset) * 8 + bit
    assert flat == bit_index
    assert 0 <= set_i < cfg.sets
    assert 0 <= way < cfg.ways


def test_accelerate_moves_to_next_access():
    cfg = CacheConfig(1024, 4, 32)
    # bit in set 0, way 0, byte 0
    fault = FaultSpec("l1d.data", 0, 100)
    log = [(50, 0, 0, False, 0), (500, 0, 0, True, 0),
           (900, 0, 0, False, 0)]
    moved = accelerate_fault(fault, cfg, log, lead_cycles=32)
    assert moved.cycle == 500 - 32
    assert moved.original_cycle == 100


def test_accelerate_ignores_other_lines():
    cfg = CacheConfig(1024, 4, 32)
    fault = FaultSpec("l1d.data", 0, 100)
    log = [(500, 3, 1, False, 0)]
    moved = accelerate_fault(fault, cfg, log, lead_cycles=32)
    assert moved.cycle == 100 and not moved.accelerated


def test_accelerate_never_moves_backwards():
    cfg = CacheConfig(1024, 4, 32)
    fault = FaultSpec("l1d.data", 0, 490)
    log = [(500, 0, 0, False, 0)]
    moved = accelerate_fault(fault, cfg, log, lead_cycles=32)
    assert moved.cycle == 490  # max(fault, access - lead)


def test_accelerate_only_applies_to_data_array():
    cfg = CacheConfig(1024, 4, 32)
    fault = FaultSpec("regfile", 0, 100)
    assert accelerate_fault(fault, cfg, [(500, 0, 0, False, 0)]) is fault
