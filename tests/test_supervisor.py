"""The failure model: supervised workers, quarantine, chaos, shutdown.

``repro.injection.supervisor`` promises that execution failures --
worker crashes, hangs past the batch deadline, in-run exceptions --
change *where and when* a fault executes, never *what* it computes:

* a retried fault's record is bit-identical to an undisturbed run
  (the retry-determinism matrix below, across jobs x warm/cold x
  prune);
* a *poison* fault is bisected out of its batch and quarantined as an
  ``Incident`` after its retry budget, while every other fault
  classifies bit-identically (the campaign completes *degraded*);
* ``jobs=N`` never deadlocks on worker death -- even when every batch
  crashes once (``segv@*``);
* the first SIGINT/SIGTERM drains, the second hard-kills
  (:class:`GracefulShutdown`; the end-to-end signal tests against a
  real child process live in ``tests/test_store.py``).

All failures are injected deterministically through the ``ChaosSpec``
hook (``CampaignConfig(chaos=...)`` / ``REPRO_CHAOS``), which is itself
pinned here: grammar, one-shot vs persistent semantics, and its
exclusion from the store identity.
"""

import os
import signal

import pytest

from repro.errors import ExecutionError
from repro.injection import supervisor
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.supervisor import (
    ChaosError,
    ChaosSpec,
    GracefulShutdown,
    resolve_chaos,
    resolve_start_method,
)
from repro.scenario.presets import preset_path
from repro.scenario.runner import ScenarioRunner
from repro.scenario.spec import ScenarioSpec, load_mapping
from repro.sim import registry
from support import record_keys

SAMPLES = 8
SEED = 13
WINDOW = 800


def make_factory(workload="stringsearch"):
    return registry.create_frontend("arch", workload).sim_factory


def run_campaign(factory, workload="stringsearch", structure="regfile",
                 **config_kwargs):
    kwargs = {"samples": SAMPLES, "window": WINDOW, "seed": SEED}
    kwargs.update(config_kwargs)
    store = kwargs.pop("store", None)
    resume = kwargs.pop("resume", False)
    config = CampaignConfig(**kwargs)
    campaign = Campaign(factory, structure, config,
                        workload=workload, level="arch")
    return campaign.run(store=store, resume=resume)


# ----------------------------------------------------------------------
# ChaosSpec grammar and semantics
# ----------------------------------------------------------------------

def test_chaos_parse_round_trip():
    spec = ChaosSpec.parse("segv@3, hang*@7 ,raise@*,sleep@0")
    assert str(spec) == "segv@3,hang*@7,raise@*,sleep@0"
    assert spec.entries == (("segv", 3, False), ("hang", 7, True),
                            ("raise", None, False), ("sleep", 0, False))


def test_chaos_parse_none_and_blank():
    assert ChaosSpec.parse(None) is None
    assert ChaosSpec.parse("") is None
    assert ChaosSpec.parse(" , ") is None
    spec = ChaosSpec.parse("raise@1")
    assert ChaosSpec.parse(spec) is spec


@pytest.mark.parametrize("text, fragment", [
    ("segv", "expected kind@index"),
    ("segv@", "expected kind@index"),
    ("sgev@3", "did you mean 'segv'"),
    ("raise@x", "bad chaos index"),
    ("raise@-1", "must be >= 0"),
])
def test_chaos_parse_rejects(text, fragment):
    with pytest.raises(ExecutionError, match=".*"):
        try:
            ChaosSpec.parse(text)
        except ExecutionError as exc:
            assert fragment in str(exc)
            raise


def test_chaos_one_shot_fires_only_on_first_attempt():
    spec = ChaosSpec.parse("raise@2")
    spec.fire(1, 0)                      # wrong index: no-op
    with pytest.raises(ChaosError):
        spec.fire(2, 0)
    spec.fire(2, 1)                      # retry: transient is gone


def test_chaos_persistent_fires_on_every_attempt():
    spec = ChaosSpec.parse("raise*@2")
    for attempt in range(3):
        with pytest.raises(ChaosError):
            spec.fire(2, attempt)


def test_chaos_kill_kinds_ignored_in_process():
    # segv/hang with allow_kill=False must be a no-op -- firing them
    # in the supervising process would kill the test runner itself.
    ChaosSpec.parse("segv@0,hang@0").fire(0, 0, allow_kill=False)


def test_resolve_chaos_prefers_config_then_env(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "hang@1")
    assert str(resolve_chaos("segv@0")) == "segv@0"
    assert str(resolve_chaos(None)) == "hang@1"
    monkeypatch.delenv("REPRO_CHAOS")
    assert resolve_chaos(None) is None


def test_chaos_excluded_from_identity_but_described():
    plain = CampaignConfig(samples=4)
    chaotic = CampaignConfig(samples=4, chaos="segv@1")
    assert plain.identity() == chaotic.identity()
    assert "chaos=segv@1" in chaotic.describe()
    assert "chaos" not in plain.describe()


# ----------------------------------------------------------------------
# execution-knob validation (satellites: start_method, jobs/batch_size)
# ----------------------------------------------------------------------

def test_start_method_did_you_mean():
    with pytest.raises(ExecutionError, match="did you mean 'fork'"):
        resolve_start_method("frk")
    with pytest.raises(ExecutionError, match="choose one of"):
        resolve_start_method("not-a-method")


def test_config_validates_start_method_eagerly():
    with pytest.raises(ExecutionError, match="unknown start method"):
        CampaignConfig(samples=4, start_method="frk")


@pytest.mark.parametrize("kwargs", [
    {"jobs": 0}, {"jobs": -2}, {"jobs": 1.5}, {"jobs": True},
    {"batch_size": 0}, {"batch_size": -1}, {"batch_size": "4"},
    {"samples": -1}, {"samples": 2.5}, {"samples": True},
    {"retries": 0}, {"retries": -1}, {"retries": 1.5},
    {"batch_timeout": 0}, {"batch_timeout": -3}, {"batch_timeout": "5"},
])
def test_config_rejects_bad_execution_knobs(kwargs):
    with pytest.raises((ValueError, TypeError)):
        CampaignConfig(**kwargs)


# ----------------------------------------------------------------------
# retry determinism: chaos-retried fault == undisturbed run
# ----------------------------------------------------------------------

@pytest.fixture(scope="module", params=["off", "dead"],
                ids=lambda p: f"prune_{p}")
def undisturbed_reference(request):
    """Per prune mode: the factory plus the chaos-free warm serial
    reference records."""
    prune = request.param
    factory = make_factory()
    reference = run_campaign(factory, prune_mode=prune)
    assert reference.n == SAMPLES
    assert not reference.incidents and not reference.degraded
    return prune, factory, record_keys(reference)


@pytest.mark.parametrize("jobs", [1, 4])
@pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
def test_retry_determinism_matrix(undisturbed_reference, jobs, warm):
    """A transient failure at fault #2 -- an in-process exception at
    jobs=1, a worker segfault at jobs=4 -- is retried and the record
    sequence stays bit-identical to the undisturbed reference, across
    warm/cold start and prune off/dead."""
    prune, factory, reference = undisturbed_reference
    chaos = "raise@2" if jobs == 1 else "segv@2"
    result = run_campaign(factory, prune_mode=prune, warm_start=warm,
                          jobs=jobs, chaos=chaos)
    assert record_keys(result) == reference
    assert not result.incidents and not result.degraded
    if prune == "off":
        # Every fault simulates, so the chaos definitely fired and the
        # clean completion really did ride on a retry.
        assert result.retried_count >= 1
        assert result.summary()["retried"] >= 1


def test_no_deadlock_when_every_batch_crashes_once(undisturbed_reference):
    """segv@* kills a worker on the first attempt of *every* batch; the
    supervisor must respawn and finish rather than deadlock."""
    prune, factory, reference = undisturbed_reference
    result = run_campaign(factory, prune_mode=prune, jobs=4,
                          chaos="segv@*")
    assert record_keys(result) == reference
    assert not result.incidents
    assert result.retried_count >= 1


# ----------------------------------------------------------------------
# poison-fault quarantine
# ----------------------------------------------------------------------

@pytest.mark.parametrize("jobs, chaos, kind", [
    (1, "raise*@3", "exception"),
    (2, "raise*@3", "exception"),
    (2, "segv*@3", "crash"),
], ids=["serial-exception", "pooled-exception", "pooled-crash"])
def test_poison_fault_quarantined_neighbours_identical(jobs, chaos, kind):
    """A persistently failing fault #3 is quarantined after its retry
    budget; every other fault's record matches the undisturbed run
    (prune off so the poison index is guaranteed to execute)."""
    factory = make_factory()
    reference = run_campaign(factory, prune_mode="off")
    result = run_campaign(factory, prune_mode="off", jobs=jobs,
                          chaos=chaos, batch_size=4)
    assert [i.index for i in result.incidents] == [3]
    incident = result.incidents[0]
    assert incident.disposition == "error"
    assert incident.kind == kind
    assert incident.attempts >= 2
    assert incident.fault.bit == reference.records[3].fault.bit
    assert result.degraded
    assert result.n == SAMPLES - 1
    assert result.summary()["incidents"] == 1
    survivors = [k for i, k in enumerate(record_keys(reference))
                 if i != 3]
    assert record_keys(result) == survivors


def test_hung_batch_killed_and_retried():
    """A transient hang at fault #4 overruns a tight batch_timeout, the
    worker is killed, and the retry completes the campaign clean."""
    factory = make_factory()
    reference = run_campaign(factory, prune_mode="off")
    result = run_campaign(factory, prune_mode="off", jobs=2,
                          chaos="hang@4", batch_timeout=3.0)
    assert record_keys(result) == record_keys(reference)
    assert not result.incidents
    assert result.retried_count >= 1


# ----------------------------------------------------------------------
# graceful shutdown (unit; real child-process signals:tests/test_store.py)
# ----------------------------------------------------------------------

def test_graceful_shutdown_first_signal_drains_second_kills():
    before_int = signal.getsignal(signal.SIGINT)
    before_term = signal.getsignal(signal.SIGTERM)
    with GracefulShutdown() as shutdown:
        assert not shutdown.requested()
        os.kill(os.getpid(), signal.SIGTERM)
        assert shutdown.requested()
        assert shutdown.signame == "SIGTERM"
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGINT)
    assert signal.getsignal(signal.SIGINT) is before_int
    assert signal.getsignal(signal.SIGTERM) is before_term


def test_serial_drain_stops_between_faults():
    """run_serial_supervised finishes the in-flight fault, then stops:
    a drain leaves a prefix of records, never a torn one.  (The public
    drain contract is exercised end to end by the signal tests in
    tests/test_store.py; this pins the primitive directly.)"""
    flushed = []

    def stop():
        return len(flushed) >= 2

    class FakeRunner:
        def run_one(self, sim, spec):
            return f"record-{spec}"

    items = [(i, i) for i in range(4)]
    records, incidents, requeued, drained = \
        supervisor.run_serial_supervised(
            None, FakeRunner(), items,
            on_record=lambda i, r: flushed.append(i), stop=stop)
    assert drained
    assert sorted(records) == [0, 1] and flushed == [0, 1]
    assert not incidents and requeued == 0


# ----------------------------------------------------------------------
# acceptance: the fig1 grid at the arch tier under chaos
# ----------------------------------------------------------------------

def fig1_at_arch(samples=6):
    """The fig1 preset mapping retargeted onto the arch tier (prune off
    so the chaos indices are guaranteed to execute)."""
    mapping = load_mapping(preset_path("fig1"))
    mapping.pop("present", None)
    mapping["grid"] = [{"levels": ["arch"], "modes": ["pinout"]}]
    mapping.setdefault("targets", {})["workloads"] = ["stringsearch"]
    mapping.setdefault("faults", {})["samples"] = samples
    execution = mapping.setdefault("execution", {})
    execution["jobs"] = 2
    execution["prune"] = "off"
    return ScenarioSpec.from_mapping(mapping, source="fig1-at-arch")


def test_fig1_preset_completes_degraded_under_chaos(monkeypatch):
    """The acceptance pin: one transient worker crash plus one
    persistent poison fault; the campaign completes with exactly the
    poison quarantined and every surviving classification
    bit-identical to the undisturbed grid."""
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    clean = ScenarioRunner(fig1_at_arch()).run()
    monkeypatch.setenv("REPRO_CHAOS", "segv@1,raise*@3")
    chaotic = ScenarioRunner(fig1_at_arch()).run()
    assert len(clean) == len(chaotic) == 1
    for (_, reference), (_, result) in zip(clean, chaotic):
        assert result.degraded
        assert [i.index for i in result.incidents] == [3]
        survivors = [k for i, k in enumerate(record_keys(reference))
                     if i != 3]
        assert record_keys(result) == survivors
        assert result.retried_count >= 1
