"""Cross-level study orchestration, front-ends, tables and CLI."""

import pytest

from repro.core.figures import figure_series, render_figure
from repro.core.study import CrossLevelStudy, FIG3_WORKLOADS, StudyConfig
from repro.core.tables import (
    render_table1,
    render_table2,
    table1_rows,
    table2_rows,
)
from repro.injection import GeFIN, SafetyVerifier


def test_table1_matches_paper_exactly():
    rows = dict(table1_rows())
    assert rows == {
        "ISA / Core": "ARMv7 / Out-of-order",
        "Data cache": "32KB 4-way",
        "Instruction cache": "32KB 4-way",
        "Physical Register File": "56 registers",
        "Instruction queue": "32",
        "Reorder buffer": "40",
        "Fetch/Execute/Writeback width": "2/4/4",
    }


def test_render_table1_text():
    text = render_table1()
    assert "TABLE I" in text and "56 registers" in text


def test_table2_single_workload():
    rows, average = table2_rows(("stringsearch",), rtl_traced=False)
    assert len(rows) == 1
    row = rows[0]
    assert row["rtl_s_per_run"] > 0 and row["gefin_s_per_run"] > 0
    assert row["rtl_kcycles"] > row["gefin_kcycles"]  # in-order slower
    text = render_table2(rows, average)
    assert "TABLE II" in text and "stringsearch" in text


def test_gefin_front_end_defaults():
    front = GeFIN("sha")
    assert front.toolchain.name == "gnu"
    assert front.core_config.dcache_size == GeFIN.SCALED_CACHE_BYTES
    sim = front.sim_factory()
    assert sim.LEVEL == "uarch"


def test_safety_verifier_front_end_defaults():
    front = SafetyVerifier("sha")
    assert front.toolchain.name == "armcc"
    assert front.rtl_config.trace_signals is False
    sim = front.sim_factory()
    assert sim.LEVEL == "rtl"


def test_front_ends_unscaled_option():
    front = GeFIN("sha", scaled_caches=False)
    assert front.core_config.dcache_size == 32 * 1024


def test_gefin_mode_validation():
    front = GeFIN("sha")
    with pytest.raises(ValueError):
        front.make_config("bogus", 10)
    with pytest.raises(ValueError):
        SafetyVerifier("sha").campaign("regfile", mode="bogus", samples=1)


def test_gefin_golden_run():
    sim = GeFIN("stringsearch").golden_run()
    assert sim.exited and sim.exit_code == 0


def test_small_cross_level_study_fig1_subset():
    config = StudyConfig(workloads=("stringsearch",), samples=6, seed=9)
    study = CrossLevelStudy(config)
    fig1 = study.figure1()
    assert set(fig1) == {"GeFIN", "RTL", "GeFIN-no timer"}
    for series in fig1.values():
        assert set(series) == {"stringsearch"}
        result = series["stringsearch"]
        assert result.n == 6
    # results are cached: second call does not recompute
    assert study.figure1() is not fig1  # new dict...
    assert study.figure1()["GeFIN"]["stringsearch"] is \
        fig1["GeFIN"]["stringsearch"]  # ...same cached results


def test_figure_series_conversion():
    class _Stub:
        def __init__(self, v):
            self.unsafeness = v

    results = {"GeFIN": {"a": _Stub(0.1), "b": _Stub(0.2)},
               "RTL": {"a": _Stub(0.3), "b": _Stub(0.4)}}
    series, labels = figure_series(results)
    assert labels == ["a", "b"]
    assert series["RTL"] == [0.3, 0.4]
    chart = render_figure(results, "Fig. X")
    assert "Fig. X" in chart


def test_fig3_workloads_match_paper():
    assert FIG3_WORKLOADS == ("caes", "stringsearch", "susan_corners",
                              "susan_edges", "susan_smooth")


def test_study_same_binaries_option():
    config = StudyConfig(workloads=("sha",), samples=1,
                         same_binaries=True)
    verifier = config.safety_verifier("sha")
    assert verifier.toolchain.name == "gnu"


def test_study_frontend_dispatches_via_registry():
    config = StudyConfig(workloads=("sha",), samples=1)
    for level in ("arch", "uarch", "rtl"):
        front = config.frontend(level, "sha")
        assert front.LEVEL == level


def test_study_describe_identifies_parallel_run():
    config = StudyConfig(workloads=("sha",), samples=5, jobs=4,
                         batch_size=2)
    text = config.describe()
    assert "jobs=4" in text and "batch=2" in text and "seed=2017" in text
    assert "jobs" not in StudyConfig(workloads=("sha",)).describe()


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_table1(capsys):
    from repro.cli import main

    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "TABLE I" in out


def test_cli_golden(capsys):
    from repro.cli import main

    assert main(["golden", "stringsearch", "--level", "uarch"]) == 0
    out = capsys.readouterr().out
    assert "exited=True" in out


def test_cli_rejects_unknown_workload():
    from repro.cli import main

    with pytest.raises(SystemExit):
        main(["fig1", "--workloads", "bogus"])
