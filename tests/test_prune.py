"""Lifetime-aware fault pruning: the cross-tier exactness suite.

The acceptance contract (companion to test_warmstart_equivalence.py):
``prune_mode="dead"`` produces fault-for-fault identical
*classifications* to ``prune_mode="off"`` on every registered backend
-- pruning is a work-avoidance optimisation, never a result change.
Pruned records differ only in their accounting (``detail`` explains the
proof, ``sim_cycles`` is 0, ``pruned`` is set).

Plus unit coverage of the trace/pruner pair and the ``group`` mode
mechanics (opt-in, approximate windows -- only its bookkeeping is
pinned, not class equality).
"""

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.classify import FaultClass
from repro.injection.faults import FaultSpec
from repro.prune import FaultPruner, LifetimeTrace
from repro.prune.pruner import (
    DEAD_OVERWRITE_DETAIL,
    DEAD_SILENT_DETAIL,
    DEAD_UNREACHABLE_DETAIL,
)
from repro.sim import registry

WORKLOAD = "stringsearch"
SAMPLES = 24
SEED = 13
WINDOW = 800

ALL_LEVELS = registry.level_names()


def run_campaign(factory, level, store=None, resume=False,
                 **config_kwargs):
    config = CampaignConfig(samples=SAMPLES, window=WINDOW, seed=SEED,
                            **config_kwargs)
    campaign = Campaign(factory, "regfile", config,
                        workload=WORKLOAD, level=level)
    return campaign.run(store=store, resume=resume)


# ----------------------------------------------------------------------
# LifetimeTrace
# ----------------------------------------------------------------------

def make_trace():
    trace = LifetimeTrace()
    trace.register("regfile", 32)
    trace.register("cpsr", 1)
    return trace


def test_trace_next_event_orders_same_cycle_events():
    trace = make_trace()
    # read-then-write at cycle 10 (e.g. add r0, r0, r1): the read must
    # be what a fault injected at cycle 10 sees first.
    trace.record("regfile", 0, 10, False)
    trace.record("regfile", 0, 10, True)
    assert trace.next_event("regfile", 0, 10) == (10, False, 0)
    assert trace.next_event("regfile", 0, 11) is None
    # write-then-read at the same cycle keeps execution order too.
    trace.record("regfile", 1, 20, True)
    trace.record("regfile", 1, 20, False)
    assert trace.next_event("regfile", 1, 20) == (20, True, 0)


def test_trace_bisect_skips_earlier_events():
    trace = make_trace()
    for cycle, write in ((5, True), (9, False), (14, True)):
        trace.record("regfile", 3, cycle, write)
    assert trace.next_event("regfile", 3, 6) == (9, False, 1)
    assert trace.next_event("regfile", 3, 10) == (14, True, 2)
    assert trace.next_event("regfile", 3, 15) is None
    assert trace.next_event("regfile", 7, 0) is None  # untouched cell


def test_trace_cell_mapping_and_reachability():
    trace = LifetimeTrace()
    trace.register("regfile", 32, reachable_cells=range(16))
    assert trace.cell_of("regfile", 0) == 0
    assert trace.cell_of("regfile", 33) == 1
    assert trace.reachable("regfile", 15)
    assert not trace.reachable("regfile", 16)
    trace.register("cpsr", 1)
    assert trace.reachable("cpsr", 3)


def test_trace_snapshot_round_trip():
    trace = make_trace()
    trace.record("regfile", 2, 7, True)
    snap = trace.snapshot()
    trace.record("regfile", 2, 9, False)
    other = LifetimeTrace()
    other.restore(snap)
    assert other.events("regfile", 2) == ((7, True),)
    assert other.traces("cpsr")
    # The snapshot is a deep copy: mutating the original leaves it alone.
    assert trace.events("regfile", 2) == ((7, True), (9, False))


# ----------------------------------------------------------------------
# FaultPruner unit behavior (synthetic traces)
# ----------------------------------------------------------------------

def fault(bit, cycle, structure="regfile"):
    return FaultSpec(structure, bit, cycle)


def test_pruner_dead_interval_is_masked():
    trace = make_trace()
    trace.record("regfile", 1, 50, True)   # overwrite, no read before
    pruner = FaultPruner(trace, events_at_stop_executed=True,
                         observation="pinout")
    assert pruner.classify(fault(32, 10)) == (
        FaultClass.MASKED, DEAD_OVERWRITE_DETAIL)


def test_pruner_read_first_is_live():
    trace = make_trace()
    trace.record("regfile", 1, 50, False)
    trace.record("regfile", 1, 51, True)
    pruner = FaultPruner(trace, True, "pinout")
    assert pruner.classify(fault(32, 10)) is None
    interval = pruner.group_interval(fault(32, 10))
    assert interval is not None and interval.read_cycle == 50
    assert pruner.representative_cycle(interval) == 49


def test_pruner_stop_convention_shifts_the_threshold():
    trace = make_trace()
    trace.record("regfile", 0, 10, True)
    # Hardware models: events stamped with the stop cycle already ran,
    # so a fault at cycle 10 sees nothing -> never-read -> masked.
    hw = FaultPruner(trace, events_at_stop_executed=True,
                     observation="pinout")
    assert hw.classify(fault(0, 10)) == (
        FaultClass.MASKED, DEAD_SILENT_DETAIL)
    # The arch emulator pauses *before* the work of the stop cycle:
    # the write at 10 is still ahead -> overwritten.
    arch = FaultPruner(trace, events_at_stop_executed=False,
                       observation="pinout")
    assert arch.classify(fault(0, 10)) == (
        FaultClass.MASKED, DEAD_OVERWRITE_DETAIL)


def test_pruner_never_read_simulates_under_arch_observation():
    trace = make_trace()
    pruner = FaultPruner(trace, True, "arch")
    # The surviving flip would show up as latent state at the HVF
    # layer boundary: not prunable there.
    assert pruner.classify(fault(32, 10)) is None
    assert FaultPruner(trace, True, "software").classify(
        fault(32, 10)) == (FaultClass.MASKED, DEAD_SILENT_DETAIL)


def test_pruner_unreachable_cell_is_masked_in_every_mode():
    trace = LifetimeTrace()
    trace.register("regfile", 32, reachable_cells=range(16))
    for observation in ("pinout", "software", "arch"):
        pruner = FaultPruner(trace, True, observation)
        assert pruner.classify(fault(20 * 32, 10)) == (
            FaultClass.MASKED, DEAD_UNREACHABLE_DETAIL)


def test_pruner_untraced_structure_simulates():
    trace = make_trace()
    pruner = FaultPruner(trace, True, "pinout")
    assert pruner.classify(fault(5, 10, structure="l1d.data")) is None


def test_pruner_event_horizon_bounds_pipelined_verdicts():
    trace = make_trace()
    trace.record("regfile", 1, 5000, True)  # kill-write, next segment
    segments = ([0, 4100], [0, 4000])       # boundary cycles / stops
    pruner = FaultPruner(trace, True, "pinout", segments=segments)
    # Injection in segment 0: the write at 5000 lies beyond the shared
    # horizon (stop 4000) -> simulate.
    assert pruner.classify(fault(32, 100)) is None
    # "Never read again" is a whole-run claim: not provable either.
    assert pruner.classify(fault(64, 100)) is None
    # Injection inside the drain window (stop 4000 < cycle <= 4100):
    # nothing past the stop is shared -> simulate.
    assert pruner.classify(fault(32, 4050)) is None
    # The final segment free-runs to program exit: full authority.
    assert pruner.classify(fault(32, 4200)) == (
        FaultClass.MASKED, DEAD_OVERWRITE_DETAIL)
    assert pruner.classify(fault(64, 4200)) == (
        FaultClass.MASKED, DEAD_SILENT_DETAIL)
    # Unlimited horizon (drain-free backend): the same early fault is
    # provably overwritten.
    assert FaultPruner(trace, True, "pinout").classify(
        fault(32, 100)) == (FaultClass.MASKED, DEAD_OVERWRITE_DETAIL)


# ----------------------------------------------------------------------
# the acceptance contract: dead == off, fault for fault, on every tier
# ----------------------------------------------------------------------

@pytest.fixture(scope="module", params=ALL_LEVELS)
def level_results(request):
    level = request.param
    factory = registry.create_frontend(level, WORKLOAD).sim_factory
    off = run_campaign(factory, level, prune_mode="off")
    dead = run_campaign(factory, level, prune_mode="dead")
    return level, factory, off, dead


def test_dead_mode_classifications_identical(level_results):
    level, _, off, dead = level_results
    assert [(r.fault.bit, r.fault.cycle) for r in off.records] == \
        [(r.fault.bit, r.fault.cycle) for r in dead.records]
    assert [r.fclass for r in off.records] == \
        [r.fclass for r in dead.records], (
            f"{level}: pruning changed a classification"
    )


def test_dead_mode_actually_prunes(level_results):
    level, _, off, dead = level_results
    assert off.pruned_count == 0
    assert off.simulated_count == SAMPLES
    assert dead.pruned_count > 0, f"{level}: pruning never fired"
    assert dead.simulated_count + dead.pruned_count == SAMPLES
    assert all(r.sim_cycles == 0 and r.replay_cycles == 0
               for r in dead.records if r.pruned)
    assert all(r.pruned == "dead" for r in dead.records if r.pruned)
    # Pruned work is visible in the deterministic cycle accounting too.
    assert dead.simulated_cycles < off.simulated_cycles


def test_dead_mode_independent_of_execution_strategy(level_results):
    """Pruning composes with the other accelerators: jobs/warm-start
    permutations of a pruned campaign stay bit-identical."""
    from support import record_keys

    level, factory, _, dead = level_results
    for kwargs in ({"jobs": 2}, {"warm_start": False},
                   {"checkpoint_bound": 2}):
        other = run_campaign(factory, level, prune_mode="dead", **kwargs)
        assert record_keys(other) == record_keys(dead), (level, kwargs)


def test_summary_reports_prune_counts(level_results):
    _, _, off, dead = level_results
    assert off.summary()["pruned"] == 0
    summary = dead.summary()
    assert summary["pruned"] == dead.pruned_count
    assert summary["simulated"] == dead.simulated_count


# ----------------------------------------------------------------------
# group mode (opt-in): bookkeeping, not class equality
# ----------------------------------------------------------------------

def test_group_mode_mechanics():
    factory = registry.create_frontend("arch", WORKLOAD).sim_factory
    grouped = run_campaign(factory, "arch", prune_mode="group")
    dead = run_campaign(factory, "arch", prune_mode="dead")
    assert grouped.n == SAMPLES
    # Grouping can only reduce the number of simulated runs further.
    assert grouped.simulated_count <= dead.simulated_count
    members = [r for r in grouped.records if r.pruned == "group"]
    for member in members:
        # The member inherited a verdict reached by simulating its
        # representative at the shared first-read instant.
        assert member.sim_cycles == 0
        reps = [r for r in grouped.records
                if r.simulated and r.fault.bit == member.fault.bit
                and r.fclass is member.fclass]
        assert reps, "group member without a simulated representative"
    # Every fault still carries exactly one record, so the AVF math
    # (unsafe / n) stays consistently weighted.
    assert grouped.simulated_count + grouped.pruned_count == SAMPLES


def test_group_representative_moves_to_first_read():
    factory = registry.create_frontend("arch", WORKLOAD).sim_factory
    grouped = run_campaign(factory, "arch", prune_mode="group")
    moved = [r for r in grouped.records
             if r.simulated and r.fault.accelerated]
    for r in moved:
        assert r.fault.cycle >= r.fault.original_cycle


# ----------------------------------------------------------------------
# config / CLI / store plumbing
# ----------------------------------------------------------------------

def test_config_validates_and_identifies_prune_mode():
    with pytest.raises(ValueError):
        CampaignConfig(prune_mode="telepathy")
    assert CampaignConfig().prune_mode == "dead"
    assert CampaignConfig().identity()["prune_mode"] == "dead"
    assert "prune=group" in CampaignConfig(prune_mode="group").describe()
    assert "prune" not in CampaignConfig().describe()


def test_progress_counts_only_simulated_faults():
    factory = registry.create_frontend("arch", WORKLOAD).sim_factory
    seen = []
    config = CampaignConfig(samples=SAMPLES, window=WINDOW, seed=SEED)
    result = Campaign(factory, "regfile", config, workload=WORKLOAD,
                      level="arch").run(
        progress=lambda done, total, rec: seen.append((done, total)))
    assert result.pruned_count > 0
    assert all(total == result.simulated_count for _, total in seen)
    assert len(seen) == result.simulated_count


def test_store_round_trip_preserves_pruned_flag(tmp_path):
    from repro.injection.store import CampaignStore
    from support import record_keys

    factory = registry.create_frontend("arch", WORKLOAD).sim_factory
    store = CampaignStore(tmp_path / "s")
    first = run_campaign(factory, "arch", prune_mode="dead", store=store)
    assert first.pruned_count > 0
    reloaded = CampaignStore(tmp_path / "s").records()
    assert sum(1 for r in reloaded.values() if r.pruned == "dead") == \
        first.pruned_count
    # A full resume rebuilds the identical result without simulating.
    resumed = run_campaign(factory, "arch", prune_mode="dead",
                           store=CampaignStore(tmp_path / "s"),
                           resume=True)
    assert resumed.resumed == SAMPLES
    assert record_keys(resumed) == record_keys(first)
    assert resumed.pruned_count == first.pruned_count


def test_store_rejects_prune_mode_mismatch(tmp_path):
    from repro.injection.store import CampaignStore, StoreMismatchError

    factory = registry.create_frontend("arch", WORKLOAD).sim_factory
    run_campaign(factory, "arch", prune_mode="dead",
                 store=CampaignStore(tmp_path / "s"))
    with pytest.raises(StoreMismatchError):
        run_campaign(factory, "arch", prune_mode="off",
                     store=CampaignStore(tmp_path / "s"), resume=True)


def test_group_mode_store_resume_consistent(tmp_path):
    from repro.injection.store import CampaignStore
    from support import record_keys

    factory = registry.create_frontend("arch", WORKLOAD).sim_factory
    store = CampaignStore(tmp_path / "g")
    first = run_campaign(factory, "arch", prune_mode="group", store=store)
    resumed = run_campaign(factory, "arch", prune_mode="group",
                           store=CampaignStore(tmp_path / "g"),
                           resume=True)
    assert resumed.resumed == SAMPLES
    assert record_keys(resumed) == record_keys(first)


def test_records_csv_carries_pruned_column():
    from repro.analysis.export import records_to_csv, results_to_csv

    factory = registry.create_frontend("arch", WORKLOAD).sim_factory
    result = run_campaign(factory, "arch", prune_mode="dead")
    per_fault = records_to_csv(result)
    assert "pruned" in per_fault.splitlines()[0]
    assert ",dead" in per_fault
    summary_csv = results_to_csv([result])
    header = summary_csv.splitlines()[0].split(",")
    row = summary_csv.splitlines()[1].split(",")
    assert row[header.index("pruned")] == str(result.pruned_count)
    assert row[header.index("simulated")] == str(result.simulated_count)
