"""CSV export round-trips the campaign summaries."""

import csv
import io

from repro.analysis.export import records_to_csv, results_to_csv
from repro.injection.campaign import Campaign, CampaignConfig
from repro.isa import assemble
from repro.uarch import CortexA9Config, MicroArchSim

SRC = """
    .text
_start:
    movw r4, #0
loop:
    add  r4, r4, #1
    cmp  r4, #50
    blt  loop
    mov  r0, r4
    svc  #2
    movw r0, #0
    svc  #0
"""


def _result():
    program = assemble(SRC, name="counter")
    config = CortexA9Config(dcache_size=1024, icache_size=1024)
    campaign = Campaign(
        lambda: MicroArchSim(program, config), "regfile",
        CampaignConfig(samples=8, window=300, seed=1),
        workload="counter", level="uarch",
    )
    return campaign.run()


def test_results_csv_parses_back():
    result = _result()
    text = results_to_csv([result])
    rows = list(csv.DictReader(io.StringIO(text)))
    assert len(rows) == 1
    row = rows[0]
    assert row["workload"] == "counter"
    assert int(row["n"]) == 8
    assert 0.0 <= float(row["unsafeness"]) <= 1.0
    assert float(row["ci95_low"]) <= float(row["ci95_high"])


def test_records_csv_one_row_per_fault():
    result = _result()
    text = records_to_csv(result)
    rows = list(csv.reader(io.StringIO(text)))
    assert len(rows) == 1 + 8
    header = rows[0]
    assert "class" in header and "cycle" in header
