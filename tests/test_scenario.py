"""The declarative scenario layer: schema validation, sweep expansion,
ResultSet queries, golden sharing, preset equivalence and the CLI."""

import dataclasses
import inspect

import pytest

from repro.injection import GeFIN, SafetyVerifier
from repro.scenario import (
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    load_preset,
    preset_names,
)
from repro.scenario.spec import apply_overrides


def make_spec(**sections):
    base = {
        "targets": {"levels": ["arch"], "workloads": ["stringsearch"],
                    "structures": ["regfile"], "modes": ["pinout"]},
        "faults": {"samples": 4},
    }
    base.update(sections)
    return ScenarioSpec.from_mapping(base)


# ----------------------------------------------------------------------
# schema validation: every error names the offending field
# ----------------------------------------------------------------------

def test_unknown_section_rejected():
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.from_mapping({"fautls": {}})
    assert err.value.field == "scenario.fautls"
    assert "faults" in str(err.value)  # typo suggestion


def test_unknown_key_suggests_correction():
    with pytest.raises(ScenarioError) as err:
        make_spec(faults={"sampels": 4})
    assert err.value.field == "faults.sampels"
    assert "samples" in str(err.value)


def test_bad_level_name():
    with pytest.raises(ScenarioError) as err:
        make_spec(targets={"levels": ["rlt"]})
    assert err.value.field == "targets.levels" \
        or "rlt" in str(err.value)
    assert "rtl" in str(err.value)


def test_bad_workload_name():
    with pytest.raises(ScenarioError) as err:
        make_spec(targets={"levels": ["arch"], "workloads": ["shaa"]})
    assert "sha" in str(err.value)


def test_mode_invalid_for_level():
    with pytest.raises(ScenarioError) as err:
        make_spec(targets={"levels": ["rtl"],
                           "workloads": ["stringsearch"],
                           "modes": ["avf"]})
    assert "avf" in str(err.value) and "rtl" in str(err.value)
    assert "sop" in str(err.value)  # the hint lists valid modes


def test_structure_invalid_for_level():
    with pytest.raises(ScenarioError) as err:
        make_spec(targets={"levels": ["arch"],
                           "workloads": ["stringsearch"],
                           "structures": ["l1d.data"]})
    assert "l1d.data" in str(err.value) and "arch" in str(err.value)


def test_conflicting_sweep_axis_scalar():
    with pytest.raises(ScenarioError) as err:
        make_spec(execution={"prune": "off"},
                  sweep={"prune": ["off", "dead"]})
    assert err.value.field == "sweep.prune"
    assert "execution.prune" in str(err.value)


def test_conflicting_sweep_axis_target():
    with pytest.raises(ScenarioError) as err:
        make_spec(sweep={"levels": ["arch", "uarch"]})
    assert err.value.field == "sweep.level"
    assert "targets.levels" in str(err.value)


def test_bad_window_and_distribution_values():
    with pytest.raises(ScenarioError) as err:
        make_spec(faults={"window": "sometimes"})
    assert err.value.field == "faults.window"
    with pytest.raises(ScenarioError) as err:
        make_spec(faults={"distribution": "gaussian"})
    assert err.value.field == "faults.distribution"
    assert "normal" in str(err.value)


def test_resume_requires_store():
    with pytest.raises(ScenarioError) as err:
        make_spec(execution={"resume": True})
    assert err.value.field == "execution.resume"


def test_present_block_must_be_renderable():
    base = {"targets": {"levels": ["arch"],
                        "workloads": ["stringsearch"],
                        "structures": ["regfile"], "modes": ["pinout"]},
            "faults": {"samples": 2}}
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.from_mapping({
            **base, "present": {"kind": "figure", "title": "F"}})
    assert err.value.field == "present.series"
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.from_mapping({**base, "present": {
            "kind": "figure", "title": "F",
            "series": [{"name": "S", "level": "rtl",
                        "mode": "pinout"}]}})
    assert err.value.field == "present.series[0]"
    assert "matches no grid cell" in str(err.value)
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.from_mapping({
            **base, "sweep": {"prune": ["off", "dead"]},
            "present": {"kind": "figure", "title": "F", "series": [
                {"name": "S", "level": "arch", "mode": "pinout"}]}})
    assert "swept grid" in str(err.value)
    # typo'd keys inside comparison filter tables fail up front
    headline_base = {
        "targets": {"levels": ["uarch", "rtl"],
                    "workloads": ["stringsearch"],
                    "structures": ["regfile"], "modes": ["pinout"]},
        "faults": {"samples": 2}}
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.from_mapping({**headline_base, "present": {
            "kind": "headline",
            "series": [{"name": "S", "level": "uarch",
                        "mode": "pinout"}],
            "comparisons": [{
                "name": "rf", "structure": "regfile",
                "gefin": {"level": "uarch", "mod": "pinout"},
                "rtl": {"level": "rtl", "mode": "pinout"}}]}})
    assert err.value.field == "present.comparisons[0].gefin.mod"
    # figure series must chart one workload set
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.from_mapping({
            "targets": {"structures": ["regfile"], "modes": ["pinout"]},
            "grid": [
                {"levels": ["uarch"], "workloads": ["sha", "fft"]},
                {"levels": ["rtl"], "workloads": ["sha"]},
            ],
            "faults": {"samples": 2},
            "present": {"kind": "figure", "title": "F", "series": [
                {"name": "A", "level": "uarch", "mode": "pinout"},
                {"name": "B", "level": "rtl", "mode": "pinout"}]}})
    assert "workload set" in str(err.value)


# ----------------------------------------------------------------------
# --set overrides
# ----------------------------------------------------------------------

def test_set_override_applies_scalars_and_lists():
    mapping = {"targets": {"levels": ["arch"],
                           "workloads": ["stringsearch"]}}
    apply_overrides(mapping, ["faults.samples=10",
                              "sweep.prune=off,dead",
                              "execution.store=runs/x"])
    spec = ScenarioSpec.from_mapping(mapping)
    assert spec.samples == 10
    assert dict(spec.sweep)["prune"] == ("off", "dead")
    assert spec.store == "runs/x"


def test_set_override_bad_value_names_field():
    mapping = {"targets": {"levels": ["arch"],
                           "workloads": ["stringsearch"]}}
    apply_overrides(mapping, ["faults.samples=lots"])
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.from_mapping(mapping)
    assert err.value.field == "faults.samples"


def test_set_override_malformed_pair():
    with pytest.raises(ScenarioError) as err:
        apply_overrides({}, ["faults.samples"])
    assert "--set" in err.value.field
    with pytest.raises(ScenarioError) as err:
        apply_overrides({}, ["samples=4"])
    assert "samples" in err.value.field


def test_store_paths_are_never_toml_coerced():
    # a directory literally named "2024" (or containing a comma) must
    # survive the CLI flag -> override -> spec round trip verbatim
    from repro.cli import _legacy_overrides

    class Args:
        jobs, prune, seed = 2, "dead", 2017
        workloads, samples, resume = "", None, False
        lanes = None
        store = "2024"

    mapping = {"targets": {"levels": ["arch"],
                           "workloads": ["stringsearch"]}}
    apply_overrides(mapping, _legacy_overrides(Args()))
    spec = ScenarioSpec.from_mapping(mapping)
    assert spec.store == "2024"


def test_single_value_sweep_override():
    mapping = {"targets": {"levels": ["arch"],
                           "workloads": ["stringsearch"]}}
    apply_overrides(mapping, ["sweep.prune=off", "faults.samples=2"])
    spec = ScenarioSpec.from_mapping(mapping)
    assert dict(spec.sweep)["prune"] == ("off",)
    assert [c.prune for c in spec.cells()] == ["off"]


def test_set_override_unknown_key_is_actionable():
    mapping = {"targets": {"levels": ["arch"],
                           "workloads": ["stringsearch"]}}
    apply_overrides(mapping, ["faults.smaples=10"])
    with pytest.raises(ScenarioError) as err:
        ScenarioSpec.from_mapping(mapping)
    assert err.value.field == "faults.smaples"


# ----------------------------------------------------------------------
# grid expansion
# ----------------------------------------------------------------------

def test_sweep_expansion_order_and_coordinates():
    spec = make_spec(
        targets={"levels": ["arch", "uarch"],
                 "workloads": ["stringsearch"]},
        sweep={"prune": ["off", "dead"]},
    )
    cells = spec.cells()
    assert [(c.level, c.prune) for c in cells] == [
        ("arch", "off"), ("uarch", "off"),
        ("arch", "dead"), ("uarch", "dead"),
    ]
    assert [c.index for c in cells] == [0, 1, 2, 3]
    assert cells[0].axes == (("prune", "off"),)
    assert cells[0].coordinate("prune") == "off"
    assert cells[0].label().endswith("[prune=off]")
    # scalar sweep coordinates reach the store directory name; the
    # sweep-free part keeps the historical naming
    assert cells[0].store_name() == \
        "arch-stringsearch-regfile-pinout-prune=off"


def test_grid_blocks_union_and_inheritance():
    spec = ScenarioSpec.from_mapping({
        "targets": {"workloads": ["stringsearch"],
                    "structures": ["regfile"]},
        "grid": [
            {"levels": ["uarch"], "modes": ["pinout", "pinout-notimer"]},
            {"levels": ["rtl"], "modes": ["pinout"]},
        ],
        "faults": {"samples": 2},
    })
    combos = [(c.level, c.mode) for c in spec.cells()]
    assert combos == [("uarch", "pinout"), ("uarch", "pinout-notimer"),
                      ("rtl", "pinout")]


def test_seed_policy_shared_vs_per_cell():
    shared = make_spec(targets={"levels": ["arch", "uarch"],
                                "workloads": ["stringsearch"]})
    assert {c.seed for c in shared.cells()} == {2017}
    derived = make_spec(
        targets={"levels": ["arch", "uarch"],
                 "workloads": ["stringsearch"]},
        faults={"samples": 4, "seed_policy": "per-cell"},
    )
    seeds = [c.seed for c in derived.cells()]
    assert len(set(seeds)) == 2  # distinct per cell...
    assert seeds == [c.seed for c in derived.cells()]  # ...deterministic
    # execution-only sweep axes never perturb a per-cell seed: the
    # prune=off/dead cells of one target must sample identical faults
    swept = make_spec(
        targets={"levels": ["arch"], "workloads": ["stringsearch"]},
        faults={"samples": 4, "seed_policy": "per-cell"},
        sweep={"prune": ["off", "dead"]},
    )
    by_prune = {c.prune: c.seed for c in swept.cells()}
    assert by_prune["off"] == by_prune["dead"]


def test_jobs_rejects_booleans():
    with pytest.raises(ScenarioError) as err:
        make_spec(execution={"jobs": False})
    assert err.value.field == "execution.jobs"


def test_store_format_validated():
    spec = make_spec(execution={"store": "out/stores",
                                "store_format": "jsonl"})
    assert spec.store_format == "jsonl"
    with pytest.raises(ScenarioError) as err:
        make_spec(execution={"store": "out/stores",
                             "store_format": "msgpack"})
    assert err.value.field == "execution.store_format"
    with pytest.raises(ScenarioError) as err:
        make_spec(execution={"store_format": "binary"})
    assert err.value.field == "execution.store_format"


def test_zero_cell_grid_is_an_error():
    empty = ScenarioSpec(name="empty", blocks=(), workloads=("sha",))
    empty.blocks = (dataclasses.replace(empty.blocks[0], levels=()),)
    with pytest.raises(ScenarioError):
        ScenarioRunner(empty).run()


# ----------------------------------------------------------------------
# runner + ResultSet (arch tier: fast)
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def sweep_results():
    spec = ScenarioSpec.from_mapping({
        "targets": {"levels": ["arch"], "workloads": ["stringsearch"],
                    "structures": ["regfile"], "modes": ["pinout"]},
        "faults": {"samples": 6},
        "sweep": {"prune": ["off", "dead"]},
    })
    runner = ScenarioRunner(spec)
    return runner, runner.run()


def test_resultset_where_one_group_by(sweep_results):
    _, results = sweep_results
    assert len(results) == 2
    off = results.where(prune="off")
    assert len(off) == 1 and off.one().n == 6
    assert results.where(level="arch", prune="dead").one().n == 6
    with pytest.raises(LookupError):
        results.one()
    with pytest.raises(KeyError):
        results.where(flavour="spicy")
    groups = results.group_by("prune")
    assert list(groups) == [("off",), ("dead",)]
    assert all(len(g) == 1 for g in groups.values())


def test_prune_sweep_classifications_agree(sweep_results):
    _, results = sweep_results
    off = results.where(prune="off").one()
    dead = results.where(prune="dead").one()
    assert [r.fclass for r in off.records] == \
        [r.fclass for r in dead.records]
    assert dead.pruned_count > 0  # the sweep actually changed the knob


def test_resultset_export_surfaces(sweep_results):
    _, results = sweep_results
    csv_text = results.to_csv()
    header, first = csv_text.splitlines()[:2]
    assert header.startswith("cell,mode,sweep,")
    assert first.startswith(
        "arch/stringsearch/regfile/pinout[prune=off],pinout,prune=off,")
    table = results.table(title="T")
    assert "T" in table and "prune=dead" in table
    assert "stringsearch" in results.campaign_table()
    assert "speedup" in results.speedup_table()
    assert 0.0 <= results.mean_unsafeness() <= 1.0
    assert results.total_simulated() >= 6  # prune=off simulated all


def test_series_rejects_ambiguous_cells(sweep_results):
    """Regression: an unpinned sweep axis used to chart whichever cell
    matched first (``setdefault``), silently dropping the rest."""
    _, results = sweep_results
    definition = [{"name": "S", "level": "arch", "mode": "pinout"}]
    with pytest.raises(ScenarioError) as err:
        results.series(definition)
    assert err.value.field == "present.series"
    # The error names every colliding cell, so the fix is findable.
    assert "prune=off" in str(err.value)
    assert "prune=dead" in str(err.value)
    # Narrowing the set (or pinning the axis) resolves it.
    shaped = results.where(prune="off").series(definition)
    assert shaped["S"]["stringsearch"].n == 6


def test_golden_pool_drained_after_run(sweep_results):
    runner, results = sweep_results
    # run() evicts each (level, workload)'s pooled goldens as soon as
    # its last cell completes, so peak memory never scales with grid
    # size and nothing lingers afterwards.
    assert len(runner._golden_pool) == 0


def test_golden_sharing_is_bit_identical(monkeypatch):
    # Two modes sharing one golden (pinout / pinout-notimer at arch)
    # against fresh unshared campaigns.
    from repro.injection.campaign import Campaign

    captures = []
    real_golden_phase = Campaign._golden_phase
    monkeypatch.setattr(
        Campaign, "_golden_phase",
        lambda self, sim, result: captures.append(self.workload)
        or real_golden_phase(self, sim, result))
    spec = ScenarioSpec.from_mapping({
        "targets": {"levels": ["arch"], "workloads": ["stringsearch"],
                    "structures": ["regfile"],
                    "modes": ["pinout", "pinout-notimer"]},
        "faults": {"samples": 6},
    })
    shared = ScenarioRunner(spec).run()
    assert captures == ["stringsearch"]  # one capture for two cells
    # only the capturing cell pays golden time; the adopter's serial
    # estimate covers just its own faulty runs (speedup ~1 at jobs=1)
    paid = [r.golden_seconds > 0 for r in shared.results]
    assert sorted(paid) == [False, True]
    from repro.injection import ArchEmu

    front = ArchEmu("stringsearch")
    for mode in ("pinout", "pinout-notimer"):
        alone = front.campaign("regfile", mode=mode, samples=6)
        pooled = shared.where(mode=mode).one()
        assert [(r.fault.bit, r.fault.cycle, r.fclass)
                for r in alone.records] == \
            [(r.fault.bit, r.fault.cycle, r.fclass)
             for r in pooled.records]


def test_golden_only_cells_measure_throughput():
    spec = ScenarioSpec.from_mapping({
        "targets": {"levels": ["arch"], "workloads": ["stringsearch"]},
        "faults": {"samples": 0},
    })
    results = ScenarioRunner(spec).run()
    result = results.one()
    assert result.n == 0
    assert result.golden_cycles > 0 and result.golden_seconds > 0
    # zero-population results render everywhere (summary guards the
    # Leveugle sample-size math)
    assert result.summary()["recommended_samples"] == 0
    assert "stringsearch" in results.table()
    assert results.to_csv().count("\n") == 2


def test_where_rejects_method_names():
    spec = make_spec()
    cell = spec.cells()[0]
    with pytest.raises(KeyError):
        cell.coordinate("label")
    assert cell.coordinate("level") == "arch"


# ----------------------------------------------------------------------
# presets
# ----------------------------------------------------------------------

def test_presets_all_load_and_validate():
    names = preset_names()
    assert {"fig1", "fig2", "fig3", "headline", "table2",
            "sweep-smoke"} <= set(names)
    for name in names:
        spec = load_preset(name)
        assert spec.cells() or spec.present.get("kind") == "table2"


def test_fig1_preset_matches_legacy_grid():
    spec = load_preset("fig1")
    combos = {(c.level, c.structure, c.mode) for c in spec.cells()}
    assert combos == {("uarch", "regfile", "pinout"),
                      ("uarch", "regfile", "pinout-notimer"),
                      ("rtl", "regfile", "pinout")}
    assert [s["name"] for s in spec.present["series"]] == \
        ["GeFIN", "RTL", "GeFIN-no timer"]


def test_fig3_preset_pins_the_paper_workloads():
    from repro.core.study import FIG3_WORKLOADS

    spec = load_preset("fig3", overrides=["targets.workloads=sha"])
    # the blocks pin their workloads, so the override cannot reach them
    assert {c.workload for c in spec.cells()} == set(FIG3_WORKLOADS)


@pytest.mark.parametrize("jobs", [1, 2])
def test_fig1_preset_equivalent_to_legacy_path(jobs, capsys):
    """The acceptance pin: the preset route produces per-fault classes
    and chart text bit-identical to the pre-refactor code path (the
    direct front-end campaigns the old CrossLevelStudy issued)."""
    from repro.cli import main
    from repro.core.figures import figure1_chart

    samples, seed = 5, 2017
    legacy = {"GeFIN": {}, "RTL": {}, "GeFIN-no timer": {}}
    legacy_series = {
        "GeFIN": (GeFIN, "pinout"),
        "RTL": (SafetyVerifier, "pinout"),
        "GeFIN-no timer": (GeFIN, "pinout-notimer"),
    }
    for name, (frontend, mode) in legacy_series.items():
        legacy[name]["stringsearch"] = frontend("stringsearch").campaign(
            "regfile", mode=mode, samples=samples, seed=seed, jobs=jobs)
    assert main(["fig1", "--workloads", "stringsearch",
                 "--samples", str(samples), "--jobs", str(jobs)]) == 0
    out = capsys.readouterr().out
    assert out.rstrip("\n") == figure1_chart(legacy).rstrip("\n")

    spec = load_preset("fig1", overrides=[
        "targets.workloads=stringsearch", f"faults.samples={samples}",
        f"execution.jobs={jobs}"])
    results = ScenarioRunner(spec).run()
    for name, (frontend, mode) in legacy_series.items():
        level = "rtl" if frontend is SafetyVerifier else "uarch"
        preset_result = results.where(level=level, mode=mode).one()
        expected = legacy[name]["stringsearch"]
        assert [(r.fault.structure, r.fault.bit, r.fault.original_cycle,
                 r.fclass) for r in preset_result.records] == \
            [(r.fault.structure, r.fault.bit, r.fault.original_cycle,
              r.fclass) for r in expected.records]


# ----------------------------------------------------------------------
# describe drift guard: one shared knob table
# ----------------------------------------------------------------------

def test_every_config_knob_is_in_the_header_table():
    from repro.core.study import StudyConfig
    from repro.injection.campaign import CampaignConfig
    from repro.scenario.knobs import (
        CAMPAIGN_HEADER_EXCLUDED,
        KNOB_ORDER,
        PARAM_ALIASES,
        STUDY_HEADER_EXCLUDED,
    )

    def check(config_cls, excluded, head_params):
        params = set(inspect.signature(config_cls.__init__).parameters)
        params -= {"self"} | set(head_params) | set(excluded)
        missing = {p for p in params
                   if PARAM_ALIASES.get(p, p) not in KNOB_ORDER}
        assert not missing, (
            f"{config_cls.__name__} knobs absent from the shared "
            f"header table (repro.scenario.knobs): {sorted(missing)}"
        )

    check(CampaignConfig, CAMPAIGN_HEADER_EXCLUDED, {"samples"})
    check(StudyConfig, STUDY_HEADER_EXCLUDED, {"samples", "seed"})


def test_describe_headers_agree_on_shared_knobs():
    from repro.core.study import StudyConfig
    from repro.injection.campaign import CampaignConfig

    study = StudyConfig(workloads=("sha",), samples=5, jobs=4,
                        batch_size=2, prune="group",
                        store="runs/x", resume=True).describe()
    campaign = CampaignConfig(samples=5, jobs=4, batch_size=2,
                              prune_mode="group").describe()
    for fragment in ("jobs=4", "batch=2", "prune=group"):
        assert fragment in study and fragment in campaign
    assert "store=runs/x" in study and "resume" in study
    assert "cold-start" in CampaignConfig(warm_start=False).describe()


def test_scenario_describe_uses_the_same_table():
    spec = make_spec(execution={"jobs": 4, "prune": "group"})
    text = spec.describe()
    assert "jobs=4" in text and "prune=group" in text
    assert "1 cells x 4 faults" in text


def test_lanes_knob_in_every_describe_header():
    """``lanes`` renders through the one shared table in all three
    config surfaces (and elides at its default of 1)."""
    from repro.core.study import StudyConfig
    from repro.injection.campaign import CampaignConfig

    assert "lanes=8" in CampaignConfig(batch_lanes=8).describe()
    assert "lanes=8" in StudyConfig(workloads=("sha",), samples=5,
                                    lanes=8).describe()
    assert "lanes=8" in make_spec(execution={"lanes": 8}).describe()
    assert "lanes" not in CampaignConfig().describe()
    assert "lanes" not in make_spec().describe()


def test_retries_and_batch_timeout_validated():
    """[execution] retries/batch_timeout: parsed, validated (positive),
    threaded into every cell and rendered in the header at non-default
    values."""
    spec = make_spec(execution={"retries": 5, "batch_timeout": 2.5})
    assert spec.retries == 5 and spec.batch_timeout == 2.5
    assert all(c.retries == 5 and c.batch_timeout == 2.5
               for c in spec.cells())
    assert "retries=5" in spec.describe()
    assert "batch_timeout=2.5s" in spec.describe()
    # Defaults elide from the header.
    plain = make_spec()
    assert all(c.retries == 2 and c.batch_timeout is None
               for c in plain.cells())
    assert "retries" not in plain.describe()
    assert "batch_timeout" not in plain.describe()
    for bad in ({"retries": 0}, {"retries": -1}, {"retries": 1.5},
                {"retries": False}):
        with pytest.raises(ScenarioError) as err:
            make_spec(execution=bad)
        assert err.value.field == "execution.retries"
    for bad in ({"batch_timeout": 0}, {"batch_timeout": -2},
                {"batch_timeout": "5s"}, {"batch_timeout": True}):
        with pytest.raises(ScenarioError) as err:
            make_spec(execution=bad)
        assert err.value.field == "execution.batch_timeout"


def test_lanes_rejected_on_non_batchable_levels():
    """The lane engine vectorizes the arch and rtl tiers: a spec asking
    for ``lanes > 1`` on uarch fails validation naming the field."""
    with pytest.raises(ScenarioError) as err:
        make_spec(targets={"levels": ["uarch"],
                           "workloads": ["stringsearch"]},
                  execution={"lanes": 8})
    assert err.value.field == "execution.lanes"
    assert "uarch" in str(err.value)
    # lanes=1 is fine anywhere, lanes=8 is fine on the batchable tiers.
    make_spec(targets={"levels": ["uarch", "rtl"],
                       "workloads": ["stringsearch"]},
              execution={"lanes": 1})
    make_spec(targets={"levels": ["rtl"],
                       "workloads": ["stringsearch"]},
              execution={"lanes": 8})
    make_spec(execution={"lanes": 8})


# ----------------------------------------------------------------------
# workload descriptions (repro-study list)
# ----------------------------------------------------------------------

def test_workload_descriptions_cover_registry():
    from repro.workloads.registry import (
        WORKLOAD_DESCRIPTIONS,
        WORKLOAD_NAMES,
    )

    assert tuple(WORKLOAD_DESCRIPTIONS) == WORKLOAD_NAMES
    assert all(WORKLOAD_DESCRIPTIONS.values())


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_version(capsys):
    from repro import __version__
    from repro.cli import main

    with pytest.raises(SystemExit) as err:
        main(["--version"])
    assert err.value.code == 0
    assert __version__ in capsys.readouterr().out


def test_cli_list(capsys):
    from repro.cli import main

    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for expected in ("arch", "uarch", "rtl", "stringsearch", "fig1",
                     "sweep-smoke", "sweep axes"):
        assert expected in out


def test_cli_run_rejects_unknown_preset():
    from repro.cli import main

    with pytest.raises(SystemExit) as err:
        main(["run", "no-such-preset"])
    assert "available" in str(err.value)


def test_cli_run_reports_bad_set_field():
    from repro.cli import main

    with pytest.raises(SystemExit) as err:
        main(["run", "fig1", "--set", "faults.smaples=4"])
    assert "faults.smaples" in str(err.value)


def test_cli_run_scenario_file_with_csv(tmp_path, capsys):
    from repro.cli import main

    scenario = tmp_path / "tiny.toml"
    scenario.write_text("""
[scenario]
name = "tiny"

[targets]
levels = ["arch"]
workloads = ["stringsearch"]
structures = ["regfile"]
modes = ["pinout"]

[faults]
samples = 4
""")
    csv_path = tmp_path / "out" / "cells.csv"
    assert main(["run", str(scenario), "--csv", str(csv_path)]) == 0
    out = capsys.readouterr().out
    assert "arch/stringsearch/regfile/pinout" in out
    assert csv_path.read_text().startswith("cell,mode,sweep,")


def test_cli_version_single_sourced_in_setup():
    import pathlib

    setup_text = (pathlib.Path(__file__).resolve().parent.parent
                  / "setup.py").read_text()
    assert "read_version()" in setup_text
    assert 'version="0' not in setup_text  # no duplicated literal
