"""RAM and set-associative cache substrate."""

from hypothesis import given, settings, strategies as st
import pytest

from repro.errors import SimFault
from repro.memory.bus import Transaction
from repro.memory.cache import Cache, CacheConfig
from repro.memory.ram import RAM


def make_cache(size=1024, ways=4, line=32, ram_size=0x10000,
               events=None):
    ram = RAM(ram_size)
    listener = None
    if events is not None:
        listener = lambda kind, addr, data, cycle: events.append(
            (kind, addr, bytes(data))
        )
    cache = Cache("l1d", CacheConfig(size, ways, line), ram,
                  bus_listener=listener)
    return ram, cache


# ----------------------------------------------------------------------
# RAM
# ----------------------------------------------------------------------

def test_ram_rw_widths():
    ram = RAM(64)
    ram.write32(0, 0x11223344)
    assert ram.read32(0) == 0x11223344
    assert ram.read16(0) == 0x3344
    assert ram.read8(3) == 0x11


def test_ram_little_endian():
    ram = RAM(8)
    ram.write32(0, 0x01020304)
    assert ram.read8(0) == 0x04


def test_ram_bounds():
    ram = RAM(16)
    with pytest.raises(SimFault):
        ram.read32(14)
    with pytest.raises(SimFault):
        ram.write8(16, 1)
    with pytest.raises(SimFault):
        ram.read_block(-1, 4)


def test_ram_block_ops_and_snapshot():
    ram = RAM(32)
    ram.write_block(4, b"abcd")
    snap = ram.snapshot()
    ram.write_block(4, b"zzzz")
    ram.restore(snap)
    assert ram.read_block(4, 4) == b"abcd"


# ----------------------------------------------------------------------
# cache geometry
# ----------------------------------------------------------------------

def test_config_geometry():
    cfg = CacheConfig(32 * 1024, 4, 32)
    assert cfg.sets == 256
    tag, index, offset = cfg.split(0x12345678)
    assert offset == 0x18
    assert index == (0x12345678 >> 5) & 0xFF


def test_config_rejects_bad_geometry():
    with pytest.raises(ValueError):
        CacheConfig(1000, 4, 32)


def test_split_roundtrip():
    cfg = CacheConfig(1024, 2, 16)
    addr = 0xBEEF0
    tag, index, offset = cfg.split(addr)
    rebuilt = (tag << (cfg.index_bits + cfg.offset_bits)) \
        | (index << cfg.offset_bits) | offset
    assert rebuilt == addr


# ----------------------------------------------------------------------
# cache behaviour
# ----------------------------------------------------------------------

def test_miss_then_hit():
    ram, cache = make_cache()
    ram.write32(0x100, 77)
    value, hit = cache.access(0x100, 4, write=False)
    assert value == 77 and not hit
    value, hit = cache.access(0x100, 4, write=False)
    assert value == 77 and hit


def test_write_back_not_through():
    ram, cache = make_cache()
    cache.access(0x200, 4, write=True, value=123)
    assert ram.read32(0x200) == 0  # not yet written back
    cache.flush_all()
    assert ram.read32(0x200) == 123


def test_eviction_writes_back_dirty_line():
    events = []
    ram, cache = make_cache(size=4 * 32, ways=1, line=32, events=events)
    cache.access(0x000, 4, write=True, value=0xAA)  # set 0
    cache.access(0x080, 4, write=False)             # set 0 conflict (1-way)
    assert ram.read32(0) == 0xAA
    kinds = [e[0] for e in events]
    assert "wb" in kinds and "rd" in kinds


def test_lru_replacement_order():
    ram, cache = make_cache(size=2 * 32 * 2, ways=2, line=32)  # 2 sets
    cache.access(0x000, 4, write=False)   # set0 way A
    cache.access(0x080, 4, write=False)   # set0 way B  (0x80 -> set 0)
    cache.access(0x000, 4, write=False)   # touch A again
    cache.access(0x100, 4, write=False)   # evicts B (LRU)
    _, hit_a = cache.access(0x000, 4, write=False)
    assert hit_a
    _, hit_b = cache.access(0x080, 4, write=False)
    assert not hit_b


def test_unaligned_access_faults():
    _, cache = make_cache()
    with pytest.raises(SimFault):
        cache.access(0x101, 4, write=False)


def test_beyond_ram_faults():
    _, cache = make_cache(ram_size=0x1000)
    with pytest.raises(SimFault):
        cache.access(0x2000, 4, write=False)


def test_byte_write_read():
    _, cache = make_cache()
    cache.access(0x40, 1, write=True, value=0x5A)
    value, _ = cache.access(0x40, 1, write=False)
    assert value == 0x5A


def test_flip_bit_in_data_array_corrupts_value():
    ram, cache = make_cache()
    cache.access(0x00, 4, write=True, value=0)
    index, way = cache.probe(0x00)
    flat_byte = (index * cache.config.ways + way) * cache.config.line_size
    cache.flip_bit("data", flat_byte * 8 + 3)
    value, _ = cache.access(0x00, 4, write=False)
    assert value == 8


def test_flip_valid_bit_drops_line():
    ram, cache = make_cache()
    ram.write32(0x00, 42)
    cache.access(0x00, 4, write=False)
    index, way = cache.probe(0x00)
    assert way is not None
    cache.flip_bit("valid", index * cache.config.ways + way)
    _, way_after = cache.probe(0x00)
    assert way_after is None


def test_flip_tag_bit_changes_mapping():
    _, cache = make_cache()
    cache.access(0x00, 4, write=False)
    index, way = cache.probe(0x00)
    width = 32 - cache.config.index_bits - cache.config.offset_bits
    cache.flip_bit("tag", (index * cache.config.ways + way) * width)
    _, way_after = cache.probe(0x00)
    assert way_after is None


def test_bit_count_consistency():
    _, cache = make_cache(size=1024, ways=4, line=32)
    assert cache.bit_count("data") == 1024 * 8
    assert cache.bit_count("valid") == (1024 // 32)
    assert cache.bit_count("dirty") == (1024 // 32)


def test_snapshot_restore_roundtrip():
    ram, cache = make_cache()
    cache.access(0x40, 4, write=True, value=9)
    snap = cache.snapshot()
    cache.access(0x40, 4, write=True, value=10)
    cache.restore(snap)
    value, _ = cache.access(0x40, 4, write=False)
    assert value == 9


def test_access_listener_sees_accesses():
    seen = []
    ram, cache = make_cache()
    cache.access_listener = lambda *args: seen.append(args)
    cache.access(0x40, 4, write=True, value=1, cycle=5)
    assert seen and seen[0][0] == 5 and seen[0][3] is True


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=255),  # word index
        st.booleans(),                            # write?
        st.integers(min_value=0, max_value=0xFFFFFFFF),
    ),
    min_size=1, max_size=120,
))
def test_cache_matches_flat_memory(ops):
    """Property: any access sequence through a tiny cache equals a flat
    memory model (write-back correctness)."""
    ram, cache = make_cache(size=4 * 32 * 2, ways=2, line=32,
                            ram_size=4096)
    flat = {}
    for word, write, value in ops:
        addr = word * 4
        if write:
            cache.access(addr, 4, write=True, value=value)
            flat[addr] = value
        else:
            got, _ = cache.access(addr, 4, write=False)
            assert got == flat.get(addr, 0)
    cache.flush_all()
    for addr, value in flat.items():
        assert ram.read32(addr) == value


def test_transaction_equality_and_keys():
    a = Transaction("wb", 0x40, b"abcd", cycle=10)
    b = Transaction("wb", 0x40, b"abcd", cycle=99)
    assert a == b                      # content+order semantics
    assert a.key() == b.key()
    assert a.key(with_timing=True) != b.key(with_timing=True)
    assert a != Transaction("rd", 0x40)
