"""Analysis layer: deltas, aggregation, rendering."""

from repro.analysis.compare import CrossLevelComparison, LevelDelta
from repro.analysis.report import bar_chart, campaign_table, render_table


def test_level_delta_units():
    delta = LevelDelta("fft", 0.10, 0.17)
    assert abs(delta.percentile_units - 7.0) < 1e-9
    assert abs(delta.relative - 7 / 17) < 1e-9


def test_level_delta_zero_case():
    delta = LevelDelta("x", 0.0, 0.0)
    assert delta.relative == 0.0
    assert delta.percentile_units == 0.0


def test_comparison_aggregates():
    comparison = CrossLevelComparison("regfile")
    comparison.add("a", 0.10, 0.12)
    comparison.add("b", 0.20, 0.15)
    assert abs(comparison.mean_percentile_units - 3.5) < 1e-9
    assert comparison.worst.workload == "b"
    assert comparison.agreement_within(2.5) == 1
    assert comparison.agreement_within(10.0) == 2


def test_comparison_rows_include_average():
    comparison = CrossLevelComparison("l1d")
    comparison.add("a", 0.3, 0.2)
    rows = comparison.rows()
    assert rows[-1][0] == "average"
    assert len(rows) == 2


def test_comparison_paper_style_numbers():
    """A synthetic series matching the paper's headline: ~0.7pp / ~10%."""
    comparison = CrossLevelComparison("regfile")
    for i, (u, r) in enumerate(
            [(0.060, 0.067), (0.080, 0.073), (0.050, 0.057),
             (0.090, 0.083), (0.070, 0.077)]):
        comparison.add(f"w{i}", u, r)
    assert 0.6 <= comparison.mean_percentile_units <= 0.8
    assert 0.08 <= comparison.mean_relative <= 0.12


def test_render_table_alignment():
    text = render_table(("a", "bbb"), [("1", "2"), ("333", "4")],
                        title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert all(line.startswith(("|", "+")) for line in lines[1:])
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # rectangular


def test_bar_chart_scales_and_labels():
    chart = bar_chart(
        {"GeFIN": [0.1, 0.4], "RTL": [0.2, 0.0]},
        ["fft", "sha"], max_width=10, title="Fig",
    )
    assert "Fig" in chart and "fft:" in chart and "sha:" in chart
    lines = chart.splitlines()
    bar_lengths = {
        line.split()[0]: line.count("#") for line in lines if "#" in line
    }
    assert bar_lengths.get("RTL", 0) >= 0
    assert "40.0%" in chart


def test_bar_chart_handles_none_series():
    chart = bar_chart({"RTL": [None, 0.5]}, ["a", "b"])
    assert "not measured" in chart


def test_campaign_table_renders():
    class _Stub:
        simulated_cycles = 12_000

        def summary(self):
            return {
                "workload": "fft", "level": "rtl", "structure": "regfile",
                "n": 10, "unsafeness": 0.2, "ci95": (0.05, 0.5),
                "masked": 8, "sdc": 1, "due": 1, "hang": 0, "mismatch": 0,
                "pruned": 4, "simulated": 6,
            }

    text = campaign_table([_Stub()], title="Campaigns")
    assert "fft" in text and "20.0%" in text
    assert "pruned" in text and "kcyc/sim" in text
    assert "2.0" in text  # 12 kcyc over 6 simulated faults
