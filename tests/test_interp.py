"""Reference interpreter: architectural semantics."""

import pytest

from repro.errors import SimFault, SimTimeout
from repro.isa import Interpreter, assemble


def run(body, max_insts=100_000):
    src = ".text\n_start:\n" + body
    interp = Interpreter(assemble(src))
    result = interp.run(max_insts=max_insts)
    return interp, result


EXIT = "    movw r0, #0\n    svc #0\n"


def test_mov_add_chain():
    interp, _ = run("""
    movw r1, #7
    movw r2, #5
    add  r3, r1, r2
""" + EXIT)
    assert interp.regs.read(3) == 12


def test_movw_movt_compose():
    interp, _ = run("""
    movw r1, #0x5678
    movt r1, #0x1234
""" + EXIT)
    assert interp.regs.read(1) == 0x12345678


def test_flags_and_conditional_branch():
    interp, _ = run("""
    movw r0, #3
    movw r1, #0
loop:
    add  r1, r1, #2
    sub  r0, r0, #1
    cmp  r0, #0
    bne  loop
    mov  r4, r1
""" + EXIT)
    assert interp.regs.read(4) == 6


def test_conditional_execution_skips():
    interp, _ = run("""
    movw r0, #1
    cmp  r0, #2
    moveq r1, #111
    movne r2, #222
""" + EXIT)
    assert interp.regs.read(1) == 0
    assert interp.regs.read(2) == 222


def test_carry_chain_adc():
    interp, _ = run("""
    mvn  r0, #0          ; 0xFFFFFFFF
    adds r1, r0, r0      ; carry out
    movw r2, #0
    adc  r2, r2, #0      ; r2 = carry
""" + EXIT)
    assert interp.regs.read(2) == 1


def test_memory_word_roundtrip():
    interp, _ = run("""
    ldr  r1, =buffer
    movw r2, #0xBEEF
    movt r2, #0xDEAD
    str  r2, [r1]
    ldr  r3, [r1]
""" + EXIT + "\n.data\nbuffer: .space 8\n")
    assert interp.regs.read(3) == 0xDEADBEEF


def test_byte_and_half_access():
    interp, _ = run("""
    ldr  r1, =buffer
    movw r2, #0x1234
    strh r2, [r1]
    ldrb r3, [r1]
    ldrb r4, [r1, #1]
    ldrh r5, [r1]
""" + EXIT + "\n.data\nbuffer: .space 4\n")
    assert interp.regs.read(3) == 0x34
    assert interp.regs.read(4) == 0x12
    assert interp.regs.read(5) == 0x1234


def test_pre_post_index_writeback():
    interp, _ = run("""
    ldr  r1, =buffer
    movw r2, #1
    str  r2, [r1], #4
    movw r2, #2
    str  r2, [r1], #4
    ldr  r3, =buffer
    ldr  r4, [r3]
    ldr  r5, [r3, #4]
""" + EXIT + "\n.data\nbuffer: .space 8\n")
    assert interp.regs.read(4) == 1
    assert interp.regs.read(5) == 2


def test_push_pop_preserve():
    interp, _ = run("""
    movw r4, #10
    movw r5, #20
    push {r4, r5}
    movw r4, #0
    movw r5, #0
    pop  {r4, r5}
""" + EXIT)
    assert interp.regs.read(4) == 10
    assert interp.regs.read(5) == 20


def test_bl_bx_call_return():
    interp, _ = run("""
    bl   func
    mov  r5, r0
""" + EXIT + """
func:
    movw r0, #99
    bx   lr
""")
    assert interp.regs.read(5) == 99


def test_pc_read_is_plus_8():
    interp, _ = run("""
    mov  r1, pc
""" + EXIT)
    # mov is the first instruction at the text base.
    assert interp.regs.read(1) == interp.program.layout.text_base + 8


def test_shift_by_register():
    interp, _ = run("""
    movw r1, #1
    movw r2, #6
    lsl  r3, r1, r2
""" + EXIT)
    assert interp.regs.read(3) == 64


def test_mul_and_mla():
    interp, _ = run("""
    movw r1, #7
    movw r2, #6
    mul  r3, r1, r2
    movw r4, #100
    mla  r5, r1, r2, r4
""" + EXIT)
    assert interp.regs.read(3) == 42
    assert interp.regs.read(5) == 142


def test_output_syscalls():
    _, result = run("""
    movw r0, #65
    svc  #1          ; putc 'A'
    movw r0, #1234
    svc  #2          ; print_uint
    movw r0, #0xBEEF
    svc  #3          ; print_hex
""" + EXIT)
    assert result.output.startswith(b"A1234")
    assert b"0000beef" in result.output


def test_print_int_negative():
    _, result = run("""
    movw r0, #0
    sub  r0, r0, #5
    svc  #5
""" + EXIT)
    assert result.output == b"-5"


def test_sys_write_buffer():
    _, result = run("""
    ldr  r0, =msg
    movw r1, #5
    svc  #4
""" + EXIT + "\n.data\nmsg: .ascii \"hello\"\n")
    assert result.output == b"hello"


def test_exit_code():
    _, result = run("    movw r0, #7\n    svc #0\n")
    assert result.exit_code == 7


def test_unaligned_word_load_faults():
    with pytest.raises(SimFault) as info:
        run("""
    ldr r1, =buffer
    add r1, r1, #1
    ldr r2, [r1]
""" + EXIT + "\n.data\nbuffer: .space 8\n")
    assert info.value.kind == "align-fault"


def test_out_of_range_access_faults():
    with pytest.raises(SimFault) as info:
        run("""
    mvn r1, #0
    ldr r2, [r1]
""" + EXIT)
    assert info.value.kind in ("mem-fault", "align-fault")


def test_fetch_off_text_faults():
    with pytest.raises(SimFault) as info:
        run("    nop\n")  # falls off the end, no exit
    assert info.value.kind in ("mem-fault", "halt-trap")


def test_executing_pool_word_traps():
    with pytest.raises(SimFault) as info:
        run("    .word 0x00000000\n")
    assert info.value.kind == "halt-trap"


def test_unknown_syscall_faults():
    with pytest.raises(SimFault) as info:
        run("    svc #999\n" + EXIT)
    assert info.value.kind == "syscall-error"


def test_watchdog_timeout():
    with pytest.raises(SimTimeout):
        run("loop: b loop\n", max_insts=500)


def test_inst_count_counts_cond_fails():
    interp, result = run("""
    movw r0, #1
    cmp  r0, #2
    addeq r1, r1, #1
""" + EXIT)
    assert result.inst_count == 5


def test_write_to_pc_branches():
    interp, _ = run("""
    ldr  r1, =target
    mov  pc, r1
    movw r5, #1     ; skipped
target:
    movw r6, #2
""" + EXIT)
    assert interp.regs.read(5) == 0
    assert interp.regs.read(6) == 2


def test_stack_pointer_initialised():
    interp = Interpreter(assemble(".text\n_start: nop\n svc #0\n"))
    assert interp.regs.read(13) == interp.program.layout.stack_top


# ----------------------------------------------------------------------
# decode cache (hot-loop fetch memoization)
# ----------------------------------------------------------------------

def test_decode_cache_matches_uncached_execution():
    """Cached (memoized decode table) and uncached (decode per fetch)
    execution are bit-identical on a real workload: output, exit code,
    instruction count and final register file."""
    from repro.isa.toolchain import Toolchain
    from repro.workloads import build

    program = build("stringsearch", Toolchain("gnu"))
    cached = Interpreter(program, decode_cache=True)
    uncached = Interpreter(program, decode_cache=False)
    res_c = cached.run()
    res_u = uncached.run()
    assert res_c.output == res_u.output
    assert res_c.exit_code == res_u.exit_code
    assert res_c.inst_count == res_u.inst_count
    assert cached.regs.snapshot() == uncached.regs.snapshot()
    assert cached.flags.pack() == uncached.flags.pack()


def test_decode_table_memoized_and_covers_text():
    from repro.isa.toolchain import Toolchain
    from repro.workloads import build

    program = build("sha", Toolchain("gnu"))
    table = program.decode_table()
    assert program.decode_table() is table  # built once
    assert len(table) == len(program.insts)
    base = program.layout.text_base
    for index in program.raw_words:
        # Pool slots keep the trap view, exactly like inst_at().
        assert table[base + 4 * index] is program.insts[index]


def test_decode_table_not_pickled():
    import pickle

    from repro.isa.toolchain import Toolchain
    from repro.workloads import build

    program = build("sha", Toolchain("gnu"))
    program.decode_table()
    clone = pickle.loads(pickle.dumps(program))
    assert clone._decode_table is None
    # ...and rebuilds lazily to the same content.
    assert len(clone.decode_table()) == len(program.decode_table())
