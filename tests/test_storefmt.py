"""The format-2 codec, byte by byte: packing, strings, traces, mmap.

``test_store.py`` covers the store's durability *policy* (what resume
and refusal must do); this suite fuzzes the *mechanism* underneath --
the bitpacked record layout, the interned string table, the RLE trace
codec and the vectorized mmap read path of
:mod:`repro.injection.storefmt`:

* property-based record round trips (hypothesis): random fields
  including lane-width extremes and unicode details survive
  pack -> file -> mmap -> record bit for bit;
* torn-tail recovery at *every* byte offset of a final record and of a
  final string-table entry -- a kill can land anywhere;
* the mmap no-object guarantee: tallies and classification sequences
  off a binary store construct zero FaultRecord/FaultSpec objects;
* JSONL export round trips and cross-format equivalence.
"""

import itertools
import json

from hypothesis import given, settings, strategies as st
import pytest

from repro.injection import store as store_mod, storefmt
from repro.injection.classify import FaultClass, FaultRecord
from repro.injection.faults import FaultSpec
from repro.injection.store import CampaignStore, StoreError
from repro.prune.trace import LifetimeTrace

CYCLE_MAX = (1 << 28) - 1
BIT_MAX = (1 << 24) - 1

#: <= 16 names (the structure-id lane is 4 bits wide), unicode-heavy.
STRUCTURES = ("regfile", "cpsr", "l1d", "pc", "Σ-unit", "файл")


def make_record(structure="regfile", bit=0, cycle=0, original_cycle=None,
                fclass=FaultClass.MASKED, detail="", sim_cycles=0,
                wall_seconds=0.0, replay_cycles=0, pruned=""):
    fault = FaultSpec(structure, bit, cycle,
                      original_cycle=original_cycle)
    return FaultRecord(fault, fclass, detail, sim_cycles=sim_cycles,
                       wall_seconds=wall_seconds,
                       replay_cycles=replay_cycles, pruned=pruned)


def record_fields(r):
    """Everything a format-2 record stores, for exact comparison."""
    return (r.fault.structure, r.fault.bit, r.fault.cycle,
            r.fault.original_cycle, r.fclass, r.detail, r.sim_cycles,
            r.replay_cycles, r.pruned,
            storefmt.wall_to_us(r.wall_seconds))


def write_store(path, records, fmt="binary"):
    store = CampaignStore(path, store_format=fmt)
    store.begin({"suite": "storefmt"})
    for index, record in records:
        store.append(index, record)
    store.close()
    return store


# ----------------------------------------------------------------------
# property-based round trips
# ----------------------------------------------------------------------

record_strategy = st.builds(
    make_record,
    structure=st.sampled_from(STRUCTURES),
    bit=st.integers(0, BIT_MAX),
    cycle=st.integers(0, CYCLE_MAX),
    original_cycle=st.integers(0, CYCLE_MAX),
    fclass=st.sampled_from(sorted(FaultClass, key=lambda f: f.value)),
    detail=st.text(max_size=80),
    sim_cycles=st.integers(0, CYCLE_MAX),
    # Whole microseconds so the quantization is exact.
    wall_seconds=st.integers(0, storefmt.WALL_US_MAX).map(
        lambda us: us / 1e6),
    replay_cycles=st.integers(0, CYCLE_MAX),
    pruned=st.sampled_from(("", "dead", "group")),
)


@pytest.fixture(scope="module")
def scratch(tmp_path_factory):
    """Fresh store directories for hypothesis examples (function-scoped
    tmp_path is off limits inside ``@given``)."""
    root = tmp_path_factory.mktemp("storefmt")
    counter = itertools.count()
    return lambda: root / f"s{next(counter)}"


@settings(max_examples=60, deadline=None)
@given(records=st.lists(record_strategy, max_size=8))
def test_binary_round_trip_random_records(scratch, records):
    indexed = list(enumerate(records))
    path = scratch()
    write_store(path, indexed)
    loaded = CampaignStore(path).records()
    assert sorted(loaded) == list(range(len(records)))
    for index, record in indexed:
        assert record_fields(loaded[index]) == record_fields(record)


@settings(max_examples=40, deadline=None)
@given(record=record_strategy, index=st.integers(0, (1 << 24) - 1))
def test_binary_matches_jsonl_reference(scratch, record, index):
    """The two formats agree field for field on the same record (wall
    clock up to format 2's microsecond quantization)."""
    binary = scratch()
    jsonl = scratch()
    write_store(binary, [(index, record)], fmt="binary")
    write_store(jsonl, [(index, record)], fmt="jsonl")
    b = CampaignStore(binary).records()[index]
    j = CampaignStore(jsonl).records()[index]
    assert record_fields(b) == record_fields(j)


def test_round_trip_at_lane_extremes(tmp_path):
    """Every lane at its maximum simultaneously."""
    record = make_record(
        structure=STRUCTURES[-1], bit=BIT_MAX, cycle=CYCLE_MAX,
        original_cycle=CYCLE_MAX, fclass=FaultClass.LATENT,
        detail="węird ☃ detail", sim_cycles=CYCLE_MAX,
        wall_seconds=storefmt.WALL_US_MAX / 1e6,
        replay_cycles=CYCLE_MAX, pruned="group")
    index = (1 << 24) - 1
    write_store(tmp_path / "s", [(index, record)])
    loaded = CampaignStore(tmp_path / "s").records()
    assert record_fields(loaded[index]) == record_fields(record)


def test_pack_rejects_overflow():
    record = make_record(cycle=CYCLE_MAX + 1)
    with pytest.raises(StoreError, match="cycle=268435456 does not fit"):
        storefmt.pack_record(0, record, 0, 0)
    with pytest.raises(StoreError, match="index"):
        storefmt.pack_record(1 << 24, make_record(), 0, 0)


def test_pack_rejects_unknown_pruned_tag():
    with pytest.raises(StoreError, match="pruned tag"):
        storefmt.pack_record(0, make_record(pruned="vestigial"), 0, 0)


def test_string_table_limits(tmp_path):
    table = storefmt.StringTable(tmp_path / "strings.dat")
    for i in range(16):
        assert table.intern(storefmt.KIND_STRUCTURE, f"s{i}") == i
    assert table.intern(storefmt.KIND_STRUCTURE, "s3") == 3  # reuse
    with pytest.raises(StoreError, match="limit of 16"):
        table.intern(storefmt.KIND_STRUCTURE, "one-too-many")
    with pytest.raises(StoreError, match="65535"):
        table.intern(storefmt.KIND_DETAIL, "x" * 70_000)
    table.close()


# ----------------------------------------------------------------------
# torn-tail recovery: a kill can land on any byte
# ----------------------------------------------------------------------

def torn_store(tmp_path_factory_or_path, keep_bytes):
    path = tmp_path_factory_or_path
    records = [(i, make_record(bit=i, cycle=10 * i + 1,
                               fclass=FaultClass.SDC, detail=f"d{i}"))
               for i in range(3)]
    store = write_store(path, records)
    blob = store.binary_path.read_bytes()
    full = storefmt.RECORDS_HEADER_BYTES + 3 * storefmt.RECORD_BYTES
    assert len(blob) == full
    store.binary_path.write_bytes(
        blob[:full - storefmt.RECORD_BYTES + keep_bytes])
    return store


@pytest.mark.parametrize("keep_bytes",
                         range(storefmt.RECORD_BYTES))
def test_torn_final_record_at_every_offset(tmp_path, keep_bytes):
    """Truncate the final record after each possible byte count: the
    reader ignores the stump, resume truncates it, and the store
    appends cleanly afterwards."""
    store = torn_store(tmp_path / "s", keep_bytes)
    loaded = store.records()
    assert sorted(loaded) == [0, 1]  # the torn third record is gone
    survivors = CampaignStore(store.path)
    assert sorted(survivors.begin({"suite": "storefmt"},
                                  resume=True)) == [0, 1]
    # Recovery left a whole number of records on disk.
    size = store.binary_path.stat().st_size
    assert (size - storefmt.RECORDS_HEADER_BYTES) \
        % storefmt.RECORD_BYTES == 0
    survivors.append(2, make_record(bit=2, cycle=21,
                                    fclass=FaultClass.SDC, detail="d2"))
    survivors.close()
    assert sorted(store.records()) == [0, 1, 2]
    assert store.records()[2].detail == "d2"


def test_torn_header_recovers_to_empty(tmp_path):
    store = torn_store(tmp_path / "s", 0)
    store.binary_path.write_bytes(b"RPRO")  # killed mid-header write
    assert store.records() == {}
    fresh = CampaignStore(store.path)
    assert fresh.begin({"suite": "storefmt"}, resume=True) == {}
    fresh.close()


def test_foreign_record_file_rejected(tmp_path):
    store = torn_store(tmp_path / "s", 0)
    blob = store.binary_path.read_bytes()
    store.binary_path.write_bytes(b"NOTRPROx" + blob[8:])
    with pytest.raises(StoreError, match="bad magic"):
        store.records()


def test_torn_string_entry_at_every_offset(tmp_path):
    """strings.dat tolerates a torn trailing entry anywhere; an orphan
    intact entry (string flushed, record lost) is reused, not leaked."""
    path = tmp_path / "strings.dat"
    table = storefmt.StringTable(path)
    table.intern(storefmt.KIND_STRUCTURE, "regfile")
    table.intern(storefmt.KIND_DETAIL, "détail")
    table.close()
    blob = path.read_bytes()
    entry = storefmt._ENTRY_HEADER.size + len("détail".encode())
    for keep in range(entry):
        path.write_bytes(blob[:len(blob) - entry + keep])
        structures, details, _ = storefmt.load_strings(path)
        assert structures == ["regfile"] and details == []
        reopened = storefmt.StringTable(path)
        assert reopened.intern(storefmt.KIND_STRUCTURE, "regfile") == 0
        assert reopened.intern(storefmt.KIND_DETAIL, "détail") == 0
        reopened.close()
        structures, details, _ = storefmt.load_strings(path)
        assert details == ["détail"]


def test_corrupt_string_table_is_an_error(tmp_path):
    path = tmp_path / "strings.dat"
    path.write_bytes(storefmt.STRINGS_MAGIC
                     + storefmt._ENTRY_HEADER.pack(7, 1) + b"x")
    with pytest.raises(StoreError, match="unknown kind 7"):
        storefmt.load_strings(path)
    path.write_bytes(b"WRONGMAG")
    with pytest.raises(StoreError, match="bad magic"):
        storefmt.load_strings(path)


# ----------------------------------------------------------------------
# RLE lifetime-trace codec
# ----------------------------------------------------------------------

def make_trace():
    trace = LifetimeTrace()
    trace.register("regfile", 32)
    trace.register("l1d", 8, reachable_cells=range(12))
    trace.register("untouched", 1)
    # Dense run-heavy stream (delta-RLE's best case) ...
    for cycle in range(0, 400, 4):
        trace.record("regfile", 3, cycle, write=cycle % 8 == 0)
    # ... a huge delta that forces the 8-byte lane ...
    trace.record("regfile", 3, 1 << 33, write=True)
    # ... and deltas straddling the 1/2/4-byte width boundaries.
    cycle = 0
    for delta in (1, 255, 256, 65535, 65536, (1 << 31)):
        cycle += delta
        trace.record("l1d", 11, cycle, write=False)
    # Same-cycle write-then-read: the encoded (cycle<<1)|write stream
    # steps back by 1 here, which the codec must accept (rtl golden
    # traces do this on every forwarding write/read pair).
    trace.record("l1d", 2, 7, write=True)
    trace.record("l1d", 2, 7, write=False)
    trace.record("l1d", 2, 7, write=True)
    trace.record("l1d", 2, 9, write=False)
    return trace


def test_trace_round_trip():
    trace = make_trace()
    blob = storefmt.encode_trace(trace.snapshot())
    clone = LifetimeTrace()
    clone.restore(storefmt.decode_trace(blob))
    assert clone.snapshot() == trace.snapshot()
    assert clone.events("regfile", 3) == trace.events("regfile", 3)
    assert clone.reachable("l1d", 11) and not clone.reachable("l1d", 12)
    assert clone.reachable("untouched", 999)  # None = all reachable
    assert clone.cells("untouched") == ()


def test_rtl_golden_trace_round_trips():
    """Regression: the rtl pipeline emits same-cycle write-then-read
    pairs (forwarding), whose ``(cycle << 1) | is_write`` encoding
    steps backwards by one; the codec must round-trip a real rtl
    golden trace, not reject it as unsorted."""
    from repro.sim import registry
    sim = registry.create_frontend("rtl", "stringsearch").sim_factory()
    sim.enable_access_trace()
    sim.run()
    sim.seal_access_trace()
    snap = sim.access_trace().snapshot()
    clone = LifetimeTrace()
    clone.restore(storefmt.decode_trace(storefmt.encode_trace(snap)))
    assert clone.snapshot() == snap


def test_trace_rejects_unsorted_stream():
    trace = LifetimeTrace()
    trace.register("regfile", 32)
    trace.record("regfile", 0, 100, write=True)
    trace.record("regfile", 0, 50, write=True)  # out of order
    with pytest.raises(StoreError, match="not sorted"):
        storefmt.encode_trace(trace.snapshot())


def test_trace_rejects_corrupt_blob():
    blob = storefmt.encode_trace(make_trace().snapshot())
    with pytest.raises(StoreError, match="trace"):
        storefmt.decode_trace(blob[:len(blob) // 2])
    with pytest.raises(StoreError, match="trace"):
        storefmt.decode_trace(b"WRONGMAG" + blob[8:])


# ----------------------------------------------------------------------
# the mmap guarantee: queries build no per-record objects
# ----------------------------------------------------------------------

class _Counting:
    instances = 0

    def __init__(self, *args, **kwargs):
        _Counting.instances += 1
        super().__init__(*args, **kwargs)


def test_queries_never_materialize_records(tmp_path, monkeypatch):
    """class_tally / sequence_arrays on a binary store run entirely on
    numpy lanes: zero FaultRecord/FaultSpec constructions."""
    records = [(i, make_record(structure=STRUCTURES[i % 3], bit=i,
                               cycle=i + 1,
                               fclass=list(FaultClass)[i % 6],
                               detail=f"d{i % 4}",
                               pruned=("dead" if i % 5 == 0 else "")))
               for i in range(64)]
    store = write_store(tmp_path / "s", records)

    class CountingRecord(_Counting, FaultRecord):
        pass

    class CountingSpec(_Counting, FaultSpec):
        pass

    monkeypatch.setattr(store_mod, "FaultRecord", CountingRecord)
    monkeypatch.setattr(store_mod, "FaultSpec", CountingSpec)
    _Counting.instances = 0

    tally = store.class_tally()
    arrays = store.sequence_arrays()
    assert _Counting.instances == 0, (
        "mmap queries constructed per-record objects")
    # Probe sanity: the full read path *does* go through these names.
    loaded = store.records()
    assert _Counting.instances == 2 * len(records)

    # And the lane math agrees with the materialized records.
    assert tally["n"] == len(records)
    assert tally["unsafe"] == sum(
        1 for r in loaded.values() if r.fclass is not FaultClass.MASKED)
    assert tally["pruned"] == sum(
        1 for r in loaded.values() if r.pruned)
    for fclass in FaultClass:
        assert tally["classes"][fclass.value] == sum(
            1 for r in loaded.values() if r.fclass is fclass)
    assert list(arrays["index"]) == sorted(loaded)
    assert [str(s) for s in arrays["structure"]] == [
        loaded[i].fault.structure for i in sorted(loaded)]
    assert [str(f) for f in arrays["fclass"]] == [
        loaded[i].fclass.value for i in sorted(loaded)]


def test_duplicate_index_detected_on_lanes(tmp_path):
    store = write_store(tmp_path / "s",
                        [(4, make_record()), (4, make_record())])
    reader = storefmt.PackedReader(store.binary_path,
                                   store.strings_path)
    with pytest.raises(StoreError, match="duplicate fault index #4"):
        reader.check_duplicates()


# ----------------------------------------------------------------------
# JSONL export
# ----------------------------------------------------------------------

def test_export_jsonl_round_trips(tmp_path):
    records = [(i, make_record(bit=i, cycle=i + 1, detail=f"d{i}",
                               fclass=FaultClass.SDC))
               for i in range(5)]
    store = write_store(tmp_path / "bin", records)
    lines = list(store.export_jsonl())
    assert len(lines) == 5
    # The export is loadable as a JSONL store's record stream.
    clone = CampaignStore(tmp_path / "json", store_format="jsonl")
    clone.begin({"suite": "storefmt"})
    clone.close()
    clone.records_path.write_text("".join(line + "\n" for line in lines))
    loaded = clone.records()
    for index, record in records:
        assert record_fields(loaded[index]) == record_fields(record)
    # Export order is by fault index, and the stream is valid JSON.
    assert [json.loads(line)["i"] for line in lines] == list(range(5))
