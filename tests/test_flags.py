"""Condition flags and condition-code evaluation."""

from hypothesis import given, strategies as st
import pytest

from repro.isa.flags import COND_CODES, COND_INDEX, Flags, cond_passed

ALL_FLAG_COMBOS = [
    Flags(n=n, z=z, c=c, v=v)
    for n in (False, True) for z in (False, True)
    for c in (False, True) for v in (False, True)
]


@given(st.integers(min_value=0, max_value=15))
def test_pack_unpack_roundtrip(bits):
    assert Flags.unpack(bits).pack() == bits


def test_pack_bit_positions():
    assert Flags(n=True).pack() == 0b1000
    assert Flags(z=True).pack() == 0b0100
    assert Flags(c=True).pack() == 0b0010
    assert Flags(v=True).pack() == 0b0001


def test_copy_is_independent():
    flags = Flags(n=True)
    other = flags.copy()
    other.n = False
    assert flags.n


def test_equality_and_hash():
    assert Flags(z=True) == Flags(z=True)
    assert Flags(z=True) != Flags(c=True)
    assert hash(Flags(z=True)) == hash(Flags(z=True))


def test_repr_shows_set_flags():
    assert "NZ" in repr(Flags(n=True, z=True))


@pytest.mark.parametrize("flags", ALL_FLAG_COMBOS)
def test_al_always_passes(flags):
    assert cond_passed(14, flags)


@pytest.mark.parametrize("flags", ALL_FLAG_COMBOS)
def test_cond_pairs_are_complements(flags):
    """eq/ne, cs/cc, mi/pl, vs/vc, hi/ls, ge/lt, gt/le are complements."""
    for a, b in ((0, 1), (2, 3), (4, 5), (6, 7), (8, 9), (10, 11),
                 (12, 13)):
        assert cond_passed(a, flags) != cond_passed(b, flags)


@pytest.mark.parametrize("flags", ALL_FLAG_COMBOS)
def test_cond_semantics(flags):
    n, z, c, v = flags.n, flags.z, flags.c, flags.v
    assert cond_passed(COND_INDEX["eq"], flags) == z
    assert cond_passed(COND_INDEX["cs"], flags) == c
    assert cond_passed(COND_INDEX["mi"], flags) == n
    assert cond_passed(COND_INDEX["vs"], flags) == v
    assert cond_passed(COND_INDEX["hi"], flags) == (c and not z)
    assert cond_passed(COND_INDEX["ge"], flags) == (n == v)
    assert cond_passed(COND_INDEX["gt"], flags) == (not z and n == v)


def test_hs_lo_aliases():
    assert COND_INDEX["hs"] == COND_INDEX["cs"]
    assert COND_INDEX["lo"] == COND_INDEX["cc"]


def test_invalid_cond_raises():
    with pytest.raises(ValueError):
        cond_passed(15, Flags())


def test_cond_code_table_order():
    assert COND_CODES[0] == "eq"
    assert COND_CODES[14] == "al"
    assert len(COND_CODES) == 15


# ----------------------------------------------------------------------
# vectorized twin (repro.isa.valu.cond_passed): the lane engine's
# condition evaluation must agree with the scalar path on every lane
# ----------------------------------------------------------------------

def test_valu_cond_passed_matches_scalar_exhaustively():
    """All 15 condition codes x all 16 flag states, as one vector call
    per code with the 16 states as lanes."""
    from repro.isa import valu

    n = [f.n for f in ALL_FLAG_COMBOS]
    z = [f.z for f in ALL_FLAG_COMBOS]
    c = [f.c for f in ALL_FLAG_COMBOS]
    v = [f.v for f in ALL_FLAG_COMBOS]
    for cond in range(15):
        lanes = valu.cond_passed(cond, n, z, c, v)
        expected = [cond_passed(cond, flags) for flags in ALL_FLAG_COMBOS]
        assert lanes.tolist() == expected, COND_CODES[cond]


def test_valu_invalid_cond_raises():
    from repro.isa import valu

    with pytest.raises(ValueError):
        valu.cond_passed(15, [False], [False], [False], [False])
