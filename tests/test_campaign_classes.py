"""Forcing each fault-effect class through crafted campaigns.

The classifier's paths (MASKED / SDC / DUE / HANG / MISMATCH) each get a
scenario engineered to reach them, on top of the generic campaign tests.
"""

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.classify import FaultClass
from repro.isa import assemble
from repro.isa.toolchain import Toolchain
from repro.uarch import CortexA9Config, MicroArchSim, RunStatus
from repro.workloads import build

CONFIG = CortexA9Config(dcache_size=1024, icache_size=1024)


def _sim(program):
    return MicroArchSim(program, CONFIG)


def test_due_from_corrupted_pointer():
    """Flipping a high bit of an address register causes a memory fault
    that the campaign classifies as DUE (detected)."""
    program = assemble("""
    .text
_start:
    ldr  r1, =data
    movw r4, #2000
wait:
    sub  r4, r4, #1
    cmp  r4, #0
    bgt  wait
    ldr  r2, [r1]
    mov  r0, r2
    svc  #2
    movw r0, #0
    svc  #0
    .pool
    .data
data: .word 5
""", name="pointer")
    golden = _sim(program)
    golden.run()
    sim = _sim(program)
    sim.run(stop_cycle=500)  # mid wait-loop, r1 already loaded
    phys = sim.rat.committed[1]
    sim.inject("regfile", phys * 32 + 31)  # top bit -> address way out
    status = sim.run(max_cycles=200_000)
    assert status is RunStatus.FAULT
    assert sim.fault.kind in ("mem-fault", "align-fault")


def test_hang_from_corrupted_loop_counter():
    """Flipping a high bit of a loop counter makes the loop run ~2^31
    more iterations: the campaign watchdog classifies it as HANG."""
    program = assemble("""
    .text
_start:
    movw r4, #3000
loop:
    sub  r4, r4, #1
    cmp  r4, #0
    bgt  loop
    movw r0, #0
    svc  #0
""", name="counter")
    sim = _sim(program)
    sim.run(stop_cycle=300)
    # Drain first: with instructions in flight, the committed mapping is
    # often already dead (renaming masks the flip -- itself a finding the
    # paper's methodology relies on).  After a drain the committed
    # register is the live one.
    sim.drain()
    phys = sim.rat.committed[4]
    sim.inject("regfile", phys * 32 + 30)
    status = sim.run(max_cycles=sim.cycle + 30_000)
    assert status is RunStatus.TIMEOUT


def test_sdc_from_corrupted_data():
    """Flipping a data value changes output silently (SDC)."""
    program = assemble("""
    .text
_start:
    movw r5, #77
    movw r4, #2000
wait:
    sub  r4, r4, #1
    cmp  r4, #0
    bgt  wait
    mov  r0, r5
    svc  #2
    movw r0, #0
    svc  #0
""", name="value")
    golden = _sim(program)
    golden.run()
    sim = _sim(program)
    sim.run(stop_cycle=500)
    phys = sim.rat.committed[5]
    sim.inject("regfile", phys * 32 + 4)
    status = sim.run(max_cycles=200_000)
    assert status is RunStatus.EXITED
    assert sim.output != golden.output


def test_campaign_observes_all_classes_on_real_workload():
    """A larger seeded RF campaign on qsort produces a class mix."""
    program = build("qsort", Toolchain("gnu"))
    campaign = Campaign(
        lambda: MicroArchSim(program, CONFIG), "regfile",
        CampaignConfig(samples=60, window=None, observation="software",
                       seed=123),
        workload="qsort", level="uarch",
    )
    result = campaign.run()
    counts = {cls: result.count(cls) for cls in FaultClass}
    assert counts[FaultClass.MASKED] > 0
    unsafe_kinds = sum(
        1 for cls in (FaultClass.SDC, FaultClass.DUE, FaultClass.HANG)
        if counts[cls] > 0
    )
    assert unsafe_kinds >= 1
    assert counts[FaultClass.MISMATCH] == 0  # software OP never mismatches


def test_campaign_reproducible_across_instances():
    program = build("stringsearch", Toolchain("gnu"))

    def run_once():
        campaign = Campaign(
            lambda: MicroArchSim(program, CONFIG), "l1d.data",
            CampaignConfig(samples=15, window=1000, seed=99),
            workload="stringsearch", level="uarch",
        )
        result = campaign.run()
        return [(r.fault.bit, r.fault.cycle, r.fclass.value)
                for r in result.records]

    assert run_once() == run_once()


def test_golden_failure_raises():
    program = assemble(".text\n_start:\n    hlt\n", name="broken")
    campaign = Campaign(
        lambda: MicroArchSim(program, CONFIG), "regfile",
        CampaignConfig(samples=1),
        workload="broken", level="uarch",
    )
    with pytest.raises(RuntimeError):
        campaign.run()
