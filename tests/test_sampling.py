"""Leveugle sample sizing and Wilson intervals."""

import math

from hypothesis import given, strategies as st
import pytest

from repro.injection.sampling import (
    achieved_error_margin,
    fault_population,
    leveugle_sample_size,
    wilson_interval,
    z_score,
)


def test_paper_sample_size_is_about_4000():
    """e=2%, 99% confidence, huge population -> ~4000 (the paper's n)."""
    n = leveugle_sample_size(10**9, error_margin=0.02, confidence=0.99)
    assert 4000 <= n <= 4200


def test_small_population_caps_sample():
    assert leveugle_sample_size(100) <= 100


@given(st.integers(min_value=10, max_value=10**12))
def test_sample_never_exceeds_population(population):
    assert leveugle_sample_size(population) <= population


@given(st.integers(min_value=1000, max_value=10**9))
def test_tighter_margin_needs_more_samples(population):
    loose = leveugle_sample_size(population, error_margin=0.05)
    tight = leveugle_sample_size(population, error_margin=0.01)
    assert tight >= loose


def test_higher_confidence_needs_more_samples():
    low = leveugle_sample_size(10**8, confidence=0.90)
    high = leveugle_sample_size(10**8, confidence=0.99)
    assert high > low


def test_z_scores_match_tables():
    assert math.isclose(z_score(0.95), 1.95996, abs_tol=1e-4)
    assert math.isclose(z_score(0.99), 2.57583, abs_tol=1e-4)


def test_z_score_interpolated_value():
    # 97% two-sided -> ~2.1701
    assert math.isclose(z_score(0.97), 2.1701, abs_tol=5e-3)


def test_z_score_rejects_out_of_range():
    with pytest.raises(ValueError):
        z_score(1.5)


def test_population_multiplies():
    assert fault_population(100, 50) == 5000
    assert fault_population(100, 0) == 100


def test_leveugle_rejects_bad_population():
    with pytest.raises(ValueError):
        leveugle_sample_size(0)


@given(st.integers(min_value=0, max_value=200),
       st.integers(min_value=1, max_value=200))
def test_wilson_bounds(successes, trials):
    successes = min(successes, trials)
    low, high = wilson_interval(successes, trials)
    assert 0.0 <= low <= successes / trials <= high <= 1.0


def test_wilson_zero_trials_degenerate():
    assert wilson_interval(0, 0) == (0.0, 1.0)


def test_wilson_narrows_with_samples():
    low_small, high_small = wilson_interval(5, 10)
    low_big, high_big = wilson_interval(500, 1000)
    assert (high_big - low_big) < (high_small - low_small)


def test_achieved_margin_inverts_sizing():
    population = 10**8
    n = leveugle_sample_size(population, error_margin=0.02,
                             confidence=0.99)
    margin = achieved_error_margin(population, n, confidence=0.99)
    assert math.isclose(margin, 0.02, rel_tol=0.02)


def test_achieved_margin_degenerate_cases():
    assert achieved_error_margin(1000, 0) == 1.0
    assert achieved_error_margin(1000, 1000) == 0.0
