"""RT-level model: correctness, pipeline mechanics, signal tracing."""

import pytest

from repro.isa import Interpreter, Toolchain, assemble
from repro.rtl import RTLConfig, RTLSim
from repro.uarch import RunStatus
from repro.workloads import build, expected_output

FAST = RTLConfig(trace_signals=False, dcache_size=2048, icache_size=2048)


def run_rtl(body, config=None):
    program = assemble(".text\n_start:\n" + body)
    sim = RTLSim(program, config or FAST)
    status = sim.run()
    return sim, status


EXIT = "    movw r0, #0\n    svc #0\n"


def test_simple_program():
    sim, status = run_rtl("""
    movw r1, #3
    movw r2, #4
    add  r3, r1, r2
    mov  r0, r3
    svc  #2
""" + EXIT)
    assert status is RunStatus.EXITED
    assert sim.output == b"7"


def test_back_to_back_dependency():
    sim, _ = run_rtl("""
    movw r1, #1
    add  r2, r1, r1
    add  r3, r2, r2
    add  r4, r3, r3
    mov  r0, r4
    svc  #2
""" + EXIT)
    assert sim.output == b"8"


def test_load_use_and_forwarding():
    sim, _ = run_rtl("""
    ldr  r1, =buffer
    movw r2, #5
    str  r2, [r1]
    ldr  r3, [r1]
    add  r4, r3, #1     ; load-use dependency
    mov  r0, r4
    svc  #2
""" + EXIT + "\n.data\nbuffer: .space 4\n")
    assert sim.output == b"6"


def test_multiply_latency_respected():
    sim, _ = run_rtl("""
    movw r1, #6
    movw r2, #7
    mul  r3, r1, r2
    add  r4, r3, #1     ; must wait for the multiplier
    mov  r0, r4
    svc  #2
""" + EXIT)
    assert sim.output == b"43"


def test_conditional_and_flags_in_order():
    sim, _ = run_rtl("""
    movw r1, #9
    cmp  r1, #9
    moveq r2, #4
    addne r2, r2, #1
    mov  r0, r2
    svc  #2
""" + EXIT)
    assert sim.output == b"4"


def test_branch_mispredict_recovery():
    sim, status = run_rtl("""
    movw r4, #0
    movw r5, #0
loop:
    and  r1, r4, #1
    cmp  r1, #0
    beq  even
    add  r5, r5, #3
    b    next
even:
    add  r5, r5, #1
next:
    add  r4, r4, #1
    cmp  r4, #30
    blt  loop
    mov  r0, r5
    svc  #2
""" + EXIT)
    assert status is RunStatus.EXITED
    assert sim.output == b"60"
    assert sim.core.mispredicts > 0


def test_wrong_path_bad_fetch_is_harmless():
    sim, status = run_rtl("""
    movw r0, #0
    svc  #0
""")
    assert status is RunStatus.EXITED


def test_exception_reported():
    sim, status = run_rtl("""
    mvn  r1, #0
    ldr  r2, [r1]
""" + EXIT)
    assert status is RunStatus.FAULT
    assert sim.fault.kind in ("mem-fault", "align-fault")


@pytest.mark.parametrize("name", ("fft", "qsort", "caes", "sha"))
def test_cosim_output_and_icount(name):
    program = build(name, Toolchain("armcc"))
    ref = Interpreter(program).run(max_insts=2_000_000)
    sim = RTLSim(program, FAST)
    status = sim.run()
    assert status is RunStatus.EXITED
    assert sim.output == ref.output == expected_output(name)
    assert sim.icount == ref.inst_count


def test_in_order_ipc_below_uarch():
    """The in-order RT pipeline must not out-run the OoO model in IPC."""
    from repro.uarch import MicroArchSim

    program = build("qsort", Toolchain("gnu"))
    rtl = RTLSim(program, FAST)
    rtl.run()
    uarch = MicroArchSim(program)
    uarch.run()
    assert rtl.stats()["ipc"] <= uarch.stats()["ipc"] + 0.05


def test_checkpoint_restore_determinism():
    program = build("sha", Toolchain("armcc"))
    sim = RTLSim(program, FAST)
    sim.run(stop_cycle=2500)
    cp = sim.checkpoint()
    sim.run()
    reference = (sim.output, [t.key() for t in sim.pinout], sim.icount)
    other = RTLSim(program, FAST)
    other.restore(cp)
    other.run()
    assert (other.output, [t.key() for t in other.pinout],
            other.icount) == reference


def test_restored_matches_continuous_golden_content():
    program = build("stringsearch", Toolchain("armcc"))
    golden = RTLSim(program, FAST)
    golden.run()
    sim = RTLSim(program, FAST)
    sim.run(stop_cycle=3000)
    cp = sim.checkpoint()
    sim.restore(cp)
    sim.run()
    assert sim.output == golden.output
    assert [t.key() for t in sim.pinout] == \
        [t.key() for t in golden.pinout]


def test_pinout_word_beats():
    """RTL write-backs appear as word-granular bus beats."""
    program = build("stringsearch", Toolchain("armcc"))
    sim = RTLSim(program, RTLConfig(trace_signals=False, dcache_size=512,
                                    icache_size=512))
    sim.run()
    wbs = [t for t in sim.pinout if t.kind == "wb"]
    assert wbs and all(len(t.data) == 4 for t in wbs)


def test_blocking_miss_freezes_cycles():
    """A D-cache miss costs at least the burst length in cycles."""
    cfg = RTLConfig(trace_signals=False, dcache_size=512, icache_size=512)
    program = build("qsort", Toolchain("armcc"))
    sim = RTLSim(program, cfg)
    sim.run()
    baseline = RTLSim(build("qsort", Toolchain("armcc")), FAST)
    baseline.run()
    assert sim.cycle > baseline.cycle  # smaller cache -> more stalls


def test_fault_targets_equivalent_to_uarch():
    """The paper's premise: equivalent structure populations."""
    from repro.uarch import MicroArchSim

    program = build("sha", Toolchain("gnu"))
    rtl_targets = RTLSim(program, FAST).fault_targets()
    uarch_targets = MicroArchSim(program).fault_targets()
    assert rtl_targets["regfile"] == uarch_targets["regfile"]


def test_rf_injection_in_spare_entries_masked():
    program = build("stringsearch", Toolchain("armcc"))
    golden = RTLSim(program, FAST)
    golden.run()
    sim = RTLSim(program, FAST)
    sim.run(stop_cycle=1000)
    sim.inject("regfile", 40 * 32 + 7)  # banked/spare entry
    sim.run()
    assert sim.output == golden.output


def test_cpsr_injection_supported():
    program = build("sha", Toolchain("armcc"))
    sim = RTLSim(program, FAST)
    sim.run(stop_cycle=500)
    before = sim.rf.cpsr
    sim.inject("cpsr", 2)
    assert sim.rf.cpsr == before ^ 0b100


# ----------------------------------------------------------------------
# signal tracing
# ----------------------------------------------------------------------

def test_signal_trace_deterministic():
    program = build("sha", Toolchain("armcc"))
    a = RTLSim(program, RTLConfig(dcache_size=2048, icache_size=2048))
    a.run()
    b = RTLSim(program, RTLConfig(dcache_size=2048, icache_size=2048))
    b.run()
    assert a.signal_crc == b.signal_crc
    assert a.signal_crc is not None


def test_signal_trace_detects_fault_activity():
    program = build("sha", Toolchain("armcc"))
    golden = RTLSim(program, RTLConfig(dcache_size=2048, icache_size=2048))
    golden.run()
    faulty = RTLSim(program, RTLConfig(dcache_size=2048, icache_size=2048))
    faulty.run(stop_cycle=2000)
    faulty.inject("regfile", 4 * 32 + 0)  # live register
    faulty.run()
    assert faulty.signal_crc != golden.signal_crc


def test_vcd_export_structure():
    program = build("stringsearch", Toolchain("armcc"))
    sim = RTLSim(program, RTLConfig(dcache_size=2048, icache_size=2048))
    sim.run(stop_cycle=200)
    vcd = sim.export_vcd()
    assert "$enddefinitions" in vcd
    assert "$var wire" in vcd
    assert "#1" in vcd


def test_vcd_requires_tracing():
    program = build("sha", Toolchain("armcc"))
    sim = RTLSim(program, FAST)
    with pytest.raises(RuntimeError):
        sim.export_vcd()


def test_toggle_counts_accumulate():
    program = build("sha", Toolchain("armcc"))
    sim = RTLSim(program, RTLConfig(dcache_size=2048, icache_size=2048))
    sim.run(stop_cycle=1000)
    assert sim.trace.toggles.get("rf", 0) > 0


def test_rtl_config_rejects_unknown():
    with pytest.raises(TypeError):
        RTLConfig(bogus=True)
