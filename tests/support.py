"""Shared helpers for the test suite.

(Not a ``conftest.py``: the benchmarks suite already has one of those,
and two same-named modules on ``sys.path`` collide when both suites are
collected in one run -- so this lives under a unique basename.)
"""


def truncate_records(store_dir, keep, partial_bytes=0):
    """Chop a campaign store's record stream after ``keep`` records --
    the footprint of a kill -- regardless of record format.

    ``partial_bytes`` additionally keeps that many bytes of the next
    record: a torn tail the store must truncate away on resume.
    """
    import pathlib

    from repro.injection import storefmt

    store_dir = pathlib.Path(store_dir)
    binary = store_dir / "records.bin"
    if binary.exists():
        end = (storefmt.RECORDS_HEADER_BYTES
               + keep * storefmt.RECORD_BYTES + partial_bytes)
        binary.write_bytes(binary.read_bytes()[:end])
        return
    jsonl = store_dir / "records.jsonl"
    lines = jsonl.read_text().splitlines(True)
    text = "".join(lines[:keep])
    if partial_bytes:
        text += lines[keep][:partial_bytes]
    jsonl.write_text(text)


def record_keys(result):
    """One campaign's records projected onto the bit-identity contract.

    Everything that must be identical across execution strategies --
    worker count, warm/cold start, cache eviction, store resume -- for
    a fixed seed: the fault identity, the classification, its detail
    and the simulated tail.  Per-session accounting (``wall_seconds``,
    ``replay_cycles``) is deliberately excluded; see
    ``CampaignConfig.identity``.
    """
    return [
        (r.fault.bit, r.fault.cycle, r.fclass, r.detail, r.sim_cycles)
        for r in result.records
    ]
