"""Shared helpers for the test suite.

(Not a ``conftest.py``: the benchmarks suite already has one of those,
and two same-named modules on ``sys.path`` collide when both suites are
collected in one run -- so this lives under a unique basename.)
"""


def record_keys(result):
    """One campaign's records projected onto the bit-identity contract.

    Everything that must be identical across execution strategies --
    worker count, warm/cold start, cache eviction, store resume -- for
    a fixed seed: the fault identity, the classification, its detail
    and the simulated tail.  Per-session accounting (``wall_seconds``,
    ``replay_cycles``) is deliberately excluded; see
    ``CampaignConfig.identity``.
    """
    return [
        (r.fault.bit, r.fault.cycle, r.fclass, r.detail, r.sim_cycles)
        for r in result.records
    ]
