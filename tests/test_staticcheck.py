"""``prune_mode="static"``: the capture-free pruner's exactness suite.

The acceptance contract mirrors test_prune.py's: static pruning is a
work-avoidance optimisation, never a result change.  For a fixed seed,
``prune_mode="static"`` must classify fault-for-fault identically to
``prune_mode="off"`` -- checked here on the {stringsearch, sha} x
{arch, uarch, rtl} x jobs {1, 2} matrix with the soundness sanitizer
(``REPRO_STATIC_XCHECK=1``) armed the whole time, so every static
verdict is simultaneously audited against the dynamic access trace
wherever one exists.

Plus unit coverage of the :class:`StaticPruner` verdict plumbing and
of the sanitizer itself (a doctored trace must raise
:class:`StaticCrossCheckError`), and the acceptance pin: the ``fig1``
preset grid classifies identically under ``prune=static`` vs
``prune=off`` at every cell.
"""

import pytest

from repro.injection.campaign import (
    Campaign,
    CampaignConfig,
    _assert_static_verdict,
)
from repro.injection.classify import FaultClass
from repro.injection.faults import FaultSpec
from repro.prune import LifetimeTrace, RetiredPCTrace
from repro.scenario.presets import preset_path
from repro.scenario.runner import ScenarioRunner
from repro.scenario.spec import ScenarioSpec, load_mapping
from repro.sim import registry
from repro.staticcheck import (
    STATIC_OVERWRITE_DETAIL,
    STATIC_SILENT_DETAIL,
    STATIC_UNREACHABLE_DETAIL,
    StaticCrossCheckError,
    static_prune_available,
)
from support import record_keys

SAMPLES = 20
SEED = 13
WINDOW = 800

ALL_LEVELS = registry.level_names()
WORKLOADS = ("stringsearch", "sha")
#: Tiers whose injection targets the static engine can model.
MODELED = tuple(lv for lv in ALL_LEVELS if static_prune_available(lv))


@pytest.fixture(scope="module")
def xcheck_env():
    """Arm the prune-soundness sanitizer for every campaign below."""
    patcher = pytest.MonkeyPatch()
    patcher.setenv("REPRO_STATIC_XCHECK", "1")
    yield
    patcher.undo()


def run_campaign(factory, level, workload, **config_kwargs):
    config = CampaignConfig(samples=SAMPLES, window=WINDOW, seed=SEED,
                            **config_kwargs)
    campaign = Campaign(factory, "regfile", config,
                        workload=workload, level=level)
    return campaign.run()


def class_keys(result):
    """The identity the off-vs-static contract pins: fault and class.
    (``record_keys`` also pins detail/sim_cycles, which legitimately
    differ between a simulated and a statically-pruned record.)"""
    return [(r.fault.bit, r.fault.cycle, r.fclass) for r in result.records]


# ----------------------------------------------------------------------
# the acceptance matrix: {stringsearch, sha} x all tiers x jobs {1, 2}
# ----------------------------------------------------------------------

@pytest.fixture(
    scope="module",
    params=[(wl, lv) for wl in WORKLOADS for lv in ALL_LEVELS],
    ids=lambda p: f"{p[0]}-{p[1]}",
)
def matrix_cell(request, xcheck_env):
    workload, level = request.param
    factory = registry.create_frontend(level, workload).sim_factory
    off = run_campaign(factory, level, workload, prune_mode="off")
    static = run_campaign(factory, level, workload, prune_mode="static")
    return workload, level, factory, off, static


def test_static_mode_classifications_identical(matrix_cell):
    workload, level, _, off, static = matrix_cell
    assert class_keys(static) == class_keys(off), (
        f"{workload}/{level}: static pruning changed a classification"
    )


def test_static_mode_prunes_only_where_modeled(matrix_cell):
    workload, level, _, off, static = matrix_cell
    assert off.pruned_count == 0
    assert static.simulated_count + static.pruned_count == SAMPLES
    if static_prune_available(level):
        assert static.pruned_count > 0, (
            f"{workload}/{level}: the static engine never fired"
        )
    else:
        # The uarch tier injects renamed physical registers: no static
        # identity, every fault simulates.
        assert static.pruned_count == 0


def test_static_records_carry_static_provenance(matrix_cell):
    _, _, _, _, static = matrix_cell
    details = {STATIC_OVERWRITE_DETAIL, STATIC_SILENT_DETAIL,
               STATIC_UNREACHABLE_DETAIL}
    for record in static.records:
        if record.pruned:
            assert record.pruned == "static"
            assert record.detail in details
            assert record.sim_cycles == 0 and record.replay_cycles == 0


def test_static_mode_independent_of_jobs(matrix_cell):
    workload, level, factory, _, static = matrix_cell
    jobs2 = run_campaign(factory, level, workload, prune_mode="static",
                         jobs=2)
    assert record_keys(jobs2) == record_keys(static), (
        f"{workload}/{level}: jobs=2 perturbed the static verdicts"
    )


# ----------------------------------------------------------------------
# StaticPruner unit behavior
# ----------------------------------------------------------------------

def make_pruner(level="arch", observation="pinout", pc_trace=None,
                workload="stringsearch"):
    from repro.staticcheck import StaticPruner
    from repro.workloads.registry import build

    return StaticPruner(build(workload), level, observation, pc_trace,
                        events_at_stop_executed=False)


def test_pruner_unmodeled_structure_simulates():
    pruner = make_pruner()
    assert pruner.classify(FaultSpec("l1d.data", 5, 10)) is None


def test_pruner_unaddressable_regfile_entry_masked_without_anchor():
    # Entries >= 16 need no retired-PC stream: no instruction field can
    # name them (pc_trace=None would defeat any anchored verdict).
    pruner = make_pruner(level="rtl")
    verdict = pruner.classify(FaultSpec("regfile", 20 * 32, 10))
    assert verdict == (FaultClass.MASKED, STATIC_UNREACHABLE_DETAIL)


def test_pruner_without_stream_simulates_addressable_cells():
    pruner = make_pruner()
    assert pruner.classify(FaultSpec("regfile", 0, 10)) is None


def test_pruner_anchor_respects_stop_convention():
    trace = RetiredPCTrace()
    trace.record(10, 0x10000)
    trace.record(12, 0x10004)
    hw = make_pruner(pc_trace=trace)
    hw.events_at_stop_executed = True
    assert hw.anchor(10) == 0x10004   # cycle-10 retirement already ran
    arch = make_pruner(pc_trace=trace)
    assert arch.anchor(10) == 0x10000  # still ahead at the arch tier
    assert arch.anchor(13) is None     # past the last retirement


def test_pruner_silent_verdict_defers_to_arch_observation():
    """A statically never-read cell is masked at pinout/software but
    must simulate under the ``arch`` (HVF) observation point, exactly
    like the dynamic pruner's silent-fault gate."""
    from repro.staticcheck import StaticAnalysis, model_for_level
    from repro.workloads.registry import build

    trace = RetiredPCTrace()
    prog = build("stringsearch")
    analysis = StaticAnalysis(prog, model_for_level("arch"))
    # Find a (pc, reg) pair that is statically dead-silent: never read
    # again but not must-overwritten.
    probe = None
    for pc in analysis.flow.live_in:
        for reg in range(13):
            bit = 1 << reg
            if (not analysis.live_at(pc, bit)
                    and not analysis.must_dead_at(pc, bit)):
                probe = (pc, reg)
                break
        if probe:
            break
    assert probe is not None, "no silent-dead cell in stringsearch?"
    pc, reg = probe
    trace.record(100, pc)
    fault = FaultSpec("regfile", reg * 32, 50)
    masked = make_pruner(pc_trace=trace)
    assert masked.classify(fault) == (
        FaultClass.MASKED, STATIC_SILENT_DETAIL)
    hvf = make_pruner(observation="arch", pc_trace=trace)
    assert hvf.classify(fault) is None


# ----------------------------------------------------------------------
# the sanitizer: static-dead must be a subset of dynamic-dead
# ----------------------------------------------------------------------

def sanitizer_trace():
    trace = LifetimeTrace()
    trace.register("regfile", 32, reachable_cells=range(16))
    trace.register("cpsr", 1)
    return trace


def test_sanitizer_accepts_consistent_verdicts():
    trace = sanitizer_trace()
    trace.record("regfile", 1, 50, True)       # write-first: overwrite ok
    fault = FaultSpec("regfile", 32, 10)
    _assert_static_verdict(trace, fault, STATIC_OVERWRITE_DETAIL, True)
    _assert_static_verdict(trace, FaultSpec("regfile", 64, 10),
                           STATIC_SILENT_DETAIL, True)  # no event: ok
    _assert_static_verdict(trace, FaultSpec("regfile", 20 * 32, 10),
                           STATIC_UNREACHABLE_DETAIL, True)


def test_sanitizer_rejects_overwrite_on_read_first_trace():
    trace = sanitizer_trace()
    trace.record("regfile", 1, 50, False)      # dynamic read first
    with pytest.raises(StaticCrossCheckError):
        _assert_static_verdict(trace, FaultSpec("regfile", 32, 10),
                               STATIC_OVERWRITE_DETAIL, True)


def test_sanitizer_rejects_silent_on_read_trace():
    trace = sanitizer_trace()
    trace.record("regfile", 1, 50, False)
    with pytest.raises(StaticCrossCheckError):
        _assert_static_verdict(trace, FaultSpec("regfile", 32, 10),
                               STATIC_SILENT_DETAIL, True)


def test_sanitizer_rejects_unreachable_on_reachable_cell():
    trace = sanitizer_trace()
    with pytest.raises(StaticCrossCheckError):
        _assert_static_verdict(trace, FaultSpec("regfile", 32, 10),
                               STATIC_UNREACHABLE_DETAIL, True)


def test_sanitizer_skips_untraced_structures():
    trace = sanitizer_trace()
    _assert_static_verdict(trace, FaultSpec("l1d.data", 5, 10),
                           STATIC_OVERWRITE_DETAIL, True)


def test_sanitizer_respects_stop_convention():
    trace = sanitizer_trace()
    trace.record("regfile", 0, 10, False)  # read stamped at the cycle
    fault = FaultSpec("regfile", 0, 10)
    # Hardware convention: the cycle-10 read already ran -- the next
    # event is nothing, so a silent claim is consistent.
    _assert_static_verdict(trace, fault, STATIC_SILENT_DETAIL, True)
    # Arch convention: the read is still ahead -- the claim is a lie.
    with pytest.raises(StaticCrossCheckError):
        _assert_static_verdict(trace, fault, STATIC_SILENT_DETAIL, False)


# ----------------------------------------------------------------------
# the acceptance pin: fig1 preset, prune=static vs prune=off
# ----------------------------------------------------------------------

def fig1_spec(prune):
    """The shipped fig1 grid (uarch pinout / uarch pinout-notimer /
    rtl pinout), shrunk to test size, at the given prune mode."""
    mapping = load_mapping(preset_path("fig1"))
    mapping.pop("present", None)
    mapping.setdefault("targets", {})["workloads"] = ["stringsearch"]
    mapping.setdefault("faults", {})["samples"] = 6
    mapping.setdefault("execution", {})["prune"] = prune
    return ScenarioSpec.from_mapping(mapping, source=f"fig1-{prune}")


def test_fig1_preset_classes_identical_under_static_prune(xcheck_env):
    results = {prune: ScenarioRunner(fig1_spec(prune)).run()
               for prune in ("static", "off")}
    cells = {"static": list(results["static"]),
             "off": list(results["off"])}
    assert len(cells["static"]) == len(cells["off"]) == 3
    pruned_total = 0
    for (_, static), (_, off) in zip(cells["static"], cells["off"]):
        assert class_keys(static) == class_keys(off)
        pruned_total += static.pruned_count
    # The grid's rtl cell must actually exercise the static engine.
    assert pruned_total > 0
