"""Parallel campaign executor: determinism, sharding, serial fallback."""

import multiprocessing
import pickle

import pytest

from repro.injection import executor
from repro.injection.campaign import Campaign, CampaignConfig
from repro.isa import assemble
from repro.isa.toolchain import Toolchain
from repro.uarch import CortexA9Config, MicroArchSim
from support import record_keys, truncate_records

#: Same tiny workload as test_campaign.py: fast enough that a campaign
#: can run several times (serial + parallel) inside one test.
TINY_SRC = """
    .text
_start:
    ldr  r1, =buffer
    movw r2, #0
    movw r3, #64
fill:
    mul  r4, r2, r2
    str  r4, [r1, r2, lsl #2]
    add  r2, r2, #1
    cmp  r2, r3
    blt  fill
    movw r0, #0
    movw r2, #0
fold:
    ldr  r4, [r1, r2, lsl #2]
    movw r5, #31
    mul  r0, r0, r5
    add  r0, r0, r4
    add  r2, r2, #1
    cmp  r2, r3
    blt  fold
    svc  #3
    movw r0, #10
    svc  #1
    movw r0, #0
    svc  #0
    .pool
    .data
buffer: .space 256
"""


@pytest.fixture(scope="module")
def tiny_program():
    return assemble(TINY_SRC, name="tiny", toolchain=Toolchain("gnu"))


class TinyFactory:
    """Picklable simulator factory (a lambda would break spawn)."""

    def __init__(self, program):
        self.program = program

    def __call__(self):
        config = CortexA9Config(dcache_size=1024, icache_size=1024)
        return MicroArchSim(self.program, config)


def run_campaign(program, **config_kwargs):
    # prune_mode="off": these tests pin the executor's sharding and
    # merge mechanics, which need every sampled fault to actually reach
    # the faulty phase (pruning would thin the work list; its own
    # equivalence suite lives in tests/test_prune.py).
    config = CampaignConfig(samples=16, window=800, seed=9,
                            prune_mode="off", **config_kwargs)
    campaign = Campaign(TinyFactory(program), "regfile", config,
                        workload="tiny", level="uarch")
    return campaign.run()


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------

def test_shard_covers_all_specs_in_order():
    specs = list(range(10))
    batches = executor.shard(specs, jobs=3)
    merged = []
    for start, faults in batches:
        assert specs[start:start + len(faults)] == faults
        merged.extend(faults)
    assert merged == specs


def test_shard_explicit_batch_size():
    batches = executor.shard(list(range(7)), jobs=2, batch_size=3)
    assert [(s, len(f)) for s, f in batches] == [(0, 3), (3, 3), (6, 1)]


def test_shard_empty():
    assert executor.shard([], jobs=4) == []


def test_default_jobs_positive():
    assert executor.default_jobs() >= 1


def test_resolve_start_method():
    available = multiprocessing.get_all_start_methods()
    assert executor.resolve_start_method() in available
    assert executor.resolve_start_method("spawn") == "spawn"
    with pytest.raises(ValueError):
        executor.resolve_start_method("telepathy")


# ----------------------------------------------------------------------
# config knobs
# ----------------------------------------------------------------------

def test_config_rejects_bad_jobs():
    with pytest.raises(ValueError):
        CampaignConfig(jobs=0)
    with pytest.raises(ValueError):
        CampaignConfig(batch_size=0)


def test_config_resolves_auto_jobs():
    config = CampaignConfig(jobs=None)
    assert config.resolved_jobs() == executor.default_jobs()
    # Never more workers than faults.
    assert config.resolved_jobs(samples=1) == 1
    assert CampaignConfig(jobs=8).resolved_jobs(samples=3) == 3


def test_config_describe_mentions_jobs():
    assert "jobs=4" in CampaignConfig(jobs=4).describe()
    assert "jobs" not in CampaignConfig().describe()


# ----------------------------------------------------------------------
# serial fallback: jobs=1 must never touch a process pool
# ----------------------------------------------------------------------

def test_jobs1_never_spawns_pool(tiny_program, monkeypatch):
    def boom(*args, **kwargs):
        raise AssertionError("jobs=1 must not use the parallel executor")

    monkeypatch.setattr(executor, "run_parallel", boom)
    monkeypatch.setattr(multiprocessing, "Pool", boom)
    result = run_campaign(tiny_program, jobs=1)
    assert result.n == 16
    assert result.jobs == 1


# ----------------------------------------------------------------------
# equivalence: same seed => identical records, any worker count
# ----------------------------------------------------------------------

def test_parallel_matches_serial(tiny_program):
    serial = run_campaign(tiny_program, jobs=1)
    parallel = run_campaign(tiny_program, jobs=2)
    assert parallel.jobs == 2
    # Requesting more workers than batches reports the clamped count.
    clamped = run_campaign(tiny_program, jobs=16, batch_size=8)
    assert clamped.jobs == 2
    assert record_keys(clamped) == record_keys(serial)
    assert record_keys(parallel) == record_keys(serial)
    assert parallel.summary()["unsafeness"] == serial.summary()["unsafeness"]


def test_parallel_spawn_matches_serial(tiny_program):
    if "spawn" not in multiprocessing.get_all_start_methods():
        pytest.skip("spawn not available")
    serial = run_campaign(tiny_program, jobs=1)
    spawned = run_campaign(tiny_program, jobs=2, start_method="spawn")
    assert record_keys(spawned) == record_keys(serial)


def test_single_batch_degenerates_in_process(tiny_program, monkeypatch):
    # batch_size >= samples leaves one batch; the executor must fall
    # back to in-process execution rather than paying for a 1-task pool.
    monkeypatch.setattr(multiprocessing, "Pool", None)

    def no_pool(method=None):
        raise AssertionError("degenerate shard must not build a context")

    monkeypatch.setattr(multiprocessing, "get_context", no_pool)
    serial = run_campaign(tiny_program, jobs=1)
    degenerate = run_campaign(tiny_program, jobs=4, batch_size=100)
    assert record_keys(degenerate) == record_keys(serial)
    # The result reports the *effective* worker count, not the request.
    assert degenerate.jobs == 1


def test_parallel_progress_reaches_total(tiny_program):
    seen = []
    config = CampaignConfig(samples=12, window=800, seed=9, jobs=2,
                            prune_mode="off")
    campaign = Campaign(TinyFactory(tiny_program), "regfile", config,
                        workload="tiny", level="uarch")
    campaign.run(progress=lambda done, total, rec: seen.append((done,
                                                                total)))
    assert seen[-1] == (12, 12)
    assert [d for d, _ in seen] == sorted(d for d, _ in seen)


@pytest.mark.parametrize("samples,batch_size", [(13, 5), (16, 5),
                                                (10, 3)])
def test_progress_counts_each_fault_exactly_once(tiny_program, samples,
                                                 batch_size):
    """Regression: uneven batch splits (batch_size not dividing the
    fault count) must neither double-count nor drop merged batches --
    the done counter's increments partition the fault set exactly."""
    seen = []
    config = CampaignConfig(samples=samples, window=800, seed=9, jobs=2,
                            batch_size=batch_size, prune_mode="off")
    campaign = Campaign(TinyFactory(tiny_program), "regfile", config,
                        workload="tiny", level="uarch")
    result = campaign.run(
        progress=lambda done, total, rec: seen.append((done, total)))
    assert result.n == samples
    assert all(total == samples for _, total in seen)
    dones = [d for d, _ in seen]
    assert dones == sorted(dones), "done counter must be monotone"
    assert dones[-1] == samples
    increments = [b - a for a, b in zip([0] + dones, dones)]
    assert sum(increments) == samples
    assert all(inc > 0 for inc in increments), (
        "a merged batch was double-counted or reported empty"
    )


def test_resumed_progress_counts_only_remaining(tiny_program, tmp_path):
    """Regression companion: with a partially resumed store the done
    counter covers exactly the re-run faults, and the merged result
    still holds every fault exactly once."""
    from repro.injection.store import CampaignStore

    def campaign(jobs=1, batch_size=None):
        config = CampaignConfig(samples=13, window=800, seed=9,
                                jobs=jobs, batch_size=batch_size,
                                prune_mode="off")
        return Campaign(TinyFactory(tiny_program), "regfile", config,
                        workload="tiny", level="uarch")

    reference = campaign().run()
    store = CampaignStore(tmp_path / "s")
    campaign().run(store=store)
    # Drop all but 4 records; the resumed run re-runs the other 9.
    truncate_records(store.path, 4)
    seen = []
    resumed = campaign(jobs=2, batch_size=5).run(
        store=CampaignStore(tmp_path / "s"), resume=True,
        progress=lambda done, total, rec: seen.append((done, total)))
    assert resumed.resumed == 4
    assert resumed.n == 13
    assert record_keys(resumed) == record_keys(reference)
    assert seen[-1] == (9, 9)
    dones = [d for d, _ in seen]
    assert dones == sorted(dones) and len(set(dones)) == len(dones)


# ----------------------------------------------------------------------
# payload picklability (what the pool initializer ships)
# ----------------------------------------------------------------------

def test_runner_payload_pickles(tiny_program):
    from repro.injection.campaign import FaultRunner
    from repro.injection.checkpoint_cache import CheckpointCache

    factory = TinyFactory(tiny_program)
    sim = factory()
    cache = CheckpointCache(stride=500)
    cache.capture_golden(sim)
    golden = {"cache": cache, "pinout_keys": [], "output": b""}
    runner = FaultRunner(CampaignConfig(samples=1), golden, 10_000)
    clone_factory, clone_runner = pickle.loads(
        pickle.dumps((factory, runner)))
    assert clone_runner.hang_deadline == 10_000
    clone_cache = clone_runner.golden["cache"]
    assert clone_cache.count == cache.count
    assert clone_cache.digests == cache.digests
    assert clone_factory().cycle == 0


def test_bounded_cache_shrinks_worker_payload(tiny_program):
    """The LRU bound caps what the pool initializer serializes."""
    from repro.injection.campaign import FaultRunner
    from repro.injection.checkpoint_cache import CheckpointCache

    factory = TinyFactory(tiny_program)
    sizes = {}
    for bound in (None, 2):
        sim = factory()
        cache = CheckpointCache(stride=300, max_resident=bound)
        cache.capture_golden(sim)
        runner = FaultRunner(CampaignConfig(samples=1),
                             {"cache": cache, "pinout_keys": [],
                              "output": b""}, 10_000)
        sizes[bound] = len(pickle.dumps((factory, runner)))
    assert sizes[2] < sizes[None]


def test_speedup_properties(tiny_program):
    result = run_campaign(tiny_program, jobs=2)
    assert result.estimated_serial_seconds > 0.0
    assert result.speedup > 0.0
    summary = result.summary()
    assert summary["jobs"] == 2
    assert summary["total_s"] == result.total_seconds
