"""HVF-style architectural observation point and latent corruption."""

import pytest

from repro.injection import GeFIN
from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.classify import FaultClass
from repro.injection.observation import (
    arch_digest,
    hardware_state_digest,
    memory_digest,
)
from repro.isa import assemble
from repro.uarch import CortexA9Config, MicroArchSim, RunStatus

CONFIG = CortexA9Config(dcache_size=1024, icache_size=1024)

#: Writes a scratch word that is never read back: an injected flip there
#: is invisible to the output (AVF-masked) but visible to HVF.
LATENT_SRC = """
    .text
_start:
    ldr  r1, =scratch
    movw r2, #0x5A5A
    str  r2, [r1]
    movw r4, #2000
wait:
    sub  r4, r4, #1
    cmp  r4, #0
    bgt  wait
    movw r0, #7
    svc  #2
    movw r0, #0
    svc  #0
    .pool
    .data
scratch: .word 0
"""


def test_memory_digest_sees_dirty_lines():
    program = assemble(LATENT_SRC, name="latent")
    sim = MicroArchSim(program, CONFIG)
    sim.run(stop_cycle=400)
    before = memory_digest(sim.ram, (sim.dcache,))
    # Overwrite the cached scratch value: digest must change even though
    # RAM itself is stale (write-back cache).
    scratch = program.symbols["scratch"]
    ram_before = sim.ram.read32(scratch)
    sim.dcache.write(scratch, 4, 0xDEAD)
    assert sim.ram.read32(scratch) == ram_before
    assert memory_digest(sim.ram, (sim.dcache,)) != before


def test_arch_digest_tracks_registers():
    program = assemble(LATENT_SRC, name="latent")
    sim = MicroArchSim(program, CONFIG)
    sim.run()
    regs, flags = arch_digest(sim)
    assert len(regs) == 15
    assert isinstance(flags, int)


def test_latent_fault_classified():
    """A flip in the never-re-read scratch word is LATENT under HVF."""
    program = assemble(LATENT_SRC, name="latent")
    golden = MicroArchSim(program, CONFIG)
    golden.run()
    golden_state = hardware_state_digest(golden)

    sim = MicroArchSim(program, CONFIG)
    sim.run(stop_cycle=600)  # after the store, mid wait-loop
    scratch = program.symbols["scratch"]
    index, way = sim.dcache.probe(scratch)
    assert way is not None  # still cached
    cfg = sim.dcache.config
    flat_byte = ((index * cfg.ways + way) * cfg.line_size
                 + (scratch & (cfg.line_size - 1)))
    sim.inject("l1d.data", flat_byte * 8 + 1)
    status = sim.run()
    assert status is RunStatus.EXITED
    assert sim.output == golden.output               # AVF-invisible
    assert hardware_state_digest(sim) != golden_state  # HVF-visible


def test_hvf_campaign_superset_of_avf():
    """HVF unsafeness >= AVF unsafeness for identical fault samples."""
    front = GeFIN("stringsearch")
    avf = front.campaign("l1d.data", mode="avf", samples=30, seed=7)
    hvf = front.campaign("l1d.data", mode="hvf", samples=30, seed=7)
    assert hvf.unsafeness >= avf.unsafeness - 1e-9
    assert hvf.summary()["latent"] >= 0


def test_arch_observation_requires_run_to_end():
    with pytest.raises(ValueError):
        CampaignConfig(observation="arch", window=1000)


def test_hvf_mode_via_gefin():
    result = GeFIN("stringsearch").campaign("regfile", mode="hvf",
                                            samples=10)
    assert result.n == 10
    assert "latent" in result.summary()


def test_hvf_never_reports_pinout_mismatch():
    program = assemble(LATENT_SRC, name="latent")
    campaign = Campaign(
        lambda: MicroArchSim(program, CONFIG), "l1d.data",
        CampaignConfig(samples=12, window=None, observation="arch",
                       seed=3),
        workload="latent", level="uarch",
    )
    result = campaign.run()
    assert result.count(FaultClass.MISMATCH) == 0
