"""Property test: static dataflow claims vs a brute-force execution oracle.

Hypothesis generates random assembled programs (straight-line bodies
from ``test_random_cosim``'s instruction strategy, plus optional
forward conditional skips so the CFG has real joins), then executes
each one under the reference interpreter with every access hook
attached -- the register listener, the flag listener and the retired-PC
listener -- producing a single interleaved event stream in program
order.

That stream is the oracle.  For every retired PC and every cell in the
20-bit analysis domain (r0..r15 and the four NZCV flags):

* ``must_dead_at(pc, bit)`` -- "every path from ``pc`` writes the cell
  before reading it" -- implies the executed suffix from that retirement
  contains an access to the cell and the first one is a write;
* ``not live_at(pc, bit)`` -- "no path from ``pc`` reads the cell
  again" -- implies the first access in the executed suffix, if any, is
  a write.

The executed path is one of the statically-quantified paths, and the
interpreter's listener reads are conservative (a superset of what the
machine may consume) while its listener writes are exact -- so a
violation of either implication is a genuine soundness bug in the CFG
or dataflow, precisely the failure the campaign sanitizer
(``REPRO_STATIC_XCHECK``) would later trip on a real workload.  Checked
for both tier models: the arch model, whose event accounting the
interpreter mirrors, and the stricter rtl model, whose extra uses only
weaken its claims relative to the same oracle.
"""

from bisect import bisect_left

from hypothesis import given, settings, strategies as st

from repro.isa import Interpreter, assemble
from repro.staticcheck import ArchDefUse, RTLDefUse, StaticAnalysis
from repro.staticcheck.liveness import FLAG_SHIFT
from test_random_cosim import random_inst

_SKIP_CONDS = ("eq", "ne", "cs", "cc", "mi", "pl", "ge", "lt", "gt", "le")


@st.composite
def branching_program(draw):
    """A terminating program: seeded registers, 1..4 random blocks
    (each optionally guarded by a forward conditional skip), a fold of
    every seed register into r0, print, exit.  Forward-only branches
    guarantee termination regardless of the generated flag state."""
    lines = [".text", "_start:", "    movw r0, #0"]
    lines += [
        f"    movw r{i}, #{draw(st.integers(0, 0xFFFF))}"
        for i in range(1, 11)
    ]
    for block in range(draw(st.integers(min_value=1, max_value=4))):
        body = [
            f"    {draw(random_inst())}"
            for _ in range(draw(st.integers(min_value=1, max_value=6)))
        ]
        if draw(st.booleans()):
            cond = draw(st.sampled_from(_SKIP_CONDS))
            lines.append(f"    b{cond} skip{block}")
            lines += body
            lines.append(f"skip{block}:")
        else:
            lines += body
    for i in range(1, 11):
        lines.append(f"    eor r0, r0, r{i}")
    lines += ["    svc #3", "    movw r0, #0", "    svc #0"]
    return "\n".join(lines)


def _run_with_oracle(program):
    """Execute ``program`` capturing (mask, is_write) events in order
    plus the retired (pc, position-in-event-stream) sequence."""
    events = []      # (20-bit mask, is_write), one cell-set per event
    retired = []     # (pc, index into events at retirement)
    interp = Interpreter(program)
    interp.regs.listener = lambda index, is_write: events.append(
        (1 << index, is_write)
    )

    def on_flags(read_mask, write_mask):
        # Reads before writes, matching the dynamic trace's same-stamp
        # sort order (and the liveness model's C/V-consumed contract).
        if read_mask:
            events.append((read_mask << FLAG_SHIFT, False))
        if write_mask:
            events.append((write_mask << FLAG_SHIFT, True))

    interp.flag_listener = on_flags
    interp.pc_listener = lambda pc: retired.append((pc, len(events)))
    interp.run(max_insts=10_000)
    return events, retired


def _per_bit_index(events):
    """bit -> (sorted event positions, is_write flags) for fast
    first-access-at-or-after queries."""
    positions = {bit: [] for bit in range(20)}
    writes = {bit: [] for bit in range(20)}
    for pos, (mask, is_write) in enumerate(events):
        for bit in range(20):
            if mask & (1 << bit):
                positions[bit].append(pos)
                writes[bit].append(is_write)
    return positions, writes


def _first_access(positions, writes, bit, pos):
    """(exists, is_write) of the first event on ``bit`` at >= ``pos``."""
    idx = bisect_left(positions[bit], pos)
    if idx == len(positions[bit]):
        return False, False
    return True, writes[bit][idx]


@settings(max_examples=20, deadline=None)
@given(branching_program(), st.sampled_from(("arch", "rtl")))
def test_static_claims_hold_on_executed_path(source, tier):
    program = assemble(source)
    model = ArchDefUse() if tier == "arch" else RTLDefUse()
    analysis = StaticAnalysis(program, model)
    events, retired = _run_with_oracle(program)
    positions, writes = _per_bit_index(events)
    for pc, pos in retired:
        for bit in range(20):
            mask_bit = 1 << bit
            exists, first_is_write = _first_access(
                positions, writes, bit, pos
            )
            if analysis.must_dead_at(pc, mask_bit):
                # Every path overwrites first -- the executed path must.
                assert exists and first_is_write, (
                    f"{tier}: must-dead bit {bit} at {pc:#x} but the "
                    f"run {'read it first' if exists else 'never wrote it'}"
                )
            if not analysis.live_at(pc, mask_bit):
                # No path reads again -- the run must not read first.
                assert (not exists) or first_is_write, (
                    f"{tier}: statically-dead bit {bit} at {pc:#x} was "
                    f"read by the executed path"
                )


@settings(max_examples=10, deadline=None)
@given(branching_program())
def test_static_claims_are_not_vacuous(source):
    """The generator produces programs where the analysis proves
    *something* -- the seed/fold structure guarantees overwritten
    registers exist, so a generator or analysis regression that silences
    every claim fails here rather than passing the oracle vacuously."""
    program = assemble(source)
    analysis = StaticAnalysis(program, ArchDefUse())
    _, retired = _run_with_oracle(program)
    claims = sum(
        1
        for pc, _ in retired
        for bit in range(20)
        if analysis.must_dead_at(pc, 1 << bit)
        or not analysis.live_at(pc, 1 << bit)
    )
    assert claims > 0
