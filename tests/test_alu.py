"""Shared data-path logic (barrel shifter, adder, DP ops)."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import alu
from repro.isa.flags import Flags
from repro.isa.instructions import Op, ShiftKind

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)


@given(U32)
def test_u32_masks(value):
    assert 0 <= alu.u32(value * 3 + 7) <= 0xFFFFFFFF


@given(U32)
def test_s32_roundtrip(value):
    assert alu.u32(alu.s32(value)) == value


@given(U32, st.integers(min_value=0, max_value=31))
def test_lsl_matches_python(value, amount):
    result, _ = alu.barrel_shift(value, ShiftKind.LSL, amount, False)
    assert result == (value << amount) & 0xFFFFFFFF


@given(U32, st.integers(min_value=0, max_value=31))
def test_lsr_matches_python(value, amount):
    result, _ = alu.barrel_shift(value, ShiftKind.LSR, amount, False)
    assert result == (value >> amount if amount else value)


@given(U32, st.integers(min_value=1, max_value=31))
def test_asr_matches_python(value, amount):
    result, _ = alu.barrel_shift(value, ShiftKind.ASR, amount, False)
    assert result == alu.u32(alu.s32(value) >> amount)


@given(U32, st.integers(min_value=1, max_value=31))
def test_ror_rotates(value, amount):
    result, _ = alu.barrel_shift(value, ShiftKind.ROR, amount, False)
    expected = alu.u32((value >> amount) | (value << (32 - amount)))
    assert result == expected


@given(U32, st.booleans())
def test_zero_shift_passes_carry(value, carry):
    for kind in ShiftKind:
        result, carry_out = alu.barrel_shift(value, kind, 0, carry)
        assert result == value
        assert carry_out == carry


def test_lsl_32_carry_is_bit0():
    _, carry = alu.barrel_shift(1, ShiftKind.LSL, 32, False)
    assert carry
    result, _ = alu.barrel_shift(1, ShiftKind.LSL, 32, False)
    assert result == 0


def test_lsr_32_carry_is_bit31():
    _, carry = alu.barrel_shift(0x80000000, ShiftKind.LSR, 32, False)
    assert carry


def test_asr_large_fills_sign():
    result, _ = alu.barrel_shift(0x80000000, ShiftKind.ASR, 40, False)
    assert result == 0xFFFFFFFF
    result, _ = alu.barrel_shift(0x7FFFFFFF, ShiftKind.ASR, 40, False)
    assert result == 0


@given(U32, U32, st.booleans())
def test_add_with_carry_matches_arith(a, b, carry):
    result, carry_out, overflow = alu.add_with_carry(a, b, carry)
    total = a + b + int(carry)
    assert result == total & 0xFFFFFFFF
    assert carry_out == (total > 0xFFFFFFFF)
    signed = alu.s32(a) + alu.s32(b) + int(carry)
    assert overflow == (signed != alu.s32(result))


@given(U32, U32)
def test_sub_via_adc_identity(a, b):
    """SUB = a + ~b + 1 (the dp_compute implementation path)."""
    result, _, _ = alu.add_with_carry(a, ~b, True)
    assert result == (a - b) & 0xFFFFFFFF


@given(U32, U32)
def test_dp_add_sets_z_and_n(a, b):
    result, flags = alu.dp_compute(Op.ADD, a, b, Flags(), False)
    assert flags.z == (result == 0)
    assert flags.n == bool(result & 0x80000000)


def test_dp_cmp_equal_sets_zc():
    _, flags = alu.dp_compute(Op.CMP, 5, 5, Flags(), False)
    assert flags.z and flags.c and not flags.n and not flags.v


def test_dp_cmp_less_sets_n_clears_c():
    _, flags = alu.dp_compute(Op.CMP, 3, 5, Flags(), False)
    assert not flags.c and flags.n


def test_dp_overflow():
    _, flags = alu.dp_compute(Op.ADD, 0x7FFFFFFF, 1, Flags(), False)
    assert flags.v and flags.n


@given(U32, U32, st.booleans())
def test_logical_ops_pass_shifter_carry(a, b, shifter_carry):
    for op in (Op.AND, Op.EOR, Op.ORR, Op.BIC, Op.MOV, Op.MVN):
        _, flags = alu.dp_compute(op, a, b, Flags(v=True), shifter_carry)
        assert flags.c == shifter_carry
        assert flags.v  # V preserved by logical ops


@given(U32, U32)
def test_adc_uses_carry_in(a, b):
    without, _ = alu.dp_compute(Op.ADC, a, b, Flags(c=False), False)
    with_c, _ = alu.dp_compute(Op.ADC, a, b, Flags(c=True), True)
    assert with_c == (without + 1) & 0xFFFFFFFF


@given(U32, U32)
def test_rsb_reverses(a, b):
    result, _ = alu.dp_compute(Op.RSB, a, b, Flags(), False)
    assert result == (b - a) & 0xFFFFFFFF


@given(U32, U32)
def test_mul_low_32(a, b):
    assert alu.multiply(Op.MUL, a, b, 0) == (a * b) & 0xFFFFFFFF


@given(U32, U32, U32)
def test_mla_accumulates(a, b, acc):
    assert alu.multiply(Op.MLA, a, b, acc) == (a * b + acc) & 0xFFFFFFFF


def test_dp_compute_rejects_non_dp():
    with pytest.raises(ValueError):
        alu.dp_compute(Op.LDR, 0, 0, Flags(), False)
