"""Shared data-path logic (barrel shifter, adder, DP ops).

The second half holds the vectorized twins in :mod:`repro.isa.valu`
(the batch-fault lane engine's data path) to the scalar functions,
element for element -- the uint32 wraparound, carry and shift-range
edges are exactly where numpy dtype promotion could silently diverge.
"""

from hypothesis import given, strategies as st
import numpy as np
import pytest

from repro.isa import alu, valu
from repro.isa.flags import Flags
from repro.isa.instructions import Op, ShiftKind

U32 = st.integers(min_value=0, max_value=0xFFFFFFFF)
U32_ARRAYS = st.lists(U32, min_size=1, max_size=8)
#: Shift amounts as the scalar path sees them (0..255 after &0xFF),
#: weighted onto the edge cases the vector arms special-case.
SHIFT_EDGES = st.sampled_from((0, 1, 31, 32, 33, 64, 255))
SHIFT_AMOUNTS = st.one_of(SHIFT_EDGES,
                          st.integers(min_value=0, max_value=255))
DP_OPS = (Op.AND, Op.EOR, Op.ORR, Op.BIC, Op.MOV, Op.MVN, Op.TST,
          Op.TEQ, Op.ADD, Op.ADC, Op.SUB, Op.SBC, Op.RSB, Op.CMP,
          Op.CMN)


@given(U32)
def test_u32_masks(value):
    assert 0 <= alu.u32(value * 3 + 7) <= 0xFFFFFFFF


@given(U32)
def test_s32_roundtrip(value):
    assert alu.u32(alu.s32(value)) == value


@given(U32, st.integers(min_value=0, max_value=31))
def test_lsl_matches_python(value, amount):
    result, _ = alu.barrel_shift(value, ShiftKind.LSL, amount, False)
    assert result == (value << amount) & 0xFFFFFFFF


@given(U32, st.integers(min_value=0, max_value=31))
def test_lsr_matches_python(value, amount):
    result, _ = alu.barrel_shift(value, ShiftKind.LSR, amount, False)
    assert result == (value >> amount if amount else value)


@given(U32, st.integers(min_value=1, max_value=31))
def test_asr_matches_python(value, amount):
    result, _ = alu.barrel_shift(value, ShiftKind.ASR, amount, False)
    assert result == alu.u32(alu.s32(value) >> amount)


@given(U32, st.integers(min_value=1, max_value=31))
def test_ror_rotates(value, amount):
    result, _ = alu.barrel_shift(value, ShiftKind.ROR, amount, False)
    expected = alu.u32((value >> amount) | (value << (32 - amount)))
    assert result == expected


@given(U32, st.booleans())
def test_zero_shift_passes_carry(value, carry):
    for kind in ShiftKind:
        result, carry_out = alu.barrel_shift(value, kind, 0, carry)
        assert result == value
        assert carry_out == carry


def test_lsl_32_carry_is_bit0():
    _, carry = alu.barrel_shift(1, ShiftKind.LSL, 32, False)
    assert carry
    result, _ = alu.barrel_shift(1, ShiftKind.LSL, 32, False)
    assert result == 0


def test_lsr_32_carry_is_bit31():
    _, carry = alu.barrel_shift(0x80000000, ShiftKind.LSR, 32, False)
    assert carry


def test_asr_large_fills_sign():
    result, _ = alu.barrel_shift(0x80000000, ShiftKind.ASR, 40, False)
    assert result == 0xFFFFFFFF
    result, _ = alu.barrel_shift(0x7FFFFFFF, ShiftKind.ASR, 40, False)
    assert result == 0


@given(U32, U32, st.booleans())
def test_add_with_carry_matches_arith(a, b, carry):
    result, carry_out, overflow = alu.add_with_carry(a, b, carry)
    total = a + b + int(carry)
    assert result == total & 0xFFFFFFFF
    assert carry_out == (total > 0xFFFFFFFF)
    signed = alu.s32(a) + alu.s32(b) + int(carry)
    assert overflow == (signed != alu.s32(result))


@given(U32, U32)
def test_sub_via_adc_identity(a, b):
    """SUB = a + ~b + 1 (the dp_compute implementation path)."""
    result, _, _ = alu.add_with_carry(a, ~b, True)
    assert result == (a - b) & 0xFFFFFFFF


@given(U32, U32)
def test_dp_add_sets_z_and_n(a, b):
    result, flags = alu.dp_compute(Op.ADD, a, b, Flags(), False)
    assert flags.z == (result == 0)
    assert flags.n == bool(result & 0x80000000)


def test_dp_cmp_equal_sets_zc():
    _, flags = alu.dp_compute(Op.CMP, 5, 5, Flags(), False)
    assert flags.z and flags.c and not flags.n and not flags.v


def test_dp_cmp_less_sets_n_clears_c():
    _, flags = alu.dp_compute(Op.CMP, 3, 5, Flags(), False)
    assert not flags.c and flags.n


def test_dp_overflow():
    _, flags = alu.dp_compute(Op.ADD, 0x7FFFFFFF, 1, Flags(), False)
    assert flags.v and flags.n


@given(U32, U32, st.booleans())
def test_logical_ops_pass_shifter_carry(a, b, shifter_carry):
    for op in (Op.AND, Op.EOR, Op.ORR, Op.BIC, Op.MOV, Op.MVN):
        _, flags = alu.dp_compute(op, a, b, Flags(v=True), shifter_carry)
        assert flags.c == shifter_carry
        assert flags.v  # V preserved by logical ops


@given(U32, U32)
def test_adc_uses_carry_in(a, b):
    without, _ = alu.dp_compute(Op.ADC, a, b, Flags(c=False), False)
    with_c, _ = alu.dp_compute(Op.ADC, a, b, Flags(c=True), True)
    assert with_c == (without + 1) & 0xFFFFFFFF


@given(U32, U32)
def test_rsb_reverses(a, b):
    result, _ = alu.dp_compute(Op.RSB, a, b, Flags(), False)
    assert result == (b - a) & 0xFFFFFFFF


@given(U32, U32)
def test_mul_low_32(a, b):
    assert alu.multiply(Op.MUL, a, b, 0) == (a * b) & 0xFFFFFFFF


@given(U32, U32, U32)
def test_mla_accumulates(a, b, acc):
    assert alu.multiply(Op.MLA, a, b, acc) == (a * b + acc) & 0xFFFFFFFF


def test_dp_compute_rejects_non_dp():
    with pytest.raises(ValueError):
        alu.dp_compute(Op.LDR, 0, 0, Flags(), False)


# ----------------------------------------------------------------------
# vectorized twins (repro.isa.valu): element-wise equal to the scalar
# path on every lane, including the wraparound/carry/shift-range edges
# ----------------------------------------------------------------------

@given(U32_ARRAYS)
def test_valu_u32_s32_roundtrip(values):
    lanes = valu.u32(values)
    assert lanes.dtype == np.uint32
    assert valu.u32(valu.s32(values)).tolist() == list(values)
    assert valu.s32(values).tolist() == [alu.s32(v) for v in values]


@given(U32_ARRAYS, SHIFT_AMOUNTS, st.booleans())
def test_valu_barrel_shift_matches_scalar(values, amount, carry_in):
    """Every shift kind, one amount across all lanes -- including the
    UB-prone 0/32/>32 edges the vector arms clamp around."""
    for kind in ShiftKind:
        result, carry = valu.barrel_shift(values, kind, amount,
                                          carry_in)
        expected = [alu.barrel_shift(v, kind, amount, carry_in)
                    for v in values]
        assert result.tolist() == [r for r, _ in expected], (kind, amount)
        assert carry.tolist() == [c for _, c in expected], (kind, amount)


@given(U32_ARRAYS, st.booleans())
def test_valu_barrel_shift_per_lane_amounts(values, carry_in):
    """Data-dependent (register-form) shifts: a different amount per
    lane, drawn to cover every special-case arm at once."""
    edges = (0, 1, 31, 32, 33, 255)
    amounts = [edges[i % len(edges)] for i in range(len(values))]
    for kind in ShiftKind:
        result, carry = valu.barrel_shift(values, kind,
                                          np.asarray(amounts), carry_in)
        expected = [alu.barrel_shift(v, kind, a, carry_in)
                    for v, a in zip(values, amounts)]
        assert result.tolist() == [r for r, _ in expected], kind
        assert carry.tolist() == [c for _, c in expected], kind


@given(U32_ARRAYS, U32_ARRAYS, st.booleans())
def test_valu_add_with_carry_matches_scalar(a, b, carry_in):
    """Unsigned wraparound, carry-out and signed overflow, lane-wise --
    the uint64 widening and the sign-bit overflow identity."""
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    result, carry, overflow = valu.add_with_carry(a, b, carry_in)
    expected = [alu.add_with_carry(x, y, carry_in)
                for x, y in zip(a, b)]
    assert result.tolist() == [r for r, _, _ in expected]
    assert carry.tolist() == [c for _, c, _ in expected]
    assert overflow.tolist() == [v for _, _, v in expected]


def test_valu_add_with_carry_edge_lanes():
    """The classic wraparound/carry corners in one vector call."""
    a = [0xFFFFFFFF, 0xFFFFFFFF, 0x7FFFFFFF, 0x80000000, 0]
    b = [1, 0xFFFFFFFF, 1, 0x80000000, 0]
    result, carry, overflow = valu.add_with_carry(a, b, False)
    assert result.tolist() == [0, 0xFFFFFFFE, 0x80000000, 0, 0]
    assert carry.tolist() == [True, True, False, True, False]
    assert overflow.tolist() == [False, False, True, True, False]


@given(U32_ARRAYS, U32_ARRAYS, st.booleans(), st.booleans(),
       st.booleans())
def test_valu_dp_compute_matches_scalar(a, b, c_in, v_in, shifter_carry):
    """Every data-processing op over random lanes: results and all four
    computed flags equal the scalar path (flags enter as the component
    bool arrays the lane engine holds)."""
    n = min(len(a), len(b))
    a, b = a[:n], b[:n]
    flags = Flags(c=c_in, v=v_in)
    for op in DP_OPS:
        result, fn, fz, fc, fv = valu.dp_compute(
            op, a, b, np.full(n, c_in), np.full(n, v_in), shifter_carry)
        expected = [alu.dp_compute(op, x, y, flags, shifter_carry)
                    for x, y in zip(a, b)]
        assert result.tolist() == [r for r, _ in expected], op
        assert fn.tolist() == [f.n for _, f in expected], op
        assert fz.tolist() == [f.z for _, f in expected], op
        assert fc.tolist() == [f.c for _, f in expected], op
        assert fv.tolist() == [f.v for _, f in expected], op


def test_valu_dp_compute_rejects_non_dp():
    with pytest.raises(ValueError):
        valu.dp_compute(Op.LDR, np.zeros(2, np.uint32),
                        np.zeros(2, np.uint32), False, False, False)


@given(U32_ARRAYS, U32_ARRAYS, U32_ARRAYS)
def test_valu_multiply_matches_scalar(a, b, acc):
    n = min(len(a), len(b), len(acc))
    a, b, acc = a[:n], b[:n], acc[:n]
    for op in (Op.MUL, Op.MLA):
        result = valu.multiply(op, a, b, acc)
        assert result.tolist() == [alu.multiply(op, x, y, z)
                                   for x, y, z in zip(a, b, acc)], op
