"""Microbenchmark-style tests of pipeline mechanics at both levels.

These pin down the timing semantics the reliability study relies on:
structural stalls, latency chains, dual-issue pairing, store/load
ordering, and the cost model of misses and mispredictions.
"""

from repro.isa import assemble
from repro.rtl import RTLConfig, RTLSim
from repro.uarch import CortexA9Config, MicroArchSim, RunStatus

EXIT = "    movw r0, #0\n    svc #0\n"


def _uarch(body, **cfg):
    cfg.setdefault("dcache_size", 1024)
    cfg.setdefault("icache_size", 1024)
    sim = MicroArchSim(assemble(".text\n_start:\n" + body),
                       CortexA9Config(**cfg))
    status = sim.run(max_cycles=500_000)
    assert status is RunStatus.EXITED, sim.fault
    return sim


def _rtl(body, **cfg):
    cfg.setdefault("dcache_size", 1024)
    cfg.setdefault("icache_size", 1024)
    cfg.setdefault("trace_signals", False)
    sim = RTLSim(assemble(".text\n_start:\n" + body), RTLConfig(**cfg))
    status = sim.run(max_cycles=500_000)
    assert status is RunStatus.EXITED, sim.fault
    return sim


def _chain(n, op="add  r1, r1, #1"):
    return "    movw r1, #0\n" + f"    {op}\n" * n


# ----------------------------------------------------------------------
# dependency chains vs independent streams
# ----------------------------------------------------------------------

def _looped(body, iters=64):
    """Wrap a small block in a warm loop so I-cache misses amortise."""
    return (
        "    movw r8, #%d\n"
        "outer:\n" % iters
        + body
        + "    sub r8, r8, #1\n"
          "    cmp r8, #0\n"
          "    bgt outer\n"
    )


def test_uarch_exploits_ilp():
    """Independent ops run faster than a dependency chain (OoO win)."""
    chain = _uarch(
        "    movw r1, #0\n"
        + _looped("    add r1, r1, #1\n" * 6) + EXIT
    ).cycle
    indep = _uarch(
        "    movw r1, #0\n    movw r2, #0\n    movw r3, #0\n"
        + _looped(
            "    add r1, r1, #1\n    add r2, r2, #1\n"
            "    add r3, r3, #1\n" * 2
        ) + EXIT
    ).cycle
    assert indep < chain


def test_rtl_dual_issue_beats_serial_chain():
    """Independent pairs issue together; a dependency chain cannot."""
    paired = _rtl(
        "    movw r1, #0\n    movw r2, #0\n"
        + _looped("    add r1, r1, #1\n    add r2, r2, #1\n" * 4)
        + EXIT
    )
    serial = _rtl(
        "    movw r1, #0\n"
        + _looped("    add r1, r1, #1\n" * 8) + EXIT
    )
    # Same dynamic instruction count per iteration; pairing must win.
    assert paired.cycle < serial.cycle
    assert serial.stats()["ipc"] <= 1.1


# ----------------------------------------------------------------------
# multiplier
# ----------------------------------------------------------------------

def test_mul_chain_costs_latency_both_levels():
    body = (
        "    movw r1, #3\n"
        + "    mul r1, r1, r1\n" * 10
        + "    mov r0, r1\n    svc #3\n" + EXIT
    )
    add_body = _chain(10) + EXIT
    for runner in (_uarch, _rtl):
        mul_cycles = runner(body).cycle
        add_cycles = runner(add_body).cycle
        assert mul_cycles > add_cycles  # 4-cycle mul vs 1-cycle add


def test_independent_muls_dont_serialise_uarch():
    """The OoO core has one pipelined multiplier; independent muls
    overlap with ALU work."""
    sim = _uarch(
        "    movw r1, #3\n    movw r2, #5\n"
        "    mul r3, r1, r2\n"
        "    add r4, r1, r2\n"
        "    add r5, r1, r2\n"
        "    mov r0, r3\n    svc #2\n" + EXIT
    )
    assert sim.output == b"15"


# ----------------------------------------------------------------------
# memory system timing
# ----------------------------------------------------------------------

def test_cold_misses_cost_cycles_both_levels():
    touch = (
        "    ldr r1, =data\n"
        + "".join(f"    ldr r2, [r1, #{i * 32}]\n" for i in range(8))
        + EXIT + "\n.data\ndata: .space 256\n"
    )
    for runner in (_uarch, _rtl):
        sim = runner(touch)
        assert sim.stats()["l1d_misses"] >= 8


def test_rtl_writeback_burst_beats_on_pinout():
    """Dirty evictions stream out as line_size/4 word beats."""
    body = (
        "    ldr r1, =data\n"
        "    movw r3, #0\n"
        "    movw r2, #64\n"          # touch 64 lines of 32B = 2KB > 1KB
        "fill:\n"
        "    str  r2, [r1]\n"
        "    add  r1, r1, #32\n"
        "    sub  r2, r2, #1\n"
        "    cmp  r2, #0\n"
        "    bgt  fill\n" + EXIT + "\n.data\ndata: .space 2048\n"
    )
    sim = _rtl(body)
    wb_beats = [t for t in sim.pinout if t.kind == "wb"]
    assert wb_beats
    assert len(wb_beats) % 8 == 0  # whole lines, 8 beats each


def test_store_then_load_other_addr_no_false_forward():
    for runner in (_uarch, _rtl):
        sim = runner(
            "    ldr r1, =data\n"
            "    movw r2, #7\n"
            "    str r2, [r1]\n"
            "    ldr r3, [r1, #4]\n"   # different word
            "    mov r0, r3\n    svc #2\n" + EXIT
            + "\n.data\ndata: .word 0, 99\n"
        )
        assert sim.output == b"99"


def test_post_index_stream_both_levels():
    body = (
        "    ldr r1, =data\n"
        "    movw r2, #0\n"
        "    movw r4, #4\n"
        "sum:\n"
        "    ldr r3, [r1], #4\n"
        "    add r2, r2, r3\n"
        "    sub r4, r4, #1\n"
        "    cmp r4, #0\n"
        "    bgt sum\n"
        "    mov r0, r2\n    svc #2\n" + EXIT
        + "\n.data\ndata: .word 1, 2, 3, 4\n"
    )
    for runner in (_uarch, _rtl):
        assert runner(body).output == b"10"


def test_ldm_stm_roundtrip_both_levels():
    body = (
        "    movw r4, #11\n    movw r5, #22\n    movw r6, #33\n"
        "    push {r4-r6}\n"
        "    movw r4, #0\n    movw r5, #0\n    movw r6, #0\n"
        "    pop {r4-r6}\n"
        "    add r0, r4, r5\n"
        "    add r0, r0, r6\n"
        "    svc #2\n" + EXIT
    )
    for runner in (_uarch, _rtl):
        assert runner(body).output == b"66"


# ----------------------------------------------------------------------
# control flow cost
# ----------------------------------------------------------------------

def test_predictable_loop_cheaper_than_alternating():
    """Bimodal predictor: a monotone loop beats an alternating branch
    pattern per iteration, at both levels."""
    steady = (
        "    movw r4, #0\n"
        "steady:\n"
        "    add r4, r4, #1\n"
        "    cmp r4, #64\n"
        "    blt steady\n" + EXIT
    )
    alternating = (
        "    movw r4, #0\n"
        "alt:\n"
        "    and r1, r4, #1\n"
        "    cmp r1, #0\n"
        "    beq skip\n"
        "    nop\n"
        "skip:\n"
        "    add r4, r4, #1\n"
        "    cmp r4, #64\n"
        "    blt alt\n" + EXIT
    )
    for runner in (_uarch, _rtl):
        fast = runner(steady)
        slow = runner(alternating)
        assert slow.core.mispredicts > fast.core.mispredicts


def test_mispredict_penalty_configurable_rtl():
    body = (
        "    movw r4, #0\n"
        "alt:\n"
        "    and r1, r4, #1\n"
        "    cmp r1, #0\n"
        "    beq skip\n"
        "    nop\n"
        "skip:\n"
        "    add r4, r4, #1\n"
        "    cmp r4, #48\n"
        "    blt alt\n" + EXIT
    )
    cheap = _rtl(body, mispredict_penalty=1).cycle
    costly = _rtl(body, mispredict_penalty=9).cycle
    assert costly > cheap


def test_flag_rename_chain_uarch():
    """Interleaved flag writers/readers retire correctly under rename."""
    sim = _uarch(
        "    movw r1, #5\n"
        "    movw r2, #5\n"
        "    cmp  r1, r2\n"
        "    moveq r3, #1\n"
        "    adds r4, r1, r2\n"
        "    movne r5, #1\n"     # NE now false? 10 != 0 -> Z clear -> NE
        "    mov r0, r3\n    svc #2\n"
        "    mov r0, r5\n    svc #2\n" + EXIT
    )
    assert sim.output == b"11"
