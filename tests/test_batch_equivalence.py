"""The cross-lane equivalence matrix for the vectorized batch engine.

``repro.batch`` promises that lane-parallel execution is pure
throughput optimisation: for a fixed seed, the per-fault record
sequence of an arch-tier campaign run at ``batch_lanes=N`` is
bit-identical to the scalar path (``batch_lanes=1``), fault for fault,
across every execution strategy the campaign engine composes it with --

* **prune modes** -- the simulate-only partition feeds the lane engine
  exactly the faults the scalar path would simulate;
* **jobs=1 vs jobs=N** -- each worker batches its own slice;
* **warm vs cold start** -- lane groups restore from the same
  checkpoint (or replay the same prefix) the scalar runner would;
* **store round-trips** -- records written at one lane count resume at
  another.

Identity is asserted on everything a record carries except per-session
accounting: fault identity, class, detail and simulated cycles
(``record_keys``).  The final test pins the acceptance criterion: the
``fig1`` preset grid, retargeted onto the batchable arch tier, yields
bit-identical per-fault classes at ``lanes=8`` vs ``lanes=1``.
"""

import shutil

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.store import CampaignStore
from repro.scenario.presets import preset_path
from repro.scenario.runner import ScenarioRunner
from repro.scenario.spec import ScenarioSpec, load_mapping
from repro.sim import registry
from support import record_keys, truncate_records

SAMPLES = 8
SEED = 13
WINDOW = 800
LANES = 4


def make_factory(workload):
    return registry.create_frontend("arch", workload).sim_factory


def run_campaign(factory, workload, structure="regfile", **config_kwargs):
    kwargs = {"samples": SAMPLES, "window": WINDOW, "seed": SEED}
    kwargs.update(config_kwargs)
    store = kwargs.pop("store", None)
    resume = kwargs.pop("resume", False)
    config = CampaignConfig(**kwargs)
    campaign = Campaign(factory, structure, config,
                        workload=workload, level="arch")
    return campaign.run(store=store, resume=resume)


# ----------------------------------------------------------------------
# the matrix: workloads x prune x jobs x warm/cold
# ----------------------------------------------------------------------

@pytest.fixture(scope="module",
                params=[("stringsearch", "off"), ("stringsearch", "dead"),
                        ("sha", "off"), ("sha", "dead")],
                ids=lambda p: f"{p[0]}-prune_{p[1]}")
def scalar_reference(request):
    """Per (workload, prune): the factory plus the scalar warm serial
    reference records."""
    workload, prune = request.param
    factory = make_factory(workload)
    reference = run_campaign(factory, workload, prune_mode=prune)
    assert reference.n == SAMPLES
    return workload, prune, factory, record_keys(reference)


@pytest.mark.parametrize("jobs", [1, 2])
@pytest.mark.parametrize("warm", [True, False], ids=["warm", "cold"])
def test_lane_equivalence_matrix(scalar_reference, jobs, warm):
    """lanes=N x {jobs=1,2} x {warm,cold} x {prune off,dead} == the
    scalar warm serial reference."""
    workload, prune, factory, reference = scalar_reference
    result = run_campaign(factory, workload, prune_mode=prune,
                          warm_start=warm, jobs=jobs, batch_lanes=LANES)
    assert record_keys(result) == reference, (
        f"{workload}: lanes={LANES} prune={prune} warm={warm} "
        f"jobs={jobs} diverged from the scalar reference"
    )


def test_batch_cycles_accounted_serially(scalar_reference):
    """The serial lane engine reports its global stepped cycles -- the
    denominator of the published ``batch_speedup`` series.  (The ratio
    only beats the scalar path at dense sample counts -- asserted in
    ``benchmarks/test_batch_speedup.py`` -- so here we pin the
    accounting itself.)"""
    workload, prune, factory, _ = scalar_reference
    result = run_campaign(factory, workload, prune_mode=prune,
                          batch_lanes=LANES)
    assert result.batch_cycles > 0
    scalar = run_campaign(factory, workload, prune_mode=prune)
    assert scalar.batch_cycles == 0


# ----------------------------------------------------------------------
# divergence-heavy configuration
# ----------------------------------------------------------------------

def test_cpsr_faults_force_heavy_divergence():
    """CPSR flag flips divert conditional branches immediately, so most
    lanes leave the golden path within a few instructions -- the lane
    engine's scalar-fallback side must carry the campaign, and the
    records must still match the scalar path bit for bit."""
    factory = make_factory("stringsearch")
    scalar = run_campaign(factory, "stringsearch", structure="cpsr",
                          samples=16, window=2000)
    batch = run_campaign(factory, "stringsearch", structure="cpsr",
                         samples=16, window=2000, batch_lanes=8)
    keys = record_keys(batch)
    assert keys == record_keys(scalar)
    # The config earns its name: a real mix of survivors and casualties.
    assert len({k[2] for k in keys}) > 1, "all faults classified alike"


# ----------------------------------------------------------------------
# store round-trips across lane counts
# ----------------------------------------------------------------------

def test_store_round_trip_across_lane_counts(tmp_path):
    """Records written by the scalar path resume under the lane engine
    (and vice versa): ``batch_lanes`` is execution-only, outside the
    store identity."""
    factory = make_factory("stringsearch")
    reference = run_campaign(factory, "stringsearch")
    run_campaign(factory, "stringsearch",
                 store=CampaignStore(tmp_path / "scalar"))

    # Interrupt the scalar store after 3 faults; finish under lanes=4.
    partial = tmp_path / "partial"
    shutil.copytree(tmp_path / "scalar", partial)
    truncate_records(partial, 3)
    resumed = run_campaign(factory, "stringsearch", batch_lanes=LANES,
                           store=CampaignStore(partial), resume=True)
    assert resumed.resumed == 3
    assert record_keys(resumed) == record_keys(reference)

    # And the other direction: a lanes=4 store resumes scalar.
    run_campaign(factory, "stringsearch", batch_lanes=LANES,
                 store=CampaignStore(tmp_path / "lanes"))
    resumed = run_campaign(factory, "stringsearch",
                           store=CampaignStore(tmp_path / "lanes"),
                           resume=True)
    assert resumed.resumed == reference.n
    assert record_keys(resumed) == record_keys(reference)


# ----------------------------------------------------------------------
# the acceptance pin: fig1 grid at the arch tier, lanes=8 vs lanes=1
# ----------------------------------------------------------------------

def fig1_at_arch(lanes):
    """The fig1 preset mapping retargeted onto the arch tier (the
    shipped preset's uarch cells reject ``lanes > 1`` by design; the
    rtl cells batch since PR 7 and are pinned in
    ``test_batch_rtl_equivalence.py``)."""
    mapping = load_mapping(preset_path("fig1"))
    mapping.pop("present", None)
    mapping["grid"] = [{"levels": ["arch"], "modes": ["pinout"]}]
    mapping.setdefault("targets", {})["workloads"] = ["stringsearch"]
    mapping.setdefault("faults", {})["samples"] = 6
    mapping.setdefault("execution", {})["lanes"] = lanes
    return ScenarioSpec.from_mapping(mapping, source="fig1-at-arch")


def test_fig1_preset_classes_identical_at_lanes_8():
    results = {lanes: ScenarioRunner(fig1_at_arch(lanes)).run()
               for lanes in (8, 1)}
    assert len(results[8]) == len(results[1]) == 1
    for (_, batch), (_, scalar) in zip(results[8], results[1]):
        assert record_keys(batch) == record_keys(scalar)
        assert batch.n == 6
