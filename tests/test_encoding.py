"""Binary encoding: exhaustive round-trip property tests."""

from hypothesis import given, strategies as st
import pytest

from repro.isa.encoding import EncodingError, decode, encode
from repro.isa.instructions import (
    Cond,
    DP_IMM_OPS,
    DP_REG_OPS,
    Inst,
    Op,
    ShiftKind,
)

REG = st.integers(min_value=0, max_value=15)
CONDS = st.sampled_from(list(Cond))


def _roundtrip(inst):
    word = encode(inst)
    assert 0 <= word <= 0xFFFFFFFF
    back = decode(word, addr=inst.addr)
    assert encode(back) == word
    return back


@given(
    op=st.sampled_from(sorted(DP_REG_OPS)),
    cond=CONDS, s=st.booleans(), rd=REG, rn=REG, rm=REG,
    kind=st.sampled_from(list(ShiftKind)),
    amount=st.integers(min_value=0, max_value=32),
)
def test_dp_reg_roundtrip(op, cond, s, rd, rn, rm, kind, amount):
    inst = Inst(op, cond=cond, s=s, rd=rd, rn=rn, rm=rm, shift_kind=kind,
                shift_amount=amount)
    back = _roundtrip(inst)
    assert (back.op, back.cond, back.s) == (op, cond, s)
    assert (back.rd, back.rn, back.rm) == (rd, rn, rm)
    assert (back.shift_kind, back.shift_amount) == (kind, amount)
    assert back.shift_reg is None


@given(op=st.sampled_from(sorted(DP_REG_OPS)), rd=REG, rm=REG,
       shift_reg=REG, kind=st.sampled_from(list(ShiftKind)))
def test_dp_reg_shift_by_register_roundtrip(op, rd, rm, shift_reg, kind):
    inst = Inst(op, rd=rd, rm=rm, shift_kind=kind, shift_reg=shift_reg)
    back = _roundtrip(inst)
    assert back.shift_reg == shift_reg


@given(op=st.sampled_from(sorted(DP_IMM_OPS)), cond=CONDS, s=st.booleans(),
       rd=REG, rn=REG, imm=st.integers(min_value=0, max_value=0x1FFF))
def test_dp_imm_roundtrip(op, cond, s, rd, rn, imm):
    back = _roundtrip(Inst(op, cond=cond, s=s, rd=rd, rn=rn, imm=imm))
    assert back.imm == imm


@given(op=st.sampled_from([Op.MOVW, Op.MOVT]), rd=REG,
       imm=st.integers(min_value=0, max_value=0xFFFF))
def test_wide_move_roundtrip(op, rd, imm):
    back = _roundtrip(Inst(op, rd=rd, imm=imm))
    assert (back.rd, back.imm) == (rd, imm)


@given(rd=REG, rn=REG, rm=REG, ra=REG, s=st.booleans())
def test_mul_mla_roundtrip(rd, rn, rm, ra, s):
    for op in (Op.MUL, Op.MLA):
        back = _roundtrip(Inst(op, s=s, rd=rd, rn=rn, rm=rm, ra=ra))
        assert (back.rd, back.rn, back.rm, back.ra) == (rd, rn, rm, ra)


@given(
    op=st.sampled_from([Op.LDR, Op.STR, Op.LDRB, Op.STRB, Op.LDRH,
                        Op.STRH]),
    rd=REG, rn=REG, imm=st.integers(min_value=-2048, max_value=2047),
    pre=st.booleans(), writeback=st.booleans(),
)
def test_mem_imm_roundtrip(op, rd, rn, imm, pre, writeback):
    back = _roundtrip(Inst(op, rd=rd, rn=rn, imm=imm, pre=pre,
                           writeback=writeback))
    assert (back.rd, back.rn, back.imm) == (rd, rn, imm)
    assert (back.pre, back.writeback) == (pre, writeback)


@given(
    op=st.sampled_from([Op.LDRR, Op.STRR, Op.LDRBR, Op.STRBR, Op.LDRHR,
                        Op.STRHR]),
    rd=REG, rn=REG, rm=REG,
    kind=st.sampled_from(list(ShiftKind)),
    amount=st.integers(min_value=0, max_value=31),
)
def test_mem_reg_roundtrip(op, rd, rn, rm, kind, amount):
    back = _roundtrip(Inst(op, rd=rd, rn=rn, rm=rm, shift_kind=kind,
                           shift_amount=amount))
    assert (back.rm, back.shift_kind, back.shift_amount) == (rm, kind,
                                                             amount)


@given(op=st.sampled_from([Op.LDM, Op.STM]), rn=REG,
       reglist=st.integers(min_value=1, max_value=0xFFFF),
       writeback=st.booleans())
def test_multi_roundtrip(op, rn, reglist, writeback):
    back = _roundtrip(Inst(op, rn=rn, reglist=reglist,
                           writeback=writeback))
    assert (back.rn, back.reglist, back.writeback) == (rn, reglist,
                                                       writeback)


@given(op=st.sampled_from([Op.B, Op.BL]), cond=CONDS,
       offset_words=st.integers(min_value=-(1 << 21),
                                max_value=(1 << 21) - 1))
def test_branch_roundtrip(op, cond, offset_words):
    back = _roundtrip(Inst(op, cond=cond, imm=offset_words << 2))
    assert back.imm == offset_words << 2


@given(rm=REG)
def test_bx_roundtrip(rm):
    assert _roundtrip(Inst(Op.BX, rm=rm)).rm == rm


@given(imm=st.integers(min_value=0, max_value=0x3FFFFF))
def test_svc_roundtrip(imm):
    assert _roundtrip(Inst(Op.SVC, imm=imm)).imm == imm


def test_nop_hlt_roundtrip():
    for op in (Op.NOP, Op.HLT):
        assert _roundtrip(Inst(op)).op == op


def test_branch_offset_alignment_checked():
    with pytest.raises(EncodingError):
        encode(Inst(Op.B, imm=2))


def test_dp_imm_out_of_range():
    with pytest.raises(EncodingError):
        encode(Inst(Op.ADDI, rd=0, rn=0, imm=0x2000))


def test_mem_offset_out_of_range():
    with pytest.raises(EncodingError):
        encode(Inst(Op.LDR, rd=0, rn=0, imm=4096))


def test_undefined_opcode_rejected():
    with pytest.raises(EncodingError):
        decode(0xE000_0000 | (63 << 22))


def test_decode_keeps_address():
    word = encode(Inst(Op.NOP))
    assert decode(word, addr=0x40).addr == 0x40
