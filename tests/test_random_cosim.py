"""Randomised co-simulation: generated programs agree across models.

Hypothesis generates random (but well-formed) straight-line data-
processing programs; the reference interpreter, the OoO model and the
RT-level model must compute identical architectural results.  This is
the broadest semantic net in the suite -- any divergence in ALU, flags,
forwarding, renaming or bypass behaviour fails here.

The second half turns the same generator against the vectorized lane
engine (``repro.batch``): random fault batches over random programs
must classify bit-identically to the scalar campaign path, on both
lane backends (arch numpy lockstep and rtl pipeline lanes).
"""

from hypothesis import given, settings, strategies as st

from repro.injection.campaign import Campaign, CampaignConfig
from repro.isa import Interpreter, assemble
from repro.rtl import RTLConfig, RTLSim
from repro.sim.archsim import ArchSim
from repro.uarch import CortexA9Config, MicroArchSim, RunStatus

FAST_UARCH = CortexA9Config(dcache_size=1024, icache_size=1024)
FAST_RTL = RTLConfig(trace_signals=False, dcache_size=1024,
                     icache_size=1024)

_DP = ("add", "sub", "and", "orr", "eor", "adc", "sbc", "rsb", "bic")
_SHIFTS = ("lsl", "lsr", "asr", "ror")

REG = st.integers(min_value=1, max_value=10)  # keep r0 for output


@st.composite
def random_inst(draw):
    kind = draw(st.integers(min_value=0, max_value=4))
    rd = draw(REG)
    rn = draw(REG)
    rm = draw(REG)
    if kind == 0:
        op = draw(st.sampled_from(_DP))
        s = draw(st.sampled_from(("", "s")))
        return f"{op}{s} r{rd}, r{rn}, r{rm}"
    if kind == 1:
        op = draw(st.sampled_from(_DP))
        imm = draw(st.integers(min_value=0, max_value=4095))
        return f"{op} r{rd}, r{rn}, #{imm}"
    if kind == 2:
        shift = draw(st.sampled_from(_SHIFTS))
        amount = draw(st.integers(min_value=0, max_value=31))
        op = draw(st.sampled_from(_DP))
        return f"{op} r{rd}, r{rn}, r{rm}, {shift} #{amount}"
    if kind == 3:
        imm = draw(st.integers(min_value=0, max_value=0xFFFF))
        op = draw(st.sampled_from(("movw", "movt")))
        return f"{op} r{rd}, #{imm}"
    return f"mul r{rd}, r{rn}, r{rm}"


@st.composite
def random_program(draw):
    seeds = [
        f"    movw r{i}, #{draw(st.integers(0, 0xFFFF))}"
        for i in range(1, 11)
    ]
    body = [f"    {draw(random_inst())}" for _ in
            range(draw(st.integers(min_value=3, max_value=25)))]
    fold = []
    for i in range(1, 11):
        fold.append(f"    eor r0, r0, r{i}")
        fold.append(f"    add r0, r0, r{i}, ror #{i}")
    return "\n".join(
        [".text", "_start:", "    movw r0, #0"] + seeds + body + fold
        + ["    svc #3", "    movw r0, #0", "    svc #0"]
    )


@settings(max_examples=25, deadline=None)
@given(random_program())
def test_three_models_agree_on_random_programs(source):
    program = assemble(source)
    ref = Interpreter(program).run(max_insts=10_000)
    uarch = MicroArchSim(program, FAST_UARCH)
    assert uarch.run(max_cycles=200_000) is RunStatus.EXITED
    rtl = RTLSim(program, FAST_RTL)
    assert rtl.run(max_cycles=200_000) is RunStatus.EXITED
    assert uarch.output == ref.output
    assert rtl.output == ref.output
    assert uarch.icount == ref.inst_count
    assert rtl.icount == ref.inst_count


# ----------------------------------------------------------------------
# randomized fault batches: lane engine vs scalar campaign
# ----------------------------------------------------------------------

def _campaign_keys(program, structure, samples, seed, lanes,
                   level="arch"):
    """One campaign's records projected onto the bit-identity contract
    (fault cell/bit/cycle draws come deterministically from ``seed``,
    so both lane counts see the same batch)."""
    if level == "rtl":
        factory = lambda: RTLSim(program, FAST_RTL)  # noqa: E731
    else:
        factory = lambda: ArchSim(program)  # noqa: E731
    config = CampaignConfig(samples=samples, seed=seed, window=300,
                            checkpoint_interval=200, batch_lanes=lanes)
    result = Campaign(factory, structure, config,
                      workload="random", level=level).run()
    return [(r.fault.bit, r.fault.cycle, r.fclass, r.detail,
             r.sim_cycles) for r in result.records]


@settings(max_examples=10, deadline=None)
@given(random_program(),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=2, max_value=10),
       st.integers(min_value=2, max_value=6),
       st.sampled_from(("regfile", "cpsr")))
def test_lane_engine_matches_scalar_on_random_batches(
        source, seed, samples, lanes, structure):
    """Random programs x random fault batches: final classifications,
    details and simulated tails are identical lanes=N vs the scalar
    ``Interpreter`` replay path.  Shrinkable: a failure minimises the
    program body and the batch together."""
    program = assemble(source)
    scalar = _campaign_keys(program, structure, samples, seed, lanes=1)
    batch = _campaign_keys(program, structure, samples, seed, lanes=lanes)
    assert batch == scalar


@settings(max_examples=8, deadline=None)
@given(random_program(),
       st.integers(min_value=0, max_value=2**32 - 1),
       st.integers(min_value=2, max_value=10),
       st.integers(min_value=2, max_value=6),
       st.sampled_from(("regfile", "cpsr")))
def test_rtl_lane_engine_matches_scalar_on_random_batches(
        source, seed, samples, lanes, structure):
    """The same net thrown over the rtl lane backend: random programs x
    random fault batches classify bit-identically lanes=N vs the scalar
    pipeline replay, exercising vectorized execution, enforce-point
    drops and the scalar-fallback rerun path together."""
    program = assemble(source)
    scalar = _campaign_keys(program, structure, samples, seed, lanes=1,
                            level="rtl")
    batch = _campaign_keys(program, structure, samples, seed,
                           lanes=lanes, level="rtl")
    assert batch == scalar
