"""Campaign engine: classification, determinism, both levels."""

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.classify import FaultClass, compare_traces
from repro.isa import assemble
from repro.isa.toolchain import Toolchain
from repro.rtl import RTLConfig, RTLSim
from repro.uarch import CortexA9Config, MicroArchSim

#: A small but non-trivial workload: fills and folds a buffer, prints a
#: checksum.  Fast enough for many campaign runs inside the unit tests.
TINY_SRC = """
    .text
_start:
    ldr  r1, =buffer
    movw r2, #0
    movw r3, #64
fill:
    mul  r4, r2, r2
    str  r4, [r1, r2, lsl #2]
    add  r2, r2, #1
    cmp  r2, r3
    blt  fill
    movw r0, #0
    movw r2, #0
fold:
    ldr  r4, [r1, r2, lsl #2]
    movw r5, #31
    mul  r0, r0, r5
    add  r0, r0, r4
    add  r2, r2, #1
    cmp  r2, r3
    blt  fold
    svc  #3
    movw r0, #10
    svc  #1
    movw r0, #0
    svc  #0
    .pool
    .data
buffer: .space 256
"""


@pytest.fixture(scope="module")
def tiny_program():
    return assemble(TINY_SRC, name="tiny", toolchain=Toolchain("gnu"))


def uarch_factory(program):
    config = CortexA9Config(dcache_size=1024, icache_size=1024)
    return lambda: MicroArchSim(program, config)


def rtl_factory(program):
    config = RTLConfig(trace_signals=False, dcache_size=1024,
                       icache_size=1024)
    return lambda: RTLSim(program, config)


# ----------------------------------------------------------------------
# compare_traces
# ----------------------------------------------------------------------

def test_compare_traces_prefix_semantics():
    golden = ["a", "b", "c"]
    assert compare_traces(golden, ["a", "b"])
    assert compare_traces(golden, ["a", "b", "c"])
    assert not compare_traces(golden, ["a", "x"])
    assert not compare_traces(golden, ["a", "b", "c", "d"])
    assert compare_traces(golden, [])


def test_fault_class_safety_mapping():
    assert FaultClass.MASKED.safe
    for cls in (FaultClass.SDC, FaultClass.DUE, FaultClass.HANG,
                FaultClass.MISMATCH):
        assert cls.unsafe


# ----------------------------------------------------------------------
# campaign end-to-end
# ----------------------------------------------------------------------

def test_campaign_runs_and_counts(tiny_program):
    config = CampaignConfig(samples=12, window=1500, seed=1)
    campaign = Campaign(uarch_factory(tiny_program), "regfile", config,
                        workload="tiny", level="uarch")
    result = campaign.run()
    assert result.n == 12
    assert result.count(FaultClass.MASKED) + result.unsafe_count == 12
    assert 0.0 <= result.unsafeness <= 1.0
    assert result.golden_cycles > 0
    assert result.population > 0


def test_campaign_deterministic_per_seed(tiny_program):
    def run(seed):
        config = CampaignConfig(samples=10, window=1500, seed=seed)
        campaign = Campaign(uarch_factory(tiny_program), "regfile",
                            config, workload="tiny", level="uarch")
        result = campaign.run()
        return [(r.fault.bit, r.fault.cycle, r.fclass) for r in
                result.records]

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_campaign_software_observation(tiny_program):
    config = CampaignConfig(samples=10, window=None,
                            observation="software", seed=2)
    campaign = Campaign(uarch_factory(tiny_program), "l1d.data", config,
                        workload="tiny", level="uarch")
    result = campaign.run()
    assert result.n == 10
    assert result.count(FaultClass.MISMATCH) == 0  # SOP never says pinout


def test_campaign_on_rtl_level(tiny_program):
    config = CampaignConfig(samples=8, window=1500, seed=3)
    campaign = Campaign(rtl_factory(tiny_program), "regfile", config,
                        workload="tiny", level="rtl")
    result = campaign.run()
    assert result.n == 8


def test_campaign_acceleration_moves_faults(tiny_program):
    config = CampaignConfig(samples=20, window=800, seed=4,
                            accelerate=True)
    campaign = Campaign(rtl_factory(tiny_program), "l1d.data", config,
                        workload="tiny", level="rtl")
    result = campaign.run()
    assert any(r.fault.accelerated for r in result.records)


def test_acceleration_increases_window_observability(tiny_program):
    def unsafeness(accelerate):
        config = CampaignConfig(samples=40, window=400, seed=11,
                                accelerate=accelerate)
        campaign = Campaign(rtl_factory(tiny_program), "l1d.data",
                            config, workload="tiny", level="rtl")
        return campaign.run().unsafeness

    assert unsafeness(True) >= unsafeness(False)


def test_progress_callback_invoked(tiny_program):
    # prune_mode="off" so every sampled fault is simulated: progress
    # counts only simulated faults (pruned ones are classified before
    # the faulty phase starts; see tests/test_prune.py).
    seen = []
    config = CampaignConfig(samples=5, window=500, seed=5,
                            prune_mode="off")
    campaign = Campaign(uarch_factory(tiny_program), "regfile", config,
                        workload="tiny", level="uarch")
    campaign.run(progress=lambda i, n, record: seen.append((i, n)))
    assert seen[-1] == (5, 5)


def test_summary_fields(tiny_program):
    config = CampaignConfig(samples=6, window=500, seed=6)
    campaign = Campaign(uarch_factory(tiny_program), "regfile", config,
                        workload="tiny", level="uarch")
    summary = campaign.run().summary()
    for key in ("workload", "level", "structure", "n", "unsafeness",
                "ci95", "recommended_samples", "achieved_margin",
                "s_per_run"):
        assert key in summary
    assert summary["recommended_samples"] > 1000  # Leveugle-exact scale


def test_invalid_observation_rejected():
    with pytest.raises(ValueError):
        CampaignConfig(observation="telepathy")


def test_config_describe():
    text = CampaignConfig(samples=7, window=None).describe()
    assert "7" in text and "to-end" in text
