"""Register model, toolchain variants, program images, syscalls."""

import pytest

from repro.errors import SimFault, SimTimeout
from repro.isa import assemble
from repro.isa.program import MemoryLayout
from repro.isa.registers import (
    RegisterFile,
    parse_reg,
    reg_name,
)
from repro.isa.syscalls import SyscallEmulator, SyscallError
from repro.isa.toolchain import Toolchain
from repro.memory.ram import RAM


# ----------------------------------------------------------------------
# registers
# ----------------------------------------------------------------------

def test_parse_reg_names_and_aliases():
    assert parse_reg("r0") == 0
    assert parse_reg("R15") == 15
    assert parse_reg("sp") == 13
    assert parse_reg("LR") == 14
    assert parse_reg("pc") == 15
    assert parse_reg("fp") == 11
    assert parse_reg("ip") == 12


def test_parse_reg_rejects_junk():
    for bad in ("r16", "x3", "", "r-1", "#4"):
        with pytest.raises(ValueError):
            parse_reg(bad)


def test_reg_name_specials():
    assert reg_name(13) == "sp"
    assert reg_name(14) == "lr"
    assert reg_name(15) == "pc"
    assert reg_name(3) == "r3"


def test_register_file_masks_to_32_bits():
    rf = RegisterFile()
    rf.write(1, 0x1_2345_6789)
    assert rf.read(1) == 0x2345_6789


def test_register_file_snapshot_restore():
    rf = RegisterFile()
    rf.write(2, 99)
    snap = rf.snapshot()
    rf.write(2, 1)
    rf.restore(snap)
    assert rf.read(2) == 99


# ----------------------------------------------------------------------
# toolchain
# ----------------------------------------------------------------------

def test_toolchain_properties():
    gnu = Toolchain("gnu")
    armcc = Toolchain("armcc")
    assert not gnu.uses_literal_pool and armcc.uses_literal_pool
    assert gnu.label_alignment == 1 and armcc.label_alignment == 8
    assert gnu == Toolchain("gnu") and gnu != armcc
    assert hash(gnu) == hash(Toolchain("gnu"))


def test_toolchain_rejects_unknown():
    with pytest.raises(ValueError):
        Toolchain("msvc")


# ----------------------------------------------------------------------
# layout / program
# ----------------------------------------------------------------------

def test_layout_validation():
    with pytest.raises(ValueError):
        MemoryLayout(stack_top=0x100000, ram_size=0x1000)
    with pytest.raises(ValueError):
        MemoryLayout(text_base=0x20000, data_base=0x10000)


def test_program_load_into_ram():
    program = assemble(".text\n_start: nop\n svc #0\n"
                       ".data\nv: .word 0xAABBCCDD\n")
    ram = RAM(program.layout.ram_size)
    program.load_into(ram)
    assert ram.read32(program.layout.data_base) == 0xAABBCCDD
    assert ram.read32(program.layout.text_base) == program.words[0]


def test_program_text_bytes_little_endian():
    program = assemble(".text\n nop\n")
    blob = program.text_bytes()
    assert len(blob) == 4
    assert int.from_bytes(blob, "little") == program.words[0]


def test_program_repr_mentions_toolchain():
    program = assemble(".text\n nop\n", toolchain=Toolchain("armcc"))
    assert "armcc" in repr(program)


# ----------------------------------------------------------------------
# syscalls
# ----------------------------------------------------------------------

def _emulator():
    return SyscallEmulator()


def test_syscall_exit_records_code():
    emu = _emulator()
    emu.handle(0, lambda i: 42 if i == 0 else 0, lambda a: 0)
    assert emu.exited and emu.exit_code == 42


def test_syscall_putc_and_prints():
    emu = _emulator()
    emu.handle(1, lambda i: 0x41, lambda a: 0)
    emu.handle(2, lambda i: 123, lambda a: 0)
    emu.handle(3, lambda i: 0xAB, lambda a: 0)
    assert bytes(emu.output) == b"A123000000ab"


def test_syscall_print_int_sign():
    emu = _emulator()
    emu.handle(5, lambda i: 0xFFFFFFFF, lambda a: 0)
    assert bytes(emu.output) == b"-1"


def test_syscall_write_reads_memory():
    emu = _emulator()
    data = b"xyz"
    regs = {0: 100, 1: 3}
    emu.handle(4, lambda i: regs[i], lambda a: data[a - 100])
    assert bytes(emu.output) == b"xyz"


def test_syscall_write_length_capped():
    emu = _emulator()
    with pytest.raises(SyscallError):
        emu.handle(4, lambda i: {0: 0, 1: 1 << 20}[i], lambda a: 0)


def test_syscall_unknown_number():
    with pytest.raises(SyscallError):
        _emulator().handle(77, lambda i: 0, lambda a: 0)


def test_syscall_snapshot_restore():
    emu = _emulator()
    emu.handle(1, lambda i: 0x42, lambda a: 0)
    snap = emu.snapshot()
    emu.handle(1, lambda i: 0x43, lambda a: 0)
    emu.restore(snap)
    assert bytes(emu.output) == b"B"


# ----------------------------------------------------------------------
# errors
# ----------------------------------------------------------------------

def test_simfault_message_includes_addr():
    fault = SimFault("mem-fault", "oops", addr=0x40)
    assert "0x00000040" in str(fault)
    assert fault.kind == "mem-fault"


def test_simtimeout_message():
    timeout = SimTimeout(500, "cycles")
    assert "500" in str(timeout)
