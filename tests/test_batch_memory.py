"""Property tests for the copy-on-write paged lane memory.

:class:`repro.batch.memory.LanePagedMemory` promises that every lane's
*view* is indistinguishable from the dense per-lane RAM copy it
replaced (PR 6's layout), while only divergent pages cost memory.  The
oracle here is exactly that dense layout: one private ``bytearray``
image per lane, every store applied directly.  Hypothesis drives
random interleavings of store instants (reference and fault lanes
mixed, aligned sizes 1/2/4) against a small page size so page
boundaries, privatization and the shared-overlay protocol all get
exercised; reads, composed images and digests must match the oracle
bit for bit at every step.

The engine-facing guarantees pinned here:

* ``read``/``read_byte``/``view_bytes``/``gather`` equal the dense view
  after arbitrary write interleavings;
* ``compose``/``crc`` round-trip the exact dense image (digest
  soundness: page-granular dirty tracking bounds storage, never what
  the digest observes);
* ``release`` frees a retired lane's private pages and never perturbs
  surviving lanes' views.
"""

import zlib

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.batch.memory import LanePagedMemory  # noqa: E402

WIDTH = 4          # 3 fault lanes + reference
REF = WIDTH - 1
PAGE = 64          # small pages: plenty of boundary traffic
MEM = 1024


@st.composite
def store_instant(draw):
    """One write() call: unique writers, per-writer aligned stores."""
    size = draw(st.sampled_from((1, 2, 4)))
    writers = draw(st.lists(st.integers(0, WIDTH - 1), min_size=1,
                            max_size=WIDTH, unique=True))
    addrs = [draw(st.integers(0, MEM // size - 1)) * size
             for _ in writers]
    values = [draw(st.integers(0, (1 << (8 * size)) - 1))
              for _ in writers]
    return size, writers, addrs, values


@st.composite
def workload(draw):
    base = draw(st.binary(min_size=MEM, max_size=MEM))
    instants = draw(st.lists(store_instant(), min_size=1, max_size=40))
    return base, instants


class DenseOracle:
    """The replaced layout: one full private image per lane."""

    def __init__(self, base, width):
        self.images = [bytearray(base) for _ in range(width)]

    def apply(self, size, writers, addrs, values):
        for k, addr, value in zip(writers, addrs, values):
            self.images[k][addr:addr + size] = value.to_bytes(
                size, "little")

    def read(self, k, addr, size):
        return int.from_bytes(self.images[k][addr:addr + size], "little")


def run_both(base, instants):
    store = LanePagedMemory(base, WIDTH, REF, page_size=PAGE)
    oracle = DenseOracle(base, WIDTH)
    for size, writers, addrs, values in instants:
        store.write(writers, addrs, size, values)
        oracle.apply(size, writers, addrs, values)
    return store, oracle


@settings(max_examples=60, deadline=None)
@given(workload())
def test_reads_match_dense_oracle(wl):
    """Every read primitive sees exactly the dense per-lane image."""
    base, instants = wl
    store, oracle = run_both(base, instants)
    bytes_probes = {a for _, _, addrs, _ in instants for a in addrs}
    bytes_probes.update({0, PAGE - 4, PAGE, MEM - 4})
    # Word probes must respect the store's alignment contract (aligned
    # accesses never straddle a page).
    probes = {a & ~3 for a in bytes_probes}
    for k in range(WIDTH):
        for addr in bytes_probes:
            assert store.read_byte(k, addr) == oracle.images[k][addr]
        for addr in probes:
            assert store.read(k, addr, 4) == oracle.read(k, addr, 4)
            assert (store.view_bytes(k, addr, 4)
                    == bytes(oracle.images[k][addr:addr + 4]))
    lanes = list(range(WIDTH))
    addrs = sorted(probes)[:WIDTH]
    if len(addrs) == WIDTH:
        expect = [oracle.read(k, a, 4) for k, a in zip(lanes, addrs)]
        assert list(store.gather(lanes, addrs, 4)) == expect
    uniform = [next(iter(probes))] * WIDTH
    assert list(store.gather(lanes, uniform, 4)) == [
        oracle.read(k, uniform[0], 4) for k in lanes]


@settings(max_examples=60, deadline=None)
@given(workload())
def test_compose_and_crc_round_trip(wl):
    """compose(k) rebuilds the exact dense image; crc(k) digests it.
    Composition is read-only: repeating it changes nothing, and it
    never allocates."""
    base, instants = wl
    store, oracle = run_both(base, instants)
    allocated = store.allocated_bytes
    for k in range(WIDTH):
        image = store.compose(k)
        assert image == bytes(oracle.images[k])
        assert store.compose(k) == image
        assert store.crc(k) == zlib.crc32(image) & 0xFFFFFFFF
    assert store.allocated_bytes == allocated
    assert store.peak_bytes >= allocated


@settings(max_examples=60, deadline=None)
@given(workload(), st.integers(0, WIDTH - 2))
def test_release_frees_private_pages_only(wl, victim):
    """Retiring a lane returns exactly its private page bytes and
    leaves every surviving lane's view untouched."""
    base, instants = wl
    store, oracle = run_both(base, instants)
    private = sum(p.size for p in store.lane_pages[victim].values())
    before = store.allocated_bytes
    store.release(victim)
    assert store.allocated_bytes == before - private
    assert not store.lane_pages[victim]
    assert victim not in store.live
    for k in range(WIDTH):
        if k != victim:
            assert store.compose(k) == bytes(oracle.images[k])


@settings(max_examples=40, deadline=None)
@given(workload())
def test_divergence_bounds_allocation(wl):
    """Memory is bounded by divergence, not footprint: allocation never
    exceeds the dense layout and is zero when nothing ever diverges
    from the base image."""
    base, instants = wl
    store, _ = run_both(base, instants)
    assert store.peak_bytes <= WIDTH * MEM
    pristine = LanePagedMemory(base, WIDTH, REF, page_size=PAGE)
    for k in range(WIDTH):
        pristine.read(k, 0, 4)
        pristine.compose(k)
    assert pristine.allocated_bytes == 0
