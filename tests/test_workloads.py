"""Workload kernels: every benchmark validates against its independent
Python reference, on both toolchains, at the architectural level."""

import pytest

from repro.isa import Interpreter, Toolchain
from repro.workloads import WORKLOAD_NAMES, build, expected_output
from repro.workloads import datagen
from repro.workloads.registry import get


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
@pytest.mark.parametrize("toolchain", ("gnu", "armcc"))
def test_workload_matches_reference(name, toolchain):
    program = build(name, Toolchain(toolchain))
    result = Interpreter(program).run(max_insts=2_000_000)
    assert result.exit_code == 0
    assert result.output == expected_output(name)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_toolchains_produce_different_binaries(name):
    gnu = build(name, Toolchain("gnu"))
    armcc = build(name, Toolchain("armcc"))
    assert gnu.text_bytes() != armcc.text_bytes()


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_has_nonempty_output(name):
    assert expected_output(name)


def test_registry_rejects_unknown():
    with pytest.raises(KeyError):
        get("bogus")


def test_registry_names_match_paper_table2_order():
    assert WORKLOAD_NAMES == (
        "fft", "qsort", "caes", "sha", "stringsearch",
        "susan_corners", "susan_edges", "susan_smooth",
    )


# ----------------------------------------------------------------------
# reference cross-checks (the references themselves must be right)
# ----------------------------------------------------------------------

def test_aes_reference_against_fips197():
    key = bytes(range(16))
    plain = bytes.fromhex("00112233445566778899aabbccddeeff")
    out = datagen.aes_encrypt_block(plain, datagen.aes_expand_key(key))
    assert out.hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"


def test_sha_padding_is_valid():
    padded = datagen.sha_padded_message()
    assert len(padded) % 64 == 0
    assert padded[datagen.SHA_MSG_LEN] == 0x80
    bit_len = int.from_bytes(padded[-8:], "big")
    assert bit_len == 8 * datagen.SHA_MSG_LEN


def test_sha_reference_is_hashlib():
    import hashlib

    assert datagen.sha_reference() == hashlib.sha1(
        datagen.sha_message()).digest()


def test_bmh_matches_python_find():
    text = datagen.SEARCH_TEXT
    for pattern in datagen.SEARCH_PATTERNS:
        assert datagen.bmh_search(text, pattern) == text.find(pattern)


def test_qsort_reference_sorted():
    ref = datagen.qsort_reference()
    assert ref == sorted(ref)
    assert sorted(datagen.qsort_inputs()) == ref


def test_fft_reference_linearity_checksum_stable():
    re1, im1 = datagen.fft_reference(seed=2017)
    re2, im2 = datagen.fft_reference(seed=2017)
    assert re1 == re2 and im1 == im2


def test_fft_inverse_energy_sane():
    """Parseval-ish sanity: the FFT of a non-zero signal is non-zero."""
    re, im = datagen.fft_reference()
    assert any(v != 0 for v in re) or any(v != 0 for v in im)


def test_susan_lut_shape():
    lut = datagen.susan_lut()
    assert lut[0] == 100
    assert lut[255] == 0
    assert all(lut[i] >= lut[i + 1] for i in range(255))


def test_susan_corners_subset_of_low_usan():
    corners = datagen.susan_corners_reference()
    assert set(corners) <= {0, 1}
    assert sum(corners) > 0  # the synthetic image has corners


def test_susan_edges_nonnegative():
    edges = datagen.susan_edges_reference()
    assert all(v >= 0 for v in edges)
    assert any(v > 0 for v in edges)


def test_susan_smooth_range():
    img = datagen.susan_image()
    smooth = datagen.susan_smooth_reference()
    assert all(0 <= v <= 255 for v in smooth)
    assert len(smooth) == (datagen.SUSAN_W - 2) * (datagen.SUSAN_H - 2)
    del img


def test_lcg_determinism():
    a = datagen.LCG(42)
    b = datagen.LCG(42)
    assert [a.next() for _ in range(10)] == [b.next() for _ in range(10)]


def test_fold_checksum_order_sensitive():
    assert datagen.fold_checksum([1, 2]) != datagen.fold_checksum([2, 1])


def test_directive_renderers():
    words = datagen.words_directive([1, 2, 3])
    assert ".word" in words and "0x00000001" in words
    raw = datagen.bytes_directive(b"\x01\xff")
    assert ".byte" in raw and "0xff" in raw
