"""Cross-level invariants: the three models agree architecturally.

This is the repository's strongest internal evidence: the reference
interpreter, the OoO microarchitectural model and the in-order RT-level
model execute the same binaries to identical outputs, identical retired
instruction counts and identical final register state -- so every
cross-level *vulnerability* difference measured by the study comes from
structure and timing, not from semantics.
"""

import pytest

from repro.isa import Interpreter, Toolchain
from repro.rtl import RTLConfig, RTLSim
from repro.uarch import CortexA9Config, MicroArchSim, RunStatus
from repro.workloads import WORKLOAD_NAMES, build

FAST_UARCH = CortexA9Config(dcache_size=2048, icache_size=2048)
FAST_RTL = RTLConfig(trace_signals=False, dcache_size=2048,
                     icache_size=2048)

SMALL = ("fft", "qsort", "caes", "sha", "stringsearch")


@pytest.mark.parametrize("name", SMALL)
def test_three_models_agree(name):
    program = build(name, Toolchain("gnu"))
    interp = Interpreter(program)
    ref = interp.run(max_insts=2_000_000)
    uarch = MicroArchSim(program, FAST_UARCH)
    assert uarch.run() is RunStatus.EXITED
    rtl = RTLSim(program, FAST_RTL)
    assert rtl.run() is RunStatus.EXITED

    assert uarch.output == ref.output
    assert rtl.output == ref.output
    assert uarch.icount == ref.inst_count
    assert rtl.icount == ref.inst_count

    interp_regs = [interp.regs.read(i) for i in range(15)]
    assert uarch.arch_state()["regs"] == interp_regs
    assert rtl.arch_state()["regs"][:15] == interp_regs


@pytest.mark.parametrize("name", SMALL)
def test_cross_toolchain_same_output(name):
    """SS III-C: different toolchains, same program semantics."""
    gnu = Interpreter(build(name, Toolchain("gnu"))).run(2_000_000)
    armcc = Interpreter(build(name, Toolchain("armcc"))).run(2_000_000)
    assert gnu.output == armcc.output
    assert gnu.inst_count != armcc.inst_count  # but different executions


def test_rtl_slower_in_cycles_than_uarch():
    """In-order vs OoO: same work takes more cycles at RT level."""
    slower = 0
    for name in SMALL:
        program = build(name, Toolchain("gnu"))
        uarch = MicroArchSim(program, FAST_UARCH)
        uarch.run()
        rtl = RTLSim(program, FAST_RTL)
        rtl.run()
        if rtl.cycle > uarch.cycle:
            slower += 1
    assert slower >= len(SMALL) - 1


def test_workload_names_cover_paper_set():
    assert len(WORKLOAD_NAMES) == 8
