"""The on-disk campaign store: round trips, crash recovery, rejection.

Covers the durability contract of :mod:`repro.injection.store`, for
both record formats (bitpacked binary, format 2 and the default; JSONL,
format 1):

* record/manifest round-trip fidelity;
* resume-after-kill -- a record stream truncated mid-record recovers
  cleanly and the resumed campaign is bit-identical to an
  uninterrupted one;
* identity mismatches (different seed/samples/structure) are rejected
  instead of silently merging incompatible results;
* corruption that recovery cannot explain -- a mid-file parse error, a
  duplicated fault index, an orphaned records file whose manifest is
  gone -- is an error, never a silent wipe or merge.

(The byte-level codec -- packing, string table, RLE traces, torn-tail
offsets -- is fuzzed in ``test_storefmt.py``.)
"""

import json
import shutil

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.classify import FaultClass, FaultRecord
from repro.injection.faults import FaultSpec
from repro.injection.store import (
    CampaignStore,
    StoreError,
    StoreMismatchError,
    load_store,
    record_from_json,
    record_to_json,
)
from repro.sim import registry
from support import record_keys, truncate_records

WORKLOAD = "stringsearch"

FORMATS = ("binary", "jsonl")


@pytest.fixture(scope="module")
def factory():
    return registry.create_frontend("uarch", WORKLOAD).sim_factory


def make_campaign(factory, samples=8, seed=13, jobs=1):
    config = CampaignConfig(samples=samples, window=800, seed=seed,
                            jobs=jobs)
    return Campaign(factory, "regfile", config,
                    workload=WORKLOAD, level="uarch")


@pytest.fixture(scope="module")
def reference(factory):
    """The uninterrupted in-memory campaign every store run must
    reproduce bit for bit."""
    return make_campaign(factory).run()


# ----------------------------------------------------------------------
# serialization round trip
# ----------------------------------------------------------------------

def test_record_json_round_trip():
    fault = FaultSpec("regfile", 123, 4567, original_cycle=4000)
    record = FaultRecord(fault, FaultClass.SDC, "output differs",
                         sim_cycles=800, wall_seconds=0.25,
                         replay_cycles=1200)
    index, clone = record_from_json(
        json.loads(json.dumps(record_to_json(7, record))))
    assert index == 7
    assert clone.fault.structure == "regfile"
    assert clone.fault.bit == 123
    assert clone.fault.cycle == 4567
    assert clone.fault.original_cycle == 4000
    assert clone.fclass is FaultClass.SDC
    assert clone.detail == "output differs"
    assert clone.sim_cycles == 800
    assert clone.replay_cycles == 1200


@pytest.mark.parametrize("fmt", FORMATS)
def test_store_round_trip(tmp_path, fmt):
    store = CampaignStore(tmp_path / "s", store_format=fmt)
    identity = {"workload": "w", "config": {"seed": 1}}
    assert store.begin(identity) == {}
    fault = FaultSpec("regfile", 5, 100)
    store.append(0, FaultRecord(fault, FaultClass.MASKED))
    store.append(2, FaultRecord(fault, FaultClass.HANG, "watchdog"))
    store.close()
    manifest, records = load_store(tmp_path / "s")
    assert manifest["identity"] == identity
    assert manifest["format"] == (2 if fmt == "binary" else 1)
    assert set(records) == {0, 2}
    assert records[2].fclass is FaultClass.HANG
    assert records[2].detail == "watchdog"


def test_fresh_stores_default_to_binary(tmp_path):
    store = CampaignStore(tmp_path / "s")
    store.begin({"a": 1})
    store.close()
    assert store.manifest()["format"] == 2
    assert store.binary_path.exists()
    assert not store.records_path.exists()


def test_store_golden_info(tmp_path):
    store = CampaignStore(tmp_path / "s")
    store.begin({"a": 1})
    assert store.golden_info() is None
    store.set_golden(1000, 900, 1002, 32_000, 480)
    assert store.golden_info() == {
        "cycles": 1000, "insts": 900, "end_cycle": 1002,
        "population": 32_000, "bits": 480,
    }
    store.close()


def test_format_conflict_rejected(tmp_path):
    """An existing store never silently changes format: an explicit
    conflicting request errors on resume."""
    store = CampaignStore(tmp_path / "s", store_format="binary")
    store.begin({"a": 1})
    store.append(0, FaultRecord(FaultSpec("regfile", 5, 100),
                                FaultClass.MASKED))
    store.close()
    with pytest.raises(StoreError, match="jsonl was requested"):
        CampaignStore(tmp_path / "s", store_format="jsonl").begin(
            {"a": 1}, resume=True)
    # No request = keep the store's own format.
    resumed = CampaignStore(tmp_path / "s")
    assert len(resumed.begin({"a": 1}, resume=True)) == 1
    resumed.close()


# ----------------------------------------------------------------------
# campaign integration: persist, interrupt, resume
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fmt", FORMATS)
def test_campaign_persists_and_fully_resumes(tmp_path, factory,
                                             reference, fmt):
    stored = make_campaign(factory).run(
        store=CampaignStore(tmp_path / "c", store_format=fmt))
    assert record_keys(stored) == record_keys(reference)
    # Second run resumes everything: no simulation, same records.
    resumed = make_campaign(factory).run(
        store=CampaignStore(tmp_path / "c"), resume=True)
    assert resumed.resumed == reference.n
    assert record_keys(resumed) == record_keys(reference)
    # The fast path never built a simulator, yet the statistics hold.
    assert resumed.population == reference.population
    assert resumed.golden_cycles == reference.golden_cycles


@pytest.mark.parametrize("fmt", FORMATS)
def test_resume_after_kill_truncated_record(tmp_path, factory,
                                            reference, fmt):
    """Chop the record stream mid-record (a kill's footprint) and
    resume: classifications must be bit-identical to the
    uninterrupted run."""
    store = CampaignStore(tmp_path / "c", store_format=fmt)
    make_campaign(factory).run(store=store)
    # Keep 3 intact records plus part of the 4th: the in-flight fault.
    truncate_records(store.path, 3, partial_bytes=20)
    resumed = make_campaign(factory, jobs=2).run(
        store=CampaignStore(tmp_path / "c"), resume=True)
    assert resumed.resumed == 3
    assert record_keys(resumed) == record_keys(reference)
    # The store is whole again after the resumed run.
    _, records = load_store(tmp_path / "c")
    assert sorted(records) == list(range(reference.n))


def test_binary_store_persists_golden_trace(tmp_path, factory,
                                            reference):
    """Binary stores carry the golden lifetime trace (RLE-encoded)
    alongside the records its prune decisions explain."""
    store = CampaignStore(tmp_path / "c")
    make_campaign(factory).run(store=store)
    trace = CampaignStore(tmp_path / "c").golden_trace()
    assert trace is not None
    assert trace.event_count() > 0
    assert "regfile" in trace.structures()


def test_mid_file_corruption_is_an_error(tmp_path):
    store = CampaignStore(tmp_path / "s", store_format="jsonl")
    store.begin({"a": 1})
    fault = FaultSpec("regfile", 5, 100)
    store.append(0, FaultRecord(fault, FaultClass.MASKED))
    store.append(1, FaultRecord(fault, FaultClass.MASKED))
    store.close()
    lines = store.records_path.read_text().splitlines(True)
    store.records_path.write_text("garbage\n" + lines[1])
    with pytest.raises(StoreError, match="corrupt record"):
        store.records()


@pytest.mark.parametrize("fmt", FORMATS)
def test_duplicate_fault_index_is_an_error(tmp_path, fmt):
    """A double-appended index is corruption, not a quiet overwrite:
    silently keeping the last record would under-run resumes."""
    store = CampaignStore(tmp_path / "s", store_format=fmt)
    store.begin({"a": 1})
    fault = FaultSpec("regfile", 5, 100)
    store.append(1, FaultRecord(fault, FaultClass.MASKED))
    store.append(1, FaultRecord(fault, FaultClass.HANG, "watchdog"))
    store.close()
    with pytest.raises(StoreError, match="duplicate fault index #1"):
        store.records()
    with pytest.raises(StoreError, match="duplicate fault index #1"):
        store.class_tally()


def test_resume_rejects_identity_mismatch(tmp_path, factory):
    store_path = tmp_path / "c"
    make_campaign(factory, samples=4).run(
        store=CampaignStore(store_path))
    for kwargs in ({"samples": 5}, {"seed": 99}):
        with pytest.raises(StoreMismatchError):
            make_campaign(factory, **{"samples": 4, **kwargs}).run(
                store=CampaignStore(store_path), resume=True)


def test_resume_rejects_foreign_fault_records(tmp_path, factory):
    """Stored faults must match the redrawn samples index-for-index:
    a record whose fault differs (e.g. the store predates a sampling
    change the identity cannot see) fails loudly, never merges."""
    store = CampaignStore(tmp_path / "c", store_format="jsonl")
    make_campaign(factory).run(store=store)
    lines = store.records_path.read_text().splitlines(True)
    tampered = json.loads(lines[2])
    tampered["original_cycle"] += 1
    lines[2] = json.dumps(tampered) + "\n"
    # Drop one record so the resume takes the merge path.
    store.records_path.write_text("".join(lines[:-1]))
    with pytest.raises(StoreMismatchError, match="sampling change"):
        make_campaign(factory).run(store=CampaignStore(tmp_path / "c"),
                                   resume=True)


def test_fully_complete_resume_also_cross_checks_faults(tmp_path,
                                                        factory):
    """The golden-skipping fast path must reject foreign faults too,
    not just the partial-resume merge path."""
    store = CampaignStore(tmp_path / "c", store_format="jsonl")
    make_campaign(factory).run(store=store)
    lines = store.records_path.read_text().splitlines(True)
    tampered = json.loads(lines[2])
    tampered["original_cycle"] += 1
    lines[2] = json.dumps(tampered) + "\n"
    store.records_path.write_text("".join(lines))
    with pytest.raises(StoreMismatchError, match="sampling change"):
        make_campaign(factory).run(store=CampaignStore(tmp_path / "c"),
                                   resume=True)


def test_unknown_format_rejected(tmp_path):
    store = CampaignStore(tmp_path / "s")
    store.begin({"a": 1})
    store.close()
    manifest = json.loads(store.manifest_path.read_text())
    manifest["format"] = 99
    store.manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="format"):
        CampaignStore(tmp_path / "s").manifest()


def test_fresh_start_refuses_to_destroy_records(tmp_path, factory):
    """resume=False must never silently discard completed faults."""
    store_path = tmp_path / "c"
    make_campaign(factory, samples=4).run(store=CampaignStore(store_path))
    with pytest.raises(StoreError, match="already holds 4"):
        make_campaign(factory, samples=4, seed=99).run(
            store=CampaignStore(store_path))
    # The store survived the refusal intact.
    _, records = load_store(store_path)
    assert sorted(records) == [0, 1, 2, 3]
    # Deleting the directory is the explicit start-over path.
    shutil.rmtree(store_path)
    fresh = make_campaign(factory, samples=4, seed=99).run(
        store=CampaignStore(store_path))
    assert fresh.n == 4
    manifest, _ = load_store(store_path)
    assert manifest["identity"]["config"]["seed"] == 99


@pytest.mark.parametrize("fmt", FORMATS)
def test_missing_manifest_refuses_fresh_start(tmp_path, fmt):
    """A records file without a manifest (crash before the manifest
    write, or a hand-deleted manifest) must refuse a fresh start --
    the old behaviour wiped the orphaned records."""
    store = CampaignStore(tmp_path / "s", store_format=fmt)
    store.begin({"a": 1})
    store.append(0, FaultRecord(FaultSpec("regfile", 5, 100),
                                FaultClass.MASKED))
    store.close()
    store.manifest_path.unlink()
    with pytest.raises(StoreError, match="manifest.json is missing"):
        CampaignStore(tmp_path / "s", store_format=fmt).begin({"a": 1})
    # The orphaned records survived the refusal.
    assert len(CampaignStore(tmp_path / "s").records()) == 1


def test_missing_store_raises(tmp_path):
    with pytest.raises(StoreError, match="no campaign store"):
        load_store(tmp_path / "nope")


def test_append_requires_begin(tmp_path):
    store = CampaignStore(tmp_path / "s")
    fault = FaultSpec("regfile", 5, 100)
    with pytest.raises(StoreError, match="begin"):
        store.append(0, FaultRecord(fault, FaultClass.MASKED))


# ----------------------------------------------------------------------
# reporting over merged stores
# ----------------------------------------------------------------------

def test_store_table_reads_merged_stores(tmp_path, factory):
    from repro.analysis.report import store_table

    a = tmp_path / "a"
    b = tmp_path / "b"
    make_campaign(factory, samples=4).run(store=CampaignStore(a))
    make_campaign(factory, samples=4, seed=99).run(
        store=CampaignStore(b, store_format="jsonl"))
    text = store_table([a, b], title="merged")
    assert "merged" in text
    assert str(a) in text and str(b) in text
    assert WORKLOAD in text
    # Both stores are complete: done == of == 4.
    assert text.count(" 4 ") >= 4
