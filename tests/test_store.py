"""The on-disk campaign store: round trips, crash recovery, rejection.

Covers the durability contract of :mod:`repro.injection.store`, for
both record formats (bitpacked binary, format 2 and the default; JSONL,
format 1):

* record/manifest round-trip fidelity;
* resume-after-kill -- a record stream truncated mid-record recovers
  cleanly and the resumed campaign is bit-identical to an
  uninterrupted one;
* identity mismatches (different seed/samples/structure) are rejected
  instead of silently merging incompatible results;
* corruption that recovery cannot explain -- a mid-file parse error, a
  duplicated fault index, an orphaned records file whose manifest is
  gone -- is an error, never a silent wipe or merge.

(The byte-level codec -- packing, string table, RLE traces, torn-tail
offsets -- is fuzzed in ``test_storefmt.py``.)
"""

import json
import shutil

import pytest

from repro.injection.campaign import Campaign, CampaignConfig
from repro.injection.classify import FaultClass, FaultRecord
from repro.injection.faults import FaultSpec
from repro.injection.store import (
    CampaignStore,
    StoreError,
    StoreMismatchError,
    load_store,
    record_from_json,
    record_to_json,
)
from repro.sim import registry
from support import record_keys, truncate_records

WORKLOAD = "stringsearch"

FORMATS = ("binary", "jsonl")


@pytest.fixture(scope="module")
def factory():
    return registry.create_frontend("uarch", WORKLOAD).sim_factory


def make_campaign(factory, samples=8, seed=13, jobs=1):
    config = CampaignConfig(samples=samples, window=800, seed=seed,
                            jobs=jobs)
    return Campaign(factory, "regfile", config,
                    workload=WORKLOAD, level="uarch")


@pytest.fixture(scope="module")
def reference(factory):
    """The uninterrupted in-memory campaign every store run must
    reproduce bit for bit."""
    return make_campaign(factory).run()


# ----------------------------------------------------------------------
# serialization round trip
# ----------------------------------------------------------------------

def test_record_json_round_trip():
    fault = FaultSpec("regfile", 123, 4567, original_cycle=4000)
    record = FaultRecord(fault, FaultClass.SDC, "output differs",
                         sim_cycles=800, wall_seconds=0.25,
                         replay_cycles=1200)
    index, clone = record_from_json(
        json.loads(json.dumps(record_to_json(7, record))))
    assert index == 7
    assert clone.fault.structure == "regfile"
    assert clone.fault.bit == 123
    assert clone.fault.cycle == 4567
    assert clone.fault.original_cycle == 4000
    assert clone.fclass is FaultClass.SDC
    assert clone.detail == "output differs"
    assert clone.sim_cycles == 800
    assert clone.replay_cycles == 1200


@pytest.mark.parametrize("fmt", FORMATS)
def test_store_round_trip(tmp_path, fmt):
    store = CampaignStore(tmp_path / "s", store_format=fmt)
    identity = {"workload": "w", "config": {"seed": 1}}
    assert store.begin(identity) == {}
    fault = FaultSpec("regfile", 5, 100)
    store.append(0, FaultRecord(fault, FaultClass.MASKED))
    store.append(2, FaultRecord(fault, FaultClass.HANG, "watchdog"))
    store.close()
    manifest, records = load_store(tmp_path / "s")
    assert manifest["identity"] == identity
    assert manifest["format"] == (2 if fmt == "binary" else 1)
    assert set(records) == {0, 2}
    assert records[2].fclass is FaultClass.HANG
    assert records[2].detail == "watchdog"


def test_fresh_stores_default_to_binary(tmp_path):
    store = CampaignStore(tmp_path / "s")
    store.begin({"a": 1})
    store.close()
    assert store.manifest()["format"] == 2
    assert store.binary_path.exists()
    assert not store.records_path.exists()


def test_store_golden_info(tmp_path):
    store = CampaignStore(tmp_path / "s")
    store.begin({"a": 1})
    assert store.golden_info() is None
    store.set_golden(1000, 900, 1002, 32_000, 480)
    assert store.golden_info() == {
        "cycles": 1000, "insts": 900, "end_cycle": 1002,
        "population": 32_000, "bits": 480,
    }
    store.close()


def test_format_conflict_rejected(tmp_path):
    """An existing store never silently changes format: an explicit
    conflicting request errors on resume."""
    store = CampaignStore(tmp_path / "s", store_format="binary")
    store.begin({"a": 1})
    store.append(0, FaultRecord(FaultSpec("regfile", 5, 100),
                                FaultClass.MASKED))
    store.close()
    with pytest.raises(StoreError, match="jsonl was requested"):
        CampaignStore(tmp_path / "s", store_format="jsonl").begin(
            {"a": 1}, resume=True)
    # No request = keep the store's own format.
    resumed = CampaignStore(tmp_path / "s")
    assert len(resumed.begin({"a": 1}, resume=True)) == 1
    resumed.close()


# ----------------------------------------------------------------------
# campaign integration: persist, interrupt, resume
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fmt", FORMATS)
def test_campaign_persists_and_fully_resumes(tmp_path, factory,
                                             reference, fmt):
    stored = make_campaign(factory).run(
        store=CampaignStore(tmp_path / "c", store_format=fmt))
    assert record_keys(stored) == record_keys(reference)
    # Second run resumes everything: no simulation, same records.
    resumed = make_campaign(factory).run(
        store=CampaignStore(tmp_path / "c"), resume=True)
    assert resumed.resumed == reference.n
    assert record_keys(resumed) == record_keys(reference)
    # The fast path never built a simulator, yet the statistics hold.
    assert resumed.population == reference.population
    assert resumed.golden_cycles == reference.golden_cycles


@pytest.mark.parametrize("fmt", FORMATS)
def test_resume_after_kill_truncated_record(tmp_path, factory,
                                            reference, fmt):
    """Chop the record stream mid-record (a kill's footprint) and
    resume: classifications must be bit-identical to the
    uninterrupted run."""
    store = CampaignStore(tmp_path / "c", store_format=fmt)
    make_campaign(factory).run(store=store)
    # Keep 3 intact records plus part of the 4th: the in-flight fault.
    truncate_records(store.path, 3, partial_bytes=20)
    resumed = make_campaign(factory, jobs=2).run(
        store=CampaignStore(tmp_path / "c"), resume=True)
    assert resumed.resumed == 3
    assert record_keys(resumed) == record_keys(reference)
    # The store is whole again after the resumed run.
    _, records = load_store(tmp_path / "c")
    assert sorted(records) == list(range(reference.n))


def test_binary_store_persists_golden_trace(tmp_path, factory,
                                            reference):
    """Binary stores carry the golden lifetime trace (RLE-encoded)
    alongside the records its prune decisions explain."""
    store = CampaignStore(tmp_path / "c")
    make_campaign(factory).run(store=store)
    trace = CampaignStore(tmp_path / "c").golden_trace()
    assert trace is not None
    assert trace.event_count() > 0
    assert "regfile" in trace.structures()


def test_mid_file_corruption_is_an_error(tmp_path):
    store = CampaignStore(tmp_path / "s", store_format="jsonl")
    store.begin({"a": 1})
    fault = FaultSpec("regfile", 5, 100)
    store.append(0, FaultRecord(fault, FaultClass.MASKED))
    store.append(1, FaultRecord(fault, FaultClass.MASKED))
    store.close()
    lines = store.records_path.read_text().splitlines(True)
    store.records_path.write_text("garbage\n" + lines[1])
    with pytest.raises(StoreError, match="corrupt record"):
        store.records()


@pytest.mark.parametrize("fmt", FORMATS)
def test_duplicate_fault_index_is_an_error(tmp_path, fmt):
    """A double-appended index is corruption, not a quiet overwrite:
    silently keeping the last record would under-run resumes."""
    store = CampaignStore(tmp_path / "s", store_format=fmt)
    store.begin({"a": 1})
    fault = FaultSpec("regfile", 5, 100)
    store.append(1, FaultRecord(fault, FaultClass.MASKED))
    store.append(1, FaultRecord(fault, FaultClass.HANG, "watchdog"))
    store.close()
    with pytest.raises(StoreError, match="duplicate fault index #1"):
        store.records()
    with pytest.raises(StoreError, match="duplicate fault index #1"):
        store.class_tally()


def test_resume_rejects_identity_mismatch(tmp_path, factory):
    store_path = tmp_path / "c"
    make_campaign(factory, samples=4).run(
        store=CampaignStore(store_path))
    for kwargs in ({"samples": 5}, {"seed": 99}):
        with pytest.raises(StoreMismatchError):
            make_campaign(factory, **{"samples": 4, **kwargs}).run(
                store=CampaignStore(store_path), resume=True)


def test_resume_rejects_foreign_fault_records(tmp_path, factory):
    """Stored faults must match the redrawn samples index-for-index:
    a record whose fault differs (e.g. the store predates a sampling
    change the identity cannot see) fails loudly, never merges."""
    store = CampaignStore(tmp_path / "c", store_format="jsonl")
    make_campaign(factory).run(store=store)
    lines = store.records_path.read_text().splitlines(True)
    tampered = json.loads(lines[2])
    tampered["original_cycle"] += 1
    lines[2] = json.dumps(tampered) + "\n"
    # Drop one record so the resume takes the merge path.
    store.records_path.write_text("".join(lines[:-1]))
    with pytest.raises(StoreMismatchError, match="sampling change"):
        make_campaign(factory).run(store=CampaignStore(tmp_path / "c"),
                                   resume=True)


def test_fully_complete_resume_also_cross_checks_faults(tmp_path,
                                                        factory):
    """The golden-skipping fast path must reject foreign faults too,
    not just the partial-resume merge path."""
    store = CampaignStore(tmp_path / "c", store_format="jsonl")
    make_campaign(factory).run(store=store)
    lines = store.records_path.read_text().splitlines(True)
    tampered = json.loads(lines[2])
    tampered["original_cycle"] += 1
    lines[2] = json.dumps(tampered) + "\n"
    store.records_path.write_text("".join(lines))
    with pytest.raises(StoreMismatchError, match="sampling change"):
        make_campaign(factory).run(store=CampaignStore(tmp_path / "c"),
                                   resume=True)


def test_unknown_format_rejected(tmp_path):
    store = CampaignStore(tmp_path / "s")
    store.begin({"a": 1})
    store.close()
    manifest = json.loads(store.manifest_path.read_text())
    manifest["format"] = 99
    store.manifest_path.write_text(json.dumps(manifest))
    with pytest.raises(StoreError, match="format"):
        CampaignStore(tmp_path / "s").manifest()


def test_fresh_start_refuses_to_destroy_records(tmp_path, factory):
    """resume=False must never silently discard completed faults."""
    store_path = tmp_path / "c"
    make_campaign(factory, samples=4).run(store=CampaignStore(store_path))
    with pytest.raises(StoreError, match="already holds 4"):
        make_campaign(factory, samples=4, seed=99).run(
            store=CampaignStore(store_path))
    # The store survived the refusal intact.
    _, records = load_store(store_path)
    assert sorted(records) == [0, 1, 2, 3]
    # Deleting the directory is the explicit start-over path.
    shutil.rmtree(store_path)
    fresh = make_campaign(factory, samples=4, seed=99).run(
        store=CampaignStore(store_path))
    assert fresh.n == 4
    manifest, _ = load_store(store_path)
    assert manifest["identity"]["config"]["seed"] == 99


@pytest.mark.parametrize("fmt", FORMATS)
def test_missing_manifest_refuses_fresh_start(tmp_path, fmt):
    """A records file without a manifest (crash before the manifest
    write, or a hand-deleted manifest) must refuse a fresh start --
    the old behaviour wiped the orphaned records."""
    store = CampaignStore(tmp_path / "s", store_format=fmt)
    store.begin({"a": 1})
    store.append(0, FaultRecord(FaultSpec("regfile", 5, 100),
                                FaultClass.MASKED))
    store.close()
    store.manifest_path.unlink()
    with pytest.raises(StoreError, match="manifest.json is missing"):
        CampaignStore(tmp_path / "s", store_format=fmt).begin({"a": 1})
    # The orphaned records survived the refusal.
    assert len(CampaignStore(tmp_path / "s").records()) == 1


def test_missing_store_raises(tmp_path):
    with pytest.raises(StoreError, match="no campaign store"):
        load_store(tmp_path / "nope")


def test_append_requires_begin(tmp_path):
    store = CampaignStore(tmp_path / "s")
    fault = FaultSpec("regfile", 5, 100)
    with pytest.raises(StoreError, match="begin"):
        store.append(0, FaultRecord(fault, FaultClass.MASKED))


# ----------------------------------------------------------------------
# reporting over merged stores
# ----------------------------------------------------------------------

def test_store_table_reads_merged_stores(tmp_path, factory):
    from repro.analysis.report import store_table

    a = tmp_path / "a"
    b = tmp_path / "b"
    make_campaign(factory, samples=4).run(store=CampaignStore(a))
    make_campaign(factory, samples=4, seed=99).run(
        store=CampaignStore(b, store_format="jsonl"))
    text = store_table([a, b], title="merged")
    assert "merged" in text
    assert str(a) in text and str(b) in text
    assert WORKLOAD in text
    # Both stores are complete: done == of == 4.
    assert text.count(" 4 ") >= 4


# ----------------------------------------------------------------------
# the incidents.jsonl sidecar (quarantined faults)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fmt", FORMATS)
def test_incidents_sidecar_round_trip(tmp_path, fmt):
    from repro.injection.classify import Incident

    store = CampaignStore(tmp_path / "s", store_format=fmt)
    store.begin({"a": 1})
    assert store.incidents() == {}
    assert store.incident_count() == 0
    fault = FaultSpec("regfile", 5, 100, original_cycle=90)
    store.append_incident(Incident(3, fault, "crash",
                                   "worker died (exit code -11)",
                                   attempts=2))
    store.close()
    loaded = CampaignStore(tmp_path / "s").incidents()
    assert set(loaded) == {3}
    incident = loaded[3]
    assert incident.disposition == "error"
    assert incident.kind == "crash"
    assert incident.detail == "worker died (exit code -11)"
    assert incident.attempts == 2
    assert (incident.fault.structure, incident.fault.bit,
            incident.fault.original_cycle) == ("regfile", 5, 90)


def test_incident_append_requires_begin(tmp_path):
    from repro.injection.classify import Incident

    store = CampaignStore(tmp_path / "s")
    with pytest.raises(StoreError, match="begin"):
        store.append_incident(Incident(0, FaultSpec("regfile", 5, 100),
                                       "hang"))


def test_incidents_torn_tail_recovered_on_resume(tmp_path):
    from repro.injection.classify import Incident

    store = CampaignStore(tmp_path / "s")
    store.begin({"a": 1})
    fault = FaultSpec("regfile", 5, 100)
    store.append_incident(Incident(0, fault, "hang", attempts=2))
    store.append_incident(Incident(4, fault, "crash", attempts=3))
    store.close()
    path = store.incidents_path
    torn = path.read_bytes()[:-7]  # a kill mid-append
    path.write_bytes(torn)
    resumed = CampaignStore(tmp_path / "s")
    resumed.begin({"a": 1}, resume=True)
    assert set(resumed.incidents()) == {0}
    resumed.close()
    assert b"crash" not in path.read_bytes()


def test_duplicate_incident_index_is_an_error(tmp_path):
    from repro.injection.classify import Incident

    store = CampaignStore(tmp_path / "s")
    store.begin({"a": 1})
    fault = FaultSpec("regfile", 5, 100)
    store.append_incident(Incident(2, fault, "hang"))
    store.append_incident(Incident(2, fault, "crash"))
    store.close()
    with pytest.raises(StoreError, match="duplicate"):
        CampaignStore(tmp_path / "s").incidents()


def test_degraded_campaign_resume_is_a_noop(tmp_path, factory):
    """A campaign with a quarantined poison fault persists the incident;
    a chaos-free resume counts it as done (no re-run) and reproduces the
    degraded result exactly."""
    reference = make_campaign_chaos(factory, chaos=None).run()
    first = make_campaign_chaos(factory, chaos="raise*@3").run(
        store=CampaignStore(tmp_path / "c"))
    assert [i.index for i in first.incidents] == [3]
    assert first.degraded
    store = CampaignStore(tmp_path / "c")
    assert store.incident_count() == 1
    resumed = make_campaign_chaos(factory, chaos=None).run(
        store=CampaignStore(tmp_path / "c"), resume=True)
    assert resumed.resumed == first.n
    assert [i.index for i in resumed.incidents] == [3]
    assert resumed.incidents[0].attempts == first.incidents[0].attempts
    assert record_keys(resumed) == record_keys(first)
    survivors = [k for i, k in enumerate(record_keys(reference))
                 if i != 3]
    assert record_keys(first) == survivors


def make_campaign_chaos(factory, chaos, samples=8, seed=13):
    config = CampaignConfig(samples=samples, window=800, seed=seed,
                            prune_mode="off", chaos=chaos)
    return Campaign(factory, "regfile", config,
                    workload=WORKLOAD, level="uarch")


# ----------------------------------------------------------------------
# signal-safe shutdown: real SIGTERM against a real campaign process
# ----------------------------------------------------------------------

SIGTERM_SCENARIO = """\
[scenario]
name = "sigterm-smoke"

[targets]
levels = ["arch"]
workloads = ["stringsearch"]
structures = ["regfile"]
modes = ["pinout"]

[faults]
samples = 12
seed = 13

[execution]
jobs = {jobs}
prune = "off"
"""


def _spawn_cli(toml, store_root, chaos=None, resume=False):
    import os
    import pathlib
    import subprocess
    import sys

    env = dict(os.environ)
    repo = pathlib.Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(repo / "src")
    env.pop("REPRO_CHAOS", None)
    if chaos:
        env["REPRO_CHAOS"] = chaos
    argv = [sys.executable, "-m", "repro.cli", "run", str(toml),
            "--set", f"execution.store={store_root}"]
    if resume:
        argv += ["--set", "execution.resume=true"]
    return subprocess.Popen(argv, cwd=repo, env=env,
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.PIPE)


def _stored_record_count(cell_dir):
    from repro.injection import storefmt

    binary = cell_dir / "records.bin"
    if not binary.exists():
        return 0
    payload = binary.stat().st_size - storefmt.RECORDS_HEADER_BYTES
    return max(0, payload) // storefmt.RECORD_BYTES


def _class_sequence(cell_dir):
    _, records = load_store(cell_dir)
    return [(i, records[i].fault.bit, records[i].fault.original_cycle,
             records[i].fclass, records[i].detail)
            for i in sorted(records)]


@pytest.mark.parametrize("jobs", [1, 2], ids=["serial", "pooled"])
def test_sigterm_drains_then_resume_completes_exact_tally(tmp_path, jobs):
    """SIGTERM mid-campaign (a real child process, serial and pooled):
    the run drains, flushes and exits 130; --resume completes the store
    to the exact class sequence of an uninterrupted run."""
    import signal as signal_module
    import time

    toml = tmp_path / "scenario.toml"
    toml.write_text(SIGTERM_SCENARIO.format(jobs=jobs))
    cell = "arch-stringsearch-regfile-pinout"
    interrupted_root = tmp_path / "interrupted"
    # sleep@* paces every fault to >= 0.25 s so the signal reliably
    # lands mid-faulty-phase.
    proc = _spawn_cli(toml, interrupted_root, chaos="sleep@*")
    try:
        deadline = time.monotonic() + 120
        while _stored_record_count(interrupted_root / cell) < 2:
            assert proc.poll() is None, (
                f"campaign exited before the signal: "
                f"{proc.stderr.read().decode()}")
            assert time.monotonic() < deadline, "no records appeared"
            time.sleep(0.05)
        proc.send_signal(signal_module.SIGTERM)
        stderr = proc.communicate(timeout=120)[1].decode()
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    assert proc.returncode == 130, stderr
    assert "interrupted" in stderr and "--resume" in stderr
    partial = _stored_record_count(interrupted_root / cell)
    assert 0 < partial < 12
    # Resume (chaos-free) must complete with status 0...
    resume = _spawn_cli(toml, interrupted_root, resume=True)
    stderr = resume.communicate(timeout=240)[1].decode()
    assert resume.returncode == 0, stderr
    # ...to the exact class sequence of an uninterrupted run.
    clean_root = tmp_path / "clean"
    clean = _spawn_cli(toml, clean_root)
    stderr = clean.communicate(timeout=240)[1].decode()
    assert clean.returncode == 0, stderr
    assert _class_sequence(interrupted_root / cell) == \
        _class_sequence(clean_root / cell)
