"""Microarchitectural (OoO) model: correctness and mechanics."""

import pytest

from repro.isa import Interpreter, Toolchain, assemble
from repro.uarch import CortexA9Config, MicroArchSim, RunStatus
from repro.workloads import build, expected_output

FAST_CONFIG = CortexA9Config(dcache_size=2048, icache_size=2048)


def run_uarch(body, config=None):
    program = assemble(".text\n_start:\n" + body)
    sim = MicroArchSim(program, config or FAST_CONFIG)
    status = sim.run()
    return sim, status


EXIT = "    movw r0, #0\n    svc #0\n"


def test_simple_program_exits():
    sim, status = run_uarch("""
    movw r1, #7
    add  r2, r1, r1
""" + EXIT)
    assert status is RunStatus.EXITED
    assert sim.arch_state()["regs"][2] == 14


def test_matches_interp_on_branches_and_memory():
    body = """
    movw r4, #0
    movw r5, #0
loop:
    add  r5, r5, r4
    add  r4, r4, #1
    cmp  r4, #20
    blt  loop
    ldr  r1, =buffer
    str  r5, [r1]
    ldr  r6, [r1]
    mov  r0, r6
    svc  #2
""" + EXIT + "\n.data\nbuffer: .space 4\n"
    program = assemble(".text\n_start:\n" + body)
    ref = Interpreter(program).run()
    sim = MicroArchSim(program, FAST_CONFIG)
    sim.run()
    assert sim.output == ref.output
    assert sim.icount == ref.inst_count


def test_store_load_forwarding():
    sim, status = run_uarch("""
    ldr  r1, =buffer
    movw r2, #77
    str  r2, [r1]
    ldr  r3, [r1]       ; must see the in-flight store
    mov  r0, r3
    svc  #2
""" + EXIT + "\n.data\nbuffer: .space 4\n")
    assert sim.output == b"77"


def test_partial_store_overlap_forwarding():
    sim, _ = run_uarch("""
    ldr  r1, =buffer
    movw r2, #0x1111
    movt r2, #0x1111
    str  r2, [r1]
    movw r3, #0xAB
    strb r3, [r1, #1]
    ldr  r4, [r1]
    mov  r0, r4
    svc  #3
""" + EXIT + "\n.data\nbuffer: .space 4\n")
    assert sim.output == b"1111ab11"


def test_mispredict_recovery_correct():
    """A data-dependent branch pattern the bimodal predictor gets wrong."""
    sim, status = run_uarch("""
    movw r4, #0
    movw r5, #0
loop:
    and  r1, r4, #1
    cmp  r1, #0
    beq  even
    add  r5, r5, #3
    b    next
even:
    add  r5, r5, #1
next:
    add  r4, r4, #1
    cmp  r4, #30
    blt  loop
    mov  r0, r5
    svc  #2
""" + EXIT)
    assert status is RunStatus.EXITED
    assert sim.output == b"60"
    assert sim.core.mispredicts > 0


def test_conditional_execution():
    sim, _ = run_uarch("""
    movw r1, #5
    cmp  r1, #5
    moveq r2, #1
    movne r3, #1
    mov  r0, r2
    svc  #2
    mov  r0, r3
    svc  #2
""" + EXIT)
    assert sim.output == b"10"


def test_exception_is_precise():
    """Only the faulting load's effects appear; older output committed."""
    sim, status = run_uarch("""
    movw r0, #65
    svc  #1
    mvn  r1, #0
    ldr  r2, [r1]       ; faults
    movw r0, #66
    svc  #1
""" + EXIT)
    assert status is RunStatus.FAULT
    assert sim.output == b"A"
    assert sim.fault.kind in ("mem-fault", "align-fault")


def test_wrong_path_fault_squashed():
    """A faulting load on the mispredicted path must not kill the run."""
    sim, status = run_uarch("""
    movw r4, #0
loop:
    add  r4, r4, #1
    cmp  r4, #12
    blt  loop           ; predictor learns taken; final fall-through
    b    done
    mvn  r1, #0
    ldr  r2, [r1]       ; wrong-path junk after unconditional branch
done:
""" + EXIT)
    assert status is RunStatus.EXITED


def test_stop_cycle_semantics():
    program = build("sha", Toolchain("gnu"))
    sim = MicroArchSim(program, FAST_CONFIG)
    status = sim.run(stop_cycle=500)
    assert status is RunStatus.STOPPED
    assert sim.cycle >= 500
    status = sim.run()
    assert status is RunStatus.EXITED


def test_watchdog_timeout():
    sim, status = run_uarch("loop: b loop\n")
    del sim
    assert status is RunStatus.FAULT or status is RunStatus.TIMEOUT


@pytest.mark.parametrize("name", ("fft", "qsort", "sha", "stringsearch"))
def test_cosim_output_and_icount(name):
    program = build(name, Toolchain("gnu"))
    ref = Interpreter(program).run(max_insts=2_000_000)
    sim = MicroArchSim(program)
    status = sim.run()
    assert status is RunStatus.EXITED
    assert sim.output == ref.output == expected_output(name)
    assert sim.icount == ref.inst_count


def test_checkpoint_restore_determinism():
    program = build("qsort", Toolchain("gnu"))
    sim = MicroArchSim(program, FAST_CONFIG)
    sim.run(stop_cycle=2000)
    cp = sim.checkpoint()
    sim.run()
    reference = (sim.output, [t.key() for t in sim.pinout], sim.icount)
    other = MicroArchSim(program, FAST_CONFIG)
    other.restore(cp)
    other.run()
    assert (other.output, [t.key() for t in other.pinout],
            other.icount) == reference


def test_restored_run_matches_continuous_golden_content():
    program = build("sha", Toolchain("gnu"))
    golden = MicroArchSim(program, FAST_CONFIG)
    golden.run()
    sim = MicroArchSim(program, FAST_CONFIG)
    sim.run(stop_cycle=3000)
    cp = sim.checkpoint()
    sim.restore(cp)
    sim.run()
    assert sim.output == golden.output
    assert [t.key() for t in sim.pinout] == \
        [t.key() for t in golden.pinout]


def test_fault_targets_populations():
    program = build("sha", Toolchain("gnu"))
    sim = MicroArchSim(program)
    targets = sim.fault_targets()
    assert targets["regfile"] == 56 * 32
    assert targets["l1d.data"] == 32 * 1024 * 8


def test_inject_into_free_phys_reg_is_masked():
    """Flipping a bit in a never-used physical register changes nothing."""
    program = build("stringsearch", Toolchain("gnu"))
    golden = MicroArchSim(program, FAST_CONFIG)
    golden.run()
    sim = MicroArchSim(program, FAST_CONFIG)
    sim.run(stop_cycle=100)
    free_phys = sim.rat.free[-1]
    sim.inject("regfile", free_phys * 32 + 5)
    sim.run()
    assert sim.output == golden.output


def test_inject_into_live_reg_can_corrupt():
    program = build("sha", Toolchain("gnu"))
    golden = MicroArchSim(program, FAST_CONFIG)
    golden.run()
    corrupted = 0
    for arch in (4, 5, 6, 7, 8):   # SHA-1 working variables a..e
        for bit in (3, 31):
            sim = MicroArchSim(program, FAST_CONFIG)
            sim.run(stop_cycle=2000)
            phys = sim.rat.committed[arch]
            sim.inject("regfile", phys * 32 + bit)
            status = sim.run(max_cycles=sim.cycle + 500_000)
            if status is not RunStatus.EXITED \
                    or sim.output != golden.output:
                corrupted += 1
    assert corrupted > 0


def test_unknown_fault_target_rejected():
    sim = MicroArchSim(build("sha", Toolchain("gnu")))
    with pytest.raises(ValueError):
        sim.inject("l2.data", 0)


def test_stats_shape():
    program = build("stringsearch", Toolchain("gnu"))
    sim = MicroArchSim(program, FAST_CONFIG)
    sim.run()
    stats = sim.stats()
    assert 0.1 < stats["ipc"] <= 2.0
    assert stats["instructions"] == sim.icount
    assert stats["l1d_hits"] > stats["l1d_misses"]


def test_pinout_contains_refills_and_writebacks():
    program = build("stringsearch", Toolchain("gnu"))
    # 1 KB forces dirty evictions (the campaign-scaled capacity).
    sim = MicroArchSim(program, CortexA9Config(dcache_size=1024,
                                               icache_size=1024))
    sim.run()
    kinds = {t.kind for t in sim.pinout}
    assert "rd" in kinds and "wb" in kinds


def test_table1_rows_match_paper():
    rows = dict(CortexA9Config().table_rows())
    assert rows["Physical Register File"] == "56 registers"
    assert rows["Instruction queue"] == "32"
    assert rows["Reorder buffer"] == "40"
    assert rows["Fetch/Execute/Writeback width"] == "2/4/4"
    assert rows["Data cache"] == "32KB 4-way"


def test_config_rejects_unknown_attribute():
    with pytest.raises(TypeError):
        CortexA9Config(bogus=1)
