"""Two-pass assembler: syntax, directives, toolchains, errors."""

import pytest

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Cond, Op, ShiftKind
from repro.isa.toolchain import Toolchain


def asm(body, toolchain=None):
    return assemble(".text\n" + body, toolchain=toolchain)


def one(body):
    prog = asm(body)
    assert len(prog.insts) == 1
    return prog.insts[0]


def test_basic_dp_register():
    inst = one("add r1, r2, r3")
    assert (inst.op, inst.rd, inst.rn, inst.rm) == (Op.ADD, 1, 2, 3)


def test_dp_immediate_selects_imm_form():
    inst = one("add r1, r2, #42")
    assert inst.op == Op.ADDI and inst.imm == 42


def test_negative_imm_flips_add_to_sub():
    inst = one("add r1, r2, #-4")
    assert inst.op == Op.SUBI and inst.imm == 4


def test_mov_negative_becomes_mvn():
    inst = one("mov r0, #-1")
    assert inst.op == Op.MVNI and inst.imm == 0


def test_cmp_negative_becomes_cmn():
    inst = one("cmp r0, #-3")
    assert inst.op == Op.CMNI and inst.imm == 3


def test_unencodable_imm_raises():
    with pytest.raises(AssemblerError):
        one("add r0, r1, #0x12345")


def test_s_suffix_and_cond_suffix():
    inst = one("addseq r0, r0, r1")
    assert inst.s and inst.cond == Cond.EQ


def test_cond_only_suffix():
    inst = one("moveq r0, r1")
    assert inst.cond == Cond.EQ and not inst.s


def test_branch_cond_vs_bl_disambiguation():
    prog = asm("x: bls x\n bl x\n bleq x\n b x\n")
    ops = [(i.op, i.cond) for i in prog.insts]
    assert ops[0] == (Op.B, Cond.LS)
    assert ops[1] == (Op.BL, Cond.AL)
    assert ops[2] == (Op.BL, Cond.EQ)
    assert ops[3] == (Op.B, Cond.AL)


def test_operand2_shift_immediate():
    inst = one("mov r0, r1, lsl #3")
    assert inst.shift_kind == ShiftKind.LSL and inst.shift_amount == 3


def test_operand2_shift_by_register():
    inst = one("orr r0, r1, r2, asr r3")
    assert inst.shift_kind == ShiftKind.ASR and inst.shift_reg == 3


def test_shift_pseudo_ops():
    inst = one("lsr r0, r1, #5")
    assert inst.op == Op.MOV and inst.shift_kind == ShiftKind.LSR
    assert inst.shift_amount == 5


def test_neg_pseudo():
    inst = one("neg r2, r3")
    assert inst.op == Op.RSBI and inst.rn == 3 and inst.imm == 0


def test_memory_addressing_forms():
    prog = asm("""
    ldr r0, [r1]
    ldr r0, [r1, #8]
    ldr r0, [r1, #-8]
    ldr r0, [r1, #4]!
    ldr r0, [r1], #4
    ldr r0, [r1, r2]
    ldr r0, [r1, r2, lsl #2]
    """)
    insts = prog.insts
    assert insts[0].imm == 0 and insts[0].pre and not insts[0].writeback
    assert insts[1].imm == 8
    assert insts[2].imm == -8
    assert insts[3].writeback and insts[3].pre
    assert insts[4].writeback and not insts[4].pre and insts[4].imm == 4
    assert insts[5].op == Op.LDRR
    assert insts[6].shift_amount == 2


def test_byte_and_half_ops():
    prog = asm("ldrb r0, [r1]\n strh r2, [r3, #2]\n")
    assert prog.insts[0].op == Op.LDRB
    assert prog.insts[1].op == Op.STRH


def test_push_pop_reglists():
    prog = asm("push {r0-r2, lr}\n pop {r0-r2, lr}\n")
    push, pop = prog.insts
    assert push.op == Op.STM and push.rn == 13 and push.writeback
    assert push.reglist == 0b0100000000000111
    assert pop.op == Op.LDM and pop.reglist == push.reglist


def test_empty_reglist_rejected():
    with pytest.raises(AssemblerError):
        asm("push {}")


def test_ldm_stm_explicit():
    prog = asm("ldmia r0!, {r1, r2}\n stmdb r3, {r4}\n")
    assert prog.insts[0].writeback
    assert not prog.insts[1].writeback


def test_labels_and_branch_offsets():
    prog = asm("""
start:
    nop
loop:
    b loop
    b start
""")
    assert prog.insts[1].imm == 0          # b loop -> itself
    assert prog.insts[2].imm == -8         # back to start


def test_duplicate_label_rejected():
    with pytest.raises(AssemblerError):
        asm("a: nop\na: nop\n")


def test_equ_and_expressions():
    prog = assemble("""
    .equ SIZE, 8
    .equ DOUBLE, SIZE * 2
    .text
    movw r0, #SIZE + 1
    movw r1, #(DOUBLE << 2) | 3
""")
    assert prog.insts[0].imm == 9
    assert prog.insts[1].imm == (16 << 2) | 3


def test_char_literals():
    inst = one("movw r0, #'A'")
    assert inst.imm == 65


def test_data_directives():
    prog = assemble("""
    .text
    nop
    .data
value: .word 0x11223344, 5
half:  .half 0x1234
byte:  .byte 1, 2, 3
text:  .asciz "hi"
pad:   .space 4, 0xFF
""")
    data = prog.data
    assert data[0:4] == bytes.fromhex("44332211")
    assert data[4:8] == (5).to_bytes(4, "little")
    assert data[8:10] == bytes.fromhex("3412")
    assert data[10:13] == bytes([1, 2, 3])
    assert data[13:16] == b"hi\x00"
    assert data[16:20] == b"\xff" * 4


def test_align_directive_in_data():
    prog = assemble("""
    .data
    .byte 1
    .align 4
word: .word 7
""")
    assert prog.symbols["word"] % 4 == 0


def test_ldr_eq_gnu_expands_to_movw_movt():
    prog = assemble(".text\n ldr r0, =0x12345678\n",
                    toolchain=Toolchain("gnu"))
    assert [i.op for i in prog.insts] == [Op.MOVW, Op.MOVT]
    assert prog.insts[0].imm == 0x5678
    assert prog.insts[1].imm == 0x1234


def test_ldr_eq_armcc_uses_literal_pool():
    prog = assemble(
        ".text\n ldr r0, =0xCAFEBABE\n hlt\n .pool\n",
        toolchain=Toolchain("armcc"),
    )
    ldr = prog.insts[0]
    assert ldr.op == Op.LDR and ldr.rn == 15
    # The pool word itself is in the binary image.
    assert (0xCAFEBABE).to_bytes(4, "little") in prog.text_bytes()


def test_armcc_aligns_labels():
    prog = assemble(
        ".text\n nop\n target: nop\n", toolchain=Toolchain("armcc")
    )
    assert prog.symbols["target"] % 8 == 0


def test_toolchains_differ_but_symbols_resolve():
    src = """
    .text
_start:
    ldr r0, =data
    hlt
    .pool
    .data
data: .word 1
"""
    gnu = assemble(src, toolchain=Toolchain("gnu"))
    armcc = assemble(src, toolchain=Toolchain("armcc"))
    assert gnu.text_bytes() != armcc.text_bytes()
    assert gnu.symbols["data"] == armcc.symbols["data"]


def test_pc_relative_load():
    prog = asm("ldr r0, lit\n hlt\n lit: .word 9\n")
    ldr = prog.insts[0]
    assert ldr.rn == 15
    # target = addr + 8 + imm
    assert ldr.imm + ldr.addr + 8 == prog.symbols["lit"]


def test_adr_pseudo():
    prog = asm("adr r0, target\n nop\n target: nop\n")
    inst = prog.insts[0]
    assert inst.op == Op.ADDI and inst.rn == 15
    assert inst.imm == prog.symbols["target"] - (inst.addr + 8)


def test_svc_and_hlt():
    prog = asm("svc #3\n hlt\n")
    assert prog.insts[0].op == Op.SVC and prog.insts[0].imm == 3
    assert prog.insts[1].op == Op.HLT


def test_comments_stripped():
    prog = asm("nop ; comment\n nop @ other\n nop // third\n")
    assert len(prog.insts) == 3


def test_unknown_mnemonic():
    with pytest.raises(AssemblerError):
        asm("frobnicate r0")


def test_unknown_directive():
    with pytest.raises(AssemblerError):
        assemble(".bogus 4")


def test_instruction_in_data_section_rejected():
    with pytest.raises(AssemblerError):
        assemble(".data\n add r0, r1, r2\n")


def test_error_reports_line_number():
    with pytest.raises(AssemblerError) as info:
        asm("nop\nbadinst r0\n")
    assert "line 3" in str(info.value)


def test_word_in_text_becomes_raw_slot():
    prog = asm("nop\n .word 0xDEADBEEF\n")
    assert prog.words[1] == 0xDEADBEEF
    assert prog.insts[1].op == Op.HLT  # executing the pool word traps


def test_mul_and_mla():
    prog = asm("mul r0, r1, r2\n mla r3, r4, r5, r6\n")
    assert prog.insts[0].op == Op.MUL
    mla = prog.insts[1]
    assert (mla.rd, mla.rn, mla.rm, mla.ra) == (3, 4, 5, 6)


def test_program_inst_at():
    prog = asm("nop\n nop\n")
    assert prog.inst_at(prog.layout.text_base) is prog.insts[0]
    assert prog.inst_at(prog.layout.text_base + 2) is None  # unaligned
    assert prog.inst_at(prog.layout.text_base + 800) is None
