"""Unified simulation-backend layer.

This package owns everything the abstraction levels share:

* :mod:`repro.sim.base` -- :class:`RunStatus` and
  :class:`SimulatorBase`, the run-control / checkpoint / injection
  protocol every backend implements;
* :mod:`repro.sim.registry` -- the pluggable backend registry keyed by
  level name (``arch``, ``uarch``, ``rtl``);
* :mod:`repro.sim.archsim` -- the architectural-emulator backend (the
  paper taxonomy's fastest tier);
* :mod:`repro.sim.frontend` -- the shared campaign front-end base that
  ``GeFIN``/``SafetyVerifier``/``ArchEmu`` specialise.

The campaign engine, the cross-level study and both CLI entry points
dispatch on levels exclusively through this package, so adding a backend
is one ``registry.register(...)`` call away.
"""

from repro.sim import registry
from repro.sim.base import RunStatus, SimulatorBase
from repro.sim.frontend import Frontend

__all__ = ["Frontend", "RunStatus", "SimulatorBase", "registry"]
