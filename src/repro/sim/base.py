"""The shared simulator protocol: run control, checkpoints, injection.

Every abstraction level the study can target -- the architectural
emulator (:mod:`repro.sim.archsim`), the microarchitectural model
(:mod:`repro.uarch.simulator`) and the RT-level model
(:mod:`repro.rtl.simulator`) -- implements one protocol, and this module
owns it:

* :class:`RunStatus` -- the outcome vocabulary of a (partial) run;
* :class:`SimulatorBase` -- run control (stop cycles, watchdogs),
  drain-based ``checkpoint()``/``restore()``, pinout publication, the
  ``fault_targets()``/``inject()`` resolution over each backend's
  ``INJECTABLE`` map, and ``stats()``.

Backends only supply ``_build()`` (construct the machine), the state
capture/restore hooks and their ``INJECTABLE`` maps; the campaign engine
in :mod:`repro.injection` is generic over this protocol, which is the
paper's "equivalent setup" requirement made executable.  Backends are
looked up by level name through :mod:`repro.sim.registry`.
"""

import enum
import pickle
import zlib

from repro.errors import SimFault
from repro.memory.bus import Transaction
from repro.memory.cache import Cache
from repro.memory.ram import RAM


def _crc(obj):
    """Stable content checksum of a snapshot payload.

    Snapshots are plain containers of bytes/ints/numpy arrays, so their
    pickling is deterministic within one platform+interpreter -- which is
    the scope a digest is ever compared across (parent process and its
    campaign workers).
    """
    return zlib.crc32(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


class RunStatus(enum.Enum):
    RUNNING = "running"
    EXITED = "exited"
    FAULT = "fault"
    STOPPED = "stopped"   # reached the requested stop cycle
    TIMEOUT = "timeout"   # watchdog expired


class SimulatorBase:
    """Common machinery of every simulation backend.

    A subclass provides:

    * ``LEVEL`` -- its registry name (``arch``/``uarch``/``rtl``);
    * ``INJECTABLE`` -- structure name -> human description;
    * ``default_config()`` -- the config object used when none is given;
    * ``_build()`` -- construct the machine as ``self.core``: anything
      with ``fault``/``syscalls``/``tick()``/``quiesced()``/
      ``draining``, *assignable* ``cycle``/``icount``/``pc``/
      ``exited``/``mispredicts`` (``restore()`` writes them back), plus
      ``self.ram`` and, when it models caches,
      ``self.dcache``/``self.icache``;
    * ``_capture_state()``/``_restore_state(cp)`` -- the level-specific
      checkpoint payload (register storage, cache arrays, ...);
    * ``_set_restart_point(pc, cycle)`` -- re-arm the level's notion of
      "committed PC" and hang bookkeeping after a restore;
    * optionally ``_resolve_special(structure)`` for injection targets
      outside the shared cache-array namespace.
    """

    LEVEL = None
    INJECTABLE = {}

    #: True when ``drain()`` is a no-op because the machine is always
    #: architecturally quiescent (no pipeline to empty).  On such
    #: backends a mid-run :meth:`state_digest` is directly comparable to
    #: a golden checkpoint digest at the same cycle, which is what makes
    #: the campaign engine's early-stop convergence check sound there.
    DRAIN_FREE = False

    #: True when the batch-fault lane engine (``repro.batch``) has a
    #: lane backend for this level: the arch emulator runs as a numpy
    #: ISS lockstep, the rtl pipeline as lane arrays over its register
    #: file/CPSR with drop-to-scalar fallback on control divergence.
    #: ``execution.lanes > 1`` is rejected at scenario validation for
    #: levels without a backend (today: uarch).
    BATCHABLE = False

    #: Tick-stamp convention of the access trace: True when a tick
    #: advances the cycle counter *before* doing its work, so that when
    #: ``run(stop_cycle=c)`` pauses at cycle ``c`` the trace events
    #: stamped ``c`` have already executed (the hardware models).  The
    #: arch emulator works then advances, so events stamped with the
    #: stop cycle are still pending there.  The fault pruner uses this
    #: to decide which golden events are post-injection.
    TRACE_EVENTS_AT_STOP_EXECUTED = True

    def __init__(self, program, config=None, trace_accesses=False):
        self.config = config if config is not None else self.default_config()
        self.program = program
        self.pinout = []
        self.dcache = None
        self.icache = None
        #: Golden-run access trace (:mod:`repro.prune`); None until
        #: :meth:`enable_access_trace`.
        self._access_trace = None
        self._trace_sealed = False
        #: Non-zero while state observation (checkpoint capture, digest,
        #: restore) reads storage: those accesses are bookkeeping, not
        #: execution, and must not pollute the lifetime trace.
        self._trace_pause = 0
        self._trace_in_checkpoints = True
        #: Golden-run retired-PC stream (:mod:`repro.staticcheck`);
        #: None until :meth:`enable_pc_trace`.
        self._pc_trace = None
        self._pc_trace_sealed = False
        self._build()
        if trace_accesses:
            self.enable_access_trace()

    # -- construction hooks --------------------------------------------

    @classmethod
    def default_config(cls):
        raise NotImplementedError

    def _build(self):
        raise NotImplementedError

    def _make_ram(self):
        """Fresh RAM with the program image loaded (every level's base)."""
        ram = RAM(self.program.layout.ram_size)
        self.program.load_into(ram)
        return ram

    def _bus_listener(self):
        """The pinout publication hook handed to the cache hierarchy."""
        def bus_event(kind, addr, data, cycle):
            self.pinout.append(Transaction(kind, addr, data, cycle))
        return bus_event

    # ------------------------------------------------------------------
    # access tracing (the fault-pruning subsystem's capture hook)
    # ------------------------------------------------------------------

    def enable_access_trace(self, snapshot_in_checkpoints=True):
        """Start recording per-cell read/write events into a
        :class:`~repro.prune.trace.LifetimeTrace`.

        Backends install their storage listeners through
        :meth:`_install_trace_listeners`; the base class keeps the trace
        across :meth:`restore` (re-installing listeners on the rebuilt
        machine) and -- with ``snapshot_in_checkpoints`` -- copies it
        into checkpoints so traced runs round-trip exactly like the
        pinout does.  The campaign's golden capture disables the
        snapshots: it round-trips the *same* machine at the *same*
        instant after every capture, where the live trace is already
        the right prefix and the per-boundary copies (the trace grows
        with the run, so effectively quadratic work) would be thrown
        away unread.
        """
        if self._access_trace is None:
            from repro.prune.trace import LifetimeTrace

            self._access_trace = LifetimeTrace()
        self._trace_sealed = False
        self._trace_in_checkpoints = bool(snapshot_in_checkpoints)
        self._install_trace_listeners(self._access_trace)
        return self._access_trace

    def access_trace(self):
        """The recorded :class:`LifetimeTrace`, or None when disabled."""
        return self._access_trace

    def seal_access_trace(self):
        """Stop recording (detach listeners), keeping the trace readable.

        The campaign seals right after the golden run: the same
        simulator object then executes faulty runs (serial path), whose
        accesses must not leak into the golden trace.
        """
        if self._access_trace is not None:
            self._trace_sealed = True
            self._remove_trace_listeners()

    def _trace_active(self):
        return self._access_trace is not None and not self._trace_sealed

    def _install_trace_listeners(self, trace):
        """Backend hook: attach storage listeners feeding ``trace``.

        The default registers nothing -- a backend without trace support
        degrades to "no fault is ever pruned", which is sound.
        """

    def _remove_trace_listeners(self):
        """Backend hook: detach whatever ``_install_trace_listeners``
        attached."""

    # ------------------------------------------------------------------
    # retired-PC tracing (the static pruner's capture hook)
    # ------------------------------------------------------------------

    def enable_pc_trace(self):
        """Start recording the retired-instruction stream into a
        :class:`~repro.prune.trace.RetiredPCTrace`.

        The far cheaper sibling of :meth:`enable_access_trace`: one
        ``(cycle, pc)`` pair per retirement, no per-cell bookkeeping.
        The stream is architectural and drain-invariant, so it is never
        copied into checkpoints -- a restore rewinds the machine but the
        already-recorded golden prefix stays valid as-is (the campaign
        only consults it after the golden run completes).
        """
        if self._pc_trace is None:
            from repro.prune.trace import RetiredPCTrace

            self._pc_trace = RetiredPCTrace()
        self._pc_trace_sealed = False
        self._install_pc_listener(self._pc_trace)
        return self._pc_trace

    def pc_trace(self):
        """The recorded :class:`RetiredPCTrace`, or None when disabled."""
        return self._pc_trace

    def seal_pc_trace(self):
        """Stop recording (detach the listener), keeping the stream
        readable (see :meth:`seal_access_trace`)."""
        if self._pc_trace is not None:
            self._pc_trace_sealed = True
            self._remove_pc_listener()

    def _pc_trace_active(self):
        return self._pc_trace is not None and not self._pc_trace_sealed

    def _install_pc_listener(self, trace):
        """Backend hook: attach the retirement listener feeding
        ``trace``.  The default records nothing -- a backend without
        the hook degrades to "no fault is ever statically classified",
        which is sound."""

    def _remove_pc_listener(self):
        """Backend hook: detach whatever ``_install_pc_listener``
        attached."""

    # ------------------------------------------------------------------
    # run control
    # ------------------------------------------------------------------

    @property
    def cycle(self):
        return self.core.cycle

    @property
    def icount(self):
        return self.core.icount

    @property
    def exited(self):
        return self.core.exited

    @property
    def exit_code(self):
        return self.core.syscalls.exit_code

    @property
    def fault(self):
        return self.core.fault

    @property
    def output(self):
        return bytes(self.core.syscalls.output)

    def run(self, stop_cycle=None, max_cycles=5_000_000):
        """Advance until program exit, a fault, ``stop_cycle`` or the
        watchdog.  Returns a :class:`RunStatus`."""
        core = self.core
        while True:
            if core.exited:
                return RunStatus.EXITED
            if core.fault is not None:
                return RunStatus.FAULT
            if stop_cycle is not None and core.cycle >= stop_cycle:
                return RunStatus.STOPPED
            if core.cycle >= max_cycles:
                return RunStatus.TIMEOUT
            core.tick()

    def run_to_completion(self, max_cycles=5_000_000):
        return self.run(max_cycles=max_cycles)

    # ------------------------------------------------------------------
    # checkpoints (drain + full state capture)
    # ------------------------------------------------------------------

    def drain(self, guard_cycles=300_000):
        """Stop fetching and run until the pipeline is empty."""
        core = self.core
        core.draining = True
        deadline = core.cycle + guard_cycles
        try:
            while (not core.quiesced() and not core.exited
                   and core.fault is None):
                if core.cycle >= deadline:
                    raise SimFault("halt-trap", "drain did not converge")
                core.tick()
        finally:
            core.draining = False

    def checkpoint(self):
        """Drain the pipeline and capture a deterministic restart point."""
        self.drain()
        core = self.core
        self._trace_pause += 1
        try:
            cp = {
                "cycle": core.cycle,
                "icount": core.icount,
                "pc": self._restart_pc(),
                "ram": self.ram.snapshot(),
                "syscalls": core.syscalls.snapshot(),
                "pinout": list(self.pinout),
                "mispredicts": core.mispredicts,
                "exited": core.exited,
            }
            cp.update(self._capture_state())
            if self._trace_active() and self._trace_in_checkpoints:
                cp["access_trace"] = self._access_trace.snapshot()
        finally:
            self._trace_pause -= 1
        return cp

    def checkpoint_at(self, stop_cycle, max_cycles=5_000_000):
        """Advance to ``stop_cycle`` and checkpoint there.

        Returns ``(status, checkpoint)``; the checkpoint is ``None``
        when the run ended (exit/fault/watchdog) before the stop cycle.
        This is the capture primitive of
        :class:`repro.injection.checkpoint_cache.CheckpointCache`.
        """
        status = self.run(stop_cycle=stop_cycle, max_cycles=max_cycles)
        if status is not RunStatus.STOPPED:
            return status, None
        return status, self.checkpoint()

    def state_digest(self):
        """Content digest of the complete deterministic machine state.

        Two simulators of the same backend with equal digests at the
        same cycle are in identical states -- registers, flags, PC,
        memory, syscall context, published pinout and the level-specific
        extras of :meth:`_digest_extra` -- so their futures are
        identical.  The campaign engine compares faulty-run digests
        against golden boundary digests to prove re-convergence (early
        masked classification) and the backend test suite uses it for
        checkpoint/restore round-trip properties.
        """
        self._trace_pause += 1
        try:
            arch = self.arch_state()
            core = self.core
            return (
                self.cycle,
                self.icount,
                self.exited,
                self.fault is None,
                tuple(arch["regs"]),
                arch["flags"],
                arch["pc"],
                _crc(self.ram.snapshot()),
                core.syscalls.snapshot(),
                _crc([t.key() for t in self.pinout]),
                self._digest_extra(),
            )
        finally:
            self._trace_pause -= 1

    def _digest_extra(self):
        """Level-specific digest components (cache arrays, predictor...).

        The base covers every backend that models L1s; cacheless levels
        inherit the empty contribution.  Performance counters (cache
        hit/miss tallies, predictor lookup counts) are deliberately
        excluded: wrong-path accesses that hit bump them without
        changing any behavior-determining state, so including them
        would make digests of interchangeable machines differ.
        """
        if self.dcache is None:
            return ()
        counters, ras = self.predictor.snapshot()[:2]
        return (
            _crc(self._cache_content(self.dcache)),
            _crc(self._cache_content(self.icache)),
            _crc((counters, ras)),
        )

    @staticmethod
    def _cache_content(cache):
        snap = cache.snapshot()
        return {k: v for k, v in snap.items() if k != "stats"}

    def restore(self, cp):
        """Rebuild the machine from a checkpoint (fresh, empty pipeline)."""
        self._trace_pause += 1
        try:
            self._build()
            core = self.core
            self.ram.restore(cp["ram"])
            core.syscalls.restore(cp["syscalls"])
            self.pinout[:] = list(cp["pinout"])
            self._restore_state(cp)
            core.cycle = cp["cycle"]
            core.icount = cp["icount"]
            core.pc = cp["pc"]
            self._set_restart_point(cp["pc"], cp["cycle"])
            core.exited = cp["exited"]
            core.mispredicts = cp["mispredicts"]
        finally:
            self._trace_pause -= 1
        if self._trace_active():
            # ``_build`` replaced the storage objects: rewind the trace
            # to the checkpoint's prefix and re-attach the listeners.
            if "access_trace" in cp:
                self._access_trace.restore(cp["access_trace"])
            self._install_trace_listeners(self._access_trace)
        if self._pc_trace_active():
            # The retired-PC stream is append-only and drain-invariant:
            # no prefix to rewind, just re-attach to the rebuilt core.
            self._install_pc_listener(self._pc_trace)

    # -- checkpoint hooks ----------------------------------------------

    def _restart_pc(self):
        """The committed/retired next PC captured into a checkpoint."""
        raise NotImplementedError

    def _capture_state(self):
        raise NotImplementedError

    def _restore_state(self, cp):
        raise NotImplementedError

    def _set_restart_point(self, pc, cycle):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def _resolve_special(self, structure):
        """Level-specific injection targets (register files, CPSR, ...).

        Returns ``(holder, array)`` or ``None`` to fall through to the
        shared cache-array namespace.
        """
        return None

    def _resolve_target(self, structure):
        special = self._resolve_special(structure)
        if special is not None:
            return special
        prefix, _, array = structure.partition(".")
        cache = {"l1d": self.dcache, "l1i": self.icache}.get(prefix)
        if cache is None or array not in Cache.ARRAYS:
            raise ValueError(f"unknown fault target {structure!r}")
        return cache, array

    def _target_bits(self, holder, array):
        return holder.bit_count() if array is None else holder.bit_count(array)

    def _flip(self, holder, array, bit_index):
        if array is None:
            holder.flip_bit(bit_index)
        else:
            holder.flip_bit(array, bit_index)

    def fault_targets(self):
        """Mapping of structure name -> number of injectable bits."""
        out = {}
        for structure in self.INJECTABLE:
            holder, array = self._resolve_target(structure)
            out[structure] = self._target_bits(holder, array)
        return out

    def inject(self, structure, bit_index):
        """Flip one bit in ``structure`` right now."""
        holder, array = self._resolve_target(structure)
        self._flip(holder, array, bit_index)

    # ------------------------------------------------------------------

    def stats(self):
        out = {
            "cycles": self.cycle,
            "instructions": self.icount,
            "ipc": self.icount / self.cycle if self.cycle else 0.0,
        }
        out.update(self._memory_stats())
        return out

    def _memory_stats(self):
        """Cache/predictor counters; zeros at levels without the model."""
        if self.dcache is None:
            return {"l1d_hits": 0, "l1d_misses": 0, "l1d_writebacks": 0,
                    "l1i_misses": 0, "mispredicts": 0}
        return {
            "l1d_hits": self.dcache.hits,
            "l1d_misses": self.dcache.misses,
            "l1d_writebacks": self.dcache.writebacks,
            "l1i_misses": self.icache.misses,
            "mispredicts": self.core.mispredicts,
        }

    def __repr__(self):
        return (
            f"{type(self).__name__}({self.program.name!r},"
            f" cycle={self.cycle}, icount={self.icount})"
        )
