"""The shared campaign front-end: one base class per abstraction level.

A front-end binds a workload to one registered backend: it picks the
toolchain personality, the simulator configuration and the mode presets
(observation point + termination rule), then hands a picklable
``sim_factory`` to the level-generic campaign engine.  ``GeFIN``
(``uarch``), ``SafetyVerifier`` (``rtl``) and ``ArchEmu`` (``arch``)
are thin subclasses; they contain no injection logic.

The mode vocabulary is shared so the same experiment matrix can run at
any level -- each subclass lists the subset its real-world counterpart
offers in ``MODES``.
"""

from repro.isa.toolchain import Toolchain
from repro.sim import registry
from repro.workloads import registry as workloads

#: Sentinel default for ``window=``: "use the paper's scaled 20 kcycle
#: window" (:data:`repro.injection.campaign.SCALED_WINDOW`) without
#: stealing ``None``, which callers pass to mean "run to program end".
USE_SCALED_WINDOW = object()


class Frontend:
    """Campaign front-end over one registered simulation backend.

    Subclasses set ``LEVEL``, ``DEFAULT_TOOLCHAIN``, ``MODES`` (mode
    name -> ``(observation, windowed)``) and implement
    ``_default_sim_config(scaled_caches)``.
    """

    LEVEL = None
    DEFAULT_TOOLCHAIN = "gnu"

    #: Campaign cache size: the workloads are scaled ~500x relative to
    #: full MiBench, so campaigns shrink both L1s (same 4-way geometry)
    #: to keep the live fraction of the array -- and hence the per-bit
    #: vulnerability -- in the paper's range.  Table I reporting uses the
    #: unscaled configuration.  Applied identically at every level that
    #: models caches.
    SCALED_CACHE_BYTES = 1024

    #: mode name -> (observation point, windowed?).
    MODES = {}

    def __init__(self, workload, toolchain=None, sim_config=None,
                 scaled_caches=True):
        self.workload = workload
        self.toolchain = Toolchain(toolchain or self.DEFAULT_TOOLCHAIN)
        if sim_config is None:
            sim_config = self._default_sim_config(scaled_caches)
        self.sim_config = sim_config
        self.program = workloads.build(workload, self.toolchain)

    def _default_sim_config(self, scaled_caches):
        raise NotImplementedError

    # ------------------------------------------------------------------

    def sim_factory(self):
        """One fresh simulator (picklable bound method: workers rebuild
        the machine from the program + config this front-end holds)."""
        cls = registry.get(self.LEVEL).simulator_class()
        return cls(self.program, self.sim_config)

    def make_config(self, mode, samples, seed=2017,
                    window=USE_SCALED_WINDOW, distribution="normal",
                    **extra):
        """A :class:`~repro.injection.campaign.CampaignConfig` for one
        of this front-end's modes."""
        from repro.injection.campaign import CampaignConfig, SCALED_WINDOW

        if mode not in self.MODES:
            raise ValueError(f"unknown mode {mode!r}")
        observation, windowed = self.MODES[mode]
        if window is USE_SCALED_WINDOW:
            window = SCALED_WINDOW
        return CampaignConfig(
            samples=samples, window=window if windowed else None,
            observation=observation, seed=seed,
            distribution=distribution, **extra,
        )

    def _default_accelerate(self, structure, mode):
        """Whether inject-near-consumption acceleration defaults to on."""
        return False

    def campaign(self, structure, mode="pinout", samples=100, seed=2017,
                 window=USE_SCALED_WINDOW, distribution="normal", *,
                 accelerate=None, progress=None, store=None, resume=False,
                 store_format=None, golden_pool=None, **extra):
        """Run one campaign.  ``structure`` is e.g. ``regfile`` or
        ``l1d.data``.

        Extra keyword arguments reach :class:`CampaignConfig` -- most
        notably ``jobs=N``/``batch_size=M`` to fan the faulty runs out
        over a process pool (:mod:`repro.injection.executor`); results
        are identical for any worker count.  ``store`` (a directory
        path or :class:`~repro.injection.store.CampaignStore`) makes
        the campaign durable; ``resume=True`` skips faults already on
        disk; ``store_format`` picks the record format for fresh
        stores (``"binary"``/``"jsonl"``, default binary).
        ``golden_pool`` (a caller-owned dict) lets compatible
        campaigns share one golden capture -- see
        :meth:`repro.injection.campaign.Campaign.run`; pool sharers
        must agree on toolchain and simulator configuration, which any
        pool confined to one :class:`ScenarioRunner`/study does.
        """
        from repro.injection.campaign import Campaign
        from repro.injection.store import CampaignStore

        if accelerate is None:
            accelerate = self._default_accelerate(structure, mode)
        config = self.make_config(
            mode, samples, seed=seed, window=window,
            distribution=distribution, accelerate=accelerate, **extra,
        )
        runner = Campaign(
            self.sim_factory, structure, config,
            workload=self.workload, level=self.LEVEL,
        )
        if store is not None and not isinstance(store, CampaignStore):
            store = CampaignStore(store, store_format=store_format)
        return runner.run(progress=progress, store=store, resume=resume,
                          golden_pool=golden_pool)

    def golden_run(self):
        """One fault-free run; returns the simulator for inspection."""
        sim = self.sim_factory()
        sim.run()
        return sim

    def __repr__(self):
        return (
            f"{type(self).__name__}({self.workload!r},"
            f" toolchain={self.toolchain.name})"
        )
