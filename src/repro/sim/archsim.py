"""The architectural-emulator backend (the taxonomy's fastest tier).

The paper's taxonomy (SS I) names a tier below microarchitectural
simulation: software-level / architectural emulation without hardware
details.  This backend makes that tier a first-class campaign target by
wrapping the golden interpreter (:class:`repro.isa.interp.Interpreter`)
in the shared simulator protocol:

* **cycle-proxy accounting** -- an ISS has no timing model, so the
  "cycle" is a proxy: ``cycles_per_inst`` (CPI 1 by default) per retired
  instruction.  Windows and checkpoints work unchanged; absolute timing
  claims do not exist at this tier, exactly as in the real methodology.
* **pinout** -- with no cache hierarchy the core pins *are* the memory
  interface; the emulator publishes every store as a write-back
  transaction, which is the closest architectural analogue of the
  traffic-leaving-the-core observation point.
* **checkpoint/restore** -- full architectural state (registers, flags,
  PC, RAM, syscall context); drains are no-ops because there is no
  pipeline to empty.
* **injection** -- the architectural register file (the 15 live
  registers r0-r14; the PC lives outside the file) and the 4 CPSR flag
  bits.

A fault at this tier can only land in architectural state -- that
blindness to microarchitectural structures is the taxonomy's trade-off
the paper quantifies one level up.
"""

from repro.errors import SimFault
from repro.isa.interp import Interpreter
from repro.memory.bus import Transaction
from repro.sim.base import SimulatorBase


class ArchConfig:
    """Knobs of the architectural emulator."""

    def __init__(self, cycles_per_inst=1):
        if cycles_per_inst < 1:
            raise ValueError("cycles_per_inst must be >= 1")
        #: The cycle proxy: emulated cycles charged per instruction.
        self.cycles_per_inst = cycles_per_inst

    def __repr__(self):
        return f"ArchConfig(cycles_per_inst={self.cycles_per_inst})"


class _ArchCore:
    """Adapts :class:`Interpreter` to the core protocol of the base.

    One ``tick()`` retires one instruction and charges
    ``cycles_per_inst`` proxy cycles; faults raised by the interpreter
    are latched instead of propagating, matching the hardware models.
    """

    def __init__(self, interp, cycles_per_inst):
        self.interp = interp
        self.cycles_per_inst = cycles_per_inst
        self.cycle = 0
        self.fault = None
        self.draining = False
        self.mispredicts = 0

    @property
    def icount(self):
        return self.interp.inst_count

    @icount.setter
    def icount(self, value):
        self.interp.inst_count = value

    @property
    def exited(self):
        return self.interp.halted

    @exited.setter
    def exited(self, value):
        self.interp.halted = value

    @property
    def pc(self):
        return self.interp.pc

    @pc.setter
    def pc(self, value):
        self.interp.pc = value

    @property
    def syscalls(self):
        return self.interp.syscalls

    def tick(self):
        try:
            self.interp.step()
        except SimFault as exc:
            self.fault = exc
        self.cycle += self.cycles_per_inst

    def quiesced(self):
        # No pipeline: the machine is always architecturally quiescent.
        return True


class ArchSim(SimulatorBase):
    """Instruction-set emulator with fault injection (``arch`` tier)."""

    LEVEL = "arch"

    #: No pipeline: drains are no-ops and the machine is always
    #: quiescent, so mid-run state digests compare exactly against
    #: golden boundary digests (enables campaign early-stop).
    DRAIN_FREE = True

    #: Pure architectural state + flat RAM: the batch-fault lane engine
    #: can hold N faulty copies as numpy lane arrays and step them in
    #: lockstep (``repro.batch``).
    BATCHABLE = True

    #: ``_ArchCore.tick`` executes the instruction *then* advances the
    #: cycle, so when a run pauses at a stop cycle the events stamped
    #: with that cycle have not happened yet (unlike the hardware
    #: models, which advance first).  The fault pruner keys its
    #: post-injection event query off this.
    TRACE_EVENTS_AT_STOP_EXECUTED = False

    INJECTABLE = {
        "regfile": "architectural register file (15 x 32 bits, r0-r14)",
        "cpsr": "NZCV status flags",
    }

    @classmethod
    def default_config(cls):
        return ArchConfig()

    def _build(self):
        interp = Interpreter(self.program)
        # The interpreter builds its own RAM; adopt it so the shared
        # checkpoint machinery and observation points see one memory.
        self.ram = interp.ram
        self.core = _ArchCore(interp, self.config.cycles_per_inst)
        interp.store_listener = self._publish_store

    def _publish_store(self, addr, size, value):
        data = (value & ((1 << (8 * size)) - 1)).to_bytes(size, "little")
        self.pinout.append(Transaction("wb", addr, data, self.core.cycle))

    # ------------------------------------------------------------------
    # access tracing (fault pruning)
    # ------------------------------------------------------------------

    def _install_trace_listeners(self, trace):
        trace.register("regfile", 32)
        trace.register("cpsr", 1)

        def reg_event(index, write):
            if self._trace_pause == 0:
                trace.record("regfile", index, self.core.cycle, write)

        def flag_event(read_mask, write_mask):
            if self._trace_pause:
                return
            cycle = self.core.cycle
            for bit in range(4):
                if read_mask & (1 << bit):
                    trace.record("cpsr", bit, cycle, False)
            for bit in range(4):
                if write_mask & (1 << bit):
                    trace.record("cpsr", bit, cycle, True)

        interp = self.core.interp
        interp.regs.listener = reg_event
        interp.flag_listener = flag_event

    def _remove_trace_listeners(self):
        interp = self.core.interp
        interp.regs.listener = None
        interp.flag_listener = None

    def _install_pc_listener(self, trace):
        core = self.core

        def pc_event(pc):
            # Stamped with the pre-increment cycle: the instruction at
            # ``pc`` executes during the tick that starts at this stop
            # cycle, matching TRACE_EVENTS_AT_STOP_EXECUTED=False.
            if self._trace_pause == 0:
                trace.record(core.cycle, pc)

        core.interp.pc_listener = pc_event

    def _remove_pc_listener(self):
        self.core.interp.pc_listener = None

    # ------------------------------------------------------------------
    # architectural visibility
    # ------------------------------------------------------------------

    def arch_state(self):
        """Committed architectural state (registers r0-r14 + flags)."""
        interp = self.core.interp
        regs = [interp.regs.read(i) for i in range(15)]
        return {"regs": regs, "flags": interp.flags.pack(),
                "pc": interp.pc}

    # ------------------------------------------------------------------
    # checkpoint hooks
    # ------------------------------------------------------------------

    def _restart_pc(self):
        return self.core.interp.pc

    def _capture_state(self):
        interp = self.core.interp
        return {
            "regs": interp.regs.snapshot(),
            "flags": interp.flags.pack(),
        }

    def _restore_state(self, cp):
        interp = self.core.interp
        interp.regs.restore(cp["regs"])
        interp.flags = interp.flags.unpack(cp["flags"])

    def _set_restart_point(self, pc, cycle):
        # The interpreter's PC is the restart point itself; nothing like
        # a committed-PC shadow or a last-commit watermark exists here.
        pass

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def _resolve_special(self, structure):
        if structure == "regfile":
            return self.core.interp.regs, None
        if structure == "cpsr":
            return self.core.interp, "cpsr"
        return None

    def _target_bits(self, holder, array):
        if array == "cpsr":
            return 4
        return super()._target_bits(holder, array)

    def _flip(self, holder, array, bit_index):
        if array == "cpsr":
            interp = self.core.interp
            interp.flags = interp.flags.unpack(
                interp.flags.pack() ^ (1 << bit_index))
            return
        super()._flip(holder, array, bit_index)
