"""The pluggable backend registry, keyed by abstraction-level name.

The paper's taxonomy (SS I) orders reliability-assessment methods by
hardware detail: fast architectural emulation, microarchitectural
simulation, RT-level simulation.  Each tier is one registered backend:

========  ==========================================  ==================
level     simulator                                   campaign front-end
========  ==========================================  ==================
``arch``  :class:`repro.sim.archsim.ArchSim`          ``ArchEmu``
``uarch`` :class:`repro.uarch.simulator.MicroArchSim` ``GeFIN``
``rtl``   :class:`repro.rtl.simulator.RTLSim`         ``SafetyVerifier``
========  ==========================================  ==================

Classes are referenced lazily (``"module:attr"`` strings) so importing
the registry -- which the CLI does just to render ``--level`` choices --
never pays for the simulators themselves, and so new backends can be
registered without touching this module::

    from repro.sim import registry
    registry.register("fpga", rank=3, description="...",
                      simulator="mylab.fpga:FPGASim",
                      frontend="mylab.fpga:FPGAFrontend")

Every layer above the simulators (campaign front-ends, the cross-level
study, both CLI entry points) resolves levels through this registry
instead of hardcoding the two-level dispatch.
"""

import importlib


class LevelSpec:
    """One registered abstraction level."""

    def __init__(self, name, rank, description, simulator, frontend):
        self.name = name
        #: Position in the detail ordering (arch < uarch < rtl).
        self.rank = rank
        self.description = description
        self._simulator = simulator
        self._frontend = frontend

    @staticmethod
    def _resolve(ref):
        if isinstance(ref, str):
            module_name, _, attr = ref.partition(":")
            return getattr(importlib.import_module(module_name), attr)
        return ref

    def simulator_class(self):
        return self._resolve(self._simulator)

    def frontend_class(self):
        return self._resolve(self._frontend)

    @property
    def default_toolchain(self):
        """The level's toolchain personality (single source of truth:
        the front-end class)."""
        return self.frontend_class().DEFAULT_TOOLCHAIN

    def create_frontend(self, workload, **kwargs):
        return self.frontend_class()(workload, **kwargs)

    def __repr__(self):
        return f"LevelSpec({self.name!r}, rank={self.rank})"


_REGISTRY = {}


def register(name, *, rank, description, simulator, frontend,
             replace=False):
    """Register a backend.  ``simulator``/``frontend`` are classes or
    lazy ``"module:attr"`` references."""
    if name in _REGISTRY and not replace:
        raise ValueError(f"level {name!r} is already registered")
    _REGISTRY[name] = LevelSpec(name, rank, description, simulator,
                                frontend)
    return _REGISTRY[name]


def get(name):
    """The :class:`LevelSpec` for ``name`` (raises ``KeyError``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown abstraction level {name!r}; "
            f"registered: {level_names()}"
        ) from None


def levels():
    """All registered specs, ordered by increasing hardware detail."""
    return tuple(sorted(_REGISTRY.values(), key=lambda s: s.rank))


def level_names():
    """Registered level names, ordered by increasing hardware detail."""
    return tuple(spec.name for spec in levels())


def simulator_class(name):
    return get(name).simulator_class()


def create_frontend(name, workload, **kwargs):
    """Build the campaign front-end for ``name`` over ``workload``."""
    return get(name).create_frontend(workload, **kwargs)


# ----------------------------------------------------------------------
# built-in tiers (the paper's taxonomy)
# ----------------------------------------------------------------------

register(
    "arch", rank=0,
    description="architectural emulation (ISS): the golden interpreter "
                "with cycle-proxy accounting; no pipeline or cache model",
    simulator="repro.sim.archsim:ArchSim",
    frontend="repro.injection.arch_emu:ArchEmu",
)
register(
    "uarch", rank=1,
    description="microarchitecture level (GeFIN on gem5): cycle-level "
                "out-of-order core, live PRF and cache arrays",
    simulator="repro.uarch.simulator:MicroArchSim",
    frontend="repro.injection.gefin:GeFIN",
)
register(
    "rtl", rank=2,
    description="RT level (Safety Verifier on NCSIM): flip-flop/array "
                "accurate in-order pipeline, optional signal tracing",
    simulator="repro.rtl.simulator:RTLSim",
    frontend="repro.injection.safety_verifier:SafetyVerifier",
)
