"""32-bit binary encoding of ARMlet instructions.

Layout (bit 31 is the MSB):

    [31:28] cond    [27:22] opcode    [21:0] format-specific

Format-specific fields:

* data processing, register operand2 (``AND`` .. ``TEQ``)::

      S[21] rd[20:17] rn[16:13] rm[12:9] shkind[8:7] shbyreg[6] amt[5:0]

  ``amt`` holds the shift amount (0..31) or, when ``shbyreg`` is set, the
  register holding the amount.

* data processing, immediate operand2 (``ANDI`` .. ``TEQI``)::

      S[21] rd[20:17] rn[16:13] imm13[12:0]          (unsigned, 0..8191)

* ``MOVW``/``MOVT``::   rd[21:18] imm16[15:0]
* ``MUL``/``MLA``::     S[21] rd[20:17] rn[16:13] rm[12:9] ra[8:5]
* memory, immediate::   rd[21:18] rn[17:14] P[13] W[12] simm12[11:0]
* memory, register::    rd[21:18] rn[17:14] P[13] W[12] rm[11:8]
                        shkind[7:6] amt[5:1]
* ``LDM``/``STM``::     rn[21:18] W[17] reglist[15:0]
* ``B``/``BL``::        simm22[21:0]                  (word offset)
* ``BX``::              rm[3:0]
* ``SVC``::             imm22[21:0]
* ``NOP``/``HLT``::     zero

The decoded form round-trips exactly; :mod:`tests.test_encoding` proves it
property-based.
"""

from repro.isa.instructions import (
    Cond,
    DP_IMM_OPS,
    DP_REG_OPS,
    Inst,
    MEM_SIZE,
    Op,
    ShiftKind,
)


class EncodingError(ValueError):
    """Raised when an instruction cannot be represented in 32 bits."""


def _check(value, low, high, what, inst):
    if not low <= value <= high:
        raise EncodingError(
            f"{what}={value} out of range [{low}, {high}] in {inst!r}"
        )
    return value


def _signed_field(value, bits, what, inst):
    low = -(1 << (bits - 1))
    high = (1 << (bits - 1)) - 1
    _check(value, low, high, what, inst)
    return value & ((1 << bits) - 1)


def _unsigned_field(value, bits, what, inst):
    _check(value, 0, (1 << bits) - 1, what, inst)
    return value


_MEM_IMM_OPS = frozenset({Op.LDR, Op.STR, Op.LDRB, Op.STRB, Op.LDRH, Op.STRH})
_MEM_REG_OPS = frozenset(
    {Op.LDRR, Op.STRR, Op.LDRBR, Op.STRBR, Op.LDRHR, Op.STRHR}
)


def encode(inst: Inst) -> int:
    """Encode a decoded :class:`Inst` to its 32-bit word."""
    op = inst.op
    word = (int(inst.cond) << 28) | (int(op) << 22)
    if op in DP_REG_OPS:
        by_reg = inst.shift_reg is not None
        amt = inst.shift_reg if by_reg else inst.shift_amount
        amt = _unsigned_field(amt, 6 if not by_reg else 4, "shift", inst)
        word |= (
            (int(inst.s) << 21)
            | (inst.rd << 17)
            | (inst.rn << 13)
            | (inst.rm << 9)
            | (int(inst.shift_kind) << 7)
            | (int(by_reg) << 6)
            | amt
        )
    elif op in DP_IMM_OPS:
        imm = _unsigned_field(inst.imm, 13, "imm13", inst)
        word |= (
            (int(inst.s) << 21) | (inst.rd << 17) | (inst.rn << 13) | imm
        )
    elif op in (Op.MOVW, Op.MOVT):
        imm = _unsigned_field(inst.imm, 16, "imm16", inst)
        word |= (inst.rd << 18) | imm
    elif op in (Op.MUL, Op.MLA):
        word |= (
            (int(inst.s) << 21)
            | (inst.rd << 17)
            | (inst.rn << 13)
            | (inst.rm << 9)
            | (inst.ra << 5)
        )
    elif op in _MEM_IMM_OPS:
        imm = _signed_field(inst.imm, 12, "offset", inst)
        word |= (
            (inst.rd << 18)
            | (inst.rn << 14)
            | (int(inst.pre) << 13)
            | (int(inst.writeback) << 12)
            | imm
        )
    elif op in _MEM_REG_OPS:
        amt = _unsigned_field(inst.shift_amount, 5, "shift", inst)
        word |= (
            (inst.rd << 18)
            | (inst.rn << 14)
            | (int(inst.pre) << 13)
            | (int(inst.writeback) << 12)
            | (inst.rm << 8)
            | (int(inst.shift_kind) << 6)
            | (amt << 1)
        )
    elif op in (Op.LDM, Op.STM):
        word |= (
            (inst.rn << 18)
            | (int(inst.writeback) << 17)
            | _unsigned_field(inst.reglist, 16, "reglist", inst)
        )
    elif op in (Op.B, Op.BL):
        if inst.imm & 0b11:
            raise EncodingError(f"branch offset not word aligned in {inst!r}")
        word |= _signed_field(inst.imm >> 2, 22, "offset", inst)
    elif op == Op.BX:
        word |= inst.rm
    elif op == Op.SVC:
        word |= _unsigned_field(inst.imm, 22, "svc", inst)
    elif op in (Op.NOP, Op.HLT):
        pass
    else:  # pragma: no cover - enum is exhaustive
        raise EncodingError(f"unencodable op {op!r}")
    return word


def _sext(value, bits):
    sign = 1 << (bits - 1)
    return (value ^ sign) - sign


def decode(word: int, addr: int = 0) -> Inst:
    """Decode a 32-bit word back to an :class:`Inst`."""
    cond = Cond((word >> 28) & 0xF)
    try:
        op = Op((word >> 22) & 0x3F)
    except ValueError as exc:
        raise EncodingError(f"undefined opcode in {word:#010x}") from exc
    inst = Inst(op, cond=cond, addr=addr)
    if op in DP_REG_OPS:
        inst.s = bool((word >> 21) & 1)
        inst.rd = (word >> 17) & 0xF
        inst.rn = (word >> 13) & 0xF
        inst.rm = (word >> 9) & 0xF
        inst.shift_kind = ShiftKind((word >> 7) & 0x3)
        if (word >> 6) & 1:
            inst.shift_reg = word & 0xF
        else:
            inst.shift_amount = word & 0x3F
    elif op in DP_IMM_OPS:
        inst.s = bool((word >> 21) & 1)
        inst.rd = (word >> 17) & 0xF
        inst.rn = (word >> 13) & 0xF
        inst.imm = word & 0x1FFF
    elif op in (Op.MOVW, Op.MOVT):
        inst.rd = (word >> 18) & 0xF
        inst.imm = word & 0xFFFF
    elif op in (Op.MUL, Op.MLA):
        inst.s = bool((word >> 21) & 1)
        inst.rd = (word >> 17) & 0xF
        inst.rn = (word >> 13) & 0xF
        inst.rm = (word >> 9) & 0xF
        inst.ra = (word >> 5) & 0xF
    elif op in _MEM_IMM_OPS:
        inst.rd = (word >> 18) & 0xF
        inst.rn = (word >> 14) & 0xF
        inst.pre = bool((word >> 13) & 1)
        inst.writeback = bool((word >> 12) & 1)
        inst.imm = _sext(word & 0xFFF, 12)
    elif op in _MEM_REG_OPS:
        inst.rd = (word >> 18) & 0xF
        inst.rn = (word >> 14) & 0xF
        inst.pre = bool((word >> 13) & 1)
        inst.writeback = bool((word >> 12) & 1)
        inst.rm = (word >> 8) & 0xF
        inst.shift_kind = ShiftKind((word >> 6) & 0x3)
        inst.shift_amount = (word >> 1) & 0x1F
    elif op in (Op.LDM, Op.STM):
        inst.rn = (word >> 18) & 0xF
        inst.writeback = bool((word >> 17) & 1)
        inst.reglist = word & 0xFFFF
    elif op in (Op.B, Op.BL):
        inst.imm = _sext(word & 0x3FFFFF, 22) << 2
    elif op == Op.BX:
        inst.rm = word & 0xF
    elif op == Op.SVC:
        inst.imm = word & 0x3FFFFF
    return inst


def mem_access_size(op):
    """Byte width of a scalar memory op (4 for LDM/STM bursts)."""
    return MEM_SIZE.get(op, 4)
