"""Syscall-emulation layer (the paper's gem5 "syscall emulation mode").

The RTL flow in the paper is bare metal; GeFIN was modified to run in
syscall-emulation mode so the two flows match (SS III-C).  Both of our
simulators and the reference interpreter share this tiny emulation layer:
output produced here is the *software observation point* used for AVF in
Fig. 3.
"""

SYS_EXIT = 0
SYS_PUTC = 1
SYS_PRINT_UINT = 2
SYS_PRINT_HEX = 3
SYS_WRITE = 4
SYS_PRINT_INT = 5

_MAX_WRITE = 1 << 16


class SyscallError(Exception):
    """An SVC with a bad number or bad arguments (classified as DUE)."""


class SyscallEmulator:
    """Collects program output and the exit event.

    The caller provides register reads and byte-wise memory reads; the
    emulator never touches simulator internals, so faulty values flow
    through it unchanged (a corrupted output *is* the SDC evidence).
    """

    def __init__(self):
        self.output = bytearray()
        self.exited = False
        self.exit_code = None

    def handle(self, number, read_reg, read_byte):
        """Execute syscall ``number``.

        ``read_reg(i)`` returns architectural register ``i``; ``read_byte(a)``
        returns the byte at address ``a`` as seen by the *executing model*
        (i.e. through its own cache hierarchy).  Returns the value to place
        in r0.
        """
        if number == SYS_EXIT:
            self.exited = True
            self.exit_code = read_reg(0) & 0xFF
            return 0
        if number == SYS_PUTC:
            self.output.append(read_reg(0) & 0xFF)
            return 0
        if number == SYS_PRINT_UINT:
            self.output += b"%d" % (read_reg(0) & 0xFFFFFFFF)
            return 0
        if number == SYS_PRINT_HEX:
            self.output += b"%08x" % (read_reg(0) & 0xFFFFFFFF)
            return 0
        if number == SYS_PRINT_INT:
            value = read_reg(0) & 0xFFFFFFFF
            if value & 0x80000000:
                value -= 0x100000000
            self.output += b"%d" % value
            return 0
        if number == SYS_WRITE:
            addr = read_reg(0) & 0xFFFFFFFF
            length = read_reg(1) & 0xFFFFFFFF
            if length > _MAX_WRITE:
                raise SyscallError(f"write length {length} too large")
            for i in range(length):
                self.output.append(read_byte(addr + i))
            return length
        raise SyscallError(f"unknown syscall {number}")

    def snapshot(self):
        return (bytes(self.output), self.exited, self.exit_code)

    def restore(self, state):
        output, exited, exit_code = state
        self.output = bytearray(output)
        self.exited = exited
        self.exit_code = exit_code
