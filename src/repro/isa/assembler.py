"""Two-pass assembler for the ARMlet ISA.

Supported syntax (a pragmatic subset of ARM UAL):

* labels (``loop:``), comments (``;``, ``@``, ``//``);
* sections ``.text`` / ``.data``; data directives ``.word``, ``.half``,
  ``.byte``, ``.ascii``, ``.asciz``, ``.space N [, fill]``, ``.align N``
  (N a power-of-two byte alignment), ``.equ NAME, expr``, ``.pool``;
* every :class:`~repro.isa.instructions.Op` with optional condition and S
  suffixes (``addseq``, ``bne``, ``ldrbeq`` ...);
* operand2 shifts (``mov r0, r1, lsl #3`` / ``lsl r2``), immediate and
  register-offset addressing with pre/post index and writeback;
* register lists (``push {r4-r7, lr}``);
* pseudo-instructions: ``ldr rd, =expr`` (MOVW/MOVT or literal pool,
  depending on the toolchain), ``adr rd, label``, ``lsl/lsr/asr/ror``,
  ``neg``, ``push``/``pop``; PC-relative ``ldr rd, label``.

Expressions accept decimal/hex/char literals, symbols, ``+ - * / << >> & |``
and parentheses.
"""

import re

from repro.isa.flags import COND_INDEX
from repro.isa.instructions import (
    COMPARE_OPS,
    Cond,
    DP_IMM_FORM,
    Inst,
    MEM_REG_FORM,
    Op,
    SHIFT_NAMES,
    ShiftKind,
)
from repro.isa.program import DEFAULT_LAYOUT, Program
from repro.isa.registers import parse_reg
from repro.isa.toolchain import Toolchain


class AssemblerError(Exception):
    """A syntax or range error, annotated with the source line."""

    def __init__(self, message, lineno=None, line=""):
        where = f" (line {lineno}: {line.strip()!r})" if lineno else ""
        super().__init__(message + where)
        self.lineno = lineno


_DP_BASES = {
    "and": Op.AND, "eor": Op.EOR, "sub": Op.SUB, "rsb": Op.RSB,
    "add": Op.ADD, "adc": Op.ADC, "sbc": Op.SBC, "orr": Op.ORR,
    "bic": Op.BIC, "mov": Op.MOV, "mvn": Op.MVN, "cmp": Op.CMP,
    "cmn": Op.CMN, "tst": Op.TST, "teq": Op.TEQ,
}
_MEM_BASES = {
    "ldr": Op.LDR, "str": Op.STR, "ldrb": Op.LDRB, "strb": Op.STRB,
    "ldrh": Op.LDRH, "strh": Op.STRH,
}
_SHIFT_PSEUDOS = ("lsl", "lsr", "asr", "ror")
_SIMPLE_BASES = {
    "movw": Op.MOVW, "movt": Op.MOVT, "mul": Op.MUL, "mla": Op.MLA,
    "bx": Op.BX, "svc": Op.SVC, "nop": Op.NOP, "hlt": Op.HLT,
    "ldm": Op.LDM, "stm": Op.STM, "ldmia": Op.LDM, "stmdb": Op.STM,
    "push": Op.STM, "pop": Op.LDM, "adr": None, "neg": None,
}
_ALL_BASES = sorted(
    list(_DP_BASES) + list(_MEM_BASES) + list(_SIMPLE_BASES)
    + list(_SHIFT_PSEUDOS),
    key=len,
    reverse=True,
)

_NUM_RE = re.compile(r"^[+-]?(0x[0-9a-fA-F]+|\d+)$")
_TOKEN_RE = re.compile(
    r"\s*(0x[0-9a-fA-F]+|\d+|'(?:\\.|[^'])'|[A-Za-z_.$][\w.$]*"
    r"|<<|>>|[()+\-*/&|%])"
)


def _char_value(token):
    inner = token[1:-1]
    escapes = {"\\n": "\n", "\\t": "\t", "\\0": "\0", "\\\\": "\\",
               "\\'": "'"}
    inner = escapes.get(inner, inner)
    if len(inner) != 1:
        raise ValueError(f"bad char literal {token}")
    return ord(inner)


class _ExprParser:
    """Tiny recursive-descent evaluator for assembler expressions."""

    def __init__(self, text, symbols):
        self.tokens = []
        pos = 0
        while pos < len(text):
            match = _TOKEN_RE.match(text, pos)
            if not match:
                if text[pos:].strip():
                    raise ValueError(f"bad expression {text!r}")
                break
            self.tokens.append(match.group(1))
            pos = match.end()
        self.pos = 0
        self.symbols = symbols

    def _peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self):
        token = self._peek()
        self.pos += 1
        return token

    def parse(self):
        value = self._or()
        if self._peek() is not None:
            raise ValueError(f"trailing tokens in expression: {self._peek()}")
        return value

    def _or(self):
        value = self._and()
        while self._peek() == "|":
            self._next()
            value |= self._and()
        return value

    def _and(self):
        value = self._shift()
        while self._peek() == "&":
            self._next()
            value &= self._shift()
        return value

    def _shift(self):
        value = self._sum()
        while self._peek() in ("<<", ">>"):
            op = self._next()
            rhs = self._sum()
            value = value << rhs if op == "<<" else value >> rhs
        return value

    def _sum(self):
        value = self._product()
        while self._peek() in ("+", "-"):
            op = self._next()
            rhs = self._product()
            value = value + rhs if op == "+" else value - rhs
        return value

    def _product(self):
        value = self._unary()
        while self._peek() in ("*", "/", "%"):
            op = self._next()
            rhs = self._unary()
            if op == "*":
                value *= rhs
            elif op == "/":
                value //= rhs
            else:
                value %= rhs
        return value

    def _unary(self):
        token = self._peek()
        if token == "-":
            self._next()
            return -self._unary()
        if token == "+":
            self._next()
            return self._unary()
        if token == "(":
            self._next()
            value = self._or()
            if self._next() != ")":
                raise ValueError("unbalanced parentheses")
            return value
        return self._atom()

    def _atom(self):
        token = self._next()
        if token is None:
            raise ValueError("unexpected end of expression")
        if token.startswith("0x"):
            return int(token, 16)
        if token.isdigit():
            return int(token)
        if token.startswith("'"):
            return _char_value(token)
        if token in self.symbols:
            return self.symbols[token]
        raise ValueError(f"undefined symbol {token!r}")


def _eval_expr(text, symbols):
    try:
        return _ExprParser(text.strip(), symbols).parse()
    except ValueError as exc:
        raise AssemblerError(str(exc)) from exc


def _split_operands(text):
    """Split an operand string on top-level commas ([], {} aware)."""
    parts = []
    depth = 0
    current = []
    for char in text:
        if char in "[{(":
            depth += 1
        elif char in "]})":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _strip_comment(line):
    out = []
    in_str = False
    i = 0
    while i < len(line):
        char = line[i]
        if char == '"' and (i == 0 or line[i - 1] != "\\"):
            in_str = not in_str
        if not in_str:
            if char in ";@" or line.startswith("//", i):
                break
        out.append(char)
        i += 1
    return "".join(out)


def _parse_mnemonic(token):
    """Split a mnemonic into (base, s_flag, cond).

    Branches are special-cased because ``bls`` is B.LS while ``bl`` is BL.
    Other mnemonics follow UAL order: base, optional ``s``, optional cond.
    """
    token = token.lower()
    if token == "b":
        return "b", False, Cond.AL
    if token == "bl":
        return "bl", False, Cond.AL
    if token.startswith("bl") and token[2:] in COND_INDEX:
        return "bl", False, Cond(COND_INDEX[token[2:]])
    if token.startswith("bx"):
        rest = token[2:]
        if rest == "":
            return "bx", False, Cond.AL
        if rest in COND_INDEX:
            return "bx", False, Cond(COND_INDEX[rest])
    if token.startswith("b") and token[1:] in COND_INDEX:
        return "b", False, Cond(COND_INDEX[token[1:]])
    for base in _ALL_BASES:
        if not token.startswith(base):
            continue
        rest = token[len(base):]
        s_flag = False
        if rest.startswith("s") and base not in ("cmp", "cmn", "tst", "teq"):
            s_flag = True
            rest = rest[1:]
        if rest == "":
            return base, s_flag, Cond.AL
        if rest in COND_INDEX:
            return base, s_flag, Cond(COND_INDEX[rest])
        if s_flag and rest == "":  # pragma: no cover
            return base, True, Cond.AL
    raise AssemblerError(f"unknown mnemonic {token!r}")


class _Item:
    """One pass-1 item: a sized chunk of a section."""

    __slots__ = ("kind", "addr", "size", "payload", "lineno", "line")

    def __init__(self, kind, addr, size, payload, lineno, line):
        self.kind = kind  # 'inst', 'bytes', 'ldr=', 'pool'
        self.addr = addr
        self.size = size
        self.payload = payload
        self.lineno = lineno
        self.line = line


class Assembler:
    """Two-pass assembler.  Use :func:`assemble` unless you need the
    intermediate state (tests do)."""

    def __init__(self, toolchain=None, layout=None):
        self.toolchain = toolchain or Toolchain("gnu")
        self.layout = layout or DEFAULT_LAYOUT
        self.symbols = {}
        self.items = []
        self._text_lc = self.layout.text_base
        self._data_lc = self.layout.data_base
        self._section = "text"
        self._pending_literals = []

    # ------------------------------------------------------------------
    # pass 1: sizing and symbol collection
    # ------------------------------------------------------------------

    def _lc(self):
        return self._text_lc if self._section == "text" else self._data_lc

    def _advance(self, size):
        if self._section == "text":
            self._text_lc += size
        else:
            self._data_lc += size

    def _emit(self, kind, size, payload, lineno, line):
        item = _Item(kind, self._lc(), size, payload, lineno, line)
        item.kind = kind if self._section == "text" else "data:" + kind
        self.items.append(item)
        self._advance(size)
        return item

    def _align_to(self, alignment, lineno, line):
        if alignment <= 1:
            return
        lc = self._lc()
        pad = (-lc) % alignment
        if pad == 0:
            return
        if self._section == "text":
            if pad % 4:
                raise AssemblerError(
                    "text alignment must be word-multiple", lineno, line
                )
            for _ in range(pad // 4):
                self._emit("inst", 4, ("nop", ""), lineno, line)
        else:
            self._emit("bytes", pad, bytes(pad), lineno, line)

    def _flush_pool(self, lineno, line):
        """Emit pending literal-pool words (armcc strategy)."""
        for key in self._pending_literals:
            label = f"$lit${key[1]}"
            self.symbols[label] = self._lc()
            self._emit("bytes", 4, ("litword", key[0]), lineno, line)
        self._pending_literals = []

    def _pass1_line(self, lineno, raw):
        line = _strip_comment(raw).strip()
        while line:
            match = re.match(r"^([A-Za-z_.$][\w.$]*)\s*:", line)
            if not match:
                break
            label = match.group(1)
            if label in self.symbols:
                raise AssemblerError(
                    f"duplicate label {label!r}", lineno, raw
                )
            if self._section == "text":
                self._align_to(self.toolchain.label_alignment, lineno, raw)
            self.symbols[label] = self._lc()
            line = line[match.end():].strip()
        if not line:
            return
        if line.startswith("."):
            self._pass1_directive(line, lineno, raw)
            return
        parts = line.split(None, 1)
        mnemonic = parts[0]
        operands = parts[1] if len(parts) > 1 else ""
        if self._section != "text":
            raise AssemblerError("instruction in .data", lineno, raw)
        try:
            base, _, _ = _parse_mnemonic(mnemonic)
        except AssemblerError as exc:
            raise AssemblerError(str(exc), lineno, raw) from exc
        if base == "ldr" and operands.count("=") and "[" not in operands:
            ops = _split_operands(operands)
            if len(ops) == 2 and ops[1].startswith("="):
                expr = ops[1][1:]
                if self.toolchain.uses_literal_pool:
                    key = (expr, len(self._pending_literals)
                           + sum(1 for s in self.symbols if
                                 s.startswith("$lit$")))
                    # Deduplicate identical pending expressions.
                    existing = [k for k in self._pending_literals
                                if k[0] == expr]
                    key = existing[0] if existing else key
                    if not existing:
                        self._pending_literals.append(key)
                    self._emit(
                        "ldr=", 4, (mnemonic, ops[0], f"$lit${key[1]}"),
                        lineno, raw,
                    )
                else:
                    self._emit(
                        "ldr=", 8, (mnemonic, ops[0], expr), lineno, raw
                    )
                return
        self._emit("inst", 4, (mnemonic, operands), lineno, raw)

    def _pass1_directive(self, line, lineno, raw):
        parts = line.split(None, 1)
        name = parts[0].lower()
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self._section = "text"
        elif name == ".data":
            self._section = "data"
        elif name in (".global", ".globl", ".type", ".size", ".func",
                      ".endfunc", ".syntax", ".arch", ".cpu", ".ltorg"):
            if name == ".ltorg":
                self._flush_pool(lineno, raw)
        elif name == ".pool":
            self._flush_pool(lineno, raw)
        elif name == ".equ" or name == ".set":
            sym, _, expr = rest.partition(",")
            value = _eval_expr(expr, self.symbols)
            self.symbols[sym.strip()] = value
        elif name == ".align" or name == ".balign":
            alignment = _eval_expr(rest, self.symbols)
            if alignment & (alignment - 1):
                raise AssemblerError(
                    ".align must be a power of two", lineno, raw
                )
            self._align_to(alignment, lineno, raw)
        elif name == ".word" or name == ".long":
            exprs = _split_operands(rest)
            self._align_to(4 if self._section == "data" else 4, lineno, raw)
            self._emit("bytes", 4 * len(exprs), ("words", exprs), lineno, raw)
        elif name == ".half" or name == ".short":
            exprs = _split_operands(rest)
            self._align_to(2, lineno, raw)
            self._emit("bytes", 2 * len(exprs), ("halves", exprs), lineno,
                       raw)
        elif name == ".byte":
            exprs = _split_operands(rest)
            self._emit("bytes", len(exprs), ("bytes", exprs), lineno, raw)
        elif name in (".ascii", ".asciz", ".string"):
            match = re.match(r'^\s*"((?:\\.|[^"\\])*)"\s*$', rest)
            if not match:
                raise AssemblerError("bad string literal", lineno, raw)
            blob = (
                match.group(1)
                .encode("utf-8")
                .decode("unicode_escape")
                .encode("latin-1")
            )
            if name != ".ascii":
                blob += b"\x00"
            self._emit("bytes", len(blob), blob, lineno, raw)
        elif name == ".space" or name == ".skip":
            args = _split_operands(rest)
            size = _eval_expr(args[0], self.symbols)
            fill = _eval_expr(args[1], self.symbols) if len(args) > 1 else 0
            self._emit("bytes", size, bytes([fill & 0xFF] * size), lineno,
                       raw)
        else:
            raise AssemblerError(f"unknown directive {name!r}", lineno, raw)

    # ------------------------------------------------------------------
    # pass 2: instruction selection
    # ------------------------------------------------------------------

    def _reg(self, token, lineno, line):
        try:
            return parse_reg(token)
        except ValueError as exc:
            raise AssemblerError(str(exc), lineno, line) from exc

    def _imm(self, token, lineno, line):
        token = token.strip()
        if not token.startswith("#"):
            raise AssemblerError(f"expected immediate, got {token!r}",
                                 lineno, line)
        return _eval_expr(token[1:], self.symbols)

    def _parse_shift(self, tokens, lineno, line):
        """Parse trailing shift tokens -> (kind, amount, shift_reg)."""
        if not tokens:
            return ShiftKind.LSL, 0, None
        spec = tokens[0].split(None, 1)
        kind_name = spec[0].lower()
        if kind_name == "rrx":
            raise AssemblerError("rrx not supported", lineno, line)
        if kind_name not in SHIFT_NAMES:
            raise AssemblerError(f"bad shift {tokens[0]!r}", lineno, line)
        kind = SHIFT_NAMES[kind_name]
        if len(spec) != 2:
            raise AssemblerError("missing shift amount", lineno, line)
        arg = spec[1].strip()
        if arg.startswith("#"):
            amount = _eval_expr(arg[1:], self.symbols)
            if not 0 <= amount <= 32:
                raise AssemblerError(f"shift amount {amount} out of range",
                                     lineno, line)
            return kind, amount, None
        return kind, 0, self._reg(arg, lineno, line)

    def _parse_reglist(self, token, lineno, line):
        token = token.strip()
        if not (token.startswith("{") and token.endswith("}")):
            raise AssemblerError(f"expected register list, got {token!r}",
                                 lineno, line)
        mask = 0
        for part in token[1:-1].split(","):
            part = part.strip()
            if not part:
                continue
            if "-" in part:
                lo_txt, hi_txt = part.split("-", 1)
                lo = self._reg(lo_txt, lineno, line)
                hi = self._reg(hi_txt, lineno, line)
                if hi < lo:
                    raise AssemblerError(f"bad range {part!r}", lineno, line)
                for i in range(lo, hi + 1):
                    mask |= 1 << i
            else:
                mask |= 1 << self._reg(part, lineno, line)
        if mask == 0:
            raise AssemblerError("empty register list", lineno, line)
        return mask

    def _parse_mem_operand(self, tokens, lineno, line):
        """Parse ``[rn, ...]`` forms.  Returns a dict of fields."""
        first = tokens[0].strip()
        post_offset = None
        if first.endswith("!"):
            body = first[:-1].strip()
            writeback = True
            pre = True
        elif first.endswith("]") and len(tokens) > 1:
            body = first
            pre = False
            writeback = True
            post_offset = tokens[1]
        else:
            body = first
            pre = True
            writeback = False
        if not (body.startswith("[") and body.endswith("]")):
            raise AssemblerError(f"bad address {first!r}", lineno, line)
        inner = _split_operands(body[1:-1])
        rn = self._reg(inner[0], lineno, line)
        fields = {
            "rn": rn, "pre": pre, "writeback": writeback,
            "imm": 0, "rm": None,
            "shift_kind": ShiftKind.LSL, "shift_amount": 0,
        }
        offset_tokens = inner[1:]
        if post_offset is not None:
            if offset_tokens:
                raise AssemblerError("both pre and post offsets", lineno,
                                     line)
            offset_tokens = [post_offset]
            fields["pre"] = False
        if not offset_tokens:
            if not pre:
                raise AssemblerError("missing post-index offset", lineno,
                                     line)
            fields["writeback"] = False
            return fields
        head = offset_tokens[0].strip()
        if head.startswith("#"):
            fields["imm"] = _eval_expr(head[1:], self.symbols)
        else:
            fields["rm"] = self._reg(head, lineno, line)
            kind, amount, shift_reg = self._parse_shift(
                offset_tokens[1:], lineno, line
            )
            if shift_reg is not None:
                raise AssemblerError(
                    "register-specified shift not allowed in addresses",
                    lineno, line,
                )
            fields["shift_kind"] = kind
            fields["shift_amount"] = amount
        return fields

    def _select_dp(self, op, cond, s_flag, ops, lineno, line):
        """Build a data-processing Inst from parsed operands."""
        unary = op in (Op.MOV, Op.MVN)
        compare = op in COMPARE_OPS
        if compare:
            rd, rn = 0, self._reg(ops[0], lineno, line)
            rest = ops[1:]
        elif unary:
            rd, rn = self._reg(ops[0], lineno, line), 0
            rest = ops[1:]
        else:
            rd = self._reg(ops[0], lineno, line)
            rn = self._reg(ops[1], lineno, line)
            rest = ops[2:]
        if not rest:
            raise AssemblerError("missing operand2", lineno, line)
        op2 = rest[0].strip()
        if op2.startswith("#"):
            imm = _eval_expr(op2[1:], self.symbols)
            op, imm = self._legalise_imm(op, imm, lineno, line)
            return Inst(DP_IMM_FORM[op], cond=cond, s=s_flag, rd=rd, rn=rn,
                        imm=imm)
        rm = self._reg(op2, lineno, line)
        kind, amount, shift_reg = self._parse_shift(rest[1:], lineno, line)
        return Inst(op, cond=cond, s=s_flag, rd=rd, rn=rn, rm=rm,
                    shift_kind=kind, shift_amount=amount,
                    shift_reg=shift_reg)

    @staticmethod
    def _flip_imm_op(op):
        return {
            Op.ADD: Op.SUB, Op.SUB: Op.ADD, Op.CMP: Op.CMN, Op.CMN: Op.CMP,
            Op.MOV: Op.MVN, Op.MVN: Op.MOV,
        }.get(op)

    def _legalise_imm(self, op, imm, lineno, line):
        """Fit an immediate into 13 bits, flipping the op when possible."""
        if 0 <= imm <= 0x1FFF:
            return op, imm
        flipped = self._flip_imm_op(op)
        if flipped is not None:
            if op in (Op.MOV, Op.MVN):
                alt = (~imm) & 0xFFFFFFFF
            else:
                alt = -imm
            if 0 <= alt <= 0x1FFF:
                return flipped, alt
        raise AssemblerError(
            f"immediate {imm:#x} not encodable (use ldr =...)", lineno, line
        )

    def _pass2_item(self, item):
        lineno, line = item.lineno, item.line
        if item.kind == "ldr=":
            return self._expand_ldr_eq(item)
        mnemonic, operands = item.payload
        base, s_flag, cond = _parse_mnemonic(mnemonic)
        ops = _split_operands(operands)
        if base in _DP_BASES:
            op = _DP_BASES[base]
            if (base == "mov" and len(ops) == 2 and not ops[1].startswith("#")
                    and ops[1].strip().lower() in ("pc",)):
                pass  # plain mov rd, pc is fine through the generic path
            inst = self._select_dp(op, cond, s_flag, ops, lineno, line)
        elif base in _SHIFT_PSEUDOS:
            # lsl rd, rm, #n  ==  mov rd, rm, lsl #n
            kind = SHIFT_NAMES[base]
            rd = self._reg(ops[0], lineno, line)
            rm = self._reg(ops[1], lineno, line)
            arg = ops[2].strip()
            if arg.startswith("#"):
                amount = _eval_expr(arg[1:], self.symbols)
                inst = Inst(Op.MOV, cond=cond, s=s_flag, rd=rd, rm=rm,
                            shift_kind=kind, shift_amount=amount)
            else:
                inst = Inst(Op.MOV, cond=cond, s=s_flag, rd=rd, rm=rm,
                            shift_kind=kind,
                            shift_reg=self._reg(arg, lineno, line))
        elif base == "neg":
            rd = self._reg(ops[0], lineno, line)
            rm = self._reg(ops[1], lineno, line) if len(ops) > 1 else rd
            inst = Inst(Op.RSBI, cond=cond, s=s_flag, rd=rd, rn=rm, imm=0)
        elif base in _MEM_BASES:
            inst = self._select_mem(_MEM_BASES[base], cond, ops, item)
        elif base in ("ldm", "ldmia", "stm", "stmdb", "push", "pop"):
            inst = self._select_multi(base, cond, ops, lineno, line)
        elif base == "b" or base == "bl":
            target = _eval_expr(ops[0], self.symbols)
            op = Op.B if base == "b" else Op.BL
            inst = Inst(op, cond=cond, imm=target - item.addr)
        elif base == "bx":
            inst = Inst(Op.BX, cond=cond, rm=self._reg(ops[0], lineno, line))
        elif base == "movw" or base == "movt":
            rd = self._reg(ops[0], lineno, line)
            imm = self._imm(ops[1], lineno, line)
            op = Op.MOVW if base == "movw" else Op.MOVT
            inst = Inst(op, cond=cond, rd=rd, imm=imm & 0xFFFF)
        elif base == "mul":
            inst = Inst(Op.MUL, cond=cond, s=s_flag,
                        rd=self._reg(ops[0], lineno, line),
                        rn=self._reg(ops[1], lineno, line),
                        rm=self._reg(ops[2], lineno, line))
        elif base == "mla":
            inst = Inst(Op.MLA, cond=cond, s=s_flag,
                        rd=self._reg(ops[0], lineno, line),
                        rn=self._reg(ops[1], lineno, line),
                        rm=self._reg(ops[2], lineno, line),
                        ra=self._reg(ops[3], lineno, line))
        elif base == "svc":
            inst = Inst(Op.SVC, cond=cond, imm=self._imm(ops[0], lineno,
                                                         line))
        elif base == "adr":
            rd = self._reg(ops[0], lineno, line)
            target = _eval_expr(ops[1], self.symbols)
            delta = target - (item.addr + 8)
            if 0 <= delta <= 0x1FFF:
                inst = Inst(Op.ADDI, cond=cond, rd=rd, rn=15, imm=delta)
            elif -0x1FFF <= delta < 0:
                inst = Inst(Op.SUBI, cond=cond, rd=rd, rn=15, imm=-delta)
            else:
                raise AssemblerError(f"adr target too far ({delta})",
                                     lineno, line)
        elif base == "nop":
            inst = Inst(Op.NOP, cond=cond)
        elif base == "hlt":
            inst = Inst(Op.HLT, cond=cond)
        else:  # pragma: no cover - _parse_mnemonic filtered already
            raise AssemblerError(f"unsupported {base!r}", lineno, line)
        inst.addr = item.addr
        inst.text = f"{mnemonic} {operands}".strip()
        return [inst]

    def _select_mem(self, op, cond, ops, item):
        lineno, line = item.lineno, item.line
        rd = self._reg(ops[0], lineno, line)
        rest = ops[1:]
        if not rest:
            raise AssemblerError("missing address", lineno, line)
        if not rest[0].lstrip().startswith("["):
            # PC-relative: ldr rd, label
            target = _eval_expr(rest[0], self.symbols)
            delta = target - (item.addr + 8)
            if not -2048 <= delta <= 2047:
                raise AssemblerError(
                    f"pc-relative target too far ({delta})", lineno, line
                )
            return Inst(op, cond=cond, rd=rd, rn=15, imm=delta, pre=True)
        fields = self._parse_mem_operand(rest, lineno, line)
        if fields["rm"] is None:
            if not -2048 <= fields["imm"] <= 2047:
                raise AssemblerError(
                    f"offset {fields['imm']} out of range", lineno, line
                )
            return Inst(op, cond=cond, rd=rd, rn=fields["rn"],
                        imm=fields["imm"], pre=fields["pre"],
                        writeback=fields["writeback"])
        return Inst(MEM_REG_FORM[op], cond=cond, rd=rd, rn=fields["rn"],
                    rm=fields["rm"], shift_kind=fields["shift_kind"],
                    shift_amount=fields["shift_amount"], pre=fields["pre"],
                    writeback=fields["writeback"])

    def _select_multi(self, base, cond, ops, lineno, line):
        if base == "push":
            mask = self._parse_reglist(ops[0], lineno, line)
            return Inst(Op.STM, cond=cond, rn=13, reglist=mask,
                        writeback=True)
        if base == "pop":
            mask = self._parse_reglist(ops[0], lineno, line)
            return Inst(Op.LDM, cond=cond, rn=13, reglist=mask,
                        writeback=True)
        rn_token = ops[0].strip()
        writeback = rn_token.endswith("!")
        if writeback:
            rn_token = rn_token[:-1]
        rn = self._reg(rn_token, lineno, line)
        mask = self._parse_reglist(ops[1], lineno, line)
        op = Op.LDM if base.startswith("ldm") else Op.STM
        return Inst(op, cond=cond, rn=rn, reglist=mask, writeback=writeback)

    def _expand_ldr_eq(self, item):
        mnemonic, rd_token, expr = item.payload
        _, _, cond = _parse_mnemonic(mnemonic)
        rd = self._reg(rd_token, item.lineno, item.line)
        if self.toolchain.uses_literal_pool:
            target = self.symbols.get(expr)
            if target is None:
                raise AssemblerError(
                    f"unresolved literal {expr!r} (missing .pool?)",
                    item.lineno, item.line,
                )
            delta = target - (item.addr + 8)
            if not -2048 <= delta <= 2047:
                raise AssemblerError(
                    f"literal pool too far ({delta}); add a .pool directive",
                    item.lineno, item.line,
                )
            inst = Inst(Op.LDR, cond=cond, rd=rd, rn=15, imm=delta,
                        addr=item.addr, text=f"ldr r{rd}, ={expr}")
            return [inst]
        value = _eval_expr(expr, self.symbols) & 0xFFFFFFFF
        low = Inst(Op.MOVW, cond=cond, rd=rd, imm=value & 0xFFFF,
                   addr=item.addr, text=f"movw r{rd}, #{value & 0xFFFF:#x}")
        high = Inst(Op.MOVT, cond=cond, rd=rd, imm=value >> 16,
                    addr=item.addr + 4,
                    text=f"movt r{rd}, #{value >> 16:#x}")
        return [low, high]

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def assemble(self, source, name="program"):
        for lineno, raw in enumerate(source.splitlines(), start=1):
            try:
                self._pass1_line(lineno, raw)
            except AssemblerError:
                raise
            except ValueError as exc:
                raise AssemblerError(str(exc), lineno, raw) from exc
        if self._section != "text":
            self._section = "text"
        if self._pending_literals:
            self._flush_pool(None, "")
        insts = []
        raw_words = {}
        data = bytearray()
        for item in self.items:
            if item.kind == "inst" or item.kind == "ldr=":
                try:
                    insts.extend(self._pass2_item(item))
                except AssemblerError:
                    raise
                except ValueError as exc:
                    raise AssemblerError(str(exc), item.lineno,
                                         item.line) from exc
            elif item.kind == "bytes":
                # literal pool or inline .word inside .text
                blob = self._render_bytes(item)
                if len(blob) % 4:
                    raise AssemblerError("unaligned data in .text",
                                         item.lineno, item.line)
                for i in range(0, len(blob), 4):
                    word = int.from_bytes(blob[i:i + 4], "little")
                    index = len(insts)
                    raw_words[index] = word
                    insts.append(Inst(Op.HLT, addr=item.addr + i,
                                      text=".word"))
            elif item.kind.startswith("data:"):
                offset = item.addr - self.layout.data_base
                blob = self._render_bytes(item)
                if len(data) < offset:
                    data += bytes(offset - len(data))
                data[offset:offset + len(blob)] = blob
        expected = (self._text_lc - self.layout.text_base) // 4
        if len(insts) != expected:
            raise AssemblerError(
                f"pass mismatch: sized {expected} slots, emitted "
                f"{len(insts)}"
            )
        return Program(
            name, insts, bytes(data), self.symbols, layout=self.layout,
            source=source, toolchain=self.toolchain.name,
            raw_words=raw_words,
        )

    def _render_bytes(self, item):
        payload = item.payload
        if isinstance(payload, (bytes, bytearray)):
            return bytes(payload)
        kind, arg = payload
        if kind == "litword":
            value = _eval_expr(arg, self.symbols) & 0xFFFFFFFF
            return value.to_bytes(4, "little")
        if kind == "words":
            out = bytearray()
            for expr in arg:
                value = _eval_expr(expr, self.symbols) & 0xFFFFFFFF
                out += value.to_bytes(4, "little")
            return bytes(out)
        if kind == "halves":
            out = bytearray()
            for expr in arg:
                value = _eval_expr(expr, self.symbols) & 0xFFFF
                out += value.to_bytes(2, "little")
            return bytes(out)
        if kind == "bytes":
            return bytes(
                _eval_expr(expr, self.symbols) & 0xFF for expr in arg
            )
        raise AssemblerError(f"bad payload {kind!r}", item.lineno, item.line)


def assemble(source, name="program", toolchain=None, layout=None):
    """Assemble ``source`` text into a :class:`Program`."""
    return Assembler(toolchain=toolchain, layout=layout).assemble(
        source, name=name
    )
