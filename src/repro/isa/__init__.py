"""ARMlet: a 32-bit ARM-inspired ISA, toolchain and reference model.

This package provides the instruction-set substrate shared by both CPU
models compared in the paper:

* :mod:`repro.isa.registers` / :mod:`repro.isa.flags` -- architectural state.
* :mod:`repro.isa.instructions` -- the decoded instruction representation.
* :mod:`repro.isa.alu` -- the *functional* description of the data-path
  logic.  The paper (SS II-B) notes that logic blocks are functionally
  identical at RTL and microarchitecture level; both of our simulators
  therefore share this module, exactly as the argument requires.
* :mod:`repro.isa.encoding` -- 32-bit binary encoder/decoder.
* :mod:`repro.isa.assembler` -- two-pass assembler with data directives.
* :mod:`repro.isa.toolchain` -- the two "different toolchains" of SS III-C.
* :mod:`repro.isa.program` -- linked program images.
* :mod:`repro.isa.interp` -- golden architectural interpreter.
"""

from repro.isa.assembler import AssemblerError, assemble
from repro.isa.instructions import Cond, Inst, Op
from repro.isa.interp import Interpreter
from repro.isa.program import MemoryLayout, Program
from repro.isa.toolchain import Toolchain

__all__ = [
    "AssemblerError",
    "Cond",
    "Inst",
    "Interpreter",
    "MemoryLayout",
    "Op",
    "Program",
    "Toolchain",
    "assemble",
]
