"""NZCV condition flags and condition-code evaluation."""

#: Condition code numeric values (match the encoding field).
COND_CODES = (
    "eq", "ne", "cs", "cc", "mi", "pl", "vs", "vc",
    "hi", "ls", "ge", "lt", "gt", "le", "al",
)

COND_INDEX = {name: i for i, name in enumerate(COND_CODES)}
COND_INDEX["hs"] = COND_INDEX["cs"]
COND_INDEX["lo"] = COND_INDEX["cc"]


class Flags:
    """The NZCV flag bits of the program-status register."""

    __slots__ = ("n", "z", "c", "v")

    def __init__(self, n=False, z=False, c=False, v=False):
        self.n = n
        self.z = z
        self.c = c
        self.v = v

    def pack(self):
        """Pack to a 4-bit integer, NZCV from bit 3 down to bit 0."""
        return (self.n << 3) | (self.z << 2) | (self.c << 1) | int(self.v)

    @classmethod
    def unpack(cls, bits):
        return cls(
            n=bool(bits & 0b1000),
            z=bool(bits & 0b0100),
            c=bool(bits & 0b0010),
            v=bool(bits & 0b0001),
        )

    def copy(self):
        return Flags(self.n, self.z, self.c, self.v)

    def __eq__(self, other):
        if not isinstance(other, Flags):
            return NotImplemented
        return self.pack() == other.pack()

    def __hash__(self):
        return hash(self.pack())

    def __repr__(self):
        bits = "".join(
            name if value else "-"
            for name, value in zip("NZCV", (self.n, self.z, self.c, self.v))
        )
        return f"Flags({bits})"


def cond_passed(cond, flags):
    """Evaluate condition code ``cond`` (index or packed flags tuple).

    ``cond`` is the numeric condition index; ``flags`` a :class:`Flags`.
    """
    n, z, c, v = flags.n, flags.z, flags.c, flags.v
    if cond == 14:  # al
        return True
    if cond == 0:  # eq
        return z
    if cond == 1:  # ne
        return not z
    if cond == 2:  # cs/hs
        return c
    if cond == 3:  # cc/lo
        return not c
    if cond == 4:  # mi
        return n
    if cond == 5:  # pl
        return not n
    if cond == 6:  # vs
        return v
    if cond == 7:  # vc
        return not v
    if cond == 8:  # hi
        return c and not z
    if cond == 9:  # ls
        return (not c) or z
    if cond == 10:  # ge
        return n == v
    if cond == 11:  # lt
        return n != v
    if cond == 12:  # gt
        return (not z) and n == v
    if cond == 13:  # le
        return z or n != v
    raise ValueError(f"invalid condition code {cond}")
