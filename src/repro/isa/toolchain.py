"""Toolchain variants.

The paper could not use identical binaries on the two flows: "the same
binary files could not be used and the benchmarks were built using the same
source files with the same options, using different tool chains" (SS III-C).
We reproduce that situation with two deterministic code generators that
consume the same assembly source but emit different (semantically
equivalent) binaries:

* ``gnu``   -- synthesises ``ldr rd, =const`` as a MOVW/MOVT pair and packs
  code densely.
* ``armcc`` -- synthesises constants through PC-relative literal pools and
  pads branch-target labels to 8-byte fetch-group boundaries with NOPs.

Both the cross-level study and ablation A3 (same-binary vs cross-toolchain)
are driven by this knob.
"""


class Toolchain:
    """A named, deterministic set of code-generation choices."""

    KNOWN = ("gnu", "armcc")

    def __init__(self, name="gnu"):
        if name not in self.KNOWN:
            raise ValueError(
                f"unknown toolchain {name!r}; expected one of {self.KNOWN}"
            )
        self.name = name

    @property
    def uses_literal_pool(self):
        """``ldr rd, =x`` strategy: literal pool (armcc) or MOVW/MOVT (gnu)."""
        return self.name == "armcc"

    @property
    def label_alignment(self):
        """Byte alignment enforced at text labels (1 = none)."""
        return 8 if self.name == "armcc" else 1

    def __eq__(self, other):
        if isinstance(other, Toolchain):
            return self.name == other.name
        return NotImplemented

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        return f"Toolchain({self.name!r})"
