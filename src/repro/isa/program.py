"""Linked program images and the bare-metal memory layout."""

from __future__ import annotations

from typing import Any, Iterable, Mapping, TYPE_CHECKING

from repro.isa.encoding import encode

if TYPE_CHECKING:
    from repro.isa.instructions import Inst
    from repro.memory.ram import RAM


class MemoryLayout:
    """Bare-metal address map used by all three models.

    The layout mirrors the paper's bare-metal RTL environment: code at the
    reset vector, a data segment, and a descending stack at the top of a
    flat on-chip RAM.
    """

    def __init__(self, text_base: int = 0x0000_0000,
                 data_base: int = 0x0001_0000,
                 stack_top: int = 0x0003_FF00,
                 ram_size: int = 0x0004_0000) -> None:
        if stack_top > ram_size:
            raise ValueError("stack above end of RAM")
        if text_base >= data_base:
            raise ValueError("text must precede data")
        self.text_base = text_base
        self.data_base = data_base
        self.stack_top = stack_top
        self.ram_size = ram_size

    def __repr__(self) -> str:
        return (
            f"MemoryLayout(text={self.text_base:#x}, data={self.data_base:#x},"
            f" stack_top={self.stack_top:#x}, ram={self.ram_size:#x})"
        )


DEFAULT_LAYOUT = MemoryLayout()


class Program:
    """An assembled, linked program.

    Attributes:
        name: human-readable workload name.
        insts: decoded instructions, indexed by ``(addr - text_base) // 4``.
        words: the matching encoded 32-bit words.
        data: ``bytes`` of the initialised data segment.
        symbols: label -> address map.
        layout: the :class:`MemoryLayout` it was linked against.
        entry: start address.
        source: the assembly source text it came from.
        toolchain: name of the toolchain variant that produced it.
    """

    def __init__(self, name: str, insts: Iterable[Inst], data: bytes,
                 symbols: Mapping[str, int],
                 layout: MemoryLayout | None = None,
                 entry: int | None = None, source: str = "",
                 toolchain: str = "default",
                 raw_words: Mapping[int, int] | None = None) -> None:
        self.name = name
        self.insts = list(insts)
        self.words = [encode(inst) for inst in self.insts]
        # Literal-pool slots carry arbitrary 32-bit data; the decoded view
        # keeps an HLT trap there but the binary image holds the raw word.
        self.raw_words = dict(raw_words or {})
        for index, word in self.raw_words.items():
            self.words[index] = word & 0xFFFFFFFF
        self.data = bytes(data)
        self.symbols = dict(symbols)
        self.layout = layout or DEFAULT_LAYOUT
        self.entry = self.layout.text_base if entry is None else entry
        self.source = source
        self.toolchain = toolchain
        self._decode_table: dict[int, Inst] | None = None

    @property
    def text_size(self) -> int:
        return 4 * len(self.insts)

    def inst_at(self, addr: int) -> Inst | None:
        """Decoded instruction at byte address ``addr`` (None when outside
        the text segment)."""
        offset = addr - self.layout.text_base
        index = offset >> 2
        if offset < 0 or offset & 0b11 or index >= len(self.insts):
            return None
        return self.insts[index]

    def decode_table(self) -> dict[int, Inst]:
        """Address -> decoded instruction, memoized once per program.

        The table materialises ``repro.isa.encoding.decode(word, addr)``
        over the whole binary image in one pass, so a fetch in the
        interpreter hot loop is a single dict hit instead of a per-step
        decode.  Literal-pool slots carry data, not code; their entries
        keep the assembler's HLT trap (matching :meth:`inst_at` -- the
        raw word round-trips through the image, the *decoded view* of a
        pool slot is always the trap).
        """
        if self._decode_table is None:
            from repro.isa.encoding import decode

            base = self.layout.text_base
            table: dict[int, Inst] = {}
            for index, word in enumerate(self.words):
                addr = base + 4 * index
                if index in self.raw_words:
                    table[addr] = self.insts[index]
                else:
                    table[addr] = decode(word, addr)
            self._decode_table = table
        return self._decode_table

    def __getstate__(self) -> dict[str, Any]:
        # The decode table is a derived memo: drop it from pickles so
        # executor worker payloads stay lean; workers rebuild it lazily.
        state = self.__dict__.copy()
        state["_decode_table"] = None
        return state

    def text_bytes(self) -> bytes:
        """The encoded text segment as little-endian bytes."""
        blob = bytearray()
        for word in self.words:
            blob += word.to_bytes(4, "little")
        return bytes(blob)

    def load_into(self, ram: RAM) -> None:
        """Write text + data segments into a :class:`repro.memory.ram.RAM`."""
        ram.write_block(self.layout.text_base, self.text_bytes())
        if self.data:
            ram.write_block(self.layout.data_base, self.data)

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.insts)} insts,"
            f" {len(self.data)} data bytes, toolchain={self.toolchain!r})"
        )
