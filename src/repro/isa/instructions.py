"""Decoded instruction representation for the ARMlet ISA.

Instructions are held in a flat, slot-based record so that both pipelines
can dispatch on :attr:`Inst.op` cheaply.  The 32-bit binary form lives in
:mod:`repro.isa.encoding`; simulators execute the decoded form (instruction
*data* faults are out of the paper's scope -- it injects the register file
and the L1 data cache only).
"""

from __future__ import annotations

import enum

from repro.isa.flags import COND_CODES


class Op(enum.IntEnum):
    """Operation codes.  Values are also the binary opcode field."""

    # Data processing, register operand2 (with optional barrel shift).
    AND = 0
    EOR = 1
    SUB = 2
    RSB = 3
    ADD = 4
    ADC = 5
    SBC = 6
    ORR = 7
    BIC = 8
    MOV = 9
    MVN = 10
    CMP = 11
    CMN = 12
    TST = 13
    TEQ = 14
    # Data processing, immediate operand2.
    ANDI = 16
    EORI = 17
    SUBI = 18
    RSBI = 19
    ADDI = 20
    ADCI = 21
    SBCI = 22
    ORRI = 23
    BICI = 24
    MOVI = 25
    MVNI = 26
    CMPI = 27
    CMNI = 28
    TSTI = 29
    TEQI = 30
    # Wide moves.
    MOVW = 32
    MOVT = 33
    # Multiply.
    MUL = 34
    MLA = 35
    # Loads / stores, immediate offset.
    LDR = 36
    STR = 37
    LDRB = 38
    STRB = 39
    LDRH = 40
    STRH = 41
    # Loads / stores, register offset.
    LDRR = 42
    STRR = 43
    LDRBR = 44
    STRBR = 45
    LDRHR = 46
    STRHR = 47
    # Multiple transfer.
    LDM = 48
    STM = 49
    # Control flow.
    B = 50
    BL = 51
    BX = 52
    # System.
    SVC = 53
    NOP = 54
    HLT = 55  # simulator-stop sentinel (assembler emits for bare-metal end)


class ShiftKind(enum.IntEnum):
    LSL = 0
    LSR = 1
    ASR = 2
    ROR = 3


SHIFT_NAMES = {
    "lsl": ShiftKind.LSL,
    "lsr": ShiftKind.LSR,
    "asr": ShiftKind.ASR,
    "ror": ShiftKind.ROR,
}


class Cond(enum.IntEnum):
    """Condition codes (ARM order)."""

    EQ = 0
    NE = 1
    CS = 2
    CC = 3
    MI = 4
    PL = 5
    VS = 6
    VC = 7
    HI = 8
    LS = 9
    GE = 10
    LT = 11
    GT = 12
    LE = 13
    AL = 14


#: Data-processing ops that take a register operand2.
DP_REG_OPS = frozenset(
    {Op.AND, Op.EOR, Op.SUB, Op.RSB, Op.ADD, Op.ADC, Op.SBC, Op.ORR,
     Op.BIC, Op.MOV, Op.MVN, Op.CMP, Op.CMN, Op.TST, Op.TEQ}
)
#: Data-processing ops with an immediate operand2.
DP_IMM_OPS = frozenset(
    {Op.ANDI, Op.EORI, Op.SUBI, Op.RSBI, Op.ADDI, Op.ADCI, Op.SBCI,
     Op.ORRI, Op.BICI, Op.MOVI, Op.MVNI, Op.CMPI, Op.CMNI, Op.TSTI, Op.TEQI}
)
#: Compare-style ops: no destination register, always set flags.
COMPARE_OPS = frozenset(
    {Op.CMP, Op.CMN, Op.TST, Op.TEQ, Op.CMPI, Op.CMNI, Op.TSTI, Op.TEQI}
)
#: Ops whose operand2 is unary (no rn source).
UNARY_OPS = frozenset({Op.MOV, Op.MVN, Op.MOVI, Op.MVNI})

LOAD_OPS = frozenset({Op.LDR, Op.LDRB, Op.LDRH, Op.LDRR, Op.LDRBR, Op.LDRHR})
STORE_OPS = frozenset({Op.STR, Op.STRB, Op.STRH, Op.STRR, Op.STRBR, Op.STRHR})
MEM_OPS = LOAD_OPS | STORE_OPS | {Op.LDM, Op.STM}
BRANCH_OPS = frozenset({Op.B, Op.BL, Op.BX})

#: Byte width of each scalar memory op.
MEM_SIZE = {
    Op.LDR: 4, Op.STR: 4, Op.LDRR: 4, Op.STRR: 4,
    Op.LDRB: 1, Op.STRB: 1, Op.LDRBR: 1, Op.STRBR: 1,
    Op.LDRH: 2, Op.STRH: 2, Op.LDRHR: 2, Op.STRHR: 2,
}

#: Register-offset twin of each immediate-offset memory op.
MEM_REG_FORM = {
    Op.LDR: Op.LDRR, Op.STR: Op.STRR,
    Op.LDRB: Op.LDRBR, Op.STRB: Op.STRBR,
    Op.LDRH: Op.LDRHR, Op.STRH: Op.STRHR,
}

#: Immediate twin of each register-operand2 data-processing op.
DP_IMM_FORM = {
    Op.AND: Op.ANDI, Op.EOR: Op.EORI, Op.SUB: Op.SUBI, Op.RSB: Op.RSBI,
    Op.ADD: Op.ADDI, Op.ADC: Op.ADCI, Op.SBC: Op.SBCI, Op.ORR: Op.ORRI,
    Op.BIC: Op.BICI, Op.MOV: Op.MOVI, Op.MVN: Op.MVNI, Op.CMP: Op.CMPI,
    Op.CMN: Op.CMNI, Op.TST: Op.TSTI, Op.TEQ: Op.TEQI,
}
DP_REG_FORM = {imm: reg for reg, imm in DP_IMM_FORM.items()}


class Inst:
    """One decoded instruction.

    Field usage by format:

    * data processing: ``rd``, ``rn``, ``rm``/``imm``, ``shift_kind``,
      ``shift_amount``, ``shift_reg`` (register-specified shift amount),
      ``s`` (update flags);
    * memory: ``rd`` (data), ``rn`` (base), ``imm``/``rm`` (offset),
      ``pre`` (pre-index), ``writeback``;
    * LDM/STM: ``rn`` (base), ``reglist`` (bit i = register i),
      ``writeback``; LDM is increment-after, STM decrement-before
      (the PUSH/POP pair);
    * branches: ``imm`` holds the *byte* offset relative to the branch's
      own address (resolved by the assembler), ``rm`` for BX;
    * SVC: ``imm`` is the syscall number.
    """

    __slots__ = (
        "op", "cond", "s", "rd", "rn", "rm", "ra", "imm",
        "shift_kind", "shift_amount", "shift_reg",
        "pre", "writeback", "reglist", "addr", "text",
    )

    def __init__(self, op: Op, cond: Cond = Cond.AL, s: bool = False,
                 rd: int = 0, rn: int = 0, rm: int = 0, ra: int = 0,
                 imm: int = 0, shift_kind: ShiftKind = ShiftKind.LSL,
                 shift_amount: int = 0, shift_reg: int | None = None,
                 pre: bool = True, writeback: bool = False,
                 reglist: int = 0, addr: int = 0, text: str = "") -> None:
        self.op = op
        self.cond = cond
        self.s = s
        self.rd = rd
        self.rn = rn
        self.rm = rm
        self.ra = ra
        self.imm = imm
        self.shift_kind = shift_kind
        self.shift_amount = shift_amount
        self.shift_reg = shift_reg
        self.pre = pre
        self.writeback = writeback
        self.reglist = reglist
        self.addr = addr
        self.text = text

    # -- dataflow queries used by both pipelines ---------------------------

    def src_regs(self) -> list[int]:
        """Architectural source registers read by this instruction."""
        op = self.op
        srcs: list[int] = []
        if op in DP_REG_OPS:
            if op not in UNARY_OPS:
                srcs.append(self.rn)
            srcs.append(self.rm)
            if self.shift_reg is not None:
                srcs.append(self.shift_reg)
        elif op in DP_IMM_OPS:
            if op not in UNARY_OPS:
                srcs.append(self.rn)
        elif op == Op.MOVT:
            srcs.append(self.rd)
        elif op in (Op.MUL, Op.MLA):
            srcs.extend((self.rn, self.rm))
            if op == Op.MLA:
                srcs.append(self.ra)
        elif op in LOAD_OPS:
            srcs.append(self.rn)
            if op in (Op.LDRR, Op.LDRBR, Op.LDRHR):
                srcs.append(self.rm)
        elif op in STORE_OPS:
            srcs.extend((self.rd, self.rn))
            if op in (Op.STRR, Op.STRBR, Op.STRHR):
                srcs.append(self.rm)
        elif op == Op.LDM:
            srcs.append(self.rn)
        elif op == Op.STM:
            srcs.append(self.rn)
            srcs.extend(i for i in range(16) if self.reglist & (1 << i))
        elif op == Op.BX:
            srcs.append(self.rm)
        elif op == Op.SVC:
            srcs.extend((0, 1, 2))
        return srcs

    def dst_regs(self) -> list[int]:
        """Architectural destination registers written by this instruction."""
        op = self.op
        dsts: list[int] = []
        if op in DP_REG_OPS or op in DP_IMM_OPS:
            if op not in COMPARE_OPS:
                dsts.append(self.rd)
        elif op in (Op.MOVW, Op.MOVT, Op.MUL, Op.MLA):
            dsts.append(self.rd)
        elif op in LOAD_OPS:
            dsts.append(self.rd)
            if self.writeback:
                dsts.append(self.rn)
        elif op in STORE_OPS:
            if self.writeback:
                dsts.append(self.rn)
        elif op == Op.LDM:
            dsts.extend(i for i in range(16) if self.reglist & (1 << i))
            if self.writeback:
                dsts.append(self.rn)
        elif op == Op.STM:
            if self.writeback:
                dsts.append(self.rn)
        elif op == Op.BL:
            dsts.append(14)
        elif op == Op.SVC:
            dsts.append(0)
        return dsts

    def reads_flags(self) -> bool:
        if self.cond != Cond.AL:
            return True
        return self.op in (Op.ADC, Op.SBC, Op.ADCI, Op.SBCI)

    def writes_flags(self) -> bool:
        return self.s or self.op in COMPARE_OPS

    def is_branch(self) -> bool:
        return self.op in BRANCH_OPS or 15 in self.dst_regs()

    def __repr__(self) -> str:
        cond = "" if self.cond == Cond.AL else COND_CODES[self.cond]
        label = self.text or self.op.name.lower() + cond
        return f"<Inst {self.addr:#06x} {label}>"
