"""Vectorized data-path logic: numpy mirrors of :mod:`repro.isa.alu`.

The batch-fault lane engine (``repro.batch``) executes N faulty runs as
one numpy pass over ``(N,)`` uint32 lane arrays.  Every function here is
the element-wise twin of its scalar namesake in ``alu.py`` /
``flags.py`` -- same ARM semantics, bit for bit -- so the cross-lane
equivalence suite can hold the batched path to the scalar contract.

Two numpy pitfalls are handled explicitly, because they are exactly the
places where dtype promotion could silently diverge from scalar 32-bit
arithmetic:

* **shift amounts >= the dtype width are undefined behaviour** in
  numpy (as in C).  Every data-dependent shift first clamps its amount
  into range with a mask and computes the out-of-range cases through
  ``np.where`` arms, widening to uint64 where an in-range shift needs
  more headroom (LSL carry, ROR recombination);
* **signed interpretation**: ASR and the overflow flag never rely on a
  uint->int cast of out-of-range values; they widen to int64 first (the
  exact vector analogue of ``alu.s32``).

All value arrays are uint32; flag arrays are bool.  Scalar Python ints
broadcast fine for the common immediate cases.
"""

import numpy as np

from repro.isa.instructions import Op, ShiftKind

MASK32 = 0xFFFFFFFF

_LOGICAL = {Op.AND, Op.EOR, Op.ORR, Op.BIC, Op.MOV, Op.MVN, Op.TST, Op.TEQ}


def u32(values):
    """Coerce to a uint32 array (masking wider inputs)."""
    arr = np.asarray(values)
    if arr.dtype == np.uint32:
        return arr
    return (arr.astype(np.int64) & MASK32).astype(np.uint32)


def s32(values):
    """Interpret uint32 lanes as signed, widened to int64 (the vector
    analogue of ``alu.s32`` -- no narrowing cast is ever involved)."""
    wide = u32(values).astype(np.int64)
    return np.where(wide & 0x80000000, wide - 0x100000000, wide)


def barrel_shift(value, kind, amount, carry_in):
    """Vector barrel shifter: ``(result, carry_out)`` per lane.

    ``value`` is uint32 lanes; ``amount`` is a scalar int or a per-lane
    array (0..255 after the &0xFF the scalar path applies); ``carry_in``
    is a bool array.  Mirrors ``alu.barrel_shift`` exactly.
    """
    value = u32(value)
    amount = np.broadcast_to(
        np.asarray(amount, dtype=np.int64) & 0xFF, value.shape)
    carry_in = np.broadcast_to(np.asarray(carry_in, dtype=bool),
                               value.shape)
    wide = value.astype(np.uint64)
    # Clamped amounts keep every actual shift within the uint64 width;
    # the out-of-range arms are selected by np.where masks instead.
    mid = np.minimum(np.maximum(amount, 1), 32).astype(np.uint64)
    if kind == ShiftKind.LSL:
        # amount 1..32 through uint64 (<<32 needs the headroom); the
        # carry is bit(32 - amount), again safe on uint64 for mid<=32.
        shifted = (wide << mid) & MASK32
        mid_carry = ((wide >> (np.uint64(32) - mid)) & 1).astype(bool)
        result = np.where(amount > 32, 0, shifted).astype(np.uint32)
        carry = np.where(amount > 32, False, mid_carry)
    elif kind == ShiftKind.LSR:
        shifted = (wide >> mid).astype(np.uint32)
        mid_carry = ((wide >> (mid - np.uint64(1))) & 1).astype(bool)
        result = np.where(amount > 32, 0, shifted).astype(np.uint32)
        carry = np.where(amount > 32, False, mid_carry)
    elif kind == ShiftKind.ASR:
        signed = s32(value)
        sign = (value >> np.uint32(31)).astype(bool)
        mid31 = np.minimum(mid, np.uint64(31)).astype(np.int64)
        shifted = u32(signed >> mid31)  # int64 >> is arithmetic
        filled = np.where(sign, np.uint32(MASK32), np.uint32(0))
        mid_carry = ((wide >> (mid - np.uint64(1))) & 1).astype(bool)
        result = np.where(amount >= 32, filled, shifted)
        carry = np.where(amount >= 32, sign, mid_carry)
    elif kind == ShiftKind.ROR:
        rot = (amount % 32).astype(np.uint64)
        rot_safe = np.maximum(rot, 1)  # avoid the UB 32-0 shift
        rotated = (((wide >> rot_safe)
                    | (wide << (np.uint64(32) - rot_safe)))
                   & MASK32).astype(np.uint32)
        result = np.where(rot == 0, value, rotated)
        # alu: for rot==0 (amount multiple of 32) carry = bit31 of the
        # unchanged value; otherwise bit31 of the rotated result.
        carry = (result >> np.uint32(31)).astype(bool)
    else:
        raise ValueError(f"bad shift kind {kind}")
    # amount == 0: pass-through, carry_in preserved (all kinds).
    zero = amount == 0
    result = np.where(zero, value, result)
    carry = np.where(zero, carry_in, carry)
    return result, carry


def add_with_carry(a, b, carry_in):
    """Vector ARM AddWithCarry: ``(result, carry_out, overflow)``.

    ``carry_in`` may be a bool array or a Python bool/int scalar.
    """
    a = u32(a)
    b = u32(b)
    unsigned = (a.astype(np.uint64) + b.astype(np.uint64)
                + np.asarray(carry_in, dtype=np.uint64))
    result = (unsigned & MASK32).astype(np.uint32)
    carry = unsigned > MASK32
    # Signed overflow iff the operands agree in sign and the result
    # does not -- equivalent to alu's signed-sum comparison, including
    # the carry-in (a carry-in never flips operand signs).
    overflow = ((~(a ^ b) & (a ^ result)) >> np.uint32(31)).astype(bool)
    return result, carry, overflow


def dp_compute(op, rn_value, op2_value, c_in, v_in, shifter_carry):
    """Vector twin of ``alu.dp_compute``.

    Flags come and go as component bool arrays: ``(c_in, v_in)`` are the
    current lane flags, ``shifter_carry`` is the per-lane barrel-shifter
    carry-out.  Returns ``(result, n, z, c, v)``.
    """
    rn_value = u32(rn_value)
    op2_value = u32(op2_value)
    if op in _LOGICAL:
        if op == Op.AND or op == Op.TST:
            result = rn_value & op2_value
        elif op == Op.EOR or op == Op.TEQ:
            result = rn_value ^ op2_value
        elif op == Op.ORR:
            result = rn_value | op2_value
        elif op == Op.BIC:
            result = rn_value & ~op2_value
        elif op == Op.MOV:
            result = op2_value.copy()
        else:  # MVN
            result = ~op2_value
        carry = np.broadcast_to(np.asarray(shifter_carry, dtype=bool),
                                result.shape)
        overflow = np.broadcast_to(np.asarray(v_in, dtype=bool),
                                   result.shape)
    elif op == Op.SUB or op == Op.CMP:
        result, carry, overflow = add_with_carry(rn_value, ~op2_value,
                                                 True)
    elif op == Op.RSB:
        result, carry, overflow = add_with_carry(op2_value, ~rn_value,
                                                 True)
    elif op == Op.ADD or op == Op.CMN:
        result, carry, overflow = add_with_carry(rn_value, op2_value,
                                                 False)
    elif op == Op.ADC:
        result, carry, overflow = add_with_carry(rn_value, op2_value,
                                                 c_in)
    elif op == Op.SBC:
        result, carry, overflow = add_with_carry(rn_value, ~op2_value,
                                                 c_in)
    else:
        raise ValueError(f"not a data-processing op: {op!r}")
    n = ((result >> np.uint32(31)) & 1).astype(bool)
    z = result == 0
    return result, n, z, np.asarray(carry, dtype=bool), overflow


def multiply(op, rn_value, rm_value, ra_value):
    """Vector MUL / MLA (low 32 bits)."""
    product = (u32(rn_value).astype(np.uint64)
               * u32(rm_value).astype(np.uint64))
    if op == Op.MLA:
        product += u32(ra_value).astype(np.uint64)
    return (product & MASK32).astype(np.uint32)


def cond_passed(cond, n, z, c, v):
    """Vector twin of ``flags.cond_passed`` -- a bool array per lane."""
    n = np.asarray(n, dtype=bool)
    z = np.asarray(z, dtype=bool)
    c = np.asarray(c, dtype=bool)
    v = np.asarray(v, dtype=bool)
    if cond == 14:
        return np.ones(n.shape, dtype=bool)
    if cond == 0:
        return z
    if cond == 1:
        return ~z
    if cond == 2:
        return c
    if cond == 3:
        return ~c
    if cond == 4:
        return n
    if cond == 5:
        return ~n
    if cond == 6:
        return v
    if cond == 7:
        return ~v
    if cond == 8:
        return c & ~z
    if cond == 9:
        return ~c | z
    if cond == 10:
        return n == v
    if cond == 11:
        return n != v
    if cond == 12:
        return ~z & (n == v)
    if cond == 13:
        return z | (n != v)
    raise ValueError(f"bad condition code {cond}")
