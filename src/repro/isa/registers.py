"""Architectural register model for the ARMlet ISA.

Sixteen 32-bit general-purpose registers, with the ARM conventions for the
stack pointer (r13), link register (r14) and program counter (r15).
"""

NUM_REGS = 16

SP = 13
LR = 14
PC = 15

#: Canonical register names, index -> name.
REG_NAMES = tuple(f"r{i}" for i in range(NUM_REGS))

#: Accepted aliases when parsing assembly source.
REG_ALIASES = {
    "sp": SP,
    "lr": LR,
    "pc": PC,
    "fp": 11,
    "ip": 12,
}


def reg_name(index):
    """Return the canonical name of register ``index`` (``sp``/``lr``/``pc``
    for the special registers)."""
    if index == SP:
        return "sp"
    if index == LR:
        return "lr"
    if index == PC:
        return "pc"
    return REG_NAMES[index]


def parse_reg(token):
    """Parse a register token (``r4``, ``SP``, ``lr`` ...) to its index.

    Raises ``ValueError`` for anything that is not a register name.
    """
    text = token.strip().lower()
    if text in REG_ALIASES:
        return REG_ALIASES[text]
    if text.startswith("r") and text[1:].isdigit():
        index = int(text[1:])
        if 0 <= index < NUM_REGS:
            return index
    raise ValueError(f"not a register: {token!r}")


class RegisterFile:
    """A simple architectural register file (the golden-model storage).

    The two CPU models implement their own storage (physical registers at
    the microarchitecture level, flip-flop arrays at RTL); this class backs
    the reference interpreter only.
    """

    __slots__ = ("_regs", "listener")

    def __init__(self):
        self._regs = [0] * NUM_REGS
        #: Optional access hook called as ``(index, is_write)`` on every
        #: read/write; the ``arch`` backend's lifetime-trace capture.
        self.listener = None

    def read(self, index):
        if self.listener is not None:
            self.listener(index, False)
        return self._regs[index]

    def write(self, index, value):
        if self.listener is not None:
            self.listener(index, True)
        self._regs[index] = value & 0xFFFFFFFF

    def snapshot(self):
        return list(self._regs)

    def restore(self, values):
        self._regs = list(values)

    # -- fault-injection interface (the ``arch`` backend's regfile) ----
    # Only r0-r14 are injectable: the r15 slot is never read or written
    # (the interpreter keeps the PC outside the file), so a flip there
    # could never propagate and would only deflate the tier's estimate.

    def bit_count(self):
        return (NUM_REGS - 1) * 32

    def flip_bit(self, bit_index):
        reg, bit = divmod(bit_index, 32)
        self._regs[reg] ^= 1 << bit

    def __repr__(self):
        cells = ", ".join(
            f"{reg_name(i)}={value:#010x}" for i, value in enumerate(self._regs)
        )
        return f"RegisterFile({cells})"
