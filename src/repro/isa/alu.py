"""Functional data-path logic shared by both CPU models.

The paper's SS II-B argues that cross-level comparison of *storage* faults is
meaningful because the surrounding logic is functionally identical in the
RTL and microarchitectural models.  We make that premise literal: both of
our simulators execute their ALU, shifter and multiplier through these
functions, so any divergence between the models comes from structure and
timing -- never from data-path semantics.

All values are 32-bit unsigned Python ints; helpers mask as needed.
"""

from repro.isa.flags import Flags
from repro.isa.instructions import Op, ShiftKind

MASK32 = 0xFFFFFFFF


def u32(value):
    return value & MASK32


def s32(value):
    """Interpret a 32-bit value as signed."""
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


def barrel_shift(value, kind, amount, carry_in):
    """Apply the barrel shifter.  Returns ``(result, carry_out)``.

    Follows ARM semantics for the common cases used by the assembler
    (amount 0..31 for immediate shifts, 0..255 for register shifts).
    """
    value = u32(value)
    amount &= 0xFF
    if amount == 0:
        return value, carry_in
    if kind == ShiftKind.LSL:
        if amount > 32:
            return 0, False
        if amount == 32:
            return 0, bool(value & 1)
        carry = bool((value >> (32 - amount)) & 1)
        return u32(value << amount), carry
    if kind == ShiftKind.LSR:
        if amount > 32:
            return 0, False
        if amount == 32:
            return 0, bool(value >> 31)
        carry = bool((value >> (amount - 1)) & 1)
        return value >> amount, carry
    if kind == ShiftKind.ASR:
        if amount >= 32:
            filled = MASK32 if value & 0x80000000 else 0
            return filled, bool(value >> 31)
        carry = bool((value >> (amount - 1)) & 1)
        return u32(s32(value) >> amount), carry
    if kind == ShiftKind.ROR:
        amount %= 32
        if amount == 0:
            return value, bool(value >> 31)
        result = u32((value >> amount) | (value << (32 - amount)))
        return result, bool(result >> 31)
    raise ValueError(f"bad shift kind {kind}")


def add_with_carry(a, b, carry_in):
    """ARM AddWithCarry: returns ``(result, carry_out, overflow)``."""
    a = u32(a)
    b = u32(b)
    unsigned = a + b + int(carry_in)
    result = unsigned & MASK32
    carry = unsigned > MASK32
    signed = s32(a) + s32(b) + int(carry_in)
    overflow = signed != s32(result)
    return result, carry, overflow


#: Maps every data-processing op (immediate forms normalised to register
#: forms by the caller) to its arithmetic class.
_LOGICAL = {Op.AND, Op.EOR, Op.ORR, Op.BIC, Op.MOV, Op.MVN, Op.TST, Op.TEQ}


def dp_compute(op, rn_value, op2_value, flags, shifter_carry):
    """Execute one data-processing operation.

    ``op`` must be a register-form :class:`Op` (callers normalise the
    immediate forms first).  Returns ``(result, Flags)`` where the flags are
    the values the operation *would* set (the caller applies them only when
    the instruction has the S bit or is a compare).
    """
    rn_value = u32(rn_value)
    op2_value = u32(op2_value)
    carry = flags.c
    overflow = flags.v
    if op == Op.AND or op == Op.TST:
        result = rn_value & op2_value
        carry = shifter_carry
    elif op == Op.EOR or op == Op.TEQ:
        result = rn_value ^ op2_value
        carry = shifter_carry
    elif op == Op.ORR:
        result = rn_value | op2_value
        carry = shifter_carry
    elif op == Op.BIC:
        result = rn_value & u32(~op2_value)
        carry = shifter_carry
    elif op == Op.MOV:
        result = op2_value
        carry = shifter_carry
    elif op == Op.MVN:
        result = u32(~op2_value)
        carry = shifter_carry
    elif op == Op.SUB or op == Op.CMP:
        result, carry, overflow = add_with_carry(rn_value, ~op2_value, True)
    elif op == Op.RSB:
        result, carry, overflow = add_with_carry(op2_value, ~rn_value, True)
    elif op == Op.ADD or op == Op.CMN:
        result, carry, overflow = add_with_carry(rn_value, op2_value, False)
    elif op == Op.ADC:
        result, carry, overflow = add_with_carry(rn_value, op2_value, flags.c)
    elif op == Op.SBC:
        result, carry, overflow = add_with_carry(rn_value, ~op2_value, flags.c)
    else:
        raise ValueError(f"not a data-processing op: {op!r}")
    new_flags = Flags(
        n=bool(result & 0x80000000),
        z=result == 0,
        c=carry,
        v=overflow,
    )
    return result, new_flags


def multiply(op, rn_value, rm_value, ra_value):
    """MUL / MLA (low 32 bits, ARM semantics)."""
    product = u32(rn_value) * u32(rm_value)
    if op == Op.MLA:
        product += u32(ra_value)
    return u32(product)
