"""Golden architectural interpreter (the reference model).

This is the "architectural emulator" tier of the paper's taxonomy
(SS I: software-level emulation without hardware details).  It defines the
ISA-visible semantics against which both hardware models are co-simulated
in the test suite, and it validates every workload.
"""

from repro.errors import SimFault, SimTimeout
from repro.isa import alu
from repro.isa.flags import Flags, cond_passed
from repro.isa.instructions import (
    COMPARE_OPS,
    DP_IMM_OPS,
    DP_REG_FORM,
    DP_REG_OPS,
    LOAD_OPS,
    MEM_SIZE,
    Op,
    UNARY_OPS,
)
from repro.isa.registers import RegisterFile
from repro.isa.syscalls import SyscallEmulator, SyscallError
from repro.memory.ram import RAM

_PC = 15

#: Flag bits each condition code consults, as CPSR pack-order masks
#: (N=bit3, Z=2, C=1, V=0); indexed by the numeric condition.  AL reads
#: nothing.  Feeds the ``flag_listener`` lifetime-trace hook.
_COND_FLAG_READS = (
    0b0100, 0b0100,  # eq, ne        -> Z
    0b0010, 0b0010,  # cs, cc        -> C
    0b1000, 0b1000,  # mi, pl        -> N
    0b0001, 0b0001,  # vs, vc        -> V
    0b0110, 0b0110,  # hi, ls        -> C, Z
    0b1001, 0b1001,  # ge, lt        -> N, V
    0b1101, 0b1101,  # gt, le        -> Z, N, V
    0b0000,          # al
)


class InterpResult:
    """Outcome of an interpreter run."""

    def __init__(self, output, exit_code, inst_count):
        self.output = output
        self.exit_code = exit_code
        self.inst_count = inst_count

    def __repr__(self):
        return (
            f"InterpResult(exit={self.exit_code},"
            f" insts={self.inst_count}, out={len(self.output)}B)"
        )


class Interpreter:
    """Executes a :class:`~repro.isa.program.Program` architecturally.

    ``decode_cache`` (default on) fetches through the program's
    memoized decode table -- one dict hit per step.  ``False`` selects
    the uncached baseline that re-decodes the encoded word on every
    fetch; both paths execute bit-identically (the decode round-trip is
    exact), the cache is purely a hot-loop optimisation (see
    benchmarks/test_decode_cache.py).
    """

    def __init__(self, program, decode_cache=True):
        self.program = program
        self.ram = RAM(program.layout.ram_size)
        program.load_into(self.ram)
        self.regs = RegisterFile()
        self.regs.write(13, program.layout.stack_top)
        self.flags = Flags()
        self.pc = program.entry
        self.syscalls = SyscallEmulator()
        self.inst_count = 0
        self.halted = False
        #: Optional hook called as ``(addr, size, value)`` after every
        #: store; the ``arch`` backend publishes these as its pinout.
        self.store_listener = None
        #: Optional hook called as ``(read_mask, write_mask)`` -- CPSR
        #: pack-order bit masks -- whenever flags are consulted or
        #: replaced; the ``arch`` backend's lifetime-trace capture.
        #: Reads are reported conservatively (a superset of the bits an
        #: instruction may actually consume), which only ever makes the
        #: fault pruner simulate more, never prune wrongly.
        self.flag_listener = None
        #: Optional hook called as ``(pc)`` at the top of every
        #: executed step (before the fetch); the ``arch`` backend's
        #: retired-PC capture for the static pruner.
        self.pc_listener = None
        if decode_cache:
            self._fetch_inst = program.decode_table().get
        else:
            self._fetch_inst = self._decode_inst

    def _decode_inst(self, addr):
        """Uncached fetch: decode the binary word on every call."""
        program = self.program
        offset = addr - program.layout.text_base
        index = offset >> 2
        if offset < 0 or offset & 0b11 or index >= len(program.words):
            return None
        if index in program.raw_words:
            # Pool slots hold data; their decoded view is the trap.
            return program.insts[index]
        from repro.isa.encoding import decode

        return decode(program.words[index], addr)

    # -- operand helpers ---------------------------------------------------

    def _read_reg(self, index, inst_addr):
        if index == _PC:
            return (inst_addr + 8) & 0xFFFFFFFF
        return self.regs.read(index)

    def _operand2(self, inst):
        """Resolve operand2 -> (value, shifter_carry)."""
        if self.flag_listener is not None:
            # Both forms thread flags.c through as the shifter carry.
            self.flag_listener(0b0010, 0)
        if inst.op in DP_IMM_OPS:
            return inst.imm & 0xFFFFFFFF, self.flags.c
        value = self._read_reg(inst.rm, inst.addr)
        if inst.shift_reg is not None:
            amount = self._read_reg(inst.shift_reg, inst.addr) & 0xFF
        else:
            amount = inst.shift_amount
        return alu.barrel_shift(value, inst.shift_kind, amount, self.flags.c)

    def _write_reg(self, index, value):
        """Write a register; a write to PC is a branch."""
        if index == _PC:
            self.pc = value & 0xFFFFFFFC
            return True
        self.regs.write(index, value)
        return False

    # -- memory helpers ----------------------------------------------------

    def _mem_read(self, addr, size):
        if addr % size:
            raise SimFault("align-fault", f"{size}-byte load", addr=addr)
        if size == 4:
            return self.ram.read32(addr)
        if size == 2:
            return self.ram.read16(addr)
        return self.ram.read8(addr)

    def _mem_write(self, addr, size, value):
        if addr % size:
            raise SimFault("align-fault", f"{size}-byte store", addr=addr)
        if size == 4:
            self.ram.write32(addr, value)
        elif size == 2:
            self.ram.write16(addr, value)
        else:
            self.ram.write8(addr, value)
        if self.store_listener is not None:
            self.store_listener(addr, size, value)

    # -- main loop ----------------------------------------------------------

    def step(self):
        """Execute one instruction.  Returns False once halted."""
        if self.halted:
            return False
        if self.pc_listener is not None:
            self.pc_listener(self.pc)
        inst = self._fetch_inst(self.pc)
        if inst is None:
            raise SimFault("mem-fault", "fetch outside text", addr=self.pc)
        self.inst_count += 1
        next_pc = inst.addr + 4
        if self.flag_listener is not None and inst.cond != 14:
            self.flag_listener(_COND_FLAG_READS[inst.cond], 0)
        if not cond_passed(inst.cond, self.flags):
            self.pc = next_pc
            return True
        branched = self._execute(inst)
        if not branched:
            self.pc = next_pc
        return not self.halted

    def _execute(self, inst):
        op = inst.op
        if op in DP_REG_OPS or op in DP_IMM_OPS:
            return self._exec_dp(inst)
        if op == Op.MOVW:
            return self._write_reg(inst.rd, inst.imm & 0xFFFF)
        if op == Op.MOVT:
            old = self._read_reg(inst.rd, inst.addr)
            return self._write_reg(
                inst.rd, (old & 0xFFFF) | ((inst.imm & 0xFFFF) << 16)
            )
        if op in (Op.MUL, Op.MLA):
            result = alu.multiply(
                op,
                self._read_reg(inst.rn, inst.addr),
                self._read_reg(inst.rm, inst.addr),
                self._read_reg(inst.ra, inst.addr),
            )
            if inst.s:
                if self.flag_listener is not None:
                    # MUL/MLA-S replaces N and Z without reading flags.
                    self.flag_listener(0, 0b1100)
                self.flags.n = bool(result & 0x80000000)
                self.flags.z = result == 0
            return self._write_reg(inst.rd, result)
        if op in MEM_SIZE:
            return self._exec_mem(inst)
        if op == Op.LDM:
            return self._exec_ldm(inst)
        if op == Op.STM:
            return self._exec_stm(inst)
        if op == Op.B:
            self.pc = (inst.addr + inst.imm) & 0xFFFFFFFC
            return True
        if op == Op.BL:
            self.regs.write(14, inst.addr + 4)
            self.pc = (inst.addr + inst.imm) & 0xFFFFFFFC
            return True
        if op == Op.BX:
            self.pc = self._read_reg(inst.rm, inst.addr) & 0xFFFFFFFC
            return True
        if op == Op.SVC:
            return self._exec_svc(inst)
        if op == Op.NOP:
            return False
        if op == Op.HLT:
            raise SimFault("halt-trap", "executed HLT/pool word",
                           addr=inst.addr)
        raise SimFault("undefined-inst", repr(op), addr=inst.addr)

    def _exec_dp(self, inst):
        op2, shifter_carry = self._operand2(inst)
        op = DP_REG_FORM.get(inst.op, inst.op)
        rn_value = (
            0 if op in UNARY_OPS else self._read_reg(inst.rn, inst.addr)
        )
        writes_flags = inst.s or op in COMPARE_OPS
        if self.flag_listener is not None:
            # ADC/SBC consume C as an operand; a flag write may inherit
            # C/V from the old flags (logical ops).  Both are reported
            # before the full NZCV replacement, conservatively.
            reads = 0b0010 if inst.reads_flags() else 0
            if writes_flags:
                reads |= 0b0011
            if reads or writes_flags:
                self.flag_listener(reads, 0b1111 if writes_flags else 0)
        result, new_flags = alu.dp_compute(
            op, rn_value, op2, self.flags, shifter_carry
        )
        if writes_flags:
            self.flags = new_flags
        if op in COMPARE_OPS:
            return False
        return self._write_reg(inst.rd, result)

    def _exec_mem(self, inst):
        size = MEM_SIZE[inst.op]
        base = self._read_reg(inst.rn, inst.addr)
        if inst.op in (Op.LDR, Op.STR, Op.LDRB, Op.STRB, Op.LDRH, Op.STRH):
            offset = inst.imm
        else:
            value = self._read_reg(inst.rm, inst.addr)
            offset, _ = alu.barrel_shift(
                value, inst.shift_kind, inst.shift_amount, self.flags.c
            )
        addr = (base + offset) & 0xFFFFFFFF if inst.pre else base
        branched = False
        if inst.op in LOAD_OPS:
            value = self._mem_read(addr, size)
            branched = self._write_reg(inst.rd, value)
        else:
            self._mem_write(addr, size, self._read_reg(inst.rd, inst.addr))
        if inst.writeback or not inst.pre:
            wb_value = (base + offset) & 0xFFFFFFFF
            if inst.rn != inst.rd or inst.op not in LOAD_OPS:
                branched = self._write_reg(inst.rn, wb_value) or branched
        return branched

    def _exec_ldm(self, inst):
        base = self._read_reg(inst.rn, inst.addr)
        addr = base
        branched = False
        count = 0
        for i in range(16):
            if inst.reglist & (1 << i):
                value = self._mem_read(addr, 4)
                branched = self._write_reg(i, value) or branched
                addr += 4
                count += 1
        if inst.writeback and not (inst.reglist & (1 << inst.rn)):
            self.regs.write(inst.rn, base + 4 * count)
        return branched

    def _exec_stm(self, inst):
        base = self._read_reg(inst.rn, inst.addr)
        count = bin(inst.reglist).count("1")
        addr = (base - 4 * count) & 0xFFFFFFFF
        start = addr
        for i in range(16):
            if inst.reglist & (1 << i):
                self._mem_write(addr, 4, self._read_reg(i, inst.addr))
                addr += 4
        if inst.writeback:
            self.regs.write(inst.rn, start)
        return False

    def _exec_svc(self, inst):
        try:
            result = self.syscalls.handle(
                inst.imm,
                lambda i: self.regs.read(i),
                lambda a: self.ram.read8(a),
            )
        except SyscallError as exc:
            raise SimFault("syscall-error", str(exc), addr=inst.addr) from exc
        self.regs.write(0, result)
        if self.syscalls.exited:
            self.halted = True
        return False

    def run(self, max_insts=5_000_000):
        """Run to exit.  Raises :class:`SimTimeout` past ``max_insts``."""
        while not self.halted:
            if self.inst_count >= max_insts:
                raise SimTimeout(max_insts, "instructions")
            self.step()
        return InterpResult(
            bytes(self.syscalls.output),
            self.syscalls.exit_code,
            self.inst_count,
        )
