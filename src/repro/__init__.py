"""repro: RT-level vs microarchitecture-level reliability assessment.

A full-system reproduction of Chatzidimitriou et al., "RT Level vs.
Microarchitecture-Level Reliability Assessment: Case Study on ARM
Cortex-A9 CPU" (DSN-W 2017): three CPU models of the same A9-class core
at different abstraction levels, a statistical fault-injection framework
that drives them with an equivalent setup, and the analysis layer that
regenerates every table and figure of the paper's evaluation.

The supported experiment API is the scenario layer (see README.md):

>>> from repro import ScenarioSpec, ScenarioRunner
>>> spec = ScenarioSpec.from_mapping({
...     "targets": {"levels": ["uarch"], "workloads": ["sha"]},
...     "faults": {"samples": 40},
... })
>>> results = ScenarioRunner(spec).run()
>>> 0.0 <= results.where(level="uarch").one().unsafeness <= 1.0
True

The per-level front-ends remain available for one-off campaigns:

>>> from repro.injection import GeFIN
>>> result = GeFIN("sha").campaign("regfile", mode="pinout", samples=40)
>>> 0.0 <= result.unsafeness <= 1.0
True
"""

from repro.core import CrossLevelStudy, StudyConfig
from repro.injection import ArchEmu, GeFIN, SafetyVerifier
from repro.scenario import (
    ResultSet,
    ScenarioError,
    ScenarioRunner,
    ScenarioSpec,
    load_preset,
    load_scenario,
)

#: Single source of the version: setup.py and ``repro-study --version``
#: both read it from here.
__version__ = "0.2.0"

__all__ = ["ArchEmu", "CrossLevelStudy", "GeFIN", "ResultSet",
           "SafetyVerifier", "ScenarioError", "ScenarioRunner",
           "ScenarioSpec", "StudyConfig", "load_preset", "load_scenario",
           "__version__"]
