"""repro: RT-level vs microarchitecture-level reliability assessment.

A full-system reproduction of Chatzidimitriou et al., "RT Level vs.
Microarchitecture-Level Reliability Assessment: Case Study on ARM
Cortex-A9 CPU" (DSN-W 2017): two CPU models of the same A9-class core at
different abstraction levels, a statistical fault-injection framework
that drives both with an equivalent setup, and the analysis layer that
regenerates every table and figure of the paper's evaluation.

Quick tour (see README.md for the narrative):

>>> from repro.injection import GeFIN, SafetyVerifier
>>> gefin = GeFIN("sha")
>>> result = gefin.campaign("regfile", mode="pinout", samples=40)
>>> 0.0 <= result.unsafeness <= 1.0
True
"""

from repro.core import CrossLevelStudy, StudyConfig
from repro.injection import ArchEmu, GeFIN, SafetyVerifier

__version__ = "0.1.0"

__all__ = ["ArchEmu", "CrossLevelStudy", "GeFIN", "SafetyVerifier",
           "StudyConfig", "__version__"]
