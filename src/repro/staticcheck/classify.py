"""Capture-free fault classification from static dataflow summaries.

The dynamic pruner (:mod:`repro.prune`) decides a fault's fate from the
golden run's full per-cell access trace.  The static pruner reaches a
subset of the same verdicts from the program text plus the *retired-PC
stream* alone -- the cheapest possible golden instrumentation:

* the fault names a cell (a register, or one NZCV flag) and an
  injection cycle;
* the retired-PC stream anchors the cycle to the first instruction that
  retires at-or-after the injection instant (the same stamp convention
  the dynamic pruner uses, ``TRACE_EVENTS_AT_STOP_EXECUTED``);
* if every path from that PC writes the cell before reading it
  (``must_in``), the corruption is overwritten before anything consumes
  it -- Masked, the same overwrite-erases-corruption argument DESIGN.md
  makes for the dynamic pruner;
* if no path from that PC ever reads the cell (``live_in`` clear), the
  flip is behaviorally invisible -- Masked, except at the ``arch``
  observation point, which inspects final state and would report the
  surviving flip (exactly the dynamic pruner's silent-fault gate);
* structurally unaddressable register-file entries (the RT macro's
  banked/spare flops) are Masked by construction, no anchor needed.

Unlike the dynamic trace, static claims quantify over **all** paths
from the anchor, so they need no event horizon: the retired-PC sequence
is architectural and drain-invariant, and whatever the pipeline does
past a checkpoint boundary is still one of the analyzed paths.

Tier coverage: the arch and rtl tiers inject the *architectural*
register file and flags, which the analysis models exactly
(:class:`~repro.staticcheck.liveness.ArchDefUse`,
:class:`~repro.staticcheck.liveness.RTLDefUse`).  The uarch tier
injects the renamed physical register file, whose cells have no static
identity across the run -- no model, every fault falls through to the
dynamic pruner or simulation.
"""

from __future__ import annotations

from typing import Protocol

from repro.injection.classify import FaultClass
from repro.isa.program import Program
from repro.prune.trace import RetiredPCTrace
from repro.staticcheck.cfg import CFG
from repro.staticcheck.liveness import (
    ArchDefUse,
    Dataflow,
    DefUseModel,
    RTLDefUse,
    flag_bit,
    reg_bit,
)

#: Detail strings of records classified by the static engine.
STATIC_OVERWRITE_DETAIL = "pruned: statically overwritten before next read"
STATIC_SILENT_DETAIL = "pruned: statically never read again"
STATIC_UNREACHABLE_DETAIL = "pruned: statically unreachable cell"

#: Register-file entries the RT-level pipeline can address at all
#: (mirrors the ``reachable_cells`` the rtl simulator registers).
_RTL_REACHABLE_ENTRIES = 16

class FaultLike(Protocol):
    """The slice of :class:`repro.injection.fault.FaultSpec` the
    classifier consumes."""

    @property
    def structure(self) -> str: ...

    @property
    def bit(self) -> int: ...

    @property
    def cycle(self) -> int: ...


#: Tiers with a def/use model; other tiers get no static verdicts.
_MODELS: dict[str, type[DefUseModel]] = {
    "arch": ArchDefUse,
    "rtl": RTLDefUse,
}


def model_for_level(level: str) -> DefUseModel | None:
    """The tier's def/use model, or ``None`` when the tier's injection
    targets have no static identity (the renamed uarch tier)."""
    cls = _MODELS.get(level)
    return cls() if cls is not None else None


def static_prune_available(level: str) -> bool:
    """Whether ``prune_mode="static"`` can classify anything at ``level``."""
    return level in _MODELS


class StaticAnalysis:
    """CFG + both dataflow solutions for one program/tier pair."""

    def __init__(self, program: Program, model: DefUseModel) -> None:
        self.cfg = CFG(program)
        self.flow = Dataflow(self.cfg, model)

    def must_dead_at(self, pc: int, bit: int) -> bool:
        """Every path from ``pc`` writes mask bit ``bit`` before reading."""
        mask = self.flow.must_in.get(pc)
        return mask is not None and bool(mask & bit)

    def live_at(self, pc: int, bit: int) -> bool:
        """Some path from ``pc`` may read mask bit ``bit`` first.
        Unknown PCs count as live (conservative)."""
        mask = self.flow.live_in.get(pc)
        return mask is None or bool(mask & bit)


class StaticPruner:
    """Classifies faults from the retired-PC stream, without a trace.

    The drop-in static counterpart of
    :class:`~repro.prune.pruner.FaultPruner`: built once per campaign,
    consulted per sampled fault, returns ``(FaultClass, detail)`` when
    the verdict is provable from the program text or ``None`` when the
    fault must be simulated.
    """

    def __init__(
        self,
        program: Program,
        level: str,
        observation: str,
        pc_trace: RetiredPCTrace | None,
        events_at_stop_executed: bool,
    ) -> None:
        model = model_for_level(level)
        self.level = level
        self.observation = observation
        self.pc_trace = pc_trace
        self.events_at_stop_executed = bool(events_at_stop_executed)
        self.analysis: StaticAnalysis | None = (
            StaticAnalysis(program, model) if model is not None else None
        )

    # ------------------------------------------------------------------

    def _resolve(self, structure: str, fault_bit: int) -> tuple[int, int] | None:
        """``(entry, mask_bit)`` of the faulted cell, ``None`` when the
        structure is outside the static model (caches, etc.)."""
        if structure == "regfile":
            entry = fault_bit // 32
            return entry, reg_bit(entry) if entry < 16 else 0
        if structure == "cpsr":
            return fault_bit, flag_bit(fault_bit)
        return None

    def anchor(self, fault_cycle: int) -> int | None:
        """PC of the first instruction retiring at-or-after the
        injection instant, ``None`` when the run has already ended (or
        no stream was captured)."""
        if self.pc_trace is None:
            return None
        threshold = fault_cycle + (1 if self.events_at_stop_executed else 0)
        return self.pc_trace.anchor(threshold)

    def classify(self, fault: FaultLike) -> tuple[FaultClass, str] | None:
        """``(FaultClass, detail)`` when provable from the program text,
        else ``None`` (fall through to the dynamic pruner/simulation)."""
        if self.analysis is None:
            return None
        structure = fault.structure
        resolved = self._resolve(structure, fault.bit)
        if resolved is None:
            return None
        entry, mask_bit = resolved
        if structure == "regfile" and entry >= _RTL_REACHABLE_ENTRIES:
            # Banked/spare macro entries: no instruction field can name
            # them, and the arch digest reads committed state only --
            # masked under every observation, no anchor needed.
            return FaultClass.MASKED, STATIC_UNREACHABLE_DETAIL
        if not mask_bit:
            return None
        pc = self.anchor(fault.cycle)
        if pc is None:
            return None
        if self.analysis.must_dead_at(pc, mask_bit):
            return FaultClass.MASKED, STATIC_OVERWRITE_DETAIL
        if not self.analysis.live_at(pc, mask_bit):
            # Behaviorally invisible, but the arch (HVF) observation
            # point would report the surviving flip -- simulate there.
            if self.observation == "arch":
                return None
            return FaultClass.MASKED, STATIC_SILENT_DETAIL
        return None

    def __repr__(self) -> str:
        return (
            f"StaticPruner(level={self.level!r}, observation="
            f"{self.observation!r}, modeled={self.analysis is not None})"
        )
