"""Static hygiene lint over registry workloads.

Three checks, all read straight off the CFG + dataflow machinery:

* **uninitialized register read** -- a register (other than the stack
  pointer, which the simulators initialize) is may-live at the program
  entry: some path reads it before anything writes it.  Flags live at
  entry are reported the same way.
* **unreachable block** -- a basic-block leader the entry cannot reach
  through direct CFG edges (indirect-jump-only targets need a waiver;
  see :meth:`repro.staticcheck.cfg.CFG.reachable_from_entry`).
* **dead store** -- a reachable instruction writes a register that no
  path ever reads afterwards.  r13--r15 are exempt (stack discipline,
  call linkage, control flow), as are flag updates (a trailing compare
  is idiomatic).

The lint model refines the pruner's conservative ``SVC`` operand set
(``r0``--``r2``) down to what each syscall actually consumes, so a value
computed only to be "passed" in an unread register is reported rather
than hidden.  Intentional findings are pinned in :data:`WAIVERS` --
the CI gate (``repro-study staticcheck --all``) fails on anything
unlisted, so new workload code starts from a clean, meaningful baseline.
"""

from __future__ import annotations

from repro.isa.instructions import (
    Cond,
    DP_IMM_OPS,
    DP_REG_OPS,
    Inst,
    Op,
)
from repro.isa.program import Program
from repro.isa.syscalls import SYS_WRITE
from repro.staticcheck.cfg import CFG
from repro.staticcheck.liveness import (
    ALL_FLAGS,
    ArchDefUse,
    COND_FLAG_READS,
    Dataflow,
    FLAG_SHIFT,
    _dst_mask,
    _src_mask,
    reg_bit,
)

#: Registers exempt from dead-store reporting.
_EXEMPT_STORES = reg_bit(13) | reg_bit(14) | reg_bit(15)

#: What a function return hands back to its caller: the return value
#: (r0) and the restored callee-saved registers (r4-r11).  Treated as
#: *used* by ``BX`` in the lint model, so return values stay live even
#: though the call--return approximation makes the return edge
#: terminal.
_RETURN_LIVE = reg_bit(0) | sum(reg_bit(i) for i in range(4, 12))

#: Flag names in CPSR trace-cell order (mask bits 16..19).
_FLAG_NAMES = ("V", "C", "Z", "N")

#: Intentional findings, pinned: ``(workload, kind, subject)`` exactly
#: as :attr:`Finding.key` renders them.  An entry here keeps the gate
#: green without silencing the check for new code.
#:
#: The fft/qsort/caes bodies open with compiled-code prologues
#: (``push {r4-r12, lr}``) that *save* callee-saved registers nothing
#: ever initialized -- at the bare-metal entry point those registers
#: hold reset garbage, and the store is the calling convention doing
#: its job, not a bug.  Repairing them would change every workload's
#: instruction stream and so every pinned campaign classification;
#: they are waived instead.
WAIVERS: frozenset[tuple[str, str, str]] = frozenset(
    (workload, "uninit-read", f"r{reg}")
    for workload, high in (("fft", 12), ("qsort", 11), ("caes", 12))
    for reg in range(4, high + 1)
)


class LintDefUse(ArchDefUse):
    """*Semantic* def/use -- what the program means, not what the
    interpreter's listeners record.

    Three refinements over the pruner model, each unsound for fault
    verdicts but exactly right for hygiene questions:

    * ``SVC`` reads only what its handler consumes (``r0``, plus
      ``r1`` for ``SYS_WRITE``) instead of the conservative r0--r2;
    * the phantom carry/overflow reads every data-processing op fires
      through the interpreter's operand2/flag-computation listeners
      are dropped -- only condition guards and ADC/SBC carry-in are
      real flag consumers;
    * a flag-setting data-processing op semantically *defines* all
      four NZCV flags (the pruner may only kill N and Z, whose dynamic
      writes are not preceded by same-stamp reads).
    """

    def use(self, inst: Inst) -> int:
        mask = _src_mask(inst) & ~reg_bit(15)
        if inst.op == Op.SVC:
            mask &= ~(reg_bit(1) | reg_bit(2))
            if inst.imm == SYS_WRITE:
                mask |= reg_bit(1)
        if inst.cond != Cond.AL:
            mask |= int(COND_FLAG_READS[inst.cond]) << FLAG_SHIFT
        if inst.op in (Op.ADC, Op.SBC, Op.ADCI, Op.SBCI):
            mask |= 0b0010 << FLAG_SHIFT
        if inst.op == Op.BX:
            mask |= _RETURN_LIVE
        return mask

    def kill(self, inst: Inst) -> int:
        if inst.cond != Cond.AL:
            return 0
        mask = _dst_mask(inst) & ~reg_bit(15)
        if inst.writes_flags():
            if inst.op in DP_REG_OPS or inst.op in DP_IMM_OPS:
                mask |= 0b1111 << FLAG_SHIFT
            elif inst.op in (Op.MUL, Op.MLA):
                mask |= 0b1100 << FLAG_SHIFT
        return mask


class Finding:
    """One lint finding with a stable waiver key."""

    __slots__ = ("workload", "kind", "addr", "subject", "message")

    def __init__(self, workload: str, kind: str, addr: int, subject: str,
                 message: str) -> None:
        self.workload = workload
        self.kind = kind
        self.addr = addr
        self.subject = subject
        self.message = message

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.workload, self.kind, self.subject)

    @property
    def waived(self) -> bool:
        return self.key in WAIVERS

    def __repr__(self) -> str:
        return f"<Finding {self.workload}:{self.kind}:{self.subject}>"


def _reg_names(mask: int) -> list[str]:
    names = [f"r{i}" for i in range(16) if mask & (1 << i)]
    names += [_FLAG_NAMES[i] for i in range(4)
              if mask & (1 << (FLAG_SHIFT + i))]
    return names


def lint_program(program: Program) -> list[Finding]:
    """All findings for one assembled program, waived or not."""
    workload = program.name
    cfg = CFG(program, bx_returns=True)
    flow = Dataflow(cfg, LintDefUse())
    reachable = cfg.reachable_from_entry()
    findings: list[Finding] = []

    # Uninitialized reads: live at entry minus the simulator-set sp.
    uninit = flow.live_in.get(cfg.entry, 0) & ~reg_bit(13) & ~reg_bit(15)
    for name in _reg_names(uninit):
        findings.append(Finding(
            workload, "uninit-read", cfg.entry, name,
            f"{name} may be read before it is written (live at entry)",
        ))

    # Unreachable basic blocks (pool slots are data, not blocks).
    for leader in cfg.block_leaders():
        if leader not in reachable and leader not in cfg.pool_addrs:
            inst = cfg.insts[leader]
            findings.append(Finding(
                workload, "unreachable", leader, f"{leader:#06x}",
                f"block at {leader:#06x} ({inst.text or inst.op.name})"
                f" is unreachable from the entry point",
            ))

    # Dead stores: certain writes nothing ever reads.
    for addr in cfg.code_addrs:
        if addr not in reachable:
            continue
        inst = cfg.insts[addr]
        if inst.cond != Cond.AL or inst.op == Op.SVC:
            # Conditional writes are not certain; the SVC r0 write is
            # the syscall-return convention, not a program store.
            continue
        if inst.op == Op.LDM and inst.writeback and inst.rn == 13:
            # An epilogue pop restores registers for the *caller's*
            # benefit; at an exit path nothing reads them by design.
            continue
        dead = (flow.kill[addr] & ~flow.live_out(addr)
                & ~_EXEMPT_STORES & ~ALL_FLAGS)
        for name in _reg_names(dead):
            findings.append(Finding(
                workload, "dead-store", addr, f"{addr:#06x}:{name}",
                f"{inst.text or inst.op.name} at {addr:#06x} writes"
                f" {name}, which is never read afterwards",
            ))
    return findings


def lint_workload(name: str) -> list[Finding]:
    """Findings for one registry workload (built on demand)."""
    from repro.workloads import registry

    return lint_program(registry.build(name))
