"""Control-flow graphs over assembled :class:`~repro.isa.program.Program`s.

The graph's nodes are instruction slots (byte addresses in the text
segment, one node per 4-byte word); edges follow the interpreter's
control transfers exactly:

* straight-line code falls through to ``addr + 4``;
* ``B`` goes to its resolved target -- plus the fall-through when
  conditional (both legs are real paths);
* ``BL`` gets *both* the call target and the fall-through edge.  This is
  the classical call--return approximation: the return lands at the
  fall-through via ``BX lr``, whose target the CFG cannot resolve, so
  the direct edge stands in for every matched call/return pair.  Extra
  paths only ever weaken dataflow claims, never strengthen them;
* ``BX`` and any PC-writing instruction (data-processing ``rd=15``,
  loads into ``r15``, ``LDM`` with the PC in its register list) get the
  :data:`ANY_NODE` pseudo-successor: control may continue at *any*
  instruction.  Conditional forms keep the fall-through edge too;
* ``SVC #SYS_EXIT`` terminates the run (conditional forms keep the
  fall-through); other ``SVC``\\ s return to the next instruction;
* ``HLT`` and literal-pool slots are terminal.  Pool slots hold data;
  their decoded view is the assembler's HLT trap, so falling into one
  stops the machine either way.

Every conservative choice errs toward *more* edges, which is the sound
direction for both analyses in :mod:`repro.staticcheck.liveness`:
may-live grows (fewer "dead" claims), must-write shrinks (fewer
"overwritten" claims).
"""

from __future__ import annotations

from repro.isa.instructions import Cond, Inst, LOAD_OPS, Op
from repro.isa.program import Program
from repro.isa.syscalls import SYS_EXIT

#: Pseudo-successor for indirect control transfers (``BX``, PC writes):
#: "any instruction in the text segment may execute next".
ANY_NODE = -1


def _is_pc_writer(inst: Inst) -> bool:
    """Whether ``inst`` writes the PC through a register destination."""
    if inst.op in LOAD_OPS and inst.rd == 15:
        return True
    if inst.op == Op.LDM and inst.reglist & (1 << 15):
        return True
    # Data processing with rd=15 (BX/B/BL handled separately).
    return 15 in inst.dst_regs() and inst.op not in (Op.BL,)


class CFG:
    """Per-instruction control-flow graph of one program.

    Attributes:
        program: the source :class:`~repro.isa.program.Program`.
        insts: address -> decoded :class:`~repro.isa.instructions.Inst`
            (the program's memoized decode table).
        pool_addrs: addresses of literal-pool (data) slots.
        code_addrs: sorted addresses of real instruction slots.
        succs: address -> successor tuple; entries are addresses or
            :data:`ANY_NODE`.
        entry: the program's start address.

    ``bx_returns=True`` treats ``BX`` as a function return with no
    successors instead of an indirect jump to :data:`ANY_NODE` -- the
    closing half of the ``BL`` call--return approximation.  That is the
    right graph for the *linter* (otherwise any function body's
    liveness leaks back to the entry point through the ANY join) but
    unsound for fault verdicts, where ``BX`` must stay fully
    conservative; the pruner keeps the default.
    """

    def __init__(self, program: Program, bx_returns: bool = False) -> None:
        self.program = program
        self.bx_returns = bx_returns
        self.insts: dict[int, Inst] = program.decode_table()
        base = program.layout.text_base
        self.pool_addrs: frozenset[int] = frozenset(
            base + 4 * index for index in program.raw_words
        )
        self.code_addrs: tuple[int, ...] = tuple(
            addr for addr in sorted(self.insts)
            if addr not in self.pool_addrs
        )
        self.entry: int = program.entry
        self._end: int = base + 4 * len(program.insts)
        self.succs: dict[int, tuple[int, ...]] = {
            addr: self._successors(addr) for addr in sorted(self.insts)
        }

    # ------------------------------------------------------------------

    def _in_text(self, addr: int) -> bool:
        return self.program.layout.text_base <= addr < self._end

    def _successors(self, addr: int) -> tuple[int, ...]:
        if addr in self.pool_addrs:
            return ()
        inst = self.insts[addr]
        op = inst.op
        nxt = addr + 4
        fall: tuple[int, ...] = (nxt,) if self._in_text(nxt) else ()
        if op == Op.HLT:
            return ()
        if op == Op.SVC:
            if inst.imm == SYS_EXIT:
                return () if inst.cond == Cond.AL else fall
            return fall
        if op in (Op.B, Op.BL):
            target = (inst.addr + inst.imm) & 0xFFFFFFFC
            targets: tuple[int, ...] = (
                (target,) if self._in_text(target) else ()
            )
            if op == Op.BL or inst.cond != Cond.AL:
                # BL: call--return approximation; cond B: not-taken leg.
                return targets + fall
            return targets
        if op == Op.BX and self.bx_returns:
            return () if inst.cond == Cond.AL else fall
        if op == Op.BX or _is_pc_writer(inst):
            if inst.cond == Cond.AL:
                return (ANY_NODE,)
            return (ANY_NODE,) + fall
        return fall

    # ------------------------------------------------------------------

    def block_leaders(self) -> tuple[int, ...]:
        """Basic-block leader addresses (entry, branch targets, and the
        instruction after every multi-successor or terminal node)."""
        leaders = {self.entry}
        for addr in self.code_addrs:
            succ = self.succs[addr]
            direct = [s for s in succ if s != ANY_NODE]
            if len(succ) != 1 or succ[0] != addr + 4:
                leaders.update(s for s in direct if s != addr + 4)
                if self._in_text(addr + 4):
                    leaders.add(addr + 4)
        return tuple(sorted(a for a in leaders if self._in_text(a)))

    def reachable_from_entry(self) -> frozenset[int]:
        """Addresses reachable from the entry point via *direct* edges.

        :data:`ANY_NODE` edges are not expanded here: expanding them
        would mark every instruction reachable and make the query
        vacuous.  ``BX lr`` return sites stay reachable through the
        ``BL`` fall-through edge, so real workload code is covered; a
        block only ever entered through a computed jump shows up as
        unreachable and needs a lint waiver.
        """
        seen: set[int] = set()
        stack = [self.entry]
        while stack:
            addr = stack.pop()
            if addr in seen or not self._in_text(addr):
                continue
            seen.add(addr)
            for succ in self.succs.get(addr, ()):
                if succ != ANY_NODE and succ not in seen:
                    stack.append(succ)
        return frozenset(seen)

    def __repr__(self) -> str:
        return (
            f"CFG({self.program.name!r}, {len(self.code_addrs)} insts,"
            f" {len(self.pool_addrs)} pool slots)"
        )
