"""Backward register/flag dataflow over a :class:`~repro.staticcheck.cfg.CFG`.

Two analyses run over a 20-bit mask domain -- bits 0..15 are registers
r0..r15, bits 16..19 are the NZCV flags in CPSR trace-cell order
(bit 16 = V, 17 = C, 18 = Z, 19 = N, matching
``repro.isa.interp._COND_FLAG_READS`` and the per-bit ``cpsr`` cells the
dynamic trace records):

* **may-live** (least fixpoint, masks grow from empty):
  ``live_in = use | (live_out & ~kill)``, ``live_out = OR of successor
  live_in``.  A bit *clear* in ``live_in[pc]`` means no path from
  ``pc`` ever reads the cell again before (possibly) writing it.
* **must-write-before-read** (greatest fixpoint, masks shrink from
  full): ``must_in = ~use & (kill | must_out)``, ``must_out = AND of
  successor must_in``, terminal ``must_out = 0``.  A bit *set* in
  ``must_in[pc]`` means every path from ``pc`` writes the cell before
  reading it.  The greatest-fixpoint seed is sound for the pruner's
  use: verdicts are only ever consulted at PCs on the golden run's
  retired path, which terminates, and along a terminating path the
  claim follows by induction from the path's end.

Def/use sets come from a per-tier :class:`DefUseModel` built on the same
:meth:`~repro.isa.instructions.Inst.src_regs` /
:meth:`~repro.isa.instructions.Inst.dst_regs` metadata the simulators
(and ``repro.batch.valu``) dispatch on, so the static view and the
executed view stay in lockstep.  Model soundness contract, for **both**
analyses: ``use`` must cover every access the machine *may* perform at
a dynamic instance of the instruction (including accesses the dynamic
trace does not record, e.g. wrong-path register reads at the RT level),
and ``kill`` may contain only writes that *certainly* happen and land
in the trace as plain writes (hence conditional instructions kill
nothing, and flags whose dynamic write is preceded by a same-stamp read
are never killed).
"""

from __future__ import annotations

from repro.isa.instructions import (
    Cond,
    DP_IMM_OPS,
    DP_REG_OPS,
    Inst,
    LOAD_OPS,
    Op,
)
from repro.isa.interp import _COND_FLAG_READS as COND_FLAG_READS
from repro.isa.syscalls import SYS_EXIT
from repro.staticcheck.cfg import ANY_NODE, CFG

#: First mask bit of the flag block (bit 16 + cpsr trace-cell index).
FLAG_SHIFT = 16
#: All four NZCV flag bits in mask position.
ALL_FLAGS = 0b1111 << FLAG_SHIFT
#: All sixteen register bits.
ALL_REGS = (1 << 16) - 1
#: The full analysis domain.
FULL_MASK = ALL_REGS | ALL_FLAGS

#: Register-offset memory ops: their address path runs the barrel
#: shifter, which may consult the carry flag (RRX) -- a read the arch
#: interpreter performs without firing its flag listener.
_MEM_REG_OFFSET_OPS = frozenset(
    {Op.LDRR, Op.STRR, Op.LDRBR, Op.STRBR, Op.LDRHR, Op.STRHR}
)


def reg_bit(reg: int) -> int:
    """Mask bit of architectural register ``reg``."""
    return 1 << reg


def flag_bit(cell: int) -> int:
    """Mask bit of CPSR trace cell ``cell`` (0=V, 1=C, 2=Z, 3=N)."""
    return 1 << (FLAG_SHIFT + cell)


def _src_mask(inst: Inst) -> int:
    mask = 0
    for reg in inst.src_regs():
        mask |= 1 << reg
    return mask


def _dst_mask(inst: Inst) -> int:
    mask = 0
    for reg in inst.dst_regs():
        mask |= 1 << reg
    return mask


class DefUseModel:
    """Per-tier def/use extraction (see the module docstring contract)."""

    def use(self, inst: Inst) -> int:
        raise NotImplementedError

    def kill(self, inst: Inst) -> int:
        raise NotImplementedError


class ArchDefUse(DefUseModel):
    """The architectural interpreter's access behavior.

    Mirrors ``repro.isa.interp.Interpreter`` event for event: the
    conditional-guard flag read fires before the condition is
    evaluated; every data-processing operand2 evaluation consults the
    carry flag; a flag-*writing* data-processing op reads C and V while
    computing the new flags, so only N and Z are certain
    read-free overwrites (``MULS``/``MLAS`` write exactly N and Z).
    Conditional instructions kill nothing -- the guard may fail.
    """

    def use(self, inst: Inst) -> int:
        mask = _src_mask(inst)
        if inst.cond != Cond.AL:
            mask |= int(COND_FLAG_READS[inst.cond]) << FLAG_SHIFT
        op = inst.op
        if op in DP_REG_OPS or op in DP_IMM_OPS:
            carry_volatile = 0b0010
            if inst.writes_flags():
                carry_volatile |= 0b0011
            mask |= carry_volatile << FLAG_SHIFT
        elif op in _MEM_REG_OFFSET_OPS:
            mask |= 0b0010 << FLAG_SHIFT
        return mask & ~reg_bit(15)

    def kill(self, inst: Inst) -> int:
        if inst.cond != Cond.AL:
            return 0
        mask = _dst_mask(inst)
        op = inst.op
        if inst.writes_flags() and (
            op in DP_REG_OPS or op in DP_IMM_OPS or op in (Op.MUL, Op.MLA)
        ):
            # N and Z only: the dynamic trace records the C/V reads of
            # the flag computation at the same stamp as the writes, and
            # reads sort first -- C/V are consumed, not killed.
            mask |= 0b1100 << FLAG_SHIFT
        return mask & ~reg_bit(15)


class RTLDefUse(DefUseModel):
    """The in-order RT-level pipeline's access behavior.

    Beyond the architectural reads, the pipeline touches the register
    file in ways the retired instruction stream does not show:

    * condition-failed uops still read their destinations at register
      read and write the old values back at writeback, so conditional
      instructions *use* their destinations;
    * every in-flight uop reads the NZCV flops at EX1 -- including
      wrong-path uops -- so flags are permanently live and never
      killed (no static flag verdicts at this tier);
    * the only sources of wrong-path register-file reads are the
      issue window behind an EX2 deep redirect (a load into the PC or
      an ``LDM`` including it) and the stragglers issued while an
      exit-``SVC`` drains; those instructions conservatively use every
      register, which dissolves any dead claim spanning them.  (Reads
      behind EX1-resolved branches never happen: branches issue alone
      and the mispredict flush blocks the same tick's issue stage.)

    r15 is neither used nor killed: the pipeline serves PC reads from
    the fetch address and strips PC destinations from writeback, so
    register-file cell 15 is never accessed and stays statically dead.
    """

    def use(self, inst: Inst) -> int:
        mask = _src_mask(inst) | ALL_FLAGS
        if inst.cond != Cond.AL:
            mask |= _dst_mask(inst)
        op = inst.op
        deep_redirect = (
            (op in LOAD_OPS and inst.rd == 15)
            or (op == Op.LDM and bool(inst.reglist & (1 << 15)))
        )
        if deep_redirect or (op == Op.SVC and inst.imm == SYS_EXIT):
            mask |= ALL_REGS
        return mask & ~reg_bit(15)

    def kill(self, inst: Inst) -> int:
        if inst.cond != Cond.AL:
            return 0
        return _dst_mask(inst) & ~reg_bit(15)


class Dataflow:
    """Fixpoint solutions of both analyses over one CFG + model."""

    def __init__(self, cfg: CFG, model: DefUseModel) -> None:
        self.cfg = cfg
        self.model = model
        self.use: dict[int, int] = {}
        self.kill: dict[int, int] = {}
        for addr in cfg.code_addrs:
            inst = cfg.insts[addr]
            self.use[addr] = model.use(inst)
            self.kill[addr] = model.kill(inst)
        for addr in cfg.pool_addrs:
            self.use[addr] = 0
            self.kill[addr] = 0
        self.live_in: dict[int, int] = {}
        self.must_in: dict[int, int] = {}
        self._solve()

    def _solve(self) -> None:
        cfg = self.cfg
        addrs = sorted(cfg.succs)
        # Backward flow: sweeping in descending address order reaches a
        # fixpoint in few passes on mostly-forward code.
        order = list(reversed(addrs))
        code = cfg.code_addrs
        live = {addr: 0 for addr in addrs}
        must = {addr: FULL_MASK for addr in addrs}
        use, kill = self.use, self.kill
        changed = True
        while changed:
            changed = False
            # live_in / must_in of the ANY pseudo-node: join over every
            # instruction an indirect transfer could land on.
            any_live = 0
            any_must = FULL_MASK
            for addr in code:
                any_live |= live[addr]
                any_must &= must[addr]
            for addr in order:
                succs = cfg.succs[addr]
                if succs:
                    live_out = 0
                    must_out = FULL_MASK
                    for succ in succs:
                        if succ == ANY_NODE:
                            live_out |= any_live
                            must_out &= any_must
                        else:
                            live_out |= live[succ]
                            must_out &= must[succ]
                else:
                    live_out = 0
                    must_out = 0
                new_live = use[addr] | (live_out & ~kill[addr])
                new_must = ~use[addr] & (kill[addr] | must_out) & FULL_MASK
                if new_live != live[addr] or new_must != must[addr]:
                    live[addr] = new_live
                    must[addr] = new_must
                    changed = True
        self.live_in = live
        self.must_in = must

    # ------------------------------------------------------------------

    def live_out(self, addr: int) -> int:
        """May-live mask just after ``addr`` (successor join)."""
        live_out = 0
        any_live = 0
        for succ in self.cfg.succs[addr]:
            if succ == ANY_NODE:
                if not any_live:
                    for code_addr in self.cfg.code_addrs:
                        any_live |= self.live_in[code_addr]
                live_out |= any_live
            else:
                live_out |= self.live_in[succ]
        return live_out

    def __repr__(self) -> str:
        return f"Dataflow({self.cfg!r}, {type(self.model).__name__})"
