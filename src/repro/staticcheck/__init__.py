"""Static dataflow analysis over assembled workloads.

The package reasons about programs *without executing them*: a
control-flow graph (:mod:`repro.staticcheck.cfg`), backward may-live /
must-write-before-read dataflow over registers and NZCV flags
(:mod:`repro.staticcheck.liveness`), and three consumers:

* :class:`~repro.staticcheck.classify.StaticPruner` -- capture-free
  fault classification from the retired-PC stream, the engine behind
  ``prune_mode="static"``;
* the prune-soundness sanitizer (:data:`REPRO_STATIC_XCHECK`): every
  campaign that carries both the static summaries and the dynamic
  access trace cross-checks static-dead against dynamic-dead -- a
  violation is a framework bug in one engine or the other and raises
  :class:`StaticCrossCheckError` immediately;
* the workload linter (:mod:`repro.staticcheck.lint`,
  ``repro-study staticcheck``).
"""

from __future__ import annotations

import os

from repro.staticcheck.cfg import ANY_NODE, CFG
from repro.staticcheck.classify import (
    STATIC_OVERWRITE_DETAIL,
    STATIC_SILENT_DETAIL,
    STATIC_UNREACHABLE_DETAIL,
    StaticAnalysis,
    StaticPruner,
    model_for_level,
    static_prune_available,
)
from repro.staticcheck.lint import Finding, lint_program, lint_workload
from repro.staticcheck.liveness import ArchDefUse, Dataflow, RTLDefUse

#: Environment toggle of the prune-soundness sanitizer.
REPRO_STATIC_XCHECK = "REPRO_STATIC_XCHECK"


class StaticCrossCheckError(AssertionError):
    """A static verdict contradicted the dynamic golden trace.

    Static-dead must be a subset of dynamic-dead wherever both engines
    can rule; raised by the campaign's sanitizer pass
    (``REPRO_STATIC_XCHECK=1``), never in normal operation.
    """


def static_xcheck_enabled() -> bool:
    """Whether the prune-soundness sanitizer is switched on."""
    return os.environ.get(REPRO_STATIC_XCHECK, "") not in ("", "0")


__all__ = [
    "ANY_NODE",
    "CFG",
    "ArchDefUse",
    "Dataflow",
    "Finding",
    "REPRO_STATIC_XCHECK",
    "RTLDefUse",
    "STATIC_OVERWRITE_DETAIL",
    "STATIC_SILENT_DETAIL",
    "STATIC_UNREACHABLE_DETAIL",
    "StaticAnalysis",
    "StaticCrossCheckError",
    "StaticPruner",
    "lint_program",
    "lint_workload",
    "model_for_level",
    "static_prune_available",
    "static_xcheck_enabled",
]
