"""Common simulation fault/exception model.

All three models (reference interpreter, microarchitectural simulator and
RT-level simulator) signal abnormal execution through :class:`SimFault`.
The fault-injection classifier maps these onto the paper's *Unsafe*
category (they are detectable errors -- crashes/DUEs -- rather than silent
corruptions).
"""


class SimFault(Exception):
    """An architectural exception raised while simulating.

    Attributes:
        kind: one of ``undefined-inst``, ``mem-fault``, ``align-fault``,
            ``syscall-error``, ``halt-trap``.
        detail: free-form human-readable context.
        addr: program counter (or effective address) involved, if known.
    """

    def __init__(self, kind, detail="", addr=None):
        self.kind = kind
        self.detail = detail
        self.addr = addr
        where = f" at {addr:#010x}" if addr is not None else ""
        super().__init__(f"{kind}{where}: {detail}" if detail else kind + where)


class SimTimeout(Exception):
    """The simulation exceeded its cycle/instruction watchdog."""

    def __init__(self, limit, what="cycles"):
        self.limit = limit
        super().__init__(f"watchdog expired after {limit} {what}")
