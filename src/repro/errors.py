"""Common simulation fault/exception model.

All three models (reference interpreter, microarchitectural simulator and
RT-level simulator) signal abnormal execution through :class:`SimFault`.
The fault-injection classifier maps these onto the paper's *Unsafe*
category (they are detectable errors -- crashes/DUEs -- rather than silent
corruptions).
"""


class SimFault(Exception):
    """An architectural exception raised while simulating.

    Attributes:
        kind: one of ``undefined-inst``, ``mem-fault``, ``align-fault``,
            ``syscall-error``, ``halt-trap``.
        detail: free-form human-readable context.
        addr: program counter (or effective address) involved, if known.
    """

    def __init__(self, kind, detail="", addr=None):
        self.kind = kind
        self.detail = detail
        self.addr = addr
        where = f" at {addr:#010x}" if addr is not None else ""
        super().__init__(f"{kind}{where}: {detail}" if detail else kind + where)


class SimTimeout(Exception):
    """The simulation exceeded its cycle/instruction watchdog."""

    def __init__(self, limit, what="cycles"):
        self.limit = limit
        super().__init__(f"watchdog expired after {limit} {what}")


class ExecutionError(ValueError):
    """A campaign execution knob is invalid (start method, chaos spec,
    retry budget...).

    Subclasses :class:`ValueError` so callers that historically caught
    ``ValueError`` from :func:`repro.injection.executor
    .resolve_start_method` keep working; the CLI catches it to print a
    friendly one-liner instead of a traceback.
    """


class CampaignInterrupted(RuntimeError):
    """A campaign was stopped by SIGINT/SIGTERM after a graceful drain.

    Raised *after* every in-flight fault has been flushed to the
    campaign store (when one is attached), so the store is guaranteed
    resumable.  ``done``/``total`` count fault indices persisted vs.
    sampled; ``signame`` is the signal that triggered the drain.
    """

    def __init__(self, done, total, signame="SIGINT", stored=False):
        self.done = done
        self.total = total
        self.signame = signame
        #: Whether a campaign store holds the drained records.
        self.stored = stored
        hint = ("; resume with --resume" if stored
                else "; no store attached, progress was not persisted")
        super().__init__(
            f"campaign interrupted by {signame}: {done}/{total} faults "
            f"completed{hint}"
        )
