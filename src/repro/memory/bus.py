"""External-bus transactions: the observable "core pinout".

The paper's RTL flow computes *Safeness* by comparing the signals at the
CPU pinout against a golden trace; for a Cortex-A9 block that pinout shows
exactly the traffic leaving the core+L1 complex (cache-line refills and
dirty write-backs).  Both simulators publish that traffic as
:class:`Transaction` records so the observation point is identical across
levels (SS III-C of the paper).
"""


class Transaction:
    """One bus-level event.

    Attributes:
        kind: ``"rd"`` for a line refill request, ``"wb"`` for a dirty
            write-back, ``"out"`` for syscall output leaving the core.
        addr: line-aligned byte address.
        data: payload bytes (write-backs and output only).
        cycle: issue cycle (used only by strict-timing comparison).
    """

    __slots__ = ("kind", "addr", "data", "cycle")

    def __init__(self, kind, addr, data=b"", cycle=0):
        self.kind = kind
        self.addr = addr
        self.data = bytes(data)
        self.cycle = cycle

    def key(self, with_timing=False):
        """Comparison key: content+order by default, plus cycle if asked."""
        if with_timing:
            return (self.kind, self.addr, self.data, self.cycle)
        return (self.kind, self.addr, self.data)

    def __eq__(self, other):
        if not isinstance(other, Transaction):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        payload = f", {len(self.data)}B" if self.data else ""
        return f"Transaction({self.kind}, {self.addr:#010x}{payload}, " \
               f"cycle={self.cycle})"
