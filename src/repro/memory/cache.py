"""Set-associative write-back cache with bit-accurate, injectable arrays.

The storage arrays (data, tag, valid, dirty, LRU-age) are numpy arrays so
that the fault-injection framework can flip any single bit -- the paper's
L1D campaigns target exactly these SRAM arrays.  Both CPU models use this
geometry; the RT-level model wraps it with a cycle-level refill/evict FSM
while the microarchitectural model charges fixed hit/miss latencies, which
mirrors how gem5 and an RTL cache controller differ.
"""

import numpy as np

from repro.errors import SimFault


class CacheConfig:
    """Geometry of one cache (defaults: the Cortex-A9 32 KB 4-way L1)."""

    def __init__(self, size=32 * 1024, ways=4, line_size=32):
        if size % (ways * line_size):
            raise ValueError("size must be a multiple of ways * line_size")
        self.size = size
        self.ways = ways
        self.line_size = line_size
        self.sets = size // (ways * line_size)
        if self.sets & (self.sets - 1) or line_size & (line_size - 1):
            raise ValueError("sets and line size must be powers of two")
        self.offset_bits = line_size.bit_length() - 1
        self.index_bits = self.sets.bit_length() - 1

    def split(self, addr):
        """Split an address into (tag, set index, line offset)."""
        offset = addr & (self.line_size - 1)
        index = (addr >> self.offset_bits) & (self.sets - 1)
        tag = addr >> (self.offset_bits + self.index_bits)
        return tag, index, offset

    def line_addr(self, addr):
        return addr & ~(self.line_size - 1)

    def __repr__(self):
        return (
            f"CacheConfig({self.size // 1024}KB, {self.ways}-way,"
            f" {self.line_size}B lines, {self.sets} sets)"
        )


class Cache:
    """One level-1 cache instance backed by a :class:`~repro.memory.ram.RAM`.

    Write-back, write-allocate, age-based (pseudo-LRU) replacement.

    ``bus_listener`` receives :class:`~repro.memory.bus.Transaction`-shaped
    events via a callable ``(kind, line_addr, data_bytes, cycle)``;
    ``access_listener`` receives ``(cycle, set, way, write, addr)`` for every
    access and is what the RTL inject-near-consumption optimisation replays.
    """

    #: Injectable arrays and the bit width of one element.
    ARRAYS = ("data", "tag", "valid", "dirty", "age")

    def __init__(self, name, config, ram, bus_listener=None,
                 access_listener=None):
        self.name = name
        self.config = config
        self.ram = ram
        self.bus_listener = bus_listener
        self.access_listener = access_listener
        shape = (config.sets, config.ways)
        self.tags = np.zeros(shape, dtype=np.uint32)
        self.valid = np.zeros(shape, dtype=bool)
        self.dirty = np.zeros(shape, dtype=bool)
        self.age = np.zeros(shape, dtype=np.uint8)
        self.data = np.zeros(shape + (config.line_size,), dtype=np.uint8)
        self.hits = 0
        self.misses = 0
        self.writebacks = 0

    # ------------------------------------------------------------------
    # lookup / replacement
    # ------------------------------------------------------------------

    def probe(self, addr):
        """Return ``(index, way)`` for a hit, ``(index, None)`` for a miss.

        Does not touch replacement state.
        """
        tag, index, _ = self.config.split(addr)
        for way in range(self.config.ways):
            if self.valid[index, way] and self.tags[index, way] == tag:
                return index, way
        return index, None

    def _touch(self, index, way):
        ages = self.age[index]
        bump = self.valid[index] & (ages < 255)
        ages[bump] += 1
        ages[way] = 0

    def _victim(self, index):
        for way in range(self.config.ways):
            if not self.valid[index, way]:
                return way
        return int(np.argmax(self.age[index]))

    def _line_base(self, index, way):
        tag = int(self.tags[index, way])
        return (
            (tag << (self.config.index_bits + self.config.offset_bits))
            | (index << self.config.offset_bits)
        )

    def _evict(self, index, way, cycle):
        if self.valid[index, way] and self.dirty[index, way]:
            base = self._line_base(index, way)
            blob = self.data[index, way].tobytes()
            self.writebacks += 1
            if self.bus_listener is not None:
                self.bus_listener("wb", base, blob, cycle)
            self.ram.write_block(base, blob)
        self.valid[index, way] = False
        self.dirty[index, way] = False

    def _refill(self, addr, index, cycle):
        way = self._victim(index)
        self._evict(index, way, cycle)
        base = self.config.line_addr(addr)
        blob = self.ram.read_block(base, self.config.line_size)
        tag, _, _ = self.config.split(addr)
        self.tags[index, way] = tag
        self.valid[index, way] = True
        self.dirty[index, way] = False
        self.data[index, way] = np.frombuffer(blob, dtype=np.uint8)
        if self.bus_listener is not None:
            self.bus_listener("rd", base, b"", cycle)
        return way

    # ------------------------------------------------------------------
    # data access
    # ------------------------------------------------------------------

    def access(self, addr, size, write, value=0, cycle=0):
        """Perform one aligned access of ``size`` bytes.

        Returns ``(value, hit)``; ``value`` is the loaded data for reads,
        the stored value for writes.
        """
        if addr % size:
            raise SimFault("align-fault", f"{size}-byte access", addr=addr)
        _, index, offset = self.config.split(addr)
        if offset + size > self.config.line_size:  # pragma: no cover
            raise SimFault("mem-fault", "access crosses a line", addr=addr)
        if addr + size > self.ram.size or addr < 0:
            raise SimFault("mem-fault", "beyond RAM", addr=addr)
        index, way = self.probe(addr)
        hit = way is not None
        if hit:
            self.hits += 1
        else:
            self.misses += 1
            way = self._refill(addr, index, cycle)
        self._touch(index, way)
        if self.access_listener is not None:
            self.access_listener(cycle, index, way, write, addr)
        line = self.data[index, way]
        if write:
            encoded = (value & ((1 << (8 * size)) - 1)).to_bytes(
                size, "little"
            )
            line[offset:offset + size] = np.frombuffer(encoded,
                                                       dtype=np.uint8)
            self.dirty[index, way] = True
            return value, hit
        raw = line[offset:offset + size].tobytes()
        return int.from_bytes(raw, "little"), hit

    def read(self, addr, size, cycle=0):
        value, _ = self.access(addr, size, write=False, cycle=cycle)
        return value

    def write(self, addr, size, value, cycle=0):
        self.access(addr, size, write=True, value=value, cycle=cycle)

    def flush_all(self, cycle=0):
        """Write back every dirty line (end-of-run barrier used by tests)."""
        for index in range(self.config.sets):
            for way in range(self.config.ways):
                self._evict(index, way, cycle)

    # ------------------------------------------------------------------
    # fault-injection interface
    # ------------------------------------------------------------------

    def bit_count(self, array="data"):
        """Total number of injectable bits in ``array``."""
        target = getattr(self, "tags" if array == "tag" else array)
        element_bits = 1 if target.dtype == bool else target.dtype.itemsize * 8
        if array == "tag":
            # Only the architecturally meaningful tag width counts.
            element_bits = 32 - self.config.index_bits - self.config.offset_bits
        return int(target.size) * element_bits

    def flip_bit(self, array, bit_index):
        """Flip one bit; ``bit_index`` is flat in ``[0, bit_count(array))``."""
        if array == "data":
            flat = self.data.reshape(-1)
            byte, bit = divmod(bit_index, 8)
            flat[byte] ^= np.uint8(1 << bit)
        elif array == "tag":
            width = 32 - self.config.index_bits - self.config.offset_bits
            element, bit = divmod(bit_index, width)
            flat = self.tags.reshape(-1)
            flat[element] ^= np.uint32(1 << bit)
        elif array in ("valid", "dirty"):
            flat = getattr(self, array).reshape(-1)
            flat[bit_index] = not flat[bit_index]
        elif array == "age":
            element, bit = divmod(bit_index, 8)
            flat = self.age.reshape(-1)
            flat[element] ^= np.uint8(1 << bit)
        else:
            raise ValueError(f"unknown array {array!r}")

    # ------------------------------------------------------------------
    # state management
    # ------------------------------------------------------------------

    def snapshot(self):
        return {
            "tags": self.tags.copy(),
            "valid": self.valid.copy(),
            "dirty": self.dirty.copy(),
            "age": self.age.copy(),
            "data": self.data.copy(),
            "stats": (self.hits, self.misses, self.writebacks),
        }

    def restore(self, state):
        self.tags = state["tags"].copy()
        self.valid = state["valid"].copy()
        self.dirty = state["dirty"].copy()
        self.age = state["age"].copy()
        self.data = state["data"].copy()
        self.hits, self.misses, self.writebacks = state["stats"]

    def __repr__(self):
        return f"Cache({self.name}, {self.config!r})"
