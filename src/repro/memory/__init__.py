"""Memory-system substrate shared by both CPU models."""

from repro.memory.bus import Transaction
from repro.memory.cache import Cache, CacheConfig
from repro.memory.ram import RAM

__all__ = ["Cache", "CacheConfig", "RAM", "Transaction"]
