"""Flat little-endian main memory."""

from repro.errors import SimFault


class RAM:
    """A bounded, byte-addressable, little-endian RAM.

    Out-of-range accesses raise :class:`~repro.errors.SimFault` with kind
    ``mem-fault`` -- injected faults that corrupt pointers typically end up
    here and are classified as detected (DUE-like) outcomes.
    """

    def __init__(self, size):
        self.size = size
        self.data = bytearray(size)

    def _check(self, addr, length):
        if addr < 0 or addr + length > self.size:
            raise SimFault(
                "mem-fault", f"access of {length} bytes outside RAM",
                addr=addr,
            )

    def read8(self, addr):
        self._check(addr, 1)
        return self.data[addr]

    def read16(self, addr):
        self._check(addr, 2)
        return int.from_bytes(self.data[addr:addr + 2], "little")

    def read32(self, addr):
        self._check(addr, 4)
        return int.from_bytes(self.data[addr:addr + 4], "little")

    def write8(self, addr, value):
        self._check(addr, 1)
        self.data[addr] = value & 0xFF

    def write16(self, addr, value):
        self._check(addr, 2)
        self.data[addr:addr + 2] = (value & 0xFFFF).to_bytes(2, "little")

    def write32(self, addr, value):
        self._check(addr, 4)
        self.data[addr:addr + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")

    def read_block(self, addr, length):
        self._check(addr, length)
        return bytes(self.data[addr:addr + length])

    def write_block(self, addr: int, blob: bytes) -> None:
        self._check(addr, len(blob))
        self.data[addr:addr + len(blob)] = blob

    def snapshot(self):
        return bytes(self.data)

    def restore(self, blob):
        self.data = bytearray(blob)

    def __repr__(self):
        return f"RAM({self.size:#x} bytes)"
