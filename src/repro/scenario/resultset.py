"""Queryable collection of per-cell campaign results.

A :class:`ResultSet` is what :class:`repro.scenario.runner
.ScenarioRunner` returns: the expanded grid's ``(CellSpec,
CampaignResult)`` pairs in cell order, with composable filters
(:meth:`ResultSet.where`), grouping (:meth:`ResultSet.group_by`) and
direct export into the existing report tables and CSV writers.
"""


class ResultSet:
    """Ordered ``(cell, result)`` pairs with composable queries."""

    def __init__(self, items):
        self._items = tuple(items)

    # ------------------------------------------------------------------
    # collection protocol
    # ------------------------------------------------------------------

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __bool__(self):
        return bool(self._items)

    @property
    def cells(self):
        return tuple(cell for cell, _ in self._items)

    @property
    def results(self):
        return tuple(result for _, result in self._items)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def where(self, **coordinates):
        """Filter on any cell coordinate -- grid axes (``level=``,
        ``workload=``, ``structure=``, ``mode=``), budget/execution
        knobs (``prune=``, ``seed=``, ...) or sweep axes -- and return
        a new :class:`ResultSet`.  Filters compose::

            rs.where(level="rtl").where(prune="off")
        """
        def matches(cell):
            for axis, wanted in coordinates.items():
                try:
                    value = cell.coordinate(axis)
                except KeyError:
                    raise KeyError(
                        f"unknown cell coordinate {axis!r} "
                        f"(cell {cell.label()})") from None
                if value != wanted:
                    return False
            return True

        return ResultSet(item for item in self._items
                         if matches(item[0]))

    def one(self):
        """The single result of a fully-narrowed query (raises
        ``LookupError`` when the set holds zero or several cells)."""
        if len(self._items) != 1:
            labels = [cell.label() for cell, _ in self._items]
            raise LookupError(
                f"expected exactly one cell, got {len(self._items)}"
                f"{': ' + ', '.join(labels) if labels else ''}")
        return self._items[0][1]

    def group_by(self, *axes):
        """Group cells by one or more coordinates: returns an ordered
        ``{key_tuple: ResultSet}`` (key order = first occurrence)."""
        groups = {}
        for cell, result in self._items:
            key = tuple(cell.coordinate(axis) for axis in axes)
            groups.setdefault(key, []).append((cell, result))
        return {key: ResultSet(items) for key, items in groups.items()}

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------

    def mean_unsafeness(self):
        """Mean of the paper's vulnerability metric over the set's
        campaigns (0.0 for an empty or golden-only set)."""
        measured = [r.unsafeness for r in self.results if r.n]
        if not measured:
            return 0.0
        return sum(measured) / len(measured)

    def total_simulated(self):
        """Faults actually simulated across the set (pruned/resumed
        faults excluded)."""
        return sum(r.simulated_count for r in self.results)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------

    def table(self, title=None):
        """The per-cell scenario table (one row per cell)."""
        from repro.analysis.report import scenario_table

        return scenario_table(self, title=title)

    def campaign_table(self, title=None):
        """The classic per-campaign summary table over the set."""
        from repro.analysis.report import campaign_table

        return campaign_table(self.results, title=title)

    def speedup_table(self, title=None):
        """Wall-clock accounting table over the set."""
        from repro.analysis.report import speedup_table

        return speedup_table(self.results, title=title)

    def to_csv(self):
        """Summary CSV, one row per cell, with the cell coordinates
        prepended to the standard campaign columns."""
        from repro.analysis.export import results_to_csv

        return results_to_csv(self.results, cells=self.cells)

    def series(self, series_defs):
        """Shape the set like the legacy figure dictionaries:
        ``{series_name: {workload: result}}``.

        ``series_defs`` is an iterable of mappings with ``name``,
        ``level``, ``mode`` and optional ``structure`` -- the
        ``[[present.series]]`` blocks of a preset.  Workload order
        within a series follows cell order.  A series definition must
        narrow the set to at most one cell per workload: when a sweep
        axis is left unpinned, several cells would collapse onto one
        chart point, so the ambiguity raises instead of silently
        charting whichever cell came first.
        """
        from repro.scenario.spec import ScenarioError

        shaped = {}
        for definition in series_defs:
            coords = {axis: definition[axis]
                      for axis in ("level", "mode", "structure")
                      if axis in definition}
            matched = self.where(**coords)
            by_workload = {}
            for cell, result in matched:
                if cell.workload in by_workload:
                    colliding = [c.label() for c, _ in matched
                                 if c.workload == cell.workload]
                    raise ScenarioError(
                        "present.series",
                        f"series {definition['name']!r} matches "
                        f"{len(colliding)} cells for workload "
                        f"{cell.workload!r}: {', '.join(colliding)}",
                        hint="pin the sweep axis in the series "
                             "definition or filter the ResultSet "
                             "before shaping",
                    )
                by_workload[cell.workload] = result
            shaped[definition["name"]] = by_workload
        return shaped

    def __repr__(self):
        return f"ResultSet({len(self._items)} cells)"
