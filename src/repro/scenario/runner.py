"""Scenario execution: schedule the expanded grid through the campaign
engine.

The runner owns everything a grid run can share:

* **front-ends** -- one per (level, workload): the assembled program
  and simulator configuration are reused by every cell that targets
  the pair;
* **golden payloads** -- cells whose golden-affecting knobs agree
  (same level/workload/toolchain, same observation family, pruning
  on/off, acceleration, checkpointing) share one captured golden run
  through :class:`repro.injection.campaign.Campaign`'s golden pool: a
  ``fig1``-style grid pays one golden run per (level, workload) instead
  of one per cell;
* **cell results** -- cached by cell identity, so re-running a grid
  (or two grids overlapping on a cell) never repeats a campaign within
  one runner.

Execution knobs (jobs/prune/store/resume) thread through untouched:
per-cell stores live under ``execution.store`` with the historical
``level-workload-structure-mode`` directory names (sweep coordinates
appended), and ``resume`` works cell by cell.
"""

import pathlib

from repro.scenario.resultset import ResultSet
from repro.scenario.spec import ScenarioError
from repro.sim import registry as sim_registry
from repro.sim.frontend import USE_SCALED_WINDOW


class ScenarioRunner:
    """Runs a :class:`~repro.scenario.spec.ScenarioSpec`'s grid."""

    def __init__(self, spec, progress=None):
        self.spec = spec
        self.progress = progress
        self._frontends = {}
        self._golden_pool = {}
        self._cell_cache = {}

    # ------------------------------------------------------------------

    def _frontend(self, level, workload):
        key = (level, workload)
        front = self._frontends.get(key)
        if front is None:
            toolchain = None
            if self.spec.same_binaries:
                toolchain = sim_registry.get("uarch").default_toolchain
            front = sim_registry.create_frontend(level, workload,
                                                 toolchain=toolchain)
            self._frontends[key] = front
        return front

    @staticmethod
    def _window_argument(window):
        """Spec window vocabulary -> front-end ``window=`` argument."""
        if window == "scaled":
            return USE_SCALED_WINDOW
        if window == "to-end":
            return None
        return window

    def _cell_store(self, cell):
        if self.spec.store is None:
            return None
        return pathlib.Path(self.spec.store) / cell.store_name()

    # ------------------------------------------------------------------

    def release_goldens(self, keep_workload=None):
        """Drop pooled golden captures -- all of them, or all but one
        workload's.

        A :class:`~repro.injection.campaign.SharedGolden` holds a live
        simulator plus its checkpoint cache, so an unbounded pool
        would keep one machine snapshot set resident per (level,
        workload) for the runner's lifetime.  :meth:`run` calls this
        automatically once a (level, workload) pair has no cells left;
        workload-major drivers (the legacy study) call it with
        ``keep_workload`` at each workload boundary.  Cell *results*
        stay cached either way.
        """
        for key in list(self._golden_pool):
            if keep_workload is None or key[1] != keep_workload:
                del self._golden_pool[key]

    def run_cell(self, cell):
        """Run (or recall) one cell's campaign."""
        identity = cell.identity()
        if identity in self._cell_cache:
            return self._cell_cache[identity]
        front = self._frontend(cell.level, cell.workload)
        if cell.samples == 0:
            result = self._golden_only(front, cell)
        else:
            result = front.campaign(
                cell.structure, mode=cell.mode, samples=cell.samples,
                seed=cell.seed,
                window=self._window_argument(cell.window),
                distribution=cell.distribution,
                jobs=cell.jobs, batch_size=cell.batch_size,
                batch_lanes=cell.lanes,
                retries=cell.retries, batch_timeout=cell.batch_timeout,
                prune_mode=cell.prune, warm_start=cell.warm_start,
                store=self._cell_store(cell), resume=self.spec.resume,
                store_format=self.spec.store_format,
                golden_pool=self._golden_pool,
            )
        self._cell_cache[identity] = result
        return result

    def _golden_only(self, front, cell):
        """A zero-budget cell: one timed fault-free run (throughput
        scenarios; no faults, no classification)."""
        import time

        from repro.injection.campaign import CampaignResult

        config = front.make_config(
            cell.mode, 0, seed=cell.seed,
            window=self._window_argument(cell.window),
            distribution=cell.distribution)
        result = CampaignResult(cell.workload, cell.level,
                                cell.structure, config)
        started = time.perf_counter()
        sim = front.golden_run()
        result.golden_seconds = time.perf_counter() - started
        result.total_seconds = result.golden_seconds
        result.golden_cycles = sim.cycle
        result.golden_insts = sim.icount
        return result

    def run(self, cells=None):
        """Run the whole grid (or an explicit cell list) and return a
        :class:`~repro.scenario.resultset.ResultSet`."""
        if cells is None:
            cells = self.spec.cells()
        if not cells:
            raise ScenarioError("targets",
                                "the grid expanded to zero cells")
        remaining = {}
        for cell in cells:
            pair = (cell.level, cell.workload)
            remaining[pair] = remaining.get(pair, 0) + 1
        items = []
        for i, cell in enumerate(cells):
            result = self.run_cell(cell)
            items.append((cell, result))
            # Evict the pair's pooled goldens once nothing else will
            # share them -- peak memory stays one machine's worth of
            # capture variants, not the whole grid's.
            pair = (cell.level, cell.workload)
            remaining[pair] -= 1
            if remaining[pair] == 0:
                for key in list(self._golden_pool):
                    if key[:2] == pair:
                        del self._golden_pool[key]
            if self.progress is not None:
                self.progress(i + 1, len(cells), cell, result)
        return ResultSet(items)
