"""Declarative scenario API: spec-driven campaigns, sweep matrices and
a queryable :class:`ResultSet`.

This is the supported experiment surface (re-exported from
:mod:`repro`): declare *what* to run in a :class:`ScenarioSpec` (TOML/
JSON file or Python), let :class:`ScenarioRunner` schedule the expanded
grid through the executor/checkpoint-cache/prune machinery, and query
the returned :class:`ResultSet`::

    from repro import ScenarioRunner, load_scenario

    spec = load_scenario("scenario.toml")
    results = ScenarioRunner(spec).run()
    rtl = results.where(level="rtl", prune="off")
    print(results.table())

The paper's figures are built-in presets (:func:`load_preset`); the
legacy ``repro-study fig1``-style subcommands are thin loaders over
them.
"""

from repro.scenario.presets import load_preset, preset_names, preset_path
from repro.scenario.resultset import ResultSet
from repro.scenario.runner import ScenarioRunner
from repro.scenario.spec import (
    CellSpec,
    ScenarioError,
    ScenarioSpec,
    apply_overrides,
    load_scenario,
)

__all__ = [
    "CellSpec",
    "ResultSet",
    "ScenarioError",
    "ScenarioRunner",
    "ScenarioSpec",
    "apply_overrides",
    "load_preset",
    "load_scenario",
    "preset_names",
    "preset_path",
]
