"""Built-in scenario presets.

The paper's figure subcommands are not special code paths anymore: each
is a committed scenario file under ``src/repro/scenario/presets/``, and
the legacy CLI subcommands (``fig1``..``fig3``, ``table2``,
``headline``) load these files and route them through the standard
:class:`~repro.scenario.runner.ScenarioRunner`.  ``repro-study run
fig1`` and ``repro-study fig1`` are therefore the same experiment.
"""

import pathlib

from repro.scenario.spec import ScenarioError, load_scenario

PRESET_DIR = pathlib.Path(__file__).resolve().parent / "presets"


def preset_names():
    """Available preset names, sorted."""
    return tuple(sorted(p.stem for p in PRESET_DIR.glob("*.toml")))


def preset_path(name):
    """The file backing preset ``name`` (raises :class:`ScenarioError`
    for unknown names)."""
    path = PRESET_DIR / f"{name}.toml"
    if not path.exists():
        raise ScenarioError(
            f"preset {name!r}", "unknown preset",
            hint=f"available: {', '.join(preset_names())}")
    return path


def load_preset(name, overrides=()):
    """Load and validate a built-in preset scenario."""
    return load_scenario(preset_path(name), overrides=overrides)
