"""The shared run-header knob table.

``CampaignConfig.describe()`` and ``StudyConfig.describe()`` used to
format their knob fragments independently, and every PR that added a
knob (jobs, store, resume, prune, ...) had to remember to extend both
-- PR 3 and PR 4 each caught a silent omission in review.  This module
is the single source of truth: one ordered table of knobs, one renderer
per knob, and one :func:`describe_knobs` that both configs (and
:meth:`repro.scenario.spec.ScenarioSpec.describe`) call with whatever
subset of knob values they carry.

Adding a knob to a config without teaching this table about it fails
the drift guard in ``tests/test_scenario.py``: every constructor
parameter of the two config classes must appear either in
:data:`KNOB_ORDER` (possibly via the composite ``parallel`` knob) or in
the explicit header-exclusion set for that config.
"""


def _parallel(value):
    """Composite knob: ``(jobs, batch_size, start_method)``.

    Serial runs (``jobs == 1``) print nothing; batch/start only
    qualify a parallel run, exactly as the historical headers did.
    """
    jobs, batch_size, start_method = value
    if jobs == 1:
        return []
    fragments = [f"jobs={jobs or 'auto'}"]
    if batch_size is not None:
        fragments.append(f"batch={batch_size}")
    if start_method is not None:
        fragments.append(f"start={start_method}")
    return fragments


#: Knob name -> fragment renderer.  A renderer returns a list of header
#: fragments (empty = elided at its default).  Order of appearance in a
#: header is fixed by :data:`KNOB_ORDER`, so the two configs can never
#: disagree on it.
_RENDERERS = {
    "window": lambda v: ["window=to-end" if v is None else f"window={v}cyc"],
    "observation": lambda v: [f"op={v}"],
    "distribution": lambda v: [f"dist={v}"],
    "seed": lambda v: [f"seed={v}"],
    "warm_start": lambda v: [] if v else ["cold-start"],
    "prune": lambda v: [] if v == "dead" else [f"prune={v}"],
    "parallel": _parallel,
    "lanes": lambda v: [] if v in (1, None) else [f"lanes={v}"],
    "retries": lambda v: [] if v in (None, 2) else [f"retries={v}"],
    "batch_timeout": lambda v: [] if v is None
    else [f"batch_timeout={v:g}s"],
    "chaos": lambda v: [f"chaos={v}"] if v else [],
    "store": lambda v: [] if v is None else [f"store={v}"],
    "resume": lambda v: ["resume"] if v else [],
}

#: Fixed header order.  Configs pass only the knobs they carry.
KNOB_ORDER = ("window", "observation", "distribution", "seed",
              "warm_start", "prune", "parallel", "lanes", "retries",
              "batch_timeout", "chaos", "store", "resume")

#: ``CampaignConfig.__init__`` parameters that deliberately stay out of
#: run headers: pure accounting/statistics knobs plus cache-residency
#: tuning that never changes a classification.  ``samples`` heads the
#: line instead of appearing as a fragment; jobs/batch_size/start_method
#: fold into the composite ``parallel`` knob.
CAMPAIGN_HEADER_EXCLUDED = frozenset({
    "accelerate", "accelerate_lead", "hang_factor", "error_margin",
    "confidence", "checkpoint_interval", "checkpoint_bound", "early_stop",
})

#: ``StudyConfig.__init__`` parameters outside the fragment table:
#: ``workloads``/``samples`` form the header head, ``same_binaries`` is
#: an ablation switch reported by the per-campaign toolchain column.
STUDY_HEADER_EXCLUDED = frozenset({"workloads", "same_binaries"})

#: __init__ parameter -> knob-table name where they differ.
PARAM_ALIASES = {
    "prune_mode": "prune",
    "prune": "prune",
    "jobs": "parallel",
    "batch_size": "parallel",
    "start_method": "parallel",
    "batch_lanes": "lanes",
    "lanes": "lanes",
}


def describe_knobs(head, values):
    """One run-header line: ``head`` + the rendered knob fragments.

    ``values`` maps knob names (from :data:`KNOB_ORDER`) to the
    config's current values; unknown names raise so a typo cannot
    silently drop a knob from the header.
    """
    unknown = set(values) - set(KNOB_ORDER)
    if unknown:
        raise KeyError(
            f"unknown header knobs {sorted(unknown)}; "
            f"known: {list(KNOB_ORDER)}"
        )
    fragments = [head]
    for name in KNOB_ORDER:
        if name in values:
            fragments.extend(_RENDERERS[name](values[name]))
    return ", ".join(fragments)
