"""Declarative scenario specifications.

A *scenario* is the experiment a campaign grid runs: which abstraction
levels, workloads, structures and observation modes to target, what
fault budget to spend, how to execute (parallelism, pruning,
persistence), and optionally which extra knob axes to sweep.  The spec
is plain data -- loadable from TOML or JSON, strict about every key and
value, composable into a deterministic campaign grid -- and completely
separate from execution (:mod:`repro.scenario.runner`), the way
GeFIN-style industrial flows separate campaign specification from the
injection engine.

File layout (all sections optional unless noted)::

    [scenario]                  # metadata
    name = "fig1"
    title = "Figure 1: ..."

    [targets]                   # grid-axis defaults
    levels = ["uarch", "rtl"]
    workloads = "all"           # or an explicit list
    structures = ["regfile"]
    modes = ["pinout"]

    [[grid]]                    # rectangular sub-grids (union; each
    levels = ["uarch"]          # block inherits unset axes from
    modes = ["pinout-notimer"]  # [targets])

    [faults]
    samples = 40                # default: REPRO_SFI_SAMPLES or 40
    seed = 2017
    window = "scaled"           # "scaled" | "to-end" | cycles
    distribution = "normal"
    seed_policy = "shared"      # or "per-cell" (deterministic derive)

    [execution]
    jobs = 1                    # or "auto" (one per CPU)
    prune = "dead"              # "off" | "dead" | "group" | "static"
    store = "runs/fig1"
    store_format = "binary"     # fresh-store record format (default)
    resume = true

    [sweep]                     # extra grid axes (cartesian product)
    prune = ["off", "dead"]

    [present]                   # optional rendering block (presets)
    kind = "figure"             # "figure" | "headline" | "table2"

Validation raises :class:`ScenarioError` -- one actionable error naming
the offending field -- for unknown keys, bad level/workload/structure/
mode names, invalid values and conflicting sweep axes.
"""

import dataclasses
import difflib
import itertools
import json
import pathlib
import zlib

from repro.prune import PRUNE_MODES
from repro.sim import registry as sim_registry
from repro.workloads.registry import WORKLOAD_NAMES


class ScenarioError(ValueError):
    """A scenario spec problem, always naming the offending field."""

    def __init__(self, field, problem, hint=None):
        self.field = field
        self.problem = problem
        message = f"[{field}] {problem}"
        if hint:
            message += f" ({hint})"
        super().__init__(message)


def _suggest(key, known):
    close = difflib.get_close_matches(str(key), [str(k) for k in known],
                                      n=1)
    if close:
        return f"did you mean {close[0]!r}?"
    return f"valid: {', '.join(sorted(str(k) for k in known))}"


def _check_keys(section, mapping, allowed):
    if not isinstance(mapping, dict):
        raise ScenarioError(section, f"must be a table/object, got "
                                     f"{type(mapping).__name__}")
    for key in mapping:
        if key not in allowed:
            raise ScenarioError(f"{section}.{key}", "unknown key",
                                hint=_suggest(key, allowed))


def _string_tuple(field, value, *, allow_all=None):
    """A list-of-names field; a bare string means a one-element list
    (``"all"`` expands to ``allow_all`` when provided)."""
    if isinstance(value, str):
        if allow_all is not None and value == "all":
            return tuple(allow_all)
        value = [value]
    if (not isinstance(value, (list, tuple)) or not value
            or not all(isinstance(v, str) for v in value)):
        raise ScenarioError(field, "must be a non-empty list of names")
    return tuple(value)


def _int_field(field, value, minimum=None):
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(field, f"must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ScenarioError(field, f"must be >= {minimum}, got {value}")
    return value


def _bool_field(field, value):
    if not isinstance(value, bool):
        raise ScenarioError(field, f"must be true/false, got {value!r}")
    return value


def _window_field(field, value):
    if value in ("scaled", "to-end"):
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise ScenarioError(
            field, f"must be 'scaled', 'to-end' or a cycle count, "
                   f"got {value!r}")
    if value < 1:
        raise ScenarioError(field, f"window cycles must be >= 1, "
                                   f"got {value}")
    return value


def _jobs_field(field, value):
    if isinstance(value, bool):
        raise ScenarioError(field, f"must be a worker count or 'auto', "
                                   f"got {value!r}")
    if value in ("auto", 0, None):
        return None
    return _int_field(field, value, minimum=1)


def _timeout_field(field, value):
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)) \
            or value <= 0:
        raise ScenarioError(
            field, f"must be a positive number of seconds, got {value!r}")
    return value


#: Sweepable knob axes (beyond the four target axes), with their
#: per-value validators.
_SCALAR_AXES = {
    "prune": ("execution", "prune"),
    "jobs": ("execution", "jobs"),
    "warm_start": ("execution", "warm_start"),
    "samples": ("faults", "samples"),
    "seed": ("faults", "seed"),
    "window": ("faults", "window"),
    "distribution": ("faults", "distribution"),
}

#: Target axes: sweep name -> section key in [targets] / [[grid]].
_TARGET_AXES = {
    "level": "levels",
    "workload": "workloads",
    "structure": "structures",
    "mode": "modes",
}

SWEEP_AXES = tuple(_TARGET_AXES) + tuple(_SCALAR_AXES)

_DISTRIBUTIONS = ("normal", "uniform")
_PRUNE_MODES = PRUNE_MODES
_SEED_POLICIES = ("shared", "per-cell")


def _validate_axis_value(axis, value, field):
    """Validate one swept value of a scalar axis."""
    if axis == "prune":
        if value not in _PRUNE_MODES:
            raise ScenarioError(field, f"unknown prune mode {value!r}",
                                hint=_suggest(value, _PRUNE_MODES))
        return value
    if axis == "distribution":
        if value not in _DISTRIBUTIONS:
            raise ScenarioError(field, f"unknown distribution {value!r}",
                                hint=_suggest(value, _DISTRIBUTIONS))
        return value
    if axis == "window":
        return _window_field(field, value)
    if axis == "jobs":
        return _jobs_field(field, value)
    if axis == "warm_start":
        return _bool_field(field, value)
    if axis == "samples":
        return _int_field(field, value, minimum=0)
    if axis == "seed":
        return _int_field(field, value)
    raise AssertionError(axis)


@dataclasses.dataclass(frozen=True)
class GridBlock:
    """One rectangular sub-grid of the target matrix."""

    levels: tuple = ()
    workloads: tuple = ()
    structures: tuple = ()
    modes: tuple = ()
    #: Axes this block set explicitly (vs inherited from [targets]) --
    #: what sweep-axis conflict detection checks against.
    explicit: frozenset = frozenset()


@dataclasses.dataclass(frozen=True)
class CellSpec:
    """One fully-resolved campaign of the expanded grid."""

    index: int
    level: str
    workload: str
    structure: str
    mode: str
    samples: int
    seed: int
    window: object          # "scaled" | "to-end" | int cycles
    distribution: str
    prune: str
    jobs: object            # int | None (auto)
    batch_size: object
    warm_start: bool
    #: Failed executions one fault may spend before quarantine
    #: (``[execution] retries``; supervised executor).
    retries: int = 2
    #: Per-batch wall-clock budget in seconds (``None`` = derived from
    #: the golden run's wall cost x hang_factor).
    batch_timeout: object = None
    #: Vectorized lane count for the faulty phase (lane-batchable
    #: tiers: arch and rtl).
    lanes: int = 1
    #: Sweep coordinates of this cell: ``(axis, value)`` pairs in the
    #: sweep's declaration order (empty without a sweep).
    axes: tuple = ()

    def coordinate(self, axis):
        """The cell's value on any axis (grid axis, knob or sweep).

        Only dataclass fields and sweep coordinates resolve -- method
        names (``label``, ...) raise like any unknown axis, so a typo'd
        ``where()`` filter fails loudly instead of matching nothing.
        """
        if axis != "axes" and axis in self.__dataclass_fields__:
            return getattr(self, axis)
        for name, value in self.axes:
            if name == axis:
                return value
        raise KeyError(axis)

    def label(self):
        """Human-readable cell id: ``level/workload/structure/mode``
        plus any sweep coordinates."""
        base = f"{self.level}/{self.workload}/{self.structure}/{self.mode}"
        extra = [f"{k}={v}" for k, v in self.axes
                 if k not in _TARGET_AXES]
        return base + (f"[{','.join(extra)}]" if extra else "")

    def store_name(self):
        """Per-cell store subdirectory.  Matches the historical
        ``level-workload-structure-mode`` naming exactly when no scalar
        sweep axis is active, so presets write to the same store
        directories the legacy subcommands always did."""
        name = f"{self.level}-{self.workload}-{self.structure}-{self.mode}"
        for key, value in self.axes:
            if key not in _TARGET_AXES:
                name += f"-{key}={value}"
        return name

    def identity(self):
        """The hashable cell identity the runner's result cache keys
        on (everything result-affecting; ``index`` excluded so the same
        cell reached through two grids shares one result)."""
        return (self.level, self.workload, self.structure, self.mode,
                self.samples, self.seed, self.window, self.distribution,
                self.prune, self.jobs, self.batch_size, self.warm_start,
                self.retries, self.batch_timeout, self.lanes)


def _derive_seed(base_seed, cell_key):
    """Deterministic per-cell seed: stable across runs, machines and
    Python versions (crc32 of the canonical coordinate string)."""
    return (base_seed + zlib.crc32(cell_key.encode())) % (2 ** 31)


class ScenarioSpec:
    """A validated scenario: targets x budget x execution (x sweep)."""

    _SECTION_KEYS = ("scenario", "targets", "grid", "faults", "sweep",
                     "execution", "present")
    _TARGET_KEYS = ("levels", "workloads", "structures", "modes")
    _FAULT_KEYS = ("samples", "seed", "window", "distribution",
                   "seed_policy")
    _EXECUTION_KEYS = ("jobs", "batch_size", "lanes", "retries",
                       "batch_timeout", "prune", "store",
                       "store_format", "resume", "warm_start",
                       "same_binaries")

    def __init__(self, *, name="scenario", title="", blocks=(),
                 workloads=None, samples=None, seed=2017,
                 window="scaled", distribution="normal",
                 seed_policy="shared", jobs=1, batch_size=None, lanes=1,
                 retries=2, batch_timeout=None,
                 prune="dead", store=None, store_format=None,
                 resume=False, warm_start=True,
                 same_binaries=False, sweep=(), present=None,
                 _explicit=frozenset()):
        self.name = name
        self.title = title
        self.workloads = tuple(workloads) if workloads is not None \
            else WORKLOAD_NAMES
        self.blocks = tuple(blocks) or (GridBlock(),)
        self.samples = samples
        self.seed = seed
        self.window = window
        self.distribution = distribution
        self.seed_policy = seed_policy
        self.jobs = jobs
        self.batch_size = batch_size
        self.lanes = lanes
        self.retries = retries
        self.batch_timeout = batch_timeout
        self.prune = prune
        self.store = store
        #: Record format for *fresh* stores: "binary" | "jsonl" | None
        #: (None = binary for new stores, keep the existing format on
        #: resume).
        self.store_format = store_format
        self.resume = resume
        self.warm_start = warm_start
        self.same_binaries = same_binaries
        #: ``(axis, (values...))`` pairs in declaration order.
        self.sweep = tuple(sweep)
        self.present = dict(present or {})
        #: dotted keys explicitly present in the source mapping
        #: (sweep-conflict detection).
        self._explicit = frozenset(_explicit)
        self._validate()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(cls, data, source="scenario"):
        """Build and validate a spec from a plain mapping (parsed TOML
        or JSON).  Unknown keys and bad values raise
        :class:`ScenarioError` naming the field."""
        _check_keys(source, data, cls._SECTION_KEYS)
        meta = data.get("scenario", {})
        _check_keys("scenario", meta, ("name", "title"))
        targets = data.get("targets", {})
        _check_keys("targets", targets, cls._TARGET_KEYS)
        faults = data.get("faults", {})
        _check_keys("faults", faults, cls._FAULT_KEYS)
        execution = data.get("execution", {})
        _check_keys("execution", execution, cls._EXECUTION_KEYS)
        raw_blocks = data.get("grid", [])
        if isinstance(raw_blocks, dict):
            raw_blocks = [raw_blocks]
        if not isinstance(raw_blocks, list):
            raise ScenarioError("grid", "must be an array of tables")

        explicit = set()
        for section, keys in (("targets", targets), ("faults", faults),
                              ("execution", execution)):
            explicit.update(f"{section}.{key}" for key in keys)

        defaults = {
            "levels": _string_tuple(
                "targets.levels", targets.get("levels", ["uarch", "rtl"])),
            "workloads": _string_tuple(
                "targets.workloads", targets.get("workloads", "all"),
                allow_all=WORKLOAD_NAMES),
            "structures": _string_tuple(
                "targets.structures", targets.get("structures",
                                                  ["regfile"])),
            "modes": _string_tuple(
                "targets.modes", targets.get("modes", ["pinout"])),
        }
        blocks = []
        for b, raw in enumerate(raw_blocks):
            _check_keys(f"grid[{b}]", raw, cls._TARGET_KEYS)
            axes = {}
            for key in cls._TARGET_KEYS:
                if key in raw:
                    axes[key] = _string_tuple(
                        f"grid[{b}].{key}", raw[key],
                        allow_all=WORKLOAD_NAMES
                        if key == "workloads" else None)
                    explicit.add(f"grid.{key}")
                else:
                    axes[key] = defaults[key]
            blocks.append(GridBlock(explicit=frozenset(
                k for k in cls._TARGET_KEYS if k in raw), **axes))
        if not blocks:
            blocks = [GridBlock(explicit=frozenset(
                k for k in cls._TARGET_KEYS if k in targets), **defaults)]

        sweep = []
        raw_sweep = data.get("sweep", {})
        _check_keys("sweep", raw_sweep, SWEEP_AXES
                    + tuple(f"{a}s" for a in _TARGET_AXES))
        for key, values in raw_sweep.items():
            axis = key[:-1] if key.endswith("s") \
                and key[:-1] in _TARGET_AXES else key
            field = f"sweep.{key}"
            if not isinstance(values, (list, tuple)):
                # a bare scalar is a one-value axis (the --set path
                # cannot spell a one-element TOML array of bare words)
                values = [values]
            if not values:
                raise ScenarioError(field,
                                    "must be a non-empty list of values")
            if axis in _TARGET_AXES:
                values = _string_tuple(field, list(values))
            else:
                values = tuple(_validate_axis_value(axis, v, field)
                               for v in values)
            if len(set(values)) != len(values):
                raise ScenarioError(field, "repeats a value")
            sweep.append((axis, values))

        samples = faults.get("samples")
        if samples is not None:
            samples = _int_field("faults.samples", samples, minimum=0)
        spec = cls(
            name=meta.get("name", "scenario"),
            title=meta.get("title", ""),
            blocks=blocks,
            workloads=defaults["workloads"],
            samples=samples,
            seed=_int_field("faults.seed", faults.get("seed", 2017)),
            window=_window_field("faults.window",
                                 faults.get("window", "scaled")),
            distribution=faults.get("distribution", "normal"),
            seed_policy=faults.get("seed_policy", "shared"),
            jobs=_jobs_field("execution.jobs", execution.get("jobs", 1)),
            batch_size=(None if execution.get("batch_size") is None else
                        _int_field("execution.batch_size",
                                   execution["batch_size"], minimum=1)),
            lanes=_int_field("execution.lanes",
                             execution.get("lanes", 1), minimum=1),
            retries=_int_field("execution.retries",
                               execution.get("retries", 2), minimum=1),
            batch_timeout=_timeout_field("execution.batch_timeout",
                                         execution.get("batch_timeout")),
            prune=execution.get("prune", "dead"),
            store=execution.get("store"),
            store_format=execution.get("store_format"),
            resume=_bool_field("execution.resume",
                               execution.get("resume", False)),
            warm_start=_bool_field("execution.warm_start",
                                   execution.get("warm_start", True)),
            same_binaries=_bool_field("execution.same_binaries",
                                      execution.get("same_binaries",
                                                    False)),
            sweep=sweep,
            present=data.get("present"),
            _explicit=explicit,
        )
        return spec

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------

    def _validate(self):
        if not isinstance(self.name, str) or not self.name:
            raise ScenarioError("scenario.name", "must be a non-empty "
                                                 "string")
        if self.samples is not None:
            _int_field("faults.samples", self.samples, minimum=0)
        _int_field("faults.seed", self.seed)
        _window_field("faults.window", self.window)
        if self.distribution not in _DISTRIBUTIONS:
            raise ScenarioError(
                "faults.distribution",
                f"unknown distribution {self.distribution!r}",
                hint=_suggest(self.distribution, _DISTRIBUTIONS))
        if self.seed_policy not in _SEED_POLICIES:
            raise ScenarioError(
                "faults.seed_policy",
                f"unknown policy {self.seed_policy!r}",
                hint=_suggest(self.seed_policy, _SEED_POLICIES))
        _int_field("execution.lanes", self.lanes, minimum=1)
        _int_field("execution.retries", self.retries, minimum=1)
        _timeout_field("execution.batch_timeout", self.batch_timeout)
        if self.prune not in _PRUNE_MODES:
            raise ScenarioError("execution.prune",
                                f"unknown prune mode {self.prune!r}",
                                hint=_suggest(self.prune, _PRUNE_MODES))
        if self.store is not None and not isinstance(self.store, str):
            raise ScenarioError("execution.store",
                                "must be a directory path string")
        if self.store_format not in (None, "binary", "jsonl"):
            raise ScenarioError(
                "execution.store_format",
                f"unknown store format {self.store_format!r}",
                hint=_suggest(self.store_format, ("binary", "jsonl")))
        if self.store_format is not None and self.store is None:
            raise ScenarioError("execution.store_format",
                                "requires execution.store")
        if self.resume and self.store is None:
            raise ScenarioError("execution.resume",
                                "requires execution.store")
        self._validate_sweep_conflicts()
        self._validate_targets()
        if self.present:
            self._validate_present()

    def _validate_sweep_conflicts(self):
        seen = set()
        for axis, _ in self.sweep:
            if axis in seen:
                raise ScenarioError(f"sweep.{axis}",
                                    "axis declared twice")
            seen.add(axis)
            if axis in _TARGET_AXES:
                key = _TARGET_AXES[axis]
                for where in (f"targets.{key}", f"grid.{key}"):
                    if where in self._explicit:
                        raise ScenarioError(
                            f"sweep.{axis}",
                            f"conflicts with {where}",
                            hint="declare the axis in one place only")
            else:
                section, key = _SCALAR_AXES[axis]
                if f"{section}.{key}" in self._explicit:
                    raise ScenarioError(
                        f"sweep.{axis}",
                        f"conflicts with {section}.{key}",
                        hint="declare the axis in one place only")

    def _validate_targets(self):
        known_levels = sim_registry.level_names()
        swept = dict(self.sweep)

        def check_levels(field, levels):
            for level in levels:
                if level not in known_levels:
                    raise ScenarioError(
                        field, f"unknown abstraction level {level!r}",
                        hint=_suggest(level, known_levels))

        def check_workloads(field, workloads):
            for workload in workloads:
                if workload not in WORKLOAD_NAMES:
                    raise ScenarioError(
                        field, f"unknown workload {workload!r}",
                        hint=_suggest(workload, WORKLOAD_NAMES))

        check_levels("sweep.level", swept.get("level", ()))
        check_workloads("sweep.workload", swept.get("workload", ()))
        for b, block in enumerate(self.blocks):
            check_levels(f"grid[{b}].levels", block.levels)
            check_workloads(f"grid[{b}].workloads", block.workloads)
        check_workloads("targets.workloads", self.workloads)
        # (level, mode) and (level, structure) compatibility -- resolved
        # against the registered front-end/simulator for each level.
        for level, structure, mode, field in self._level_combos():
            spec = sim_registry.get(level)
            modes = spec.frontend_class().MODES
            if mode not in modes:
                raise ScenarioError(
                    field, f"mode {mode!r} is not offered at level "
                           f"{level!r}",
                    hint=f"valid for {level}: "
                         f"{', '.join(sorted(modes))}")
            injectable = spec.simulator_class().INJECTABLE
            if self.samples != 0 and structure not in injectable:
                raise ScenarioError(
                    field, f"structure {structure!r} is not injectable "
                           f"at level {level!r}",
                    hint=f"valid for {level}: "
                         f"{', '.join(sorted(injectable))}")
            if self.lanes > 1 and not getattr(spec.simulator_class(),
                                              "BATCHABLE", False):
                raise ScenarioError(
                    "execution.lanes",
                    f"lanes={self.lanes} needs a batchable backend, "
                    f"but level {level!r} is not",
                    hint="the lane engine vectorizes the arch and "
                         "rtl tiers; restrict targets.levels or use "
                         "lanes = 1")

    def _level_combos(self):
        """Every (level, structure, mode) combination the grid (plus a
        level/structure/mode sweep) can produce, with a field label."""
        swept = dict(self.sweep)
        for b, block in enumerate(self.blocks):
            levels = swept.get("level", block.levels)
            structures = swept.get("structure", block.structures)
            modes = swept.get("mode", block.modes)
            for level in levels:
                for structure in structures:
                    for mode in modes:
                        yield (level, structure, mode,
                               f"grid[{b}]" if len(self.blocks) > 1
                               else "targets")

    _PRESENT_KINDS = ("figure", "headline", "table2")

    def _validate_present(self):
        """A [present] block must be renderable *before* the grid
        spends hours simulating: required keys per kind, every series/
        comparison filter matching at least one grid cell, and no
        sweep (a swept grid has no single figure/headline rendering).
        """
        _check_keys("present", self.present,
                    ("kind", "title", "series", "comparisons",
                     "rtl_traced"))
        kind = self.present.get("kind")
        if kind not in self._PRESENT_KINDS:
            raise ScenarioError(
                "present.kind", f"unknown kind {kind!r}",
                hint=_suggest(kind, self._PRESENT_KINDS))
        if kind == "table2":
            return
        if self.sweep:
            raise ScenarioError(
                "present.kind",
                f"kind {kind!r} cannot render a swept grid",
                hint="drop the [sweep] section or the [present] block")
        if kind == "figure" and "title" not in self.present:
            raise ScenarioError("present.title",
                                "is required for kind 'figure'")
        series = self.present.get("series", [])
        if not series:
            raise ScenarioError(
                "present.series", f"kind {kind!r} requires at least "
                                  f"one [[present.series]] entry")
        cells = self.cells()

        def check_matches(field, coords):
            matched = [
                cell for cell in cells
                if all(getattr(cell, axis) == coords[axis]
                       for axis in ("level", "mode", "structure")
                       if axis in coords)
            ]
            if not matched:
                raise ScenarioError(
                    field, f"matches no grid cell ({coords})",
                    hint="check the [targets]/[[grid]] axes")
            return matched

        series_workloads = []
        for i, entry in enumerate(series):
            _check_keys(f"present.series[{i}]", entry,
                        ("name", "level", "mode", "structure"))
            for required in ("name", "level", "mode"):
                if required not in entry:
                    raise ScenarioError(
                        f"present.series[{i}].{required}", "is required")
            matched = check_matches(f"present.series[{i}]", entry)
            series_workloads.append(
                (i, {cell.workload for cell in matched}))
        if kind == "figure":
            # The grouped bar chart indexes every series by the first
            # series' workload labels -- the sets must agree.
            _, first = series_workloads[0]
            for i, workloads in series_workloads[1:]:
                if workloads != first:
                    raise ScenarioError(
                        f"present.series[{i}]",
                        f"covers workloads {sorted(workloads)} but "
                        f"series[0] covers {sorted(first)}",
                        hint="figure series must chart the same "
                             "workload set")
        comparisons = self.present.get("comparisons", [])
        if kind == "headline" and not comparisons:
            raise ScenarioError(
                "present.comparisons",
                "kind 'headline' requires [[present.comparisons]]")
        for i, comp in enumerate(comparisons):
            _check_keys(f"present.comparisons[{i}]", comp,
                        ("name", "structure", "mode", "gefin", "rtl"))
            for required in ("name", "structure", "gefin", "rtl"):
                if required not in comp:
                    raise ScenarioError(
                        f"present.comparisons[{i}].{required}",
                        "is required")
            for side in ("gefin", "rtl"):
                _check_keys(f"present.comparisons[{i}].{side}",
                            comp[side], ("level", "mode", "structure"))
            gefin = check_matches(f"present.comparisons[{i}].gefin",
                                  comp["gefin"])
            rtl = check_matches(f"present.comparisons[{i}].rtl",
                                comp["rtl"])
            # The renderer pairs each gefin-side workload with exactly
            # one rtl-side result.
            rtl_workloads = [cell.workload for cell in rtl]
            for cell in gefin:
                if rtl_workloads.count(cell.workload) != 1:
                    raise ScenarioError(
                        f"present.comparisons[{i}].rtl",
                        f"needs exactly one cell for workload "
                        f"{cell.workload!r}, found "
                        f"{rtl_workloads.count(cell.workload)}")

    # ------------------------------------------------------------------
    # grid expansion
    # ------------------------------------------------------------------

    def resolved_samples(self):
        """The per-cell fault budget (``None`` defers to the
        environment-tunable default, as the CLI always has)."""
        if self.samples is not None:
            return self.samples
        from repro.core.study import default_samples

        return default_samples()

    def cells(self):
        """Expand the grid: sweep axes (outermost, declaration order)
        x grid blocks x levels x workloads x structures x modes.

        Cell order is deterministic; duplicate coordinates (e.g. two
        blocks overlapping) are dropped keeping the first occurrence.
        """
        samples = self.resolved_samples()
        sweep_names = [axis for axis, _ in self.sweep]
        sweep_values = [values for _, values in self.sweep]
        cells = []
        seen = set()
        for combo in itertools.product(*sweep_values):
            coords = dict(zip(sweep_names, combo))
            for block in self.blocks:
                levels = (coords["level"],) if "level" in coords \
                    else block.levels
                for level in levels:
                    for cell in self._block_cells(block, level, coords,
                                                  samples):
                        if cell.identity() in seen:
                            continue
                        seen.add(cell.identity())
                        cells.append(dataclasses.replace(
                            cell, index=len(cells)))
        return tuple(cells)

    def _block_cells(self, block, level, coords, samples):
        workloads = (coords["workload"],) if "workload" in coords \
            else block.workloads
        structures = (coords["structure"],) if "structure" in coords \
            else block.structures
        modes = (coords["mode"],) if "mode" in coords else block.modes
        axes = tuple(coords.items())
        # Per-cell seeds must derive only from *result-affecting*
        # coordinates: cells differing in execution-only axes (prune,
        # jobs, warm_start) must draw identical fault samples, or the
        # exactness/invariance contracts those sweeps exist to check
        # would compare different workloads.
        seed_axes = tuple((k, v) for k, v in axes
                          if k in ("samples", "seed", "window",
                                   "distribution"))
        for workload in workloads:
            for structure in structures:
                for mode in modes:
                    seed = coords.get("seed", self.seed)
                    if self.seed_policy == "per-cell":
                        seed = _derive_seed(
                            seed, f"{level}/{workload}/{structure}/"
                                  f"{mode}/{seed_axes}")
                    yield CellSpec(
                        index=-1, level=level, workload=workload,
                        structure=structure, mode=mode,
                        samples=coords.get("samples", samples),
                        seed=seed,
                        window=coords.get("window", self.window),
                        distribution=coords.get("distribution",
                                                self.distribution),
                        prune=coords.get("prune", self.prune),
                        jobs=coords.get("jobs", self.jobs),
                        batch_size=self.batch_size,
                        warm_start=coords.get("warm_start",
                                              self.warm_start),
                        retries=self.retries,
                        batch_timeout=self.batch_timeout,
                        lanes=self.lanes,
                        axes=axes,
                    )

    def cell(self, level, workload, structure, mode, **overrides):
        """One ad-hoc cell carrying this spec's budget/execution knobs
        (the compatibility path :class:`repro.core.study
        .CrossLevelStudy` uses to keep its legacy call shape)."""
        base = dict(
            index=-1, level=level, workload=workload,
            structure=structure, mode=mode,
            samples=self.resolved_samples(), seed=self.seed,
            window=self.window, distribution=self.distribution,
            prune=self.prune, jobs=self.jobs,
            batch_size=self.batch_size, warm_start=self.warm_start,
            retries=self.retries, batch_timeout=self.batch_timeout,
            lanes=self.lanes,
        )
        base.update(overrides)
        return CellSpec(**base)

    # ------------------------------------------------------------------

    def describe(self):
        """One run-header line (shared knob table; printed by the CLI)."""
        from repro.scenario.knobs import describe_knobs

        cells = self.cells()
        head = (f"scenario {self.name}: {len(cells)} cells x "
                f"{self.resolved_samples()} faults")
        if self.sweep:
            axes = " x ".join(f"{axis}[{len(values)}]"
                              for axis, values in self.sweep)
            head += f", sweep {axes}"
        window = self.window
        if window == "scaled":
            from repro.injection.campaign import SCALED_WINDOW

            window = SCALED_WINDOW
        elif window == "to-end":
            window = None
        return describe_knobs(head, {
            "window": window,
            "distribution": self.distribution,
            "seed": self.seed,
            "warm_start": self.warm_start,
            "prune": self.prune,
            "parallel": (self.jobs, self.batch_size, None),
            "lanes": self.lanes,
            "retries": self.retries,
            "batch_timeout": self.batch_timeout,
            "store": self.store,
            "resume": self.resume,
        })

    def __repr__(self):
        return (f"ScenarioSpec({self.name!r}, blocks={len(self.blocks)},"
                f" sweep={[a for a, _ in self.sweep]})")


# ----------------------------------------------------------------------
# loading and overrides
# ----------------------------------------------------------------------

def _parse_override_value(text):
    """Parse one ``--set`` value: TOML scalar/array syntax when it
    parses, else a bare string; top-level commas split into a list."""
    import tomllib

    def scalar(fragment):
        try:
            return tomllib.loads(f"v = {fragment}")["v"]
        except tomllib.TOMLDecodeError:
            return fragment

    if "," in text and not text.startswith("["):
        return [scalar(part.strip()) for part in text.split(",")]
    value = scalar(text)
    return value


def parse_overrides(pairs):
    """``["faults.samples=10", ...]`` -> nested mapping updates.

    An entry may also be a pre-parsed ``((section, key), value)``
    tuple, whose value is applied verbatim -- the CLI uses this for
    flags like ``--store`` whose values must never be coerced through
    the TOML-scalar parsing (a directory named ``2024`` is a string).
    """
    updates = []
    for pair in pairs:
        if isinstance(pair, tuple):
            path, value = pair
            updates.append((list(path), value))
            continue
        key, sep, value = pair.partition("=")
        if not sep or not key.strip():
            raise ScenarioError(
                "--set", f"expected section.key=value, got {pair!r}")
        path = key.strip().split(".")
        if len(path) < 2:
            raise ScenarioError(
                f"--set {key.strip()}",
                "expected a dotted path like faults.samples")
        updates.append((path, _parse_override_value(value)))
    return updates


def apply_overrides(mapping, pairs):
    """Apply ``--set section.key=value`` pairs to a raw scenario
    mapping (before validation, so bad names/values fail through the
    standard spec errors, naming the field)."""
    for path, value in parse_overrides(pairs):
        target = mapping
        for part in path[:-1]:
            node = target.setdefault(part, {})
            if not isinstance(node, dict):
                raise ScenarioError(
                    ".".join(path),
                    f"cannot override inside non-table {part!r}")
            target = node
        target[path[-1]] = value
    return mapping


def load_mapping(path):
    """Parse a scenario file to a plain mapping (TOML or JSON by
    extension)."""
    path = pathlib.Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise ScenarioError(str(path), f"cannot read scenario file: "
                                       f"{exc}") from None
    if path.suffix == ".json":
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ScenarioError(str(path), f"invalid JSON: {exc}") \
                from None
    if path.suffix == ".toml":
        import tomllib

        try:
            return tomllib.loads(raw.decode())
        except tomllib.TOMLDecodeError as exc:
            raise ScenarioError(str(path), f"invalid TOML: {exc}") \
                from None
    raise ScenarioError(str(path),
                        "unknown scenario format (use .toml or .json)")


def load_scenario(path, overrides=()):
    """Load, override and validate a scenario file."""
    mapping = load_mapping(path)
    if overrides:
        apply_overrides(mapping, overrides)
    return ScenarioSpec.from_mapping(mapping,
                                     source=pathlib.Path(path).name)
