"""Lane-engine dispatch: one entry point, per-tier backends.

``LaneEngine(runner, sim, lanes)`` is the factory the campaign layer
calls for any simulator whose ``BATCHABLE`` protocol flag is set; it
returns the backend matching the simulator's registry level:

* ``arch`` -- :class:`repro.batch.arch.ArchLaneEngine`, the
  numpy-vectorized ISS lockstep engine (PR 6), now on copy-on-write
  paged lane memory (:mod:`repro.batch.memory`);
* ``rtl`` -- :class:`repro.batch.rtl.RTLLaneEngine`, lane arrays over
  the in-order pipeline's register file, CPSR and latches, with
  drop-to-scalar fallback on pipeline-control divergence.

Every backend exposes the same contract: ``run(specs)`` returns
records positionally aligned with ``specs`` and bit-identical to the
scalar :meth:`FaultRunner.run_one` sequence, plus the deterministic
cost counters ``batch_cycles`` (global stepped cycles) and
``peak_lane_bytes`` (high-water lane-memory bytes).
"""


def LaneEngine(runner, sim, lanes):
    """Build the lane backend for ``sim``'s tier.

    Kept callable under the PR 6 name so the campaign layer (and any
    external caller) is indifferent to the per-tier split.
    """
    level = type(sim).LEVEL
    if level == "rtl":
        from repro.batch.rtl import RTLLaneEngine

        return RTLLaneEngine(runner, sim, lanes)
    if level == "arch":
        from repro.batch.arch import ArchLaneEngine

        return ArchLaneEngine(runner, sim, lanes)
    raise ValueError(
        f"no lane backend for level {level!r} (BATCHABLE misconfigured?)")
