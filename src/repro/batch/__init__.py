"""repro.batch: the vectorized batch-fault lane engine (arch tier).

``CampaignConfig(batch_lanes=N)`` makes :class:`~repro.injection
.campaign.FaultRunner` hand same-segment fault groups to
:class:`LaneEngine`, which executes the N faulty runs as one
numpy-vectorized pass over ``(N, cells)`` lane arrays instead of N
scalar interpreter replays.  The records are bit-identical to the
scalar path (``tests/test_batch_equivalence.py``); only the simulated
work shrinks.  See DESIGN.md, "Lane engine".
"""

from repro.batch.engine import LaneEngine

__all__ = ["LaneEngine"]
