"""repro.batch: the vectorized batch-fault lane engine.

``CampaignConfig(batch_lanes=N)`` makes :class:`~repro.injection
.campaign.FaultRunner` hand same-segment fault groups to
:func:`LaneEngine`, which executes the N faulty runs as one
vectorized pass over lane arrays instead of N scalar replays -- the
arch tier as a numpy ISS lockstep (:mod:`repro.batch.arch`), the rtl
tier as lane arrays over the in-order pipeline with drop-to-scalar
divergence fallback (:mod:`repro.batch.rtl`).  Lane RAM views share a
copy-on-write paged store (:mod:`repro.batch.memory`), so per-lane
memory scales with divergent pages, not footprint.  The records are
bit-identical to the scalar path (``tests/test_batch_equivalence.py``,
``tests/test_batch_rtl_equivalence.py``); only the simulated work
shrinks.  See DESIGN.md, "Lane engine".
"""

from repro.batch.engine import LaneEngine
from repro.batch.memory import LanePagedMemory

__all__ = ["LaneEngine", "LanePagedMemory"]
