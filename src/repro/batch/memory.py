"""Copy-on-write paged lane memory for the batch engine.

The first lane engine (PR 6) gave every lane -- N fault lanes plus the
reference lane -- a dense private copy of the group checkpoint's RAM
image, so memory scaled as O(lanes x footprint) and capped usable lane
counts on realistic workloads.  But the lanes *share* almost all of
that memory by construction: every lane starts from the same golden
image, the reference lane replays the golden store stream, and a fault
lane's memory diverges from the reference only at the (rare) stores
whose operands the flipped bit actually reached.

:class:`LanePagedMemory` exploits that with three sharing levels per
page:

* the immutable **base** image (the group checkpoint's RAM bytes);
* the **reference overlay** -- pages the reference lane has written,
  shared by every lane that has not diverged on that page;
* per-lane **private pages**, materialized copy-on-write at the first
  store that would make the lane's view differ from the shared one.

A lane's view of byte ``a`` is ``private[page] ?? ref[page] ?? base``.
The write protocol keeps that exact: when a reference store changes
the shared view, every live lane *not* making the identical store
snapshots the page first (pre-store content, what its dense copy would
hold); a non-reference store lands in a private page unless the lane's
view already equals the stored value.  Stores that leave a lane's view
unchanged -- the overwhelmingly common case, since most faulty lanes
keep executing the golden store stream -- allocate nothing.

Digests stay exact rather than approximated: :meth:`compose` rebuilds
the full dense image (base + overlays) whenever the engine needs the
bytes a per-lane RAM copy would hold -- state digests at golden
checkpoint boundaries, hardware-state classification, scalar export.
Page-granular dirty tracking bounds the *storage*, never the
observation, so the PR 3 early-stop argument is untouched.

``allocated_bytes``/``peak_bytes`` count every materialized page
(reference overlay included) and are deterministic for a fixed seed --
the peak-lane-memory bench series asserts sub-linear growth against
the dense ``lanes x footprint`` baseline.
"""

import zlib

import numpy as np

#: Default page granularity.  4 KiB keeps the privatization copies an
#: order of magnitude below the smallest workload footprint while the
#: page maps stay tiny (tens of entries).
PAGE_SIZE = 4096


class LanePagedMemory:
    """``width`` lane views of one RAM image, shared copy-on-write.

    ``ref`` names the reference lane: its stores update the shared
    overlay in place, every other lane's stores privatize on first
    divergence.  Aligned power-of-two accesses (the only kind the
    engines issue after their fault checks) never straddle a page.
    """

    def __init__(self, base, width, ref, page_size=PAGE_SIZE):
        if page_size & (page_size - 1):
            raise ValueError("page_size must be a power of two")
        self.base = np.frombuffer(bytes(base), dtype=np.uint8)
        self.size = self.base.size
        self.width = width
        self.ref = ref
        self.page_size = page_size
        self._shift = page_size.bit_length() - 1
        self._mask = page_size - 1
        #: Pages the reference lane has written (page index -> bytes).
        self.ref_pages = {}
        #: Per-lane private pages (page index -> bytes).
        self.lane_pages = [dict() for _ in range(width)]
        #: Lanes still reading through the store; released lanes no
        #: longer participate in copy-on-write snapshots.
        self.live = set(range(width))
        #: Currently materialized page bytes (ref overlay + private).
        self.allocated_bytes = 0
        #: High-water mark of ``allocated_bytes`` over the group.
        self.peak_bytes = 0

    # -- reads ---------------------------------------------------------

    def _page_view(self, k, p):
        page = self.lane_pages[k].get(p)
        if page is None:
            page = self.ref_pages.get(p)
        if page is None:
            start = p << self._shift
            page = self.base[start:start + self.page_size]
        return page

    def read(self, k, addr, size):
        """Little-endian ``size``-byte integer at ``addr`` as lane
        ``k`` sees it (``addr`` aligned to ``size``)."""
        page = self._page_view(k, addr >> self._shift)
        off = addr & self._mask
        return int.from_bytes(page[off:off + size].tobytes(), "little")

    def read_byte(self, k, addr):
        return int(self._page_view(k, addr >> self._shift)
                   [addr & self._mask])

    def view_bytes(self, k, addr, n):
        """Raw ``n`` bytes at ``addr`` as lane ``k`` sees them (bus-beat
        payloads; beats are line-interior and never straddle a page)."""
        page = self._page_view(k, addr >> self._shift)
        off = addr & self._mask
        return page[off:off + n].tobytes()

    def gather(self, lanes, addrs, size):
        """Per-lane reads as one uint32 array (the vector-path load).

        Fast path: a uniform address over lanes that all share the
        touched page is one shared read broadcast.
        """
        first = addrs[0]
        if all(a == first for a in addrs):
            p = first >> self._shift
            if all(p not in self.lane_pages[k] for k in lanes):
                return np.full(len(lanes), self.read(self.ref, first,
                                                     size),
                               dtype=np.uint32)
        out = np.empty(len(lanes), dtype=np.uint32)
        for i, k in enumerate(lanes):
            out[i] = self.read(k, addrs[i], size)
        return out

    # -- writes --------------------------------------------------------

    def _account(self, nbytes):
        self.allocated_bytes += nbytes
        if self.allocated_bytes > self.peak_bytes:
            self.peak_bytes = self.allocated_bytes

    def _base_page(self, p):
        start = p << self._shift
        return self.base[start:start + self.page_size]

    def _privatize(self, k, p):
        """Materialize lane ``k``'s private copy of page ``p`` from its
        current shared view (pre-instant content)."""
        page = self.ref_pages.get(p)
        copy = (self._base_page(p) if page is None else page).copy()
        self.lane_pages[k][p] = copy
        self._account(copy.size)
        return copy

    def _ref_page(self, p):
        page = self.ref_pages.get(p)
        if page is None:
            page = self._base_page(p).copy()
            self.ref_pages[p] = page
            self._account(page.size)
        return page

    @staticmethod
    def _store(page, off, size, value):
        page[off:off + size] = np.frombuffer(
            value.to_bytes(size, "little"), dtype=np.uint8)

    def write(self, writers, addrs, size, values):
        """One store instant: ``writers[i]`` stores ``values[i]``
        (little-endian, ``size`` bytes, already masked) at ``addrs[i]``.

        The reference lane's store mutates the shared overlay, so every
        live lane *not* performing the identical store snapshots the
        touched page first -- the snapshot holds the pre-instant bytes,
        exactly what that lane's dense RAM copy would hold.  Other
        writers then land privately unless their view already equals
        the stored value (a content no-op allocates nothing).
        """
        ref = self.ref
        ref_pos = None
        for pos, k in enumerate(writers):
            if k == ref:
                ref_pos = pos
        if ref_pos is not None:
            ref_addr = addrs[ref_pos]
            ref_value = values[ref_pos]
            if self.read(ref, ref_addr, size) != ref_value:
                p = ref_addr >> self._shift
                for k in self.live:
                    if k == ref or p in self.lane_pages[k]:
                        continue
                    identical = any(
                        wk == k and addrs[i] == ref_addr
                        and values[i] == ref_value
                        for i, wk in enumerate(writers))
                    if not identical:
                        self._privatize(k, p)
                self._store(self._ref_page(p), ref_addr & self._mask,
                            size, ref_value)
        for pos, k in enumerate(writers):
            if k == ref:
                continue
            addr = addrs[pos]
            value = values[pos]
            if self.read(k, addr, size) == value:
                continue
            p = addr >> self._shift
            page = self.lane_pages[k].get(p)
            if page is None:
                page = self._privatize(k, p)
            self._store(page, addr & self._mask, size, value)

    # -- composition / lifecycle ---------------------------------------

    def compose(self, k):
        """Lane ``k``'s full dense image (bytes): exactly what its
        per-lane RAM copy would hold, for digests and scalar export."""
        image = bytearray(self.base)
        for p, page in self.ref_pages.items():
            start = p << self._shift
            image[start:start + page.size] = page.tobytes()
        for p, page in self.lane_pages[k].items():
            start = p << self._shift
            image[start:start + page.size] = page.tobytes()
        return bytes(image)

    def crc(self, k):
        """CRC32 of the composed image (hardware-state digests)."""
        return zlib.crc32(self.compose(k)) & 0xFFFFFFFF

    def release(self, k):
        """Drop lane ``k``'s private pages and stop snapshotting for it
        (retired or exported lanes)."""
        self.live.discard(k)
        pages = self.lane_pages[k]
        self.allocated_bytes -= sum(p.size for p in pages.values())
        pages.clear()
