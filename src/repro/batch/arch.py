"""The arch-tier lane backend: N faulty ISS runs in one numpy pass.

The scalar campaign path replays the interpreter once per fault:
restore the nearest golden checkpoint, advance to the injection
instant, flip one bit and run the post-injection tail.  For the arch
tier every one of those replays walks the *same* golden instruction
stream, because an injected run only leaves the golden control path at
the (rare) instruction whose operands the flipped bit actually reaches.
The lane engine exploits that: it groups faults whose injection
instants share a checkpoint segment, seeks *once*, and executes all
lanes in lockstep --

* register file and CPSR state live in ``(N+1, cells)`` numpy arrays
  (lane ``N`` is the fault-free **reference** lane that supplies the
  shared fetch/decode stream); lane RAM views share one copy-on-write
  :class:`~repro.batch.memory.LanePagedMemory` (golden base image +
  reference overlay + per-lane private pages), so per-lane memory is
  O(divergent pages), not O(footprint);
* each decoded golden instruction is applied across all live convergent
  lanes with masked scatters (per-lane condition codes, per-lane
  barrel-shifter carries, per-lane memory faults);
* a lane whose PC leaves the reference PC -- the divergent minority --
  is exported to a private scalar :class:`~repro.isa.interp
  .Interpreter` seeded from its lane state and stepped per-cycle from
  then on (a diverged lane never re-vectorizes);
* lanes retire early exactly where the scalar path stops them: at a
  golden-digest match (Masked, the PR 3 early-stop argument), at their
  syscall exit, window end, latched machine fault or watchdog deadline.

Every event -- injection, digest comparison, classification -- happens
at the same simulated cycle, in the same order, on the same state as
the scalar :meth:`FaultRunner.run_one`, so the per-fault records are
bit-identical; ``tests/test_batch_equivalence.py`` pins that.

The engine's deterministic cost metrics are :attr:`ArchLaneEngine
.batch_cycles` (global stepped cycles summed over groups -- one shared
replay + one shared tail per group, instead of one per fault; the
``batch_speedup`` bench asserts the scalar-vs-batch cycle ratio) and
:attr:`ArchLaneEngine.peak_lane_bytes` (high-water copy-on-write page
bytes; the peak-lane-memory bench asserts sub-linear growth in N).
"""

import bisect
import time
import zlib

import numpy as np

from repro.batch.memory import LanePagedMemory
from repro.errors import SimFault
from repro.injection.classify import FaultClass, FaultRecord, compare_traces
from repro.isa import valu
from repro.isa.flags import Flags
from repro.isa.instructions import (
    COMPARE_OPS,
    DP_IMM_OPS,
    DP_REG_FORM,
    DP_REG_OPS,
    LOAD_OPS,
    MEM_SIZE,
    Op,
    UNARY_OPS,
)
from repro.isa.interp import Interpreter
from repro.isa.syscalls import SyscallEmulator, SyscallError
from repro.sim.base import RunStatus, _crc

MASK32 = 0xFFFFFFFF

#: Immediate-offset memory forms (register forms shift ``rm`` instead).
_IMM_MEM_OPS = (Op.LDR, Op.STR, Op.LDRB, Op.STRB, Op.LDRH, Op.STRH)


class ArchLaneEngine:
    """Drive a :class:`FaultRunner`'s faults through vectorized groups.

    ``lanes`` is the fault-lane width N; each group additionally
    carries the fault-free reference lane.  ``run()`` returns records
    positionally aligned with ``specs`` (the caller's sample order).
    """

    def __init__(self, runner, sim, lanes):
        self.runner = runner
        self.sim = sim
        self.lanes = max(int(lanes), 1)
        #: Global cycles the engine stepped (shared replay + shared
        #: tails), the deterministic batch-cost metric.
        self.batch_cycles = 0
        #: High-water mark of copy-on-write page bytes over any one
        #: group (the deterministic lane-memory metric; a dense lane
        #: build would hold ``(N+1) * footprint`` here).
        self.peak_lane_bytes = 0

    def run(self, specs):
        records = [None] * len(specs)
        # Group faults by injection instant so each group's lanes share
        # one seek and overlap their post-injection windows.
        order = sorted(range(len(specs)),
                       key=lambda i: (specs[i].cycle, i))
        for start in range(0, len(order), self.lanes):
            chunk = order[start:start + self.lanes]
            group = _LaneGroup(self, [(i, specs[i]) for i in chunk])
            for index, record in group.run():
                records[index] = record
        return records


class _LaneGroup:
    """One vectorized group: N fault lanes + the reference lane."""

    def __init__(self, engine, items):
        self.engine = engine
        self.items = items  # [(original sample index, FaultSpec)]
        runner = engine.runner
        self.config = runner.config
        self.golden = runner.golden
        self.cache = runner.golden["cache"]
        self.deadline = runner.hang_deadline

    # -- group driver ------------------------------------------------------

    def run(self):
        cfg = self.config
        sim = self.engine.sim
        wall_start = time.perf_counter()
        min_cycle = min(fault.cycle for _, fault in self.items)
        _, self.restore_cycle = self.cache.seek(
            sim, min_cycle, warm=cfg.warm_start, max_cycles=self.deadline)
        status = sim.run(stop_cycle=min_cycle, max_cycles=self.deadline)
        if status is not RunStatus.STOPPED:
            # The golden run ends before the earliest injection instant;
            # every later instant is past program end too, so the whole
            # group lands in dead time (the scalar "after program end"
            # outcome, lane for lane).
            self.engine.batch_cycles += sim.cycle - self.restore_cycle
            wall = (time.perf_counter() - wall_start) / len(self.items)
            return [
                (index, FaultRecord(
                    fault, FaultClass.MASKED, "after program end",
                    sim_cycles=0, wall_seconds=wall,
                    replay_cycles=sim.cycle - self.restore_cycle))
                for index, fault in self.items
            ]
        self._init_lanes(sim, sim.checkpoint())
        self._events()
        while self.pending:
            self._step()
        self.engine.batch_cycles += self.cycle - self.restore_cycle
        self.engine.peak_lane_bytes = max(self.engine.peak_lane_bytes,
                                          self.store.peak_bytes)
        wall = (time.perf_counter() - wall_start) / len(self.items)
        out = []
        for k, (index, fault) in enumerate(self.items):
            fclass, detail, sim_cycles, replay = self.records[k]
            out.append((index, FaultRecord(
                fault, fclass, detail, sim_cycles=sim_cycles,
                wall_seconds=wall, replay_cycles=replay)))
        return out

    def _init_lanes(self, sim, cp):
        count = len(self.items)
        width = count + 1
        self.ref = count
        self.program = sim.program
        self.decode = self.program.decode_table()
        self.cpi = sim.core.cycles_per_inst
        self.regs = np.tile(np.array(cp["regs"], dtype=np.uint32),
                            (width, 1))
        flags = Flags.unpack(cp["flags"])
        self.n = np.full(width, flags.n, dtype=bool)
        self.z = np.full(width, flags.z, dtype=bool)
        self.c = np.full(width, flags.c, dtype=bool)
        self.v = np.full(width, flags.v, dtype=bool)
        self.pc = np.full(width, cp["pc"], dtype=np.uint32)
        #: All lane RAM views share the checkpoint image copy-on-write;
        #: the reference lane's stores update the shared overlay, fault
        #: lanes privatize pages only where their bytes actually differ.
        self.store = LanePagedMemory(cp["ram"], width, self.ref)
        self.ram_size = self.store.size
        self.emus = []
        for _ in range(width):
            emu = SyscallEmulator()
            emu.restore(cp["syscalls"])
            self.emus.append(emu)
        #: Golden pinout prefix at the group start (shared; each lane
        #: appends only its own post-start transactions).
        self.prefix_keys = [t.key() for t in cp["pinout"]]
        self.keys = [[] for _ in range(width)]
        self.halted = np.zeros(width, dtype=bool)
        self.sfaults = [None] * width
        self.diverged = {}
        self.cycle = cp["cycle"]
        self.icount = cp["icount"]
        # Per fault-lane campaign bookkeeping.
        self.faults = [fault for _, fault in self.items]
        self.injected = [False] * count
        self.replay = [0] * count
        self.ends = [
            None if self.config.window is None
            else fault.cycle + self.config.window
            for fault in self.faults
        ]
        self.early = (self.config.early_stop and type(sim).DRAIN_FREE
                      and self.cache.collect_digests)
        self.check = [False] * count
        self.nb = [0] * count
        self.pending = set(range(count))
        self.records = [None] * count

    def _step(self):
        """One global lockstep cycle: vector step the convergent lanes
        at the reference PC, scalar-step the diverged ones, advance the
        clock, then fire the per-lane event pass."""
        convergent = [k for k in self.pending if k not in self.diverged]
        if convergent and not self.halted[self.ref]:
            self._vector_step(convergent)
        for k in self.pending:
            interp = self.diverged.get(k)
            if interp is not None:
                try:
                    interp.step()
                except SimFault as exc:
                    self.sfaults[k] = exc
        self.cycle += self.cpi
        self._events()
        self._sync_divergence()

    def _sync_divergence(self):
        """Export lanes that left the golden control path.

        A convergent lane executes the instruction at the reference PC,
        so the moment its PC differs it must fall back to private
        scalar stepping before the next fetch.  When the reference lane
        halts there is no shared stream left at all: every surviving
        convergent lane (they all took a different path out of the
        golden exit) is exported.
        """
        survivors = [k for k in self.pending
                     if k not in self.diverged and not self.halted[k]]
        if self.halted[self.ref]:
            for k in survivors:
                self._export(k)
            return
        ref_pc = self.pc[self.ref]
        for k in survivors:
            if self.pc[k] != ref_pc:
                self._export(k)

    def _export(self, k):
        """Hand lane ``k`` its own scalar Interpreter, seeded from the
        lane arrays -- the exact state a scalar run would hold here.
        Its dense RAM image is composed once from the paged store, and
        the lane leaves the copy-on-write live set."""
        interp = Interpreter(self.program)
        interp.ram.restore(self.store.compose(k))
        interp.regs.restore([int(x) for x in self.regs[k]])
        interp.flags = Flags(n=bool(self.n[k]), z=bool(self.z[k]),
                             c=bool(self.c[k]), v=bool(self.v[k]))
        interp.pc = int(self.pc[k])
        interp.inst_count = self.icount
        interp.syscalls = self.emus[k]
        keys = self.keys[k]

        def publish(addr, size, value, _keys=keys):
            data = (value & ((1 << (8 * size)) - 1)).to_bytes(size,
                                                              "little")
            _keys.append(("wb", addr, data))

        interp.store_listener = publish
        self.diverged[k] = interp
        self.store.release(k)

    # -- the campaign event pass -------------------------------------------

    def _events(self):
        """Per-lane replica of the scalar run loop's check order at one
        cycle instant: exited -> machine fault -> digest boundary ->
        window end -> watchdog; uninjected lanes inject (or retire into
        dead time) first, exactly like ``run_one``'s pre-injection
        advance."""
        cyc = self.cycle
        for k in sorted(self.pending):
            fault = self.faults[k]
            if not self.injected[k]:
                if self._lane_halted(k):
                    self._retire(k, FaultClass.MASKED, "after program end",
                                 sim_cycles=0,
                                 replay=cyc - self.restore_cycle)
                    continue
                if cyc < fault.cycle:
                    continue
                self._inject(k)
            if self._lane_halted(k):
                fclass, detail = self._classify(k, RunStatus.EXITED)
                self._retire(k, fclass, detail)
                continue
            latched = self._lane_fault(k)
            if latched is not None:
                self._retire(k, FaultClass.DUE, str(latched))
                continue
            if self.check[k]:
                self._boundary_events(k, cyc)
                if k not in self.pending:
                    continue
            end = self.ends[k]
            if end is not None and cyc >= end:
                fclass, detail = self._classify(k, RunStatus.STOPPED)
                self._retire(k, fclass, detail)
                continue
            if cyc >= self.deadline:
                self._retire(k, FaultClass.HANG, "watchdog expired")

    def _boundary_events(self, k, cyc):
        """The early-stop comparator at golden checkpoint boundaries
        (mirrors ``FaultRunner._finish``: boundaries at or past the
        window end are never compared)."""
        cache = self.cache
        end = self.ends[k]
        while (self.nb[k] < cache.count
               and cache.cycles[self.nb[k]] <= cyc):
            boundary = cache.cycles[self.nb[k]]
            if end is not None and boundary >= end:
                self.check[k] = False
                return
            matched = (boundary == cyc
                       and self._digest(k) == cache.digests[self.nb[k]])
            self.nb[k] += 1
            if matched:
                self._retire(k, FaultClass.MASKED,
                             "re-converged with golden")
                return

    def _inject(self, k):
        fault = self.faults[k]
        self.injected[k] = True
        self.replay[k] = self.cycle - self.restore_cycle
        if fault.structure == "cpsr":
            pack = self._lane_flag_pack(k) ^ (1 << fault.bit)
            flags = Flags.unpack(pack)
            interp = self.diverged.get(k)
            if interp is not None:  # pre-injection lanes never diverge
                interp.flags = flags
            else:
                self.n[k] = flags.n
                self.z[k] = flags.z
                self.c[k] = flags.c
                self.v[k] = flags.v
        else:  # regfile
            reg, bit = divmod(fault.bit, 32)
            self.regs[k, reg] ^= np.uint32(1 << bit)
        if self.early:
            self.check[k] = True
            self.nb[k] = bisect.bisect_right(self.cache.cycles,
                                             fault.cycle)

    def _retire(self, k, fclass, detail, sim_cycles=None, replay=None):
        if sim_cycles is None:
            sim_cycles = self.cycle - self.faults[k].cycle
        if replay is None:
            replay = self.replay[k]
        self.records[k] = (fclass, detail, sim_cycles, replay)
        self.pending.discard(k)
        self.diverged.pop(k, None)
        self.store.release(k)

    # -- per-lane observation ----------------------------------------------

    def _lane_halted(self, k):
        interp = self.diverged.get(k)
        if interp is not None:
            return interp.halted
        return bool(self.halted[k])

    def _lane_fault(self, k):
        return self.sfaults[k]

    def _lane_flag_pack(self, k):
        interp = self.diverged.get(k)
        if interp is not None:
            return interp.flags.pack()
        return ((int(self.n[k]) << 3) | (int(self.z[k]) << 2)
                | (int(self.c[k]) << 1) | int(self.v[k]))

    def _lane_output(self, k):
        return bytes(self.emus[k].output)

    def _lane_keys(self, k):
        return self.prefix_keys + self.keys[k]

    def _digest(self, k):
        """Bit-compatible with ``SimulatorBase.state_digest()`` on the
        arch backend (a live, unfaulted, unexited lane).  The RAM term
        hashes the *composed* lane image -- page-granular storage with
        full-image observation, so the PR 3 early-stop argument is
        unchanged."""
        interp = self.diverged.get(k)
        if interp is not None:
            regs = tuple(interp.regs.snapshot()[:15])
            flags = interp.flags.pack()
            pc = interp.pc
            ram = interp.ram.snapshot()
            syscalls = interp.syscalls.snapshot()
            icount = interp.inst_count
        else:
            regs = tuple(int(x) for x in self.regs[k, :15])
            flags = self._lane_flag_pack(k)
            pc = int(self.pc[k])
            ram = self.store.compose(k)
            syscalls = self.emus[k].snapshot()
            icount = self.icount
        return (self.cycle, icount, False, True, regs, flags, pc,
                _crc(ram), syscalls, _crc(self._lane_keys(k)), ())

    def _hw_state(self, k):
        """Mirror of ``observation.hardware_state_digest`` for a lane
        (the arch tier has no caches: RAM is the coherent image)."""
        interp = self.diverged.get(k)
        if interp is not None:
            regs = tuple(interp.regs.snapshot()[:15])
            flags = interp.flags.pack()
            ram = interp.ram.snapshot()
        else:
            regs = tuple(int(x) for x in self.regs[k, :15])
            flags = self._lane_flag_pack(k)
            ram = self.store.compose(k)
        return ((regs, flags), zlib.crc32(bytes(ram)) & 0xFFFFFFFF)

    def _classify(self, k, status):
        """Replica of ``FaultRunner._classify`` over lane state (DUE
        and HANG are handled at the event-pass call sites)."""
        cfg = self.config
        golden = self.golden
        output = self._lane_output(k)
        if cfg.observation == "software":
            if status is RunStatus.EXITED:
                if output == golden["output"]:
                    return FaultClass.MASKED, ""
                return FaultClass.SDC, "program output differs"
            if golden["output"].startswith(output):
                return FaultClass.MASKED, "window expired, prefix clean"
            return FaultClass.SDC, "output prefix differs"
        if cfg.observation == "arch":
            if output != golden["output"]:
                return FaultClass.SDC, "program output differs"
            if self._hw_state(k) != golden["hw_state"]:
                return FaultClass.LATENT, "hardware state differs"
            return FaultClass.MASKED, ""
        trace_base = self.cache.trace_base(self.faults[k].cycle)
        golden_suffix = golden["pinout_keys"][trace_base:]
        faulty_suffix = self._lane_keys(k)[trace_base:]
        if status is RunStatus.EXITED:
            match = faulty_suffix == golden_suffix
        else:
            match = compare_traces(golden_suffix, faulty_suffix)
        if match:
            return FaultClass.MASKED, ""
        return FaultClass.MISMATCH, "pinout trace deviates"

    # -- vectorized execution ----------------------------------------------

    def _read(self, index, lanes, inst):
        """``Interpreter._read_reg``: r15 reads as the fetch address
        plus 8 on every lane."""
        if index == 15:
            return np.full(lanes.size, (inst.addr + 8) & MASK32,
                           dtype=np.uint32)
        return self.regs[lanes, index]

    def _write(self, index, lanes, values):
        """``Interpreter._write_reg``: a write to PC is a branch."""
        if index == 15:
            self.pc[lanes] = np.asarray(values,
                                        dtype=np.uint32) & np.uint32(
                                            0xFFFFFFFC)
        else:
            self.regs[lanes, index] = values

    def _latch(self, k, exc):
        if k == self.ref:
            raise AssertionError(
                f"reference lane left the golden path: {exc}")
        self.sfaults[k] = exc

    def _latch_all(self, lanes, exc):
        for k in lanes.tolist():
            self._latch(k, exc)

    def _latch_mem_faults(self, lanes, addr, size, store):
        """Apply the scalar align-then-range check order per lane;
        returns the boolean keep-mask of lanes that did not fault."""
        align_bad = (addr % size != 0) if size > 1 else np.zeros(
            lanes.size, dtype=bool)
        oob = (addr + size) > self.ram_size
        word = "store" if store else "load"
        for pos in np.flatnonzero(align_bad).tolist():
            self._latch(int(lanes[pos]),
                        SimFault("align-fault", f"{size}-byte {word}",
                                 addr=int(addr[pos])))
        for pos in np.flatnonzero(oob & ~align_bad).tolist():
            self._latch(int(lanes[pos]),
                        SimFault("mem-fault",
                                 f"access of {size} bytes outside RAM",
                                 addr=int(addr[pos])))
        return ~(align_bad | oob)

    def _ram_read(self, lanes, addr, size):
        return self.store.gather(lanes.tolist(), addr.tolist(), size)

    def _ram_write(self, lanes, addr, size, value):
        mask = (1 << (8 * size)) - 1
        writers = lanes.tolist()
        addrs = addr.tolist()
        values = [int(v) & mask for v in value.tolist()]
        self.store.write(writers, addrs, size, values)
        for pos, k in enumerate(writers):
            data = values[pos].to_bytes(size, "little")
            self.keys[k].append(("wb", addrs[pos], data))

    def _vector_step(self, convergent):
        lanes = np.array(convergent + [self.ref], dtype=np.intp)
        inst = self.decode.get(int(self.pc[self.ref]))
        if inst is None:  # the reference replays the golden trajectory
            raise AssertionError(
                f"reference lane fetched outside text at "
                f"{int(self.pc[self.ref]):#010x}")
        self.icount += 1
        if inst.cond != 14:
            passed = valu.cond_passed(inst.cond, self.n[lanes],
                                      self.z[lanes], self.c[lanes],
                                      self.v[lanes])
            doers = lanes[passed]
        else:
            doers = lanes
        self.pc[lanes] = np.uint32((inst.addr + 4) & MASK32)
        if doers.size:
            self._execute(inst, doers)

    def _execute(self, inst, doers):
        op = inst.op
        if op in DP_REG_OPS or op in DP_IMM_OPS:
            self._exec_dp(inst, doers)
        elif op == Op.MOVW:
            self._write(inst.rd, doers, np.uint32(inst.imm & 0xFFFF))
        elif op == Op.MOVT:
            old = self._read(inst.rd, doers, inst)
            self._write(inst.rd, doers,
                        (old & np.uint32(0xFFFF))
                        | np.uint32((inst.imm & 0xFFFF) << 16))
        elif op in (Op.MUL, Op.MLA):
            result = valu.multiply(op,
                                   self._read(inst.rn, doers, inst),
                                   self._read(inst.rm, doers, inst),
                                   self._read(inst.ra, doers, inst))
            if inst.s:
                self.n[doers] = ((result >> np.uint32(31)) & 1).astype(
                    bool)
                self.z[doers] = result == 0
            self._write(inst.rd, doers, result)
        elif op in MEM_SIZE:
            self._exec_mem(inst, doers)
        elif op == Op.LDM:
            self._exec_ldm(inst, doers)
        elif op == Op.STM:
            self._exec_stm(inst, doers)
        elif op == Op.B:
            self.pc[doers] = np.uint32((inst.addr + inst.imm)
                                       & 0xFFFFFFFC)
        elif op == Op.BL:
            self.regs[doers, 14] = np.uint32((inst.addr + 4) & MASK32)
            self.pc[doers] = np.uint32((inst.addr + inst.imm)
                                       & 0xFFFFFFFC)
        elif op == Op.BX:
            self.pc[doers] = (self._read(inst.rm, doers, inst)
                              & np.uint32(0xFFFFFFFC))
        elif op == Op.SVC:
            self._exec_svc(inst, doers)
        elif op == Op.NOP:
            pass
        elif op == Op.HLT:
            self._latch_all(doers, SimFault("halt-trap",
                                            "executed HLT/pool word",
                                            addr=inst.addr))
        else:
            self._latch_all(doers, SimFault("undefined-inst", repr(op),
                                            addr=inst.addr))

    def _exec_dp(self, inst, doers):
        c_in = self.c[doers]
        v_in = self.v[doers]
        if inst.op in DP_IMM_OPS:
            op2 = np.full(doers.size, inst.imm & MASK32, dtype=np.uint32)
            shifter_carry = c_in
        else:
            value = self._read(inst.rm, doers, inst)
            if inst.shift_reg is not None:
                amount = (self._read(inst.shift_reg, doers, inst)
                          & np.uint32(0xFF))
            else:
                amount = inst.shift_amount
            op2, shifter_carry = valu.barrel_shift(
                value, inst.shift_kind, amount, c_in)
        op = DP_REG_FORM.get(inst.op, inst.op)
        if op in UNARY_OPS:
            rn_value = np.zeros(doers.size, dtype=np.uint32)
        else:
            rn_value = self._read(inst.rn, doers, inst)
        result, n, z, c, v = valu.dp_compute(op, rn_value, op2, c_in,
                                             v_in, shifter_carry)
        if inst.s or op in COMPARE_OPS:
            self.n[doers] = n
            self.z[doers] = z
            self.c[doers] = c
            self.v[doers] = v
        if op not in COMPARE_OPS:
            self._write(inst.rd, doers, result)

    def _exec_mem(self, inst, doers):
        size = MEM_SIZE[inst.op]
        base = self._read(inst.rn, doers, inst).astype(np.int64)
        if inst.op in _IMM_MEM_OPS:
            offset = np.full(doers.size, inst.imm, dtype=np.int64)
        else:
            shifted, _ = valu.barrel_shift(
                self._read(inst.rm, doers, inst), inst.shift_kind,
                inst.shift_amount, self.c[doers])
            offset = shifted.astype(np.int64)
        addr = (base + offset) & MASK32 if inst.pre else base
        load = inst.op in LOAD_OPS
        keep = self._latch_mem_faults(doers, addr, size,
                                      store=not load)
        ok = doers[keep]
        if ok.size:
            addr_ok = addr[keep]
            if load:
                value = self._ram_read(ok, addr_ok, size)
                self._write(inst.rd, ok, value)
            else:
                self._ram_write(ok, addr_ok, size,
                                self._read(inst.rd, ok, inst))
            if inst.writeback or not inst.pre:
                wb_value = ((base[keep] + offset[keep])
                            & MASK32).astype(np.uint32)
                if inst.rn != inst.rd or not load:
                    self._write(inst.rn, ok, wb_value)

    def _exec_ldm(self, inst, doers):
        base = self._read(inst.rn, doers, inst)
        # Interior addresses advance unmasked, exactly like the scalar
        # loop's Python-int `addr += 4` (an overflowing base walks off
        # the end of RAM rather than wrapping).
        addr = base.astype(np.uint64)
        alive = np.ones(doers.size, dtype=bool)
        count = 0
        for i in range(16):
            if not inst.reglist & (1 << i):
                continue
            lanes = doers[alive]
            if lanes.size:
                keep = self._latch_mem_faults(
                    lanes, addr[alive].astype(np.int64), 4,
                    store=False)
                alive[alive] = keep
                lanes = doers[alive]
                if lanes.size:
                    value = self._ram_read(
                        lanes, addr[alive].astype(np.int64), 4)
                    self._write(i, lanes, value)
            addr += np.uint64(4)
            count += 1
        if inst.writeback and not (inst.reglist & (1 << inst.rn)):
            lanes = doers[alive]
            if lanes.size:
                # The scalar path writes through RegisterFile.write
                # directly (no branch, even for rn=15) and masks there.
                self.regs[lanes, inst.rn] = (
                    (base[alive].astype(np.uint64)
                     + np.uint64(4 * count)) & MASK32).astype(np.uint32)

    def _exec_stm(self, inst, doers):
        base = self._read(inst.rn, doers, inst)
        count = bin(inst.reglist).count("1")
        start = ((base.astype(np.int64) - 4 * count)
                 & MASK32).astype(np.uint64)
        addr = start.copy()
        alive = np.ones(doers.size, dtype=bool)
        for i in range(16):
            if not inst.reglist & (1 << i):
                continue
            lanes = doers[alive]
            if lanes.size:
                keep = self._latch_mem_faults(
                    lanes, addr[alive].astype(np.int64), 4,
                    store=True)
                alive[alive] = keep
                lanes = doers[alive]
                if lanes.size:
                    self._ram_write(lanes, addr[alive].astype(np.int64),
                                    4, self._read(i, lanes, inst))
            addr += np.uint64(4)
        if inst.writeback:
            lanes = doers[alive]
            if lanes.size:
                # Raw RegisterFile.write semantics, like LDM writeback.
                self.regs[lanes, inst.rn] = start[alive].astype(
                    np.uint32)

    def _exec_svc(self, inst, doers):
        for k in doers.tolist():
            if k == self.ref:
                self._ref_svc(inst)
                continue
            self._lane_svc(inst, k)

    def _lane_svc(self, inst, k, ref=False):
        from repro.isa.syscalls import SyscallError

        def read_reg(i, _k=k):
            return int(self.regs[_k, i])

        def read_byte(a, _k=k):
            if a < 0 or a + 1 > self.ram_size:
                raise SimFault("mem-fault",
                               "access of 1 bytes outside RAM", addr=a)
            return self.store.read_byte(_k, a)

        try:
            result = self.emus[k].handle(inst.imm, read_reg, read_byte)
        except SyscallError as exc:
            fault = SimFault("syscall-error", str(exc), addr=inst.addr)
            if ref:
                raise AssertionError(
                    f"reference lane raised {fault}") from exc
            self.sfaults[k] = fault
            return
        except SimFault as exc:
            if ref:
                raise AssertionError(
                    f"reference lane raised {exc}") from exc
            self.sfaults[k] = exc
            return
        self.regs[k, 0] = np.uint32(result & MASK32)
        if self.emus[k].exited:
            self.halted[k] = True

    def _ref_svc(self, inst):
        self._lane_svc(inst, self.ref, ref=True)
