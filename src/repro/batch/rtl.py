"""The rtl-tier lane backend: N faulty pipeline runs in one pass.

The RT-level model is a cycle-accurate in-order pipeline, so its faulty
runs cannot be replayed as a pure architectural lockstep the way the
arch backend does -- fetch, issue, bypass, cache FSMs and the branch
predictor all carry timing state.  What *can* be shared is the control
trajectory: a register-file or CPSR fault leaves the pipeline's control
stream (fetched PCs, issue grouping, cache line traffic, stall and
redirect schedule) on the golden path until the flipped bit reaches a
control-deciding value -- a condition code, a branch/PC target, a
memory address, a syscall operand.  Those runs dominate the campaign.

So the engine adopts the simulator's live mid-flight core as a
**lane core**: same pipeline latches, caches, predictor and fetch
stream, but the register file, CPSR and every in-flight data value
become ``(N+1,)`` lane arrays over :mod:`repro.isa.valu` kernels (lane
``N`` is the fault-free **reference** whose scalars drive the real
caches).  Lane RAM views share one copy-on-write
:class:`~repro.batch.memory.LanePagedMemory` seeded from the coherent
flat image (RAM overlaid with dirty D-cache lines, exactly the
``observation.memory_digest`` view).

Every control-deciding value is **enforced**: the lane values are
compared against the reference and any injected lane that disagrees is
dropped from the vector on the spot -- its private pages are freed and
it reruns on the untouched scalar path (:meth:`FaultRunner.run_one`),
which also owns every DUE outcome (a machine fault *is* control
divergence).  Surviving lanes therefore share the reference control
stream cycle for cycle, which is what makes their pinout traces,
syscall outputs and hardware state exactly what their scalar runs
would produce; ``tests/test_batch_rtl_equivalence.py`` pins the
records bit-identical across the matrix.

Groups are formed per golden checkpoint segment
(:meth:`CheckpointCache.boundary_at_or_before`): the RT-level seek is
drain-punctuated, so only faults sharing a segment see the same
pre-injection pipeline state as their scalar seeks.  Cache-array
faults (``l1d.*``/``l1i.*``) mutate the shared cache model itself and
always take the scalar path.
"""

import time
import zlib

import numpy as np

from repro.batch.memory import LanePagedMemory
from repro.errors import SimFault
from repro.injection.classify import FaultClass, FaultRecord, compare_traces
from repro.isa import valu
from repro.isa.flags import Flags
from repro.isa.instructions import (
    COMPARE_OPS,
    Cond,
    DP_IMM_OPS,
    DP_REG_FORM,
    DP_REG_OPS,
    LOAD_OPS,
    MEM_SIZE,
    Op,
    STORE_OPS,
    UNARY_OPS,
)
from repro.isa.syscalls import SyscallEmulator, SyscallError
from repro.rtl.core import RTLCore, _PC
from repro.sim.base import RunStatus

MASK32 = 0xFFFFFFFF

#: Memory forms whose offset is the immediate (register forms shift rm).
_IMM_MEM_OPS = (Op.LDR, Op.STR, Op.LDRB, Op.STRB, Op.LDRH, Op.STRH)

#: Structures the vector path can hold as lane arrays.  Cache-array
#: faults mutate the shared timing model and stay scalar.
_VECTOR_STRUCTURES = ("regfile", "cpsr")


class RTLLaneEngine:
    """Drive a :class:`FaultRunner`'s rtl faults through lane groups.

    ``run()`` returns records positionally aligned with ``specs`` and
    bit-identical to the scalar :meth:`FaultRunner.run_one` sequence.
    """

    def __init__(self, runner, sim, lanes):
        self.runner = runner
        self.sim = sim
        self.lanes = max(int(lanes), 1)
        #: Global cycles actually stepped (shared pre-injection replay
        #: + shared tail per group, plus scalar-path replay+sim), the
        #: deterministic batch-cost metric.
        self.batch_cycles = 0
        #: High-water copy-on-write page bytes over any one group.
        self.peak_lane_bytes = 0

    def run(self, specs):
        records = [None] * len(specs)
        vector = [i for i, s in enumerate(specs)
                  if s.structure in _VECTOR_STRUCTURES]
        vector.sort(key=lambda i: (specs[i].cycle, i))
        cache = self.runner.golden["cache"]
        groups = []
        for i in vector:
            boundary = cache.boundary_at_or_before(specs[i].cycle)
            if (groups and groups[-1][0] == boundary
                    and len(groups[-1][1]) < self.lanes):
                groups[-1][1].append(i)
            else:
                groups.append((boundary, [i]))
        for _, chunk in groups:
            group = _RTLLaneGroup(self, [(i, specs[i]) for i in chunk])
            for index, record in group.run():
                records[index] = record
        for i, spec in enumerate(specs):
            if records[i] is None:
                records[i] = self.run_scalar(spec)
        return records

    def run_scalar(self, fault):
        """The untouched per-fault path (cache-array faults and lanes
        dropped on control divergence)."""
        record = self.runner.run_one(self.sim, fault)
        self.batch_cycles += record.replay_cycles + record.sim_cycles
        return record


class _RTLLaneGroup:
    """One same-segment group: N fault lanes + the reference lane."""

    def __init__(self, engine, items):
        self.engine = engine
        self.items = items  # [(original sample index, FaultSpec)]
        runner = engine.runner
        self.config = runner.config
        self.golden = runner.golden
        self.cache = runner.golden["cache"]
        self.deadline = runner.hang_deadline

    # -- group driver --------------------------------------------------

    def run(self):
        cfg = self.config
        sim = self.engine.sim
        wall_start = time.perf_counter()
        min_cycle = min(fault.cycle for _, fault in self.items)
        _, self.restore_cycle = self.cache.seek(
            sim, min_cycle, warm=cfg.warm_start, max_cycles=self.deadline)
        status = sim.run(stop_cycle=min_cycle, max_cycles=self.deadline)
        if status is not RunStatus.STOPPED:
            # The golden run ends before the earliest injection instant;
            # every lane of the group lands in dead time.
            self.engine.batch_cycles += sim.cycle - self.restore_cycle
            wall = (time.perf_counter() - wall_start) / len(self.items)
            return [
                (index, FaultRecord(
                    fault, FaultClass.MASKED, "after program end",
                    sim_cycles=0, wall_seconds=wall,
                    replay_cycles=sim.cycle - self.restore_cycle))
                for index, fault in self.items
            ]
        self._adopt(sim)
        core = self.core
        self._attach(sim)
        try:
            self._events()
            while self.vector_pending:
                core.tick()
                assert core.fault is None, (
                    f"reference control path latched {core.fault}")
                self._events()
        finally:
            self._detach(sim)
        self.engine.batch_cycles += core.cycle - self.restore_cycle
        self.engine.peak_lane_bytes = max(self.engine.peak_lane_bytes,
                                          self.store.peak_bytes)
        wall = (time.perf_counter() - wall_start) / len(self.items)
        out = []
        for k, (index, fault) in enumerate(self.items):
            if self.records[k] is None:
                # Dropped on control divergence: the scalar rerun owns
                # the record (run_one sets its own wall seconds).
                out.append((index, self.engine.run_scalar(fault)))
                continue
            fclass, detail, sim_cycles, replay = self.records[k]
            out.append((index, FaultRecord(
                fault, fclass, detail, sim_cycles=sim_cycles,
                wall_seconds=wall, replay_cycles=replay)))
        return out

    def _adopt(self, sim):
        """Take over the live mid-flight core as a lane core.

        The lane core shares the caches, predictor, fetch stream and
        in-flight latches of the scalar core object; only the register
        file, CPSR and RAM view become per-lane.  ``sim.core`` is left
        untouched -- the next ``seek()`` restores a fresh scalar core.
        """
        count = len(self.items)
        self.width = count + 1
        self.ref = count
        self.faults = [fault for _, fault in self.items]
        self.vector_pending = set(range(count))
        #: Injected lanes, i.e. the ones divergence enforcement watches.
        self.checked = set()
        self.injected = [False] * count
        self.replay = [0] * count
        self.records = [None] * count
        self.ends = [
            None if self.config.window is None
            else fault.cycle + self.config.window
            for fault in self.faults
        ]
        # The coherent flat image: RAM overlaid with valid+dirty D-cache
        # lines -- exactly the view observation.memory_digest hashes.
        image = bytearray(sim.ram.data)
        dcache = sim.dcache
        geom = dcache.config
        for index in range(geom.sets):
            for way in range(geom.ways):
                if dcache.valid[index, way] and dcache.dirty[index, way]:
                    base = dcache._line_base(index, way)
                    image[base:base + geom.line_size] = (
                        dcache.data[index, way].tobytes())
        self.store = LanePagedMemory(image, self.width, self.ref)
        snap = sim.core.syscalls.snapshot()
        self.emus = []
        for _ in range(count):
            emu = SyscallEmulator()
            emu.restore(snap)
            self.emus.append(emu)
        #: Golden pinout prefix at the group start (shared; each lane
        #: appends only its own post-start transactions).
        self.prefix_keys = [t.key() for t in sim.pinout]
        self.keys = [[] for _ in range(count)]
        core = sim.core
        lane = _LaneCore.__new__(_LaneCore)
        lane.__dict__.update(core.__dict__)
        lane.group = self
        lane.width = self.width
        lane.ref = self.ref
        lane.trace = None  # per-tick signal sampling is scalar-only
        lane.rf = _LaneRegFile(core.rf, self.width)
        flags = Flags.unpack(core.rf.cpsr)
        lane.ln = np.full(self.width, flags.n, dtype=bool)
        lane.lz = np.full(self.width, flags.z, dtype=bool)
        lane.lc = np.full(self.width, flags.c, dtype=bool)
        lane.lv = np.full(self.width, flags.v, dtype=bool)
        self.core = lane

    # -- bus-beat fan-out ----------------------------------------------

    def _attach(self, sim):
        self._dbeat = sim.dcache._beat_listener
        self._ibeat = sim.icache._beat_listener
        sim.dcache._beat_listener = self._wrap(self._dbeat)
        sim.icache._beat_listener = self._wrap(self._ibeat)

    def _detach(self, sim):
        sim.dcache._beat_listener = self._dbeat
        sim.icache._beat_listener = self._ibeat

    def _wrap(self, real):
        """Fan one reference bus beat out to every live lane trace.

        Control (and hence line traffic) is shared, so each lane sees
        the same beat at the same address; only write-back payloads
        carry lane bytes, read through the copy-on-write store."""
        def beat(kind, addr, data, cycle):
            real(kind, addr, data, cycle)
            if not self.vector_pending:
                return
            if kind == "wb":
                n = len(data)
                assert self.store.view_bytes(self.ref, addr, n) == \
                    bytes(data), "reference lane memory out of sync"
                for k in sorted(self.vector_pending):
                    self.keys[k].append(
                        ("wb", addr, self.store.view_bytes(k, addr, n)))
            else:
                key = (kind, addr, b"")
                for k in sorted(self.vector_pending):
                    self.keys[k].append(key)
        return beat

    # -- lane memory ops (called from the lane core's EX2) -------------

    def load(self, addr, size, ref_value):
        """Per-lane view of one D-cache load the reference resolved to
        ``ref_value`` (lanes without a private page share it)."""
        store = self.store
        assert store.read(self.ref, addr, size) == ref_value, \
            "reference lane memory out of sync"
        out = np.full(self.width, ref_value, dtype=np.uint32)
        p = addr >> store._shift
        for k in self.vector_pending:
            if p in store.lane_pages[k]:
                out[k] = store.read(k, addr, size)
        return out

    def store_write(self, addr, size, values):
        """One store instant over every live lane plus the reference
        (the reference write keeps the shared overlay coherent with the
        real cache the scalar access just updated)."""
        mask = (1 << (8 * size)) - 1
        writers = sorted(self.vector_pending)
        writers.append(self.ref)
        if isinstance(values, np.ndarray):
            vals = [int(values[k]) & mask for k in writers]
        else:
            vals = [int(values) & mask] * len(writers)
        self.store.write(writers, [addr] * len(writers), size, vals)

    # -- divergence enforcement ----------------------------------------

    def enforce(self, values):
        """Compare a control-deciding lane value against the reference;
        drop any injected lane that disagrees.  Returns the reference
        scalar (the value the shared control path proceeds with)."""
        arr = np.asarray(values)
        if arr.ndim == 0:
            return int(arr)
        ref_value = int(arr[self.ref])
        for k in list(self.checked):
            if int(arr[k]) != ref_value:
                self._drop(k)
        return ref_value

    def _drop(self, k):
        """Lane ``k`` left the reference control path: free its pages
        and leave its record to the scalar rerun."""
        self.vector_pending.discard(k)
        self.checked.discard(k)
        self.store.release(k)

    # -- the campaign event pass ---------------------------------------

    def _events(self):
        """Per-lane replica of the scalar run loop's check order at one
        cycle instant: exited -> window end -> watchdog (machine faults
        never reach the vector path -- they require an enforced
        divergence first, which drops the lane)."""
        core = self.core
        cyc = core.cycle
        for k in sorted(self.vector_pending):
            fault = self.faults[k]
            if not self.injected[k]:
                if core.exited:
                    self._retire(k, FaultClass.MASKED,
                                 "after program end", sim_cycles=0,
                                 replay=cyc - self.restore_cycle)
                    continue
                if cyc < fault.cycle:
                    continue
                self._inject(k)
            if core.exited:
                fclass, detail = self._classify(k, RunStatus.EXITED)
                self._retire(k, fclass, detail)
                continue
            end = self.ends[k]
            if end is not None and cyc >= end:
                fclass, detail = self._classify(k, RunStatus.STOPPED)
                self._retire(k, fclass, detail)
                continue
            if cyc >= self.deadline:
                self._retire(k, FaultClass.HANG, "watchdog expired")

    def _inject(self, k):
        fault = self.faults[k]
        core = self.core
        self.injected[k] = True
        self.replay[k] = core.cycle - self.restore_cycle
        if fault.structure == "cpsr":
            pack = self._lane_flag_pack(k) ^ (1 << fault.bit)
            flags = Flags.unpack(pack)
            core.ln[k] = flags.n
            core.lz[k] = flags.z
            core.lc[k] = flags.c
            core.lv[k] = flags.v
        else:  # regfile (banked/spare entries included)
            reg, bit = divmod(fault.bit, 32)
            core.rf.lregs[k, reg] ^= np.uint32(1 << bit)
        self.checked.add(k)

    def _retire(self, k, fclass, detail, sim_cycles=None, replay=None):
        if sim_cycles is None:
            sim_cycles = self.core.cycle - self.faults[k].cycle
        if replay is None:
            replay = self.replay[k]
        self.records[k] = (fclass, detail, sim_cycles, replay)
        self.vector_pending.discard(k)
        self.checked.discard(k)
        self.store.release(k)

    # -- per-lane observation ------------------------------------------

    def _lane_flag_pack(self, k):
        core = self.core
        return ((int(core.ln[k]) << 3) | (int(core.lz[k]) << 2)
                | (int(core.lc[k]) << 1) | int(core.lv[k]))

    def _hw_state(self, k):
        """Mirror of ``observation.hardware_state_digest`` for a lane:
        the architectural registers plus the CRC of the coherent memory
        image (the composed lane view *is* RAM + dirty lines)."""
        core = self.core
        regs = tuple(int(x) for x in core.rf.lregs[k, :15])
        return ((regs, self._lane_flag_pack(k)),
                zlib.crc32(self.store.compose(k)) & 0xFFFFFFFF)

    def _classify(self, k, status):
        """Replica of ``FaultRunner._classify`` over lane state (DUE
        and HANG are handled at the event-pass call sites)."""
        cfg = self.config
        golden = self.golden
        output = bytes(self.emus[k].output)
        if cfg.observation == "software":
            if status is RunStatus.EXITED:
                if output == golden["output"]:
                    return FaultClass.MASKED, ""
                return FaultClass.SDC, "program output differs"
            if golden["output"].startswith(output):
                return FaultClass.MASKED, "window expired, prefix clean"
            return FaultClass.SDC, "output prefix differs"
        if cfg.observation == "arch":
            if output != golden["output"]:
                return FaultClass.SDC, "program output differs"
            if self._hw_state(k) != golden["hw_state"]:
                return FaultClass.LATENT, "hardware state differs"
            return FaultClass.MASKED, ""
        trace_base = self.cache.trace_base(self.faults[k].cycle)
        golden_suffix = golden["pinout_keys"][trace_base:]
        faulty_suffix = (self.prefix_keys + self.keys[k])[trace_base:]
        if status is RunStatus.EXITED:
            match = faulty_suffix == golden_suffix
        else:
            match = compare_traces(golden_suffix, faulty_suffix)
        if match:
            return FaultClass.MASKED, ""
        return FaultClass.MISMATCH, "pinout trace deviates"


class _LaneRegFile:
    """``(width, entries)`` lane view of the register-file macro.

    ``read`` returns a fresh column copy: issued operands are latched
    values and must not alias a later lane injection.  The CPSR lives
    as the lane core's flag arrays; the scalar ``flags()`` API is
    unreachable by construction."""

    def __init__(self, rf, width):
        self.entries = rf.entries
        self.width = width
        self.lregs = np.tile(rf.regs, (width, 1))
        self.listener = None
        self.flag_listener = None

    def read(self, index):
        return self.lregs[:, index].copy()

    def write(self, index, value):
        self.lregs[:, index] = valu.u32(value)

    def flags(self):
        raise AssertionError("lane core must use its flag arrays")

    def set_flags(self, flags):
        raise AssertionError("lane core must use its flag arrays")


class _LaneCore(RTLCore):
    """The adopted pipeline with lane-array data paths.

    Never constructed -- :meth:`_RTLLaneGroup._adopt` builds it with
    ``__new__`` and copies the live scalar core's ``__dict__`` so all
    in-flight latches, cache/predictor references and FSM state carry
    over mid-cycle.  Control stages (fetch, decode, issue, WB, redirect
    and stall logic) are inherited verbatim; only the value-carrying
    stages are overridden to compute per-lane and to enforce
    control-deciding values against the reference lane."""

    def _vec(self, value):
        if isinstance(value, np.ndarray):
            return value
        return np.full(self.width, int(value) & MASK32, dtype=np.uint32)

    def _enforce(self, values):
        return self.group.enforce(values)

    def _ref_scalar(self, value):
        if isinstance(value, np.ndarray):
            return int(value[self.ref])
        return int(value)

    # -- EX1 -----------------------------------------------------------

    def _execute_ex1(self, uop):
        inst = uop.inst
        op = inst.op
        if inst.cond != Cond.AL:
            passed = valu.cond_passed(inst.cond, self.ln, self.lz,
                                      self.lc, self.lv)
            uop.cond_pass = bool(self._enforce(passed))
        else:
            uop.cond_pass = True
        if not uop.cond_pass:
            for arch in uop.dests:
                uop.results[arch] = uop.old_values[arch]
            if op == Op.B and inst.cond != Cond.AL:
                self.predictor.update(uop.pc, taken=False)
            return

        if op in DP_REG_OPS or op in DP_IMM_OPS:
            self._exec_dp(uop, None)
        elif op == Op.MOVW:
            uop.results[inst.rd] = inst.imm & 0xFFFF
        elif op == Op.MOVT:
            old = self._vec(uop.operands[inst.rd])
            uop.results[inst.rd] = (
                (old & np.uint32(0xFFFF))
                | np.uint32((inst.imm & 0xFFFF) << 16))
        elif op in (Op.MUL, Op.MLA):
            uop.results[inst.rd] = valu.multiply(
                op, self._vec(uop.operands[inst.rn]),
                self._vec(uop.operands[inst.rm]),
                self._vec(uop.operands.get(inst.ra, 0)))
        elif op in MEM_SIZE:
            self._agen(uop, None)
        elif op == Op.LDM:
            base = self._enforce(self._vec(uop.operands[inst.rn]))
            uop.operands[inst.rn] = base  # the EX2 walk is scalar
            if base % 4:
                raise SimFault("align-fault", "ldm", addr=base)
            count = bin(inst.reglist).count("1")
            if base + 4 * count > self.ram.size:
                raise SimFault("mem-fault", "ldm beyond RAM", addr=base)
            if inst.writeback and not (inst.reglist & (1 << inst.rn)):
                uop.results[inst.rn] = (base + 4 * count) & MASK32
        elif op == Op.STM:
            base = self._enforce(self._vec(uop.operands[inst.rn]))
            count = bin(inst.reglist).count("1")
            addr = (base - 4 * count) & MASK32
            if addr % 4:
                raise SimFault("align-fault", "stm", addr=addr)
            if addr + 4 * count > self.ram.size:
                raise SimFault("mem-fault", "stm beyond RAM", addr=addr)
            ops = []
            for i in range(16):
                if inst.reglist & (1 << i):
                    ops.append((addr, 4, self._vec(uop.operands[i])))
                    addr += 4
            uop.store_pending = ops
            if inst.writeback:
                uop.results[inst.rn] = (base - 4 * count) & MASK32
        elif op == Op.B:
            uop.actual_next = (uop.pc + inst.imm) & 0xFFFFFFFC
            if inst.cond != Cond.AL:
                self.predictor.update(uop.pc, taken=True)
        elif op == Op.BL:
            uop.results[14] = (uop.pc + 4) & MASK32
            uop.actual_next = (uop.pc + inst.imm) & 0xFFFFFFFC
        elif op == Op.BX:
            uop.actual_next = self._enforce(
                self._vec(uop.operands[inst.rm]) & np.uint32(0xFFFFFFFC))
        elif op in (Op.SVC, Op.NOP, Op.HLT):
            pass
        else:  # pragma: no cover - decode is exhaustive
            raise SimFault("undefined-inst", repr(op), addr=uop.pc)

    def _exec_dp(self, uop, flags):
        inst = uop.inst
        c_in = self.lc
        v_in = self.lv
        if inst.op in DP_IMM_OPS:
            op2 = np.full(self.width, inst.imm & MASK32, dtype=np.uint32)
            shifter_carry = c_in
        else:
            value = self._vec(uop.operands[inst.rm])
            if inst.shift_reg is not None:
                amount = (self._vec(uop.operands[inst.shift_reg])
                          & np.uint32(0xFF))
            else:
                amount = inst.shift_amount
            op2, shifter_carry = valu.barrel_shift(
                value, inst.shift_kind, amount, c_in)
        op = DP_REG_FORM.get(inst.op, inst.op)
        if op in UNARY_OPS:
            rn_value = np.zeros(self.width, dtype=np.uint32)
        else:
            rn_value = self._vec(uop.operands[inst.rn])
        result, n, z, c, v = valu.dp_compute(op, rn_value, op2, c_in,
                                             v_in, shifter_carry)
        if inst.s or op in COMPARE_OPS:
            # Fresh writable copies: dp_compute may hand back broadcast
            # views, and injection writes flag elements in place.
            self.ln = np.array(n, dtype=bool)
            self.lz = np.array(z, dtype=bool)
            self.lc = np.array(c, dtype=bool)
            self.lv = np.array(v, dtype=bool)
        if op not in COMPARE_OPS:
            if inst.rd == _PC:
                uop.actual_next = self._enforce(
                    result & np.uint32(0xFFFFFFFC))
            else:
                uop.results[inst.rd] = result

    def _agen(self, uop, flags):
        inst = uop.inst
        size = MEM_SIZE[inst.op]
        base = self._vec(uop.operands[inst.rn]).astype(np.int64)
        if inst.op in _IMM_MEM_OPS:
            offset = np.full(self.width, inst.imm, dtype=np.int64)
        else:
            shifted, _ = valu.barrel_shift(
                self._vec(uop.operands[inst.rm]), inst.shift_kind,
                inst.shift_amount, self.lc)
            offset = shifted.astype(np.int64)
        addr_vec = (base + offset) & MASK32 if inst.pre else base
        addr = self._enforce(addr_vec)
        if addr % size:
            raise SimFault("align-fault", f"{size}-byte access",
                           addr=addr)
        if addr + size > self.ram.size:
            raise SimFault("mem-fault", "access beyond RAM", addr=addr)
        if inst.op in STORE_OPS:
            uop.store_pending = [(addr, size,
                                  self._vec(uop.operands[inst.rd]))]
        else:
            uop.store_pending = [(addr, size, 0)]
        if inst.writeback or not inst.pre:
            if not (inst.op in LOAD_OPS and inst.rn == inst.rd):
                uop.results[inst.rn] = (
                    (base + offset) & MASK32).astype(np.uint32)

    # -- EX2 -----------------------------------------------------------

    def _stage_ex2(self):
        for uop in self.ex2:
            try:
                self._execute_ex2(uop)
            except SimFault as exc:
                self.fault = exc
                return
            if self.exited:
                return
        self.ex2 = []
        if self.mul_uop is not None:
            self.mul_remaining -= 1
            if self.mul_remaining <= 0:
                uop = self.mul_uop
                self.wb.append(uop)
                if self.mul_sets_flags and uop.cond_pass:
                    result = self._vec(uop.results.get(uop.inst.rd, 0))
                    self.ln = (result & np.uint32(0x80000000)) != 0
                    self.lz = result == 0
                self.mul_uop = None
                self.mul_sets_flags = False

    def _exec_mem_ex2(self, uop):
        inst = uop.inst
        op = inst.op
        group = self.group
        if op == Op.LDM:
            addr = uop.operands[inst.rn]  # scalarized at EX1
            for i in range(16):
                if inst.reglist & (1 << i):
                    value, _ = self.dcache.access(addr, 4, write=False,
                                                  cycle=self.cycle)
                    self._charge_dcache()
                    lane_values = group.load(addr, 4, value)
                    if i == _PC:
                        target = self._enforce(
                            lane_values & np.uint32(0xFFFFFFFC))
                        self._deep_redirect(uop, target)
                    else:
                        uop.results[i] = lane_values
                    addr += 4
            return
        if op == Op.STM:
            for addr, size, value in uop.store_pending:
                self.dcache.access(addr, size, write=True,
                                   value=self._ref_scalar(value),
                                   cycle=self.cycle)
                self._charge_dcache()
                group.store_write(addr, size, value)
            return
        size = MEM_SIZE[op]
        if op in LOAD_OPS:
            addr = uop.store_pending[0][0]  # agen result from EX1
            value, _ = self.dcache.access(addr, size, write=False,
                                          cycle=self.cycle)
            self._charge_dcache()
            lane_values = group.load(addr, size, value)
            if inst.rd == _PC:
                target = self._enforce(
                    lane_values & np.uint32(0xFFFFFFFC))
                self._deep_redirect(uop, target)
            else:
                uop.results[inst.rd] = lane_values
        else:
            addr, size_, value = uop.store_pending[0]
            self.dcache.access(addr, size_, write=True,
                               value=self._ref_scalar(value),
                               cycle=self.cycle)
            self._charge_dcache()
            group.store_write(addr, size_, value)

    def _exec_svc(self, uop):
        group = self.group
        # Syscall operands decide kernel control flow (and the memory
        # the handler walks): enforce them, then drive the reference
        # emulator through the real D-cache for timing and beats.
        operands = {i: self._enforce(self._vec(uop.operands[i]))
                    for i in sorted(uop.operands)}

        def read_reg(index):
            return operands.get(index, 0)

        def read_byte(addr):
            value, _ = self.dcache.access(addr, 1, write=False,
                                          cycle=self.cycle)
            self._charge_dcache()
            return value

        try:
            result = self.syscalls.handle(uop.inst.imm, read_reg,
                                          read_byte)
        except SyscallError as exc:
            raise SimFault("syscall-error", str(exc),
                           addr=uop.pc) from exc
        results = np.full(self.width, result & MASK32, dtype=np.uint32)
        for k in sorted(group.vector_pending):
            def lane_read_byte(addr, _k=k):
                return group.store.read_byte(_k, addr)
            try:
                lane_result = group.emus[k].handle(
                    uop.inst.imm, read_reg, lane_read_byte)
            except (SyscallError, SimFault):
                # A lane-only syscall failure is control divergence the
                # enforced operands could not see (corrupted buffer
                # bytes): drop to the scalar path.
                group._drop(k)
                continue
            results[k] = np.uint32(lane_result & MASK32)
        uop.results[0] = results
        if self.syscalls.exited:
            self.exited = True
