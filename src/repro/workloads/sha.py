"""MiBench sha kernel: SHA-1 over a 192-byte message (4 padded blocks)."""

from repro.workloads.datagen import (
    bytes_directive,
    sha_padded_message,
    sha_reference,
)

NAME = "sha"


def source(seed=4242):
    padded = sha_padded_message(seed)
    nblocks = len(padded) // 64
    return f"""
; SHA-1 over a pre-padded {len(padded)}-byte message ({nblocks} blocks).
    .text
_start:
    movw r10, #0             ; block index
blk_loop:
    ; ---- w[0..15]: big-endian words of the block ----
    ldr  r0, =msg
    add  r0, r0, r10, lsl #6
    ldr  r1, =wbuf
    movw r2, #16
w_init:
    ldrb r3, [r0], #1
    ldrb r4, [r0], #1
    ldrb r5, [r0], #1
    ldrb r6, [r0], #1
    lsl  r3, r3, #24
    orr  r3, r3, r4, lsl #16
    orr  r3, r3, r5, lsl #8
    orr  r3, r3, r6
    str  r3, [r1], #4
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  w_init
    ; ---- w[16..79] = rol1(w[t-3]^w[t-8]^w[t-14]^w[t-16]) ----
    movw r2, #16
w_expand:
    ldr  r1, =wbuf
    add  r3, r1, r2, lsl #2
    ldr  r4, [r3, #-12]
    ldr  r5, [r3, #-32]
    eor  r4, r4, r5
    ldr  r5, [r3, #-56]
    eor  r4, r4, r5
    ldr  r5, [r3, #-64]
    eor  r4, r4, r5
    lsl  r5, r4, #1
    lsr  r4, r4, #31
    orr  r4, r5, r4
    str  r4, [r3]
    add  r2, r2, #1
    cmp  r2, #80
    blt  w_expand
    ; ---- 80 rounds ----
    ldr  r0, =hstate
    ldr  r4, [r0]            ; a
    ldr  r5, [r0, #4]        ; b
    ldr  r6, [r0, #8]        ; c
    ldr  r7, [r0, #12]       ; d
    ldr  r8, [r0, #16]       ; e
    movw r2, #0              ; t
round_loop:
    cmp  r2, #20
    blt  group0
    cmp  r2, #40
    blt  group1
    cmp  r2, #60
    blt  group2
    eor  r9, r5, r6          ; group 3: f = b^c^d
    eor  r9, r9, r7
    ldr  r3, =0xCA62C1D6
    b    f_done
group0:
    and  r9, r5, r6          ; f = (b&c) | (~b & d)
    mvn  r3, r5
    and  r3, r3, r7
    orr  r9, r9, r3
    ldr  r3, =0x5A827999
    b    f_done
group1:
    eor  r9, r5, r6
    eor  r9, r9, r7
    ldr  r3, =0x6ED9EBA1
    b    f_done
group2:
    and  r9, r5, r6          ; f = (b&c)|(b&d)|(c&d)
    and  r3, r5, r7
    orr  r9, r9, r3
    and  r3, r6, r7
    orr  r9, r9, r3
    ldr  r3, =0x8F1BBCDC
f_done:
    lsl  r12, r4, #5         ; temp = rol5(a)+f+e+k+w[t]
    lsr  r14, r4, #27
    orr  r12, r12, r14
    add  r12, r12, r9
    add  r12, r12, r8
    add  r12, r12, r3
    ldr  r14, =wbuf
    ldr  r14, [r14, r2, lsl #2]
    add  r12, r12, r14
    mov  r8, r7              ; e = d
    mov  r7, r6              ; d = c
    lsl  r14, r5, #30        ; c = rol30(b)
    lsr  r5, r5, #2
    orr  r6, r14, r5
    mov  r5, r4              ; b = a
    mov  r4, r12             ; a = temp
    add  r2, r2, #1
    cmp  r2, #80
    blt  round_loop
    ; ---- h[i] += a..e ----
    ldr  r0, =hstate
    ldr  r3, [r0]
    add  r3, r3, r4
    str  r3, [r0]
    ldr  r3, [r0, #4]
    add  r3, r3, r5
    str  r3, [r0, #4]
    ldr  r3, [r0, #8]
    add  r3, r3, r6
    str  r3, [r0, #8]
    ldr  r3, [r0, #12]
    add  r3, r3, r7
    str  r3, [r0, #12]
    ldr  r3, [r0, #16]
    add  r3, r3, r8
    str  r3, [r0, #16]
    add  r10, r10, #1
    cmp  r10, #{nblocks}
    blt  blk_loop
    ; ---- print the digest ----
    ldr  r4, =hstate
    movw r5, #5
digest_loop:
    ldr  r0, [r4], #4
    svc  #3
    sub  r5, r5, #1
    cmp  r5, #0
    bgt  digest_loop
    movw r0, #10
    svc  #1
    movw r0, #0
    svc  #0
    .pool

    .data
msg:
{bytes_directive(padded)}
    .align 4
hstate: .word 0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0
wbuf:   .space 320
"""


def expected_output(seed=4242):
    return sha_reference(seed).hex().encode() + b"\n"
