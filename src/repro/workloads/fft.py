"""MiBench FFT kernel: 64-point fixed-point radix-2 FFT (Q14 twiddles)."""

from repro.workloads import datagen
from repro.workloads.datagen import (
    FFT_N,
    fft_inputs,
    fft_reference,
    fft_twiddles,
    fold_checksum,
    words_directive,
)
from repro.workloads.registry import FOLD_ROUTINE, PRINT_CHECKSUM_AND_EXIT

NAME = "fft"


def source(seed=2017):
    re, im = fft_inputs(seed)
    wre, wim = fft_twiddles()
    bits = FFT_N.bit_length() - 1
    return f"""
; 64-point radix-2 decimation-in-time FFT, Q14 fixed point.
    .text
_start:
    bl   fft
    ; checksum = fold(re) then fold(im)
    movw r0, #0
    ldr  r1, =data_re
    movw r2, #{FFT_N}
    bl   fold_words
    ldr  r1, =data_im
    movw r2, #{FFT_N}
    bl   fold_words
    b    print_checksum_and_exit
{PRINT_CHECKSUM_AND_EXIT}
{FOLD_ROUTINE}
    .pool

fft:
    push {{r4-r12, lr}}
    ldr  r0, =data_re
    ldr  r1, =data_im
    ldr  r2, =tw_re
    ldr  r3, =tw_im
    ; ---- bit reversal ----
    movw r4, #0              ; i
brev_loop:
    movw r5, #0              ; j
    movw r6, #0              ; bit counter
    mov  r7, r4
brev_bits:
    lsl  r5, r5, #1
    and  r8, r7, #1
    orr  r5, r5, r8
    lsr  r7, r7, #1
    add  r6, r6, #1
    cmp  r6, #{bits}
    blt  brev_bits
    cmp  r5, r4
    ble  brev_next
    ldr  r8, [r0, r4, lsl #2]
    ldr  r9, [r0, r5, lsl #2]
    str  r9, [r0, r4, lsl #2]
    str  r8, [r0, r5, lsl #2]
    ldr  r8, [r1, r4, lsl #2]
    ldr  r9, [r1, r5, lsl #2]
    str  r9, [r1, r4, lsl #2]
    str  r8, [r1, r5, lsl #2]
brev_next:
    add  r4, r4, #1
    cmp  r4, #{FFT_N}
    blt  brev_loop
    ; ---- butterflies ----
    movw r4, #1              ; half
    movw r5, #{FFT_N // 2}   ; step
stage_loop:
    movw r6, #0              ; base
base_loop:
    movw r7, #0              ; j
inner_loop:
    mul  r8, r7, r5          ; tw = j * step
    ldr  r9, [r2, r8, lsl #2]    ; wr
    ldr  r10, [r3, r8, lsl #2]   ; wi
    add  r11, r6, r4
    add  r11, r11, r7        ; idx_b = base + half + j
    ldr  r12, [r0, r11, lsl #2]  ; br
    ldr  r14, [r1, r11, lsl #2]  ; bi
    mul  r8, r12, r9         ; p1 = br*wr
    mul  r9, r14, r9         ; p4 = bi*wr
    mul  r12, r12, r10       ; p3 = br*wi
    mul  r10, r14, r10       ; p2 = bi*wi
    sub  r8, r8, r10
    asr  r8, r8, #{datagen.FFT_QSHIFT}    ; t_re
    add  r12, r12, r9
    asr  r12, r12, #{datagen.FFT_QSHIFT}  ; t_im
    sub  r14, r11, r4        ; idx_a = idx_b - half
    ldr  r9, [r0, r14, lsl #2]   ; ar
    ldr  r10, [r1, r14, lsl #2]  ; ai
    sub  r9, r9, r8
    str  r9, [r0, r11, lsl #2]   ; re[idx_b] = ar - t_re
    add  r9, r9, r8
    add  r9, r9, r8
    str  r9, [r0, r14, lsl #2]   ; re[idx_a] = ar + t_re
    sub  r10, r10, r12
    str  r10, [r1, r11, lsl #2]
    add  r10, r10, r12
    add  r10, r10, r12
    str  r10, [r1, r14, lsl #2]
    add  r7, r7, #1
    cmp  r7, r4
    blt  inner_loop
    add  r6, r6, r4, lsl #1  ; base += 2*half
    cmp  r6, #{FFT_N}
    blt  base_loop
    lsl  r4, r4, #1          ; half *= 2
    lsr  r5, r5, #1          ; step /= 2
    cmp  r4, #{FFT_N}
    blt  stage_loop
    pop  {{r4-r12, lr}}
    bx   lr
    .pool

    .data
data_re:
{words_directive(re)}
data_im:
{words_directive(im)}
tw_re:
{words_directive(wre)}
tw_im:
{words_directive(wim)}
"""


def expected_output(seed=2017):
    re, im = fft_reference(seed)
    checksum = fold_checksum(list(re) + list(im))
    return b"%08x\n" % checksum
