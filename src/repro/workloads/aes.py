"""MiBench cAES kernel: AES-128 ECB encryption of four blocks."""

import struct

from repro.workloads.datagen import (
    AES_BLOCKS,
    AES_KEY,
    aes_plaintext,
    aes_reference,
    aes_sbox,
    bytes_directive,
)

NAME = "caes"


def source(seed=90001):
    sbox = bytes(aes_sbox())
    plain = aes_plaintext(seed)
    return f"""
; AES-128 ECB over {AES_BLOCKS} blocks: key expansion + 10 rounds/block.
    .text
_start:
    bl   expand_key
    movw r10, #0             ; block index
blk_loop:
    ldr  r0, =plain
    add  r0, r0, r10, lsl #4
    ldr  r1, =state
    movw r2, #16
copy_in:
    ldrb r3, [r0], #1
    strb r3, [r1], #1
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  copy_in
    bl   encrypt
    ldr  r0, =state
    ldr  r1, =outbuf
    add  r1, r1, r10, lsl #4
    movw r2, #16
copy_out:
    ldrb r3, [r0], #1
    strb r3, [r1], #1
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  copy_out
    add  r10, r10, #1
    cmp  r10, #{AES_BLOCKS}
    blt  blk_loop
    ; print ciphertext as {AES_BLOCKS * 4} hex words
    ldr  r4, =outbuf
    movw r5, #{AES_BLOCKS * 4}
print_loop:
    ldr  r0, [r4], #4
    svc  #3
    sub  r5, r5, #1
    cmp  r5, #0
    bgt  print_loop
    movw r0, #10
    svc  #1
    movw r0, #0
    svc  #0
    .pool

; xtime: r0 = GF(2^8) doubling of r0 (clobbers r0, flags only)
xtime:
    lsl  r0, r0, #1
    tst  r0, #0x100
    eorne r0, r0, #0x1b
    and  r0, r0, #0xff
    bx   lr

expand_key:
    push {{r4-r11, lr}}
    ldr  r0, =key
    ldr  r1, =rk
    movw r2, #16
ek_copy:
    ldrb r3, [r0], #1
    strb r3, [r1], #1
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  ek_copy
    movw r4, #4              ; word index i
    movw r11, #1             ; rcon
ek_loop:
    ldr  r6, =rk
    add  r5, r6, r4, lsl #2
    sub  r5, r5, #4          ; &rk[4*(i-1)]
    ldrb r6, [r5]
    ldrb r7, [r5, #1]
    ldrb r8, [r5, #2]
    ldrb r9, [r5, #3]
    and  r10, r4, #3
    cmp  r10, #0
    bne  ek_noxform
    ; RotWord
    mov  r10, r6
    mov  r6, r7
    mov  r7, r8
    mov  r8, r9
    mov  r9, r10
    ; SubWord
    ldr  r10, =sbox
    ldrb r6, [r10, r6]
    ldrb r7, [r10, r7]
    ldrb r8, [r10, r8]
    ldrb r9, [r10, r9]
    eor  r6, r6, r11         ; ^= rcon
    mov  r0, r11
    bl   xtime
    mov  r11, r0
ek_noxform:
    ldr  r10, =rk
    add  r5, r10, r4, lsl #2 ; &rk[4*i]
    sub  r10, r5, #16        ; &rk[4*(i-4)]
    ldrb r12, [r10]
    eor  r12, r12, r6
    strb r12, [r5]
    ldrb r12, [r10, #1]
    eor  r12, r12, r7
    strb r12, [r5, #1]
    ldrb r12, [r10, #2]
    eor  r12, r12, r8
    strb r12, [r5, #2]
    ldrb r12, [r10, #3]
    eor  r12, r12, r9
    strb r12, [r5, #3]
    add  r4, r4, #1
    cmp  r4, #44
    blt  ek_loop
    pop  {{r4-r11, lr}}
    bx   lr
    .pool

encrypt:
    push {{r4-r12, lr}}
    ; round 0: AddRoundKey
    ldr  r0, =state
    ldr  r1, =rk
    movw r2, #16
ark0:
    ldrb r3, [r0]
    ldrb r4, [r1], #1
    eor  r3, r3, r4
    strb r3, [r0], #1
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  ark0
    movw r11, #1             ; round counter
enc_round:
    ; SubBytes
    ldr  r0, =state
    ldr  r1, =sbox
    movw r2, #16
sb_loop:
    ldrb r3, [r0]
    ldrb r3, [r1, r3]
    strb r3, [r0], #1
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  sb_loop
    ; ShiftRows: tmp[r + 4c] = state[r + 4*((c + r) & 3)]
    ldr  r0, =state
    ldr  r1, =tmp
    movw r4, #0              ; row
sr_row:
    movw r5, #0              ; col
sr_col:
    add  r6, r5, r4
    and  r6, r6, #3
    add  r6, r4, r6, lsl #2
    ldrb r7, [r0, r6]
    add  r6, r4, r5, lsl #2
    strb r7, [r1, r6]
    add  r5, r5, #1
    cmp  r5, #4
    blt  sr_col
    add  r4, r4, #1
    cmp  r4, #4
    blt  sr_row
    cmp  r11, #10
    beq  last_round
    ; MixColumns: tmp -> state
    ldr  r9, =tmp
    ldr  r10, =state
    movw r4, #0              ; column byte offset 0,4,8,12
mc_loop:
    add  r1, r9, r4
    ldrb r5, [r1]
    ldrb r6, [r1, #1]
    ldrb r7, [r1, #2]
    ldrb r8, [r1, #3]
    mov  r0, r5
    bl   xtime
    mov  r1, r0              ; xt0
    mov  r0, r6
    bl   xtime
    mov  r2, r0              ; xt1
    mov  r0, r7
    bl   xtime
    mov  r3, r0              ; xt2
    mov  r0, r8
    bl   xtime
    mov  r12, r0             ; xt3
    add  r14, r10, r4
    eor  r0, r1, r2          ; m0 = xt0^xt1^c1^c2^c3
    eor  r0, r0, r6
    eor  r0, r0, r7
    eor  r0, r0, r8
    strb r0, [r14]
    eor  r0, r5, r2          ; m1 = c0^xt1^xt2^c2^c3
    eor  r0, r0, r3
    eor  r0, r0, r7
    eor  r0, r0, r8
    strb r0, [r14, #1]
    eor  r0, r5, r6          ; m2 = c0^c1^xt2^xt3^c3
    eor  r0, r0, r3
    eor  r0, r0, r12
    eor  r0, r0, r8
    strb r0, [r14, #2]
    eor  r0, r1, r5          ; m3 = xt0^c0^c1^c2^xt3
    eor  r0, r0, r6
    eor  r0, r0, r7
    eor  r0, r0, r12
    strb r0, [r14, #3]
    add  r4, r4, #4
    cmp  r4, #16
    blt  mc_loop
    b    add_rk
last_round:
    ldr  r0, =tmp
    ldr  r1, =state
    movw r2, #16
lr_copy:
    ldrb r3, [r0], #1
    strb r3, [r1], #1
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  lr_copy
add_rk:
    ldr  r0, =state
    ldr  r1, =rk
    add  r1, r1, r11, lsl #4
    movw r2, #16
ark_loop:
    ldrb r3, [r0]
    ldrb r5, [r1], #1
    eor  r3, r3, r5
    strb r3, [r0], #1
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  ark_loop
    add  r11, r11, #1
    cmp  r11, #10
    ble  enc_round
    pop  {{r4-r12, lr}}
    bx   lr
    .pool

    .data
sbox:
{bytes_directive(sbox)}
key:
{bytes_directive(AES_KEY)}
plain:
{bytes_directive(plain)}
    .align 4
rk:     .space 176
state:  .space 16
tmp:    .space 16
    .align 4
outbuf: .space {16 * AES_BLOCKS}
"""


def expected_output(seed=90001):
    cipher = aes_reference(seed)
    words = struct.unpack(f"<{AES_BLOCKS * 4}I", cipher)
    return b"".join(b"%08x" % w for w in words) + b"\n"
