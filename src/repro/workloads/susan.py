"""MiBench susan kernels: corner detection, edge detection, smoothing.

All three variants share the USAN (Univalue Segment Assimilating Nucleus)
core: for every inner pixel, brightness similarity of the neighbourhood is
accumulated through an exponential LUT.  The variants differ only in what
they compute from the accumulated value, exactly as in MiBench's susan.c
(which is one binary with -c / -e / -s flags).
"""

from repro.workloads.datagen import (
    SUSAN_H,
    SUSAN_W,
    bytes_directive,
    fold_checksum,
    susan_corners_reference,
    susan_edges_reference,
    susan_image,
    susan_lut,
    susan_smooth_reference,
)

_NEIGHBOUR_OFFSETS = (
    -SUSAN_W - 1, -SUSAN_W, -SUSAN_W + 1, -1, 1,
    SUSAN_W - 1, SUSAN_W, SUSAN_W + 1,
)

_MODE_BODY = {
    # usan in r9 -> per-pixel value in r0
    "corners": """
    movw r0, #0
    cmp  r9, #400
    movlt r0, #1
""",
    "edges": """
    movw r0, #600
    sub  r0, r0, r9
    cmp  r0, #0
    movlt r0, #0
""",
    "smooth": """
    mov  r0, r12             ; num
    mov  r1, r9              ; den (never 0: lut[0] = 100)
    bl   udiv
""",
}

_SMOOTH_ACC = """
    mul  r14, r2, r3         ; num += weight * pixel
    add  r12, r12, r14
"""

_UDIV = """
; udiv: r0 = r0 / r1 (unsigned); clobbers r1, r2, r3
udiv:
    movw r2, #0              ; quotient
    movw r3, #1              ; current bit
u_align:
    cmp  r1, r0
    bhs  u_loop
    lsl  r1, r1, #1
    lsl  r3, r3, #1
    b    u_align
u_loop:
    cmp  r3, #0
    beq  u_done
    cmp  r0, r1
    blo  u_skip
    sub  r0, r0, r1
    orr  r2, r2, r3
u_skip:
    lsr  r1, r1, #1
    lsr  r3, r3, #1
    b    u_loop
u_done:
    mov  r0, r2
    bx   lr
"""


def _source(mode, seed=555):
    img = susan_image(seed)
    lut = bytes(susan_lut())
    offsets = ", ".join(str(o) for o in _NEIGHBOUR_OFFSETS)
    smooth_init = "    movw r12, #0\n" if mode == "smooth" else ""
    smooth_acc = _SMOOTH_ACC if mode == "smooth" else ""
    udiv = _UDIV if mode == "smooth" else ""
    return f"""
; SUSAN {mode} over a {SUSAN_W}x{SUSAN_H} grayscale image.
    .text
_start:
    ldr  r10, =img
    ldr  r11, =lut
    movw r4, #1              ; y
y_loop:
    movw r5, #1              ; x
x_loop:
    movw r3, #{SUSAN_W}
    mul  r6, r4, r3
    add  r6, r6, r5          ; idx = y*W + x
    ldrb r7, [r10, r6]       ; center
    movw r8, #0              ; neighbour counter
    movw r9, #0              ; usan / den
{smooth_init}n_loop:
    ldr  r2, =noff
    ldr  r2, [r2, r8, lsl #2]
    add  r2, r2, r6
    ldrb r3, [r10, r2]       ; pixel
    sub  r2, r3, r7          ; diff
    cmp  r2, #0
    rsblt r2, r2, #0         ; abs(diff)
    ldrb r2, [r11, r2]       ; weight = lut[abs(diff)]
    add  r9, r9, r2
{smooth_acc}    add  r8, r8, #1
    cmp  r8, #8
    blt  n_loop
{_MODE_BODY[mode]}
    ; fold: h = h*31 + value
    ldr  r2, =hvar
    ldr  r1, [r2]
    movw r3, #31
    mul  r1, r1, r3
    add  r1, r1, r0
    str  r1, [r2]
    add  r5, r5, #1
    cmp  r5, #{SUSAN_W - 1}
    blt  x_loop
    add  r4, r4, #1
    cmp  r4, #{SUSAN_H - 1}
    blt  y_loop
    ldr  r0, =hvar
    ldr  r0, [r0]
    svc  #3
    movw r0, #10
    svc  #1
    movw r0, #0
    svc  #0
    .pool
{udiv}
    .pool

    .data
img:
{bytes_directive(img)}
lut:
{bytes_directive(lut)}
    .align 4
noff:
    .word {offsets}
hvar:   .word 0
"""


class _Variant:
    """One susan mode exposed with the standard workload interface."""

    def __init__(self, mode, reference):
        self.mode = mode
        self.NAME = f"susan_{mode}"
        self._reference = reference

    def source(self, seed=555):
        return _source(self.mode, seed)

    def expected_output(self, seed=555):
        return b"%08x\n" % fold_checksum(self._reference(seed))


corners = _Variant("corners", susan_corners_reference)
edges = _Variant("edges", susan_edges_reference)
smooth = _Variant("smooth", susan_smooth_reference)
