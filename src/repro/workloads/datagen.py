"""Deterministic dataset generation and bit-exact Python references.

Workload assembly sources embed data produced here, and the matching
reference functions reproduce the kernel's integer arithmetic exactly
(32-bit wrap-around, arithmetic shifts), so expected outputs are known in
advance without trusting the simulators.
"""

import hashlib
import math

MASK32 = 0xFFFFFFFF


def u32(value):
    return value & MASK32


def s32(value):
    value &= MASK32
    return value - 0x100000000 if value & 0x80000000 else value


class LCG:
    """The classic Numerical-Recipes LCG; identical constants are used by
    the in-assembly generators where a workload builds data at runtime."""

    A = 1664525
    C = 1013904223

    def __init__(self, seed):
        self.state = u32(seed)

    def next(self):
        self.state = u32(self.state * self.A + self.C)
        return self.state

    def below(self, bound):
        return self.next() % bound


def words_directive(values, per_line=8):
    """Render a list of ints as ``.word`` directives."""
    lines = []
    for i in range(0, len(values), per_line):
        chunk = ", ".join(f"{u32(v):#010x}" for v in values[i:i + per_line])
        lines.append(f"    .word {chunk}")
    return "\n".join(lines)


def bytes_directive(blob, per_line=16):
    """Render bytes as ``.byte`` directives."""
    lines = []
    for i in range(0, len(blob), per_line):
        chunk = ", ".join(f"{b:#04x}" for b in blob[i:i + per_line])
        lines.append(f"    .byte {chunk}")
    return "\n".join(lines)


def fold_checksum(values, seed=0):
    """The common 32-bit output fold used by every workload:
    ``h = h*31 + v`` over a sequence of words."""
    h = u32(seed)
    for v in values:
        h = u32(h * 31 + u32(v))
    return h


# ---------------------------------------------------------------------------
# FFT (fixed point, radix-2, Q14 twiddles)
# ---------------------------------------------------------------------------

FFT_N = 64
FFT_QSHIFT = 14


def fft_inputs(seed=2017):
    rng = LCG(seed)
    re = [s32(rng.next() % 2048 - 1024) for _ in range(FFT_N)]
    im = [s32(rng.next() % 2048 - 1024) for _ in range(FFT_N)]
    return re, im


def fft_twiddles():
    """Q14 twiddle factors W_N^k = exp(-2*pi*i*k/N) for k < N/2."""
    scale = 1 << FFT_QSHIFT
    wre, wim = [], []
    for k in range(FFT_N // 2):
        angle = -2.0 * math.pi * k / FFT_N
        wre.append(int(round(math.cos(angle) * scale)))
        wim.append(int(round(math.sin(angle) * scale)))
    return wre, wim


def fft_reference(seed=2017):
    """Bit-exact fixed-point FFT matching the assembly kernel."""
    re, im = fft_inputs(seed)
    re = [u32(v) for v in re]
    im = [u32(v) for v in im]
    wre, wim = fft_twiddles()
    bits = FFT_N.bit_length() - 1
    # Bit reversal permutation.
    for i in range(FFT_N):
        j = int(format(i, f"0{bits}b")[::-1], 2)
        if j > i:
            re[i], re[j] = re[j], re[i]
            im[i], im[j] = im[j], im[i]
    half = 1
    while half < FFT_N:
        step = FFT_N // (2 * half)
        for base in range(0, FFT_N, 2 * half):
            for j in range(half):
                tw = j * step
                br, bi = re[base + half + j], im[base + half + j]
                wr, wi = wre[tw], wim[tw]
                t_re = u32(s32(u32(s32(br) * wr) - u32(s32(bi) * wi))
                           >> FFT_QSHIFT)
                t_im = u32(s32(u32(s32(br) * wi) + u32(s32(bi) * wr))
                           >> FFT_QSHIFT)
                ar, ai = re[base + j], im[base + j]
                re[base + half + j] = u32(ar - t_re)
                im[base + half + j] = u32(ai - t_im)
                re[base + j] = u32(ar + t_re)
                im[base + j] = u32(ai + t_im)
        half *= 2
    return re, im


# ---------------------------------------------------------------------------
# qsort
# ---------------------------------------------------------------------------

QSORT_N = 128


def qsort_inputs(seed=77):
    rng = LCG(seed)
    return [rng.next() % 100000 for _ in range(QSORT_N)]


def qsort_reference(seed=77):
    return sorted(qsort_inputs(seed))


# ---------------------------------------------------------------------------
# AES-128 (cAES): pure-Python reference
# ---------------------------------------------------------------------------

_SBOX = None


def aes_sbox():
    """Compute the AES S-box from first principles (no tables trusted)."""
    global _SBOX
    if _SBOX is not None:
        return _SBOX

    def gmul(a, b):
        p = 0
        for _ in range(8):
            if b & 1:
                p ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return p

    # Multiplicative inverses in GF(2^8) by brute force (fine offline).
    inv = [0] * 256
    for x in range(1, 256):
        for y in range(1, 256):
            if gmul(x, y) == 1:
                inv[x] = y
                break
    sbox = []
    for x in range(256):
        b = inv[x]
        s = 0
        for i in range(8):
            bit = (
                (b >> i) ^ (b >> ((i + 4) % 8)) ^ (b >> ((i + 5) % 8))
                ^ (b >> ((i + 6) % 8)) ^ (b >> ((i + 7) % 8))
                ^ (0x63 >> i)
            ) & 1
            s |= bit << i
        sbox.append(s)
    _SBOX = sbox
    return sbox


def _xtime(a):
    a <<= 1
    if a & 0x100:
        a = (a ^ 0x1B) & 0xFF
    return a


def aes_expand_key(key):
    sbox = aes_sbox()
    words = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    rcon = 1
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [sbox[b] for b in temp]
            temp[0] ^= rcon
            rcon = _xtime(rcon)
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [b for word in words for b in word]


def aes_encrypt_block(block, round_keys):
    sbox = aes_sbox()
    state = [block[i] ^ round_keys[i] for i in range(16)]
    for rnd in range(1, 11):
        state = [sbox[b] for b in state]
        # ShiftRows on column-major state (state[r + 4*c]).
        shifted = list(state)
        for r in range(1, 4):
            for c in range(4):
                shifted[r + 4 * c] = state[r + 4 * ((c + r) % 4)]
        state = shifted
        if rnd != 10:
            mixed = []
            for c in range(4):
                col = state[4 * c:4 * c + 4]
                mixed.extend([
                    _xtime(col[0]) ^ _xtime(col[1]) ^ col[1] ^ col[2]
                    ^ col[3],
                    col[0] ^ _xtime(col[1]) ^ _xtime(col[2]) ^ col[2]
                    ^ col[3],
                    col[0] ^ col[1] ^ _xtime(col[2]) ^ _xtime(col[3])
                    ^ col[3],
                    _xtime(col[0]) ^ col[0] ^ col[1] ^ col[2]
                    ^ _xtime(col[3]),
                ])
            state = mixed
        rk = round_keys[16 * rnd:16 * rnd + 16]
        state = [state[i] ^ rk[i] for i in range(16)]
    return bytes(state)


AES_KEY = bytes(range(16))
AES_BLOCKS = 4


def aes_plaintext(seed=90001):
    rng = LCG(seed)
    return bytes(rng.next() & 0xFF for _ in range(16 * AES_BLOCKS))


def aes_reference(seed=90001):
    round_keys = aes_expand_key(AES_KEY)
    plain = aes_plaintext(seed)
    out = b""
    for i in range(AES_BLOCKS):
        out += aes_encrypt_block(plain[16 * i:16 * i + 16], round_keys)
    return out


# ---------------------------------------------------------------------------
# SHA-1
# ---------------------------------------------------------------------------

SHA_MSG_LEN = 192


def sha_message(seed=4242):
    rng = LCG(seed)
    return bytes(rng.next() & 0xFF for _ in range(SHA_MSG_LEN))


def sha_reference(seed=4242):
    return hashlib.sha1(sha_message(seed)).digest()


def sha_padded_message(seed=4242):
    """The message with SHA-1 padding applied (the assembly kernel hashes
    pre-padded blocks; padding correctness is asserted in tests)."""
    msg = sha_message(seed)
    length = len(msg)
    msg += b"\x80"
    while len(msg) % 64 != 56:
        msg += b"\x00"
    msg += (8 * length).to_bytes(8, "big")
    return msg


# ---------------------------------------------------------------------------
# stringsearch (Boyer-Moore-Horspool)
# ---------------------------------------------------------------------------

SEARCH_TEXT = (
    b"It is a far, far better thing that I do, than I have ever done; "
    b"it is a far, far better rest that I go to than I have ever known. "
    b"Call me Ishmael. Some years ago - never mind how long precisely - "
    b"having little or no money in my purse, and nothing particular to "
    b"interest me on shore, I thought I would sail about a little and "
    b"see the watery part of the world. In the beginning God created "
    b"the heaven and the earth. Now the earth was unformed and void."
)

SEARCH_PATTERNS = (
    b"far better",
    b"Ishmael",
    b"watery part",
    b"unformed",
    b"nonexistent pattern",
    b"the",
    b"never mind",
    b"zzz",
)


def bmh_search(text, pattern):
    """First match offset or -1, Horspool shift table semantics."""
    m = len(pattern)
    n = len(text)
    if m == 0 or m > n:
        return -1
    shift = [m] * 256
    for i in range(m - 1):
        shift[pattern[i]] = m - 1 - i
    pos = 0
    while pos <= n - m:
        j = m - 1
        while j >= 0 and text[pos + j] == pattern[j]:
            j -= 1
        if j < 0:
            return pos
        pos += shift[text[pos + m - 1]]
    return -1


def stringsearch_reference():
    return [bmh_search(SEARCH_TEXT, p) for p in SEARCH_PATTERNS]


# ---------------------------------------------------------------------------
# SUSAN (corners / edges / smoothing) on a synthetic grayscale image
# ---------------------------------------------------------------------------

SUSAN_W = 24
SUSAN_H = 24
SUSAN_BT = 20  # brightness threshold


def susan_image(seed=555):
    """A deterministic image with structure: gradient + bright square +
    noise, so all three kernels have real features to find."""
    rng = LCG(seed)
    img = bytearray(SUSAN_W * SUSAN_H)
    for y in range(SUSAN_H):
        for x in range(SUSAN_W):
            value = (x * 5 + y * 3) & 0xFF
            if 8 <= x < 16 and 8 <= y < 16:
                value = (value + 120) & 0xFF
            value = (value + rng.next() % 8) & 0xFF
            img[y * SUSAN_W + x] = value
    return bytes(img)


def susan_lut():
    """The brightness-similarity LUT: 100 * exp(-((dI/t)^6)) quantised.

    Matches MiBench susan's similarity function, tabulated over the byte
    difference so the assembly kernel is a pure table lookup.
    """
    lut = []
    for diff in range(256):
        value = int(round(100.0 * math.exp(-((diff / SUSAN_BT) ** 6))))
        lut.append(value)
    return lut


def _usan_area(img, x, y, lut):
    """USAN area over a 3x3 neighbourhood (37-pixel mask shrunk to fit the
    small image, preserving the algorithm's structure)."""
    center = img[y * SUSAN_W + x]
    total = 0
    for dy in (-1, 0, 1):
        for dx in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            pixel = img[(y + dy) * SUSAN_W + (x + dx)]
            total += lut[abs(pixel - center)]
    return total


def susan_edges_reference(seed=555):
    """Edge response per inner pixel: max(0, g - usan) with g = 600."""
    img = susan_image(seed)
    lut = susan_lut()
    out = []
    for y in range(1, SUSAN_H - 1):
        for x in range(1, SUSAN_W - 1):
            usan = _usan_area(img, x, y, lut)
            response = 600 - usan
            out.append(response if response > 0 else 0)
    return out


def susan_corners_reference(seed=555):
    """Corner mask per inner pixel: 1 when usan < 400 (geometric g/2)."""
    img = susan_image(seed)
    lut = susan_lut()
    out = []
    for y in range(1, SUSAN_H - 1):
        for x in range(1, SUSAN_W - 1):
            usan = _usan_area(img, x, y, lut)
            out.append(1 if usan < 400 else 0)
    return out


def susan_smooth_reference(seed=555):
    """Brightness-weighted 3x3 smoothing, integer division semantics."""
    img = susan_image(seed)
    lut = susan_lut()
    out = []
    for y in range(1, SUSAN_H - 1):
        for x in range(1, SUSAN_W - 1):
            center = img[y * SUSAN_W + x]
            num = 0
            den = 0
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dx == 0 and dy == 0:
                        continue
                    pixel = img[(y + dy) * SUSAN_W + (x + dx)]
                    weight = lut[abs(pixel - center)]
                    num += weight * pixel
                    den += weight
            out.append(num // den if den else center)
    return out
