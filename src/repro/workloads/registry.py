"""Workload registry and shared assembly fragments."""

from repro.isa.assembler import assemble
from repro.isa.program import Program
from repro.isa.toolchain import Toolchain

#: Benchmark names in the paper's Table II order.
WORKLOAD_NAMES = (
    "fft",
    "qsort",
    "caes",
    "sha",
    "stringsearch",
    "susan_corners",
    "susan_edges",
    "susan_smooth",
)

#: One-line description per workload (``repro-study list``; kept in
#: Table II order and pinned against :data:`WORKLOAD_NAMES` by tests).
WORKLOAD_DESCRIPTIONS = {
    "fft": "64-point fixed-point radix-2 FFT (Q14 twiddles)",
    "qsort": "iterative quicksort (Lomuto) over 128 words",
    "caes": "AES-128 ECB encryption of four blocks",
    "sha": "SHA-1 over a 192-byte message (4 padded blocks)",
    "stringsearch": "Boyer-Moore-Horspool search over 8 patterns",
    "susan_corners": "USAN corner detection on a synthetic image",
    "susan_edges": "USAN edge detection on a synthetic image",
    "susan_smooth": "USAN noise-reduction smoothing pass",
}

#: Shared epilogue: print the 32-bit checksum in r0 as hex + newline, exit.
PRINT_CHECKSUM_AND_EXIT = """
print_checksum_and_exit:
    svc  #3              ; print_hex(r0)
    movw r0, #10
    svc  #1              ; putc('\\n')
    movw r0, #0
    svc  #0              ; exit(0)
"""

#: Shared fold routine: r0 = fold(r0=seed; words at [r1, r1+4*r2)).
FOLD_ROUTINE = """
; fold_words: r0 = running hash, r1 = base, r2 = count -> r0
; clobbers r3, r12
fold_words:
    cmp  r2, #0
    beq  fold_done
    movw r12, #31
fold_loop:
    ldr  r3, [r1], #4
    mul  r0, r0, r12
    add  r0, r0, r3
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  fold_loop
fold_done:
    bx   lr
"""


def get(name):
    """Return the workload module for ``name`` (imported lazily)."""
    import importlib

    table = {
        "fft": ("repro.workloads.fft", None),
        "qsort": ("repro.workloads.qsort_wl", None),
        "caes": ("repro.workloads.aes", None),
        "sha": ("repro.workloads.sha", None),
        "stringsearch": ("repro.workloads.stringsearch", None),
        "susan_corners": ("repro.workloads.susan", "corners"),
        "susan_edges": ("repro.workloads.susan", "edges"),
        "susan_smooth": ("repro.workloads.susan", "smooth"),
    }
    if name not in table:
        raise KeyError(f"unknown workload {name!r}; known: {sorted(table)}")
    module_name, attr = table[name]
    module = importlib.import_module(module_name)
    return getattr(module, attr) if attr else module


def build(name: str, toolchain: Toolchain | None = None) -> Program:
    """Assemble workload ``name`` with the given toolchain variant."""
    module = get(name)
    toolchain = toolchain or Toolchain("gnu")
    return assemble(module.source(), name=name, toolchain=toolchain)


def build_all(toolchain=None):
    return {name: build(name, toolchain) for name in WORKLOAD_NAMES}


def expected_output(name):
    """The golden output bytes computed by the Python reference."""
    return get(name).expected_output()
