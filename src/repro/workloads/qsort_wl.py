"""MiBench qsort kernel: iterative quicksort (Lomuto) over 128 words."""

from repro.workloads.datagen import (
    QSORT_N,
    fold_checksum,
    qsort_inputs,
    qsort_reference,
    words_directive,
)
from repro.workloads.registry import FOLD_ROUTINE, PRINT_CHECKSUM_AND_EXIT

NAME = "qsort"


def source(seed=77):
    data = qsort_inputs(seed)
    return f"""
; Iterative quicksort with an explicit (lo, hi) work stack.
    .text
_start:
    bl   qsort
    movw r0, #0
    ldr  r1, =array
    movw r2, #{QSORT_N}
    bl   fold_words
    b    print_checksum_and_exit
{PRINT_CHECKSUM_AND_EXIT}
{FOLD_ROUTINE}
    .pool

qsort:
    push {{r4-r11, lr}}
    ldr  r0, =array
    movw r1, #0              ; lo
    movw r2, #{QSORT_N - 1}  ; hi
    movw r9, #1              ; stack depth
    push {{r1, r2}}
qs_loop:
    cmp  r9, #0
    beq  qs_done
    pop  {{r1, r2}}          ; lo, hi
    sub  r9, r9, #1
    cmp  r1, r2
    bge  qs_loop
    ; Lomuto partition, pivot = a[hi]
    ldr  r3, [r0, r2, lsl #2]    ; pivot
    sub  r4, r1, #1          ; i = lo - 1
    mov  r5, r1              ; j = lo
part_loop:
    cmp  r5, r2
    bge  part_done
    ldr  r6, [r0, r5, lsl #2]
    cmp  r6, r3
    bhi  part_next           ; unsigned a[j] > pivot -> skip
    add  r4, r4, #1
    ldr  r7, [r0, r4, lsl #2]
    str  r6, [r0, r4, lsl #2]
    str  r7, [r0, r5, lsl #2]
part_next:
    add  r5, r5, #1
    b    part_loop
part_done:
    add  r4, r4, #1
    ldr  r7, [r0, r4, lsl #2]
    ldr  r6, [r0, r2, lsl #2]
    str  r6, [r0, r4, lsl #2]
    str  r7, [r0, r2, lsl #2]
    ; push (lo, p-1) and (p+1, hi); r6 holds the lo half, r7 the hi half
    ; (STMDB stores the lower-numbered register at the lower address, so
    ; a later pop {{r1, r2}} yields r1 = lo, r2 = hi)
    mov  r6, r1
    sub  r7, r4, #1
    push {{r6, r7}}
    add  r9, r9, #1
    add  r6, r4, #1
    mov  r7, r2
    push {{r6, r7}}
    add  r9, r9, #1
    b    qs_loop
qs_done:
    pop  {{r4-r11, lr}}
    bx   lr
    .pool

    .data
array:
{words_directive(data)}
"""


def expected_output(seed=77):
    return b"%08x\n" % fold_checksum(qsort_reference(seed))
