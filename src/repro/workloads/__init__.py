"""MiBench-like workload kernels for the cross-level study.

The paper (SS III-D) uses a MiBench subset: FFT, qsort, cAES, sha,
stringsearch and the three susan kernels.  Real MiBench binaries cannot be
compiled for the ARMlet ISA, so each kernel is re-implemented in assembly
with a deterministic embedded dataset.  Every workload module exposes
``source()`` (assembly text) and ``expected_output()`` (the bit-exact
golden output computed by an independent Python reference), so the test
suite validates each kernel on the reference interpreter before it is ever
used in a fault-injection campaign.
"""

from repro.workloads.registry import (
    WORKLOAD_NAMES,
    build,
    build_all,
    expected_output,
    get,
)

__all__ = ["WORKLOAD_NAMES", "build", "build_all", "expected_output", "get"]
