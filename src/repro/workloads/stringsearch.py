"""MiBench stringsearch kernel: Boyer-Moore-Horspool over 8 patterns."""

from repro.workloads.datagen import (
    SEARCH_PATTERNS,
    SEARCH_TEXT,
    bytes_directive,
    stringsearch_reference,
)

NAME = "stringsearch"


def source():
    pattern_labels = [f"pat{i}" for i in range(len(SEARCH_PATTERNS))]
    pattern_defs = "\n".join(
        f"{label}:\n{bytes_directive(pattern)}"
        for label, pattern in zip(pattern_labels, SEARCH_PATTERNS)
    )
    table_rows = "\n".join(
        f"    .word {label}, {len(pattern)}"
        for label, pattern in zip(pattern_labels, SEARCH_PATTERNS)
    )
    return f"""
; Boyer-Moore-Horspool search of {len(SEARCH_PATTERNS)} patterns.
    .text
_start:
    movw r10, #0             ; pattern index
pat_loop:
    ldr  r0, =pat_table
    add  r0, r0, r10, lsl #3
    ldr  r4, [r0]            ; pattern base
    ldr  r5, [r0, #4]        ; m
    ; ---- shift table: all entries = m ----
    ldr  r6, =shift_tab
    movw r2, #256
fill_loop:
    str  r5, [r6], #4
    sub  r2, r2, #1
    cmp  r2, #0
    bgt  fill_loop
    ; ---- shift[pat[i]] = m-1-i for i < m-1 ----
    ldr  r6, =shift_tab
    movw r2, #0
    sub  r3, r5, #1
set_loop:
    cmp  r2, r3
    bge  set_done
    ldrb r7, [r4, r2]
    sub  r8, r3, r2
    str  r8, [r6, r7, lsl #2]
    add  r2, r2, #1
    b    set_loop
set_done:
    ; ---- scan ----
    ldr  r0, =text
    movw r1, #{len(SEARCH_TEXT)}
    sub  r9, r1, r5          ; n - m
    movw r7, #0              ; pos
scan_loop:
    cmp  r7, r9
    bgt  not_found
    sub  r2, r5, #1          ; j = m-1
cmp_loop:
    cmp  r2, #0
    blt  found
    add  r3, r7, r2
    ldrb r8, [r0, r3]
    ldrb r12, [r4, r2]
    cmp  r8, r12
    bne  mismatch
    sub  r2, r2, #1
    b    cmp_loop
mismatch:
    add  r3, r7, r5
    sub  r3, r3, #1
    ldrb r8, [r0, r3]
    ldr  r6, =shift_tab
    ldr  r8, [r6, r8, lsl #2]
    add  r7, r7, r8
    b    scan_loop
found:
    mov  r0, r7
    b    print_result
not_found:
    movw r0, #0
    sub  r0, r0, #1
print_result:
    svc  #5                  ; print_int (signed)
    movw r0, #10
    svc  #1
    add  r10, r10, #1
    cmp  r10, #{len(SEARCH_PATTERNS)}
    blt  pat_loop
    movw r0, #0
    svc  #0
    .pool

    .data
text:
{bytes_directive(SEARCH_TEXT)}
    .align 4
{pattern_defs}
    .align 4
pat_table:
{table_rows}
shift_tab: .space 1024
"""


def expected_output():
    return b"".join(b"%d\n" % idx for idx in stringsearch_reference())
