"""Public RT-level simulator API (the "NCSIM + Safety Verifier" tier).

Mirrors :class:`repro.uarch.simulator.MicroArchSim` exactly -- same run
control, checkpointing, pinout and fault-injection protocol -- so the
campaign engine in :mod:`repro.injection` is generic over the abstraction
level, which is the paper's whole experimental design.
"""

from repro.errors import SimFault
from repro.memory.bus import Transaction
from repro.memory.cache import Cache, CacheConfig
from repro.memory.ram import RAM
from repro.rtl.arrays import RTLRegisterFile
from repro.rtl.cache_rtl import RTLCache
from repro.rtl.config import RTLConfig
from repro.rtl.core import RTLCore
from repro.rtl.trace import SignalTrace
from repro.uarch.branch import BranchPredictor
from repro.uarch.simulator import RunStatus


class RTLSim:
    """Cycle-by-cycle RT-level Cortex-A9-class simulator."""

    LEVEL = "rtl"

    def __init__(self, program, config=None):
        self.config = config or RTLConfig()
        self.program = program
        self.pinout = []
        self._build()

    def _build(self):
        cfg = self.config
        layout = self.program.layout
        self.ram = RAM(layout.ram_size)
        self.program.load_into(self.ram)

        def bus_event(kind, addr, data, cycle):
            self.pinout.append(Transaction(kind, addr, data, cycle))

        self.dcache = RTLCache(
            "l1d",
            CacheConfig(cfg.dcache_size, cfg.dcache_ways, cfg.line_size),
            self.ram, cfg, bus_listener=bus_event,
        )
        self.icache = RTLCache(
            "l1i",
            CacheConfig(cfg.icache_size, cfg.icache_ways, cfg.line_size),
            self.ram, cfg, bus_listener=bus_event,
        )
        self.predictor = BranchPredictor(cfg.predictor_entries,
                                         cfg.ras_entries)
        self.rf = RTLRegisterFile()
        self.core = RTLCore(
            cfg, self.program, self.ram, self.icache, self.dcache,
            self.predictor, self.rf,
        )
        if cfg.trace_signals:
            self.trace = SignalTrace()
            self.core.trace = self.trace
        else:
            self.trace = None
        self.rf.write(13, layout.stack_top)

    # ------------------------------------------------------------------
    # run control (identical protocol to MicroArchSim)
    # ------------------------------------------------------------------

    @property
    def cycle(self):
        return self.core.cycle

    @property
    def icount(self):
        return self.core.icount

    @property
    def exited(self):
        return self.core.exited

    @property
    def exit_code(self):
        return self.core.syscalls.exit_code

    @property
    def fault(self):
        return self.core.fault

    @property
    def output(self):
        return bytes(self.core.syscalls.output)

    @property
    def signal_crc(self):
        """Rolling CRC of the signal-change stream (None when tracing is
        disabled).  Equal CRCs mean bit-identical signal activity."""
        return self.trace.crc if self.trace is not None else None

    def export_vcd(self, title=None):
        """The recorded waveform as VCD text (tracing must be enabled)."""
        if self.trace is None:
            raise RuntimeError("signal tracing is disabled")
        return self.trace.to_vcd(title or self.program.name)

    def run(self, stop_cycle=None, max_cycles=5_000_000):
        core = self.core
        while True:
            if core.exited:
                return RunStatus.EXITED
            if core.fault is not None:
                return RunStatus.FAULT
            if stop_cycle is not None and core.cycle >= stop_cycle:
                return RunStatus.STOPPED
            if core.cycle >= max_cycles:
                return RunStatus.TIMEOUT
            core.tick()

    def run_to_completion(self, max_cycles=5_000_000):
        return self.run(max_cycles=max_cycles)

    def arch_state(self):
        regs = [self.rf.read(i) for i in range(15)]
        return {"regs": regs, "flags": self.rf.cpsr,
                "pc": self.core.retired_next_pc}

    # ------------------------------------------------------------------
    # checkpoints (drain + full state capture)
    # ------------------------------------------------------------------

    def drain(self, guard_cycles=300_000):
        core = self.core
        core.draining = True
        deadline = core.cycle + guard_cycles
        try:
            while (not core.quiesced() and not core.exited
                   and core.fault is None):
                if core.cycle >= deadline:
                    raise SimFault("halt-trap", "drain did not converge")
                core.tick()
        finally:
            core.draining = False

    def checkpoint(self):
        self.drain()
        core = self.core
        return {
            "cycle": core.cycle,
            "icount": core.icount,
            "pc": core.retired_next_pc,
            "rf": self.rf.snapshot(),
            "ram": self.ram.snapshot(),
            "dcache": self.dcache.snapshot(),
            "icache": self.icache.snapshot(),
            "predictor": self.predictor.snapshot(),
            "syscalls": core.syscalls.snapshot(),
            "pinout": list(self.pinout),
            "mispredicts": core.mispredicts,
            "exited": core.exited,
            "trace": self.trace.snapshot() if self.trace else None,
        }

    def restore(self, cp):
        self._build()
        core = self.core
        if self.trace is not None and cp.get("trace") is not None:
            self.trace.restore(cp["trace"])
        self.rf.restore(cp["rf"])
        self.ram.restore(cp["ram"])
        self.dcache.restore(cp["dcache"])
        self.icache.restore(cp["icache"])
        self.predictor.restore(cp["predictor"])
        core.syscalls.restore(cp["syscalls"])
        self.pinout[:] = list(cp["pinout"])
        core.cycle = cp["cycle"]
        core.icount = cp["icount"]
        core.pc = cp["pc"]
        core.retired_next_pc = cp["pc"]
        core.last_retire_cycle = cp["cycle"]
        core.exited = cp["exited"]
        core.mispredicts = cp["mispredicts"]

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    INJECTABLE = {
        "regfile": "register-file macro (56 x 32 flops: user + banked/spare)",
        "cpsr": "NZCV status flops",
        "l1d.data": "L1D data array",
        "l1d.tag": "L1D tag array",
        "l1d.valid": "L1D valid bits",
        "l1d.dirty": "L1D dirty bits",
        "l1d.age": "L1D replacement state",
        "l1i.data": "L1I data array",
        "l1i.tag": "L1I tag array",
        "l1i.valid": "L1I valid bits",
    }

    def _resolve_target(self, structure):
        if structure == "regfile":
            return self.rf, None
        if structure == "cpsr":
            return self.rf, "cpsr"
        prefix, _, array = structure.partition(".")
        cache = {"l1d": self.dcache, "l1i": self.icache}.get(prefix)
        if cache is None or array not in Cache.ARRAYS:
            raise ValueError(f"unknown fault target {structure!r}")
        return cache, array

    def fault_targets(self):
        out = {}
        for structure in self.INJECTABLE:
            holder, array = self._resolve_target(structure)
            if array is None:
                out[structure] = holder.bit_count()
            elif array == "cpsr":
                out[structure] = 4
            else:
                out[structure] = holder.bit_count(array)
        return out

    def inject(self, structure, bit_index):
        holder, array = self._resolve_target(structure)
        if array is None:
            holder.flip_bit(bit_index)
        elif array == "cpsr":
            holder.cpsr ^= 1 << bit_index
        else:
            holder.flip_bit(array, bit_index)

    # ------------------------------------------------------------------

    def stats(self):
        return {
            "cycles": self.cycle,
            "instructions": self.icount,
            "ipc": self.icount / self.cycle if self.cycle else 0.0,
            "l1d_hits": self.dcache.hits,
            "l1d_misses": self.dcache.misses,
            "l1d_writebacks": self.dcache.writebacks,
            "l1i_misses": self.icache.misses,
            "mispredicts": self.core.mispredicts,
        }

    def __repr__(self):
        return (
            f"RTLSim({self.program.name!r}, cycle={self.cycle},"
            f" icount={self.icount})"
        )
