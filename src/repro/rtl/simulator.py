"""Public RT-level simulator API (the "NCSIM + Safety Verifier" tier).

Implements the same :class:`repro.sim.base.SimulatorBase` protocol as
the other levels -- same run control, checkpointing, pinout and
fault-injection interface -- so the campaign engine in
:mod:`repro.injection` is generic over the abstraction level, which is
the paper's whole experimental design.  This shell adds only the RTL
machine construction, the flip-flop state hooks and signal tracing.
"""

from repro.memory.cache import CacheConfig
from repro.rtl.arrays import RTLRegisterFile
from repro.rtl.cache_rtl import RTLCache
from repro.rtl.config import RTLConfig
from repro.rtl.core import RTLCore
from repro.rtl.trace import SignalTrace
from repro.sim.base import RunStatus, SimulatorBase
from repro.uarch.branch import BranchPredictor

__all__ = ["RTLSim", "RunStatus"]


class RTLSim(SimulatorBase):
    """Cycle-by-cycle RT-level Cortex-A9-class simulator."""

    LEVEL = "rtl"

    #: Register-file/CPSR faults batch through the rtl lane backend
    #: (:mod:`repro.batch.rtl`); cache-array faults fall back to the
    #: scalar path inside the engine.
    BATCHABLE = True

    INJECTABLE = {
        "regfile": "register-file macro (56 x 32 flops: user + banked/spare)",
        "cpsr": "NZCV status flops",
        "l1d.data": "L1D data array",
        "l1d.tag": "L1D tag array",
        "l1d.valid": "L1D valid bits",
        "l1d.dirty": "L1D dirty bits",
        "l1d.age": "L1D replacement state",
        "l1i.data": "L1I data array",
        "l1i.tag": "L1I tag array",
        "l1i.valid": "L1I valid bits",
    }

    @classmethod
    def default_config(cls):
        return RTLConfig()

    def _build(self):
        cfg = self.config
        layout = self.program.layout
        self.ram = self._make_ram()
        bus_event = self._bus_listener()
        self.dcache = RTLCache(
            "l1d",
            CacheConfig(cfg.dcache_size, cfg.dcache_ways, cfg.line_size),
            self.ram, cfg, bus_listener=bus_event,
        )
        self.icache = RTLCache(
            "l1i",
            CacheConfig(cfg.icache_size, cfg.icache_ways, cfg.line_size),
            self.ram, cfg, bus_listener=bus_event,
        )
        self.predictor = BranchPredictor(cfg.predictor_entries,
                                         cfg.ras_entries)
        self.rf = RTLRegisterFile()
        self.core = RTLCore(
            cfg, self.program, self.ram, self.icache, self.dcache,
            self.predictor, self.rf,
        )
        if cfg.trace_signals:
            self.trace = SignalTrace()
            self.core.trace = self.trace
        else:
            self.trace = None
        self.rf.write(13, layout.stack_top)

    # ------------------------------------------------------------------
    # access tracing (fault pruning)
    # ------------------------------------------------------------------

    def _install_trace_listeners(self, trace):
        # The pipeline addresses the RF macro through 4-bit instruction
        # fields: only the 16 architectural entries are reachable at
        # all.  Faults in the banked/spare entries (the paper's SS I
        # equivalence argument) are masked by construction, and the
        # pruner may classify them without simulation.
        trace.register("regfile", 32, reachable_cells=range(16))
        trace.register("cpsr", 1)

        def rf_event(index, write):
            if self._trace_pause == 0:
                trace.record("regfile", index, self.core.cycle, write)

        def flag_event(write):
            if self._trace_pause:
                return
            # The RT design reads/writes the NZCV flops as one bundle.
            cycle = self.core.cycle
            for bit in range(4):
                trace.record("cpsr", bit, cycle, write)

        self.rf.listener = rf_event
        self.rf.flag_listener = flag_event

    def _remove_trace_listeners(self):
        self.rf.listener = None
        self.rf.flag_listener = None

    def _install_pc_listener(self, trace):
        # Retirement stamps carry the post-increment cycle (the tick
        # advances the clock before the stages run), matching
        # TRACE_EVENTS_AT_STOP_EXECUTED=True: the static pruner anchors
        # an injection at stop cycle c to the first retirement stamped
        # >= c + 1.
        def retire_event(cycle, pc):
            if self._trace_pause == 0:
                trace.record(cycle, pc)

        self.core.retire_listener = retire_event

    def _remove_pc_listener(self):
        self.core.retire_listener = None

    # ------------------------------------------------------------------
    # signal tracing (this level only)
    # ------------------------------------------------------------------

    @property
    def signal_crc(self):
        """Rolling CRC of the signal-change stream (None when tracing is
        disabled).  Equal CRCs mean bit-identical signal activity."""
        return self.trace.crc if self.trace is not None else None

    def export_vcd(self, title=None):
        """The recorded waveform as VCD text (tracing must be enabled)."""
        if self.trace is None:
            raise RuntimeError("signal tracing is disabled")
        return self.trace.to_vcd(title or self.program.name)

    # ------------------------------------------------------------------
    # architectural visibility
    # ------------------------------------------------------------------

    def arch_state(self):
        regs = [self.rf.read(i) for i in range(15)]
        return {"regs": regs, "flags": self.rf.cpsr,
                "pc": self.core.retired_next_pc}

    # ------------------------------------------------------------------
    # checkpoint hooks
    # ------------------------------------------------------------------

    def _restart_pc(self):
        return self.core.retired_next_pc

    def _capture_state(self):
        return {
            "rf": self.rf.snapshot(),
            "dcache": self.dcache.snapshot(),
            "icache": self.icache.snapshot(),
            "predictor": self.predictor.snapshot(),
            "trace": self.trace.snapshot() if self.trace else None,
        }

    def _restore_state(self, cp):
        if self.trace is not None and cp.get("trace") is not None:
            self.trace.restore(cp["trace"])
        self.rf.restore(cp["rf"])
        self.dcache.restore(cp["dcache"])
        self.icache.restore(cp["icache"])
        self.predictor.restore(cp["predictor"])

    def _set_restart_point(self, pc, cycle):
        self.core.retired_next_pc = pc
        self.core.last_retire_cycle = cycle

    def _digest_extra(self):
        # The RF macro carries banked/spare flops beyond r0-r14 that
        # arch_state() does not see; they are restorable state, so they
        # belong in the digest.
        from repro.sim.base import _crc

        return super()._digest_extra() + (_crc(self.rf.snapshot()),)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------

    def _resolve_special(self, structure):
        if structure == "regfile":
            return self.rf, None
        if structure == "cpsr":
            return self.rf, "cpsr"
        return None

    def _target_bits(self, holder, array):
        if array == "cpsr":
            return 4
        return super()._target_bits(holder, array)

    def _flip(self, holder, array, bit_index):
        if array == "cpsr":
            holder.cpsr ^= 1 << bit_index
            return
        super()._flip(holder, array, bit_index)
