"""RT-level model of the Cortex-A9-class core.

This package substitutes for the paper's commercial RTL + Cadence NCSIM
flow: a cycle-by-cycle, flip-flop/array-accurate, dual-issue in-order
pipeline with explicit cache-controller FSMs and a word-beat external bus
whose traffic is the *core pinout* observed by the Safety-Verifier-style
injector.  See DESIGN.md SS2 for the substitution argument.
"""

from repro.rtl.config import RTLConfig
from repro.rtl.simulator import RTLSim

__all__ = ["RTLConfig", "RTLSim"]
