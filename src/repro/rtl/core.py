"""Dual-issue, 8-stage, in-order RT-level pipeline.

Stage layout (A9-like depth)::

    F1 F2 (fetch buffer)  D1 D2 (decode queue)  RR (issue/regread)
    EX1 (shift/ALU/branch-resolve/agen)  EX2 (cache access, SVC)  WB

All architectural storage is bit-accurate (:mod:`repro.rtl.arrays`,
:mod:`repro.rtl.cache_rtl`); pipeline latches are explicit per-stage lists
so each uop's values are visible cycle-by-cycle state.  Operands are read
at issue through a bypass network over the EX2/MUL/WB latches; hazards
resolve by stalling -- no rename, no speculation past an unresolved
PC-load.  Branches resolve in EX1; a blocking D-cache miss freezes the
whole core clock for the burst duration.

Shares :mod:`repro.isa.alu` with the microarchitectural model, making the
paper's SS II-B premise (logic is functionally identical across levels)
literal.
"""

from repro.errors import SimFault
from repro.isa import alu
from repro.isa.flags import cond_passed
from repro.isa.instructions import (
    COMPARE_OPS,
    Cond,
    DP_IMM_OPS,
    DP_REG_FORM,
    DP_REG_OPS,
    Inst,
    LOAD_OPS,
    MEM_SIZE,
    Op,
    STORE_OPS,
    UNARY_OPS,
)
from repro.isa.syscalls import SyscallEmulator, SyscallError

_PC = 15
_STALL = object()  # sentinel: operand not yet available
_BAD_FETCH = Inst(Op.HLT, text="<bad-fetch>")


class Uop:
    """One in-flight instruction in the RT-level pipeline."""

    __slots__ = (
        "inst", "pc", "predicted_next", "dests", "operands", "old_values",
        "results", "cond_pass", "store_pending", "is_mem", "is_branch",
        "actual_next", "bad_fetch",
    )

    def __init__(self, inst, pc, predicted_next):
        self.inst = inst
        self.pc = pc
        self.predicted_next = predicted_next
        self.dests = tuple(a for a in inst.dst_regs() if a != _PC)
        self.operands = {}
        self.old_values = {}
        self.results = {}
        self.cond_pass = True
        self.store_pending = []
        self.actual_next = None
        self.bad_fetch = False
        op = inst.op
        self.is_mem = op in MEM_SIZE or op in (Op.LDM, Op.STM)
        self.is_branch = (
            op in (Op.B, Op.BL, Op.BX) or _PC in inst.dst_regs()
        )

    def next_pc(self):
        return self.actual_next if self.actual_next is not None \
            else self.pc + 4

    def __repr__(self):
        return f"<Uop {self.pc:#06x} {self.inst!r}>"


class RTLCore:
    """The pipeline proper; wrapped by :class:`repro.rtl.simulator.RTLSim`."""

    def __init__(self, config, program, ram, icache, dcache, predictor, rf):
        self.cfg = config
        self.program = program
        self.ram = ram
        self.icache = icache
        self.dcache = dcache
        self.predictor = predictor
        self.rf = rf
        self.syscalls = SyscallEmulator()

        self.cycle = 0
        self.icount = 0
        self.pc = program.entry
        self.fetch_buffer = []   # F1/F2 output, cap 4
        self.decode_q = []       # D1/D2 output, cap 4
        self.ex1 = []            # issued this cycle (<= 2)
        self.ex2 = []            # EX1 output, heading to EX2
        self.wb = []             # EX2 output, heading to WB
        self.mul_uop = None
        self.mul_remaining = 0
        self.mul_sets_flags = False
        self.stall_until = 0         # global freeze (blocking D-cache)
        self.fetch_stall_until = 0   # F-stage freeze (I-cache refill)
        self.current_line = None
        self.redirect_target = None
        self.redirect_cycle = 0
        self.rr_blocked = False
        self.draining = False
        self.exited = False
        self.fault = None
        self.mispredicts = 0
        self.retired_next_pc = program.entry
        self.last_retire_cycle = 0
        self.trace = None  # optional SignalTrace, attached by RTLSim
        #: Optional hook called as ``(cycle, pc)`` per retired uop, in
        #: retirement order (the static pruner's golden capture).
        self.retire_listener = None

    # ==================================================================
    # clock
    # ==================================================================

    def tick(self):
        self.cycle += 1
        if self.cycle < self.stall_until:
            if self.trace is not None:
                self.trace.sample(self)
            return  # blocking-miss freeze: no latch moves this cycle
        self.rr_blocked = False
        self._stage_wb()
        self._stage_ex2()
        if self.exited:
            # Retire the exit SVC and any same-cycle elders precisely, so
            # the retired-instruction count matches the architectural one.
            self._stage_wb()
            return
        if self.fault is not None:
            return
        self._stage_ex1()
        if self.fault is not None:
            return
        self._stage_issue()
        self._stage_decode()
        self._stage_fetch()
        if self.cycle - self.last_retire_cycle > 50_000:
            self.fault = SimFault("halt-trap", "pipeline deadlock",
                                  addr=self.pc)
        if self.trace is not None:
            self.trace.sample(self)

    # ------------------------------------------------------------------
    # WB
    # ------------------------------------------------------------------

    def _stage_wb(self):
        for uop in self.wb:
            for arch, value in uop.results.items():
                self.rf.write(arch, value)
            self.icount += 1
            self.retired_next_pc = uop.next_pc()
            self.last_retire_cycle = self.cycle
            if self.retire_listener is not None:
                self.retire_listener(self.cycle, uop.pc)
        self.wb = []

    # ------------------------------------------------------------------
    # EX2: memory access, SVC, faults, deep redirects
    # ------------------------------------------------------------------

    def _stage_ex2(self):
        for uop in self.ex2:
            try:
                self._execute_ex2(uop)
            except SimFault as exc:
                self.fault = exc
                return
            if self.exited:
                return
        self.ex2 = []
        if self.mul_uop is not None:
            self.mul_remaining -= 1
            if self.mul_remaining <= 0:
                uop = self.mul_uop
                self.wb.append(uop)
                if self.mul_sets_flags and uop.cond_pass:
                    result = uop.results.get(uop.inst.rd, 0)
                    flags = self.rf.flags()
                    flags.n = bool(result & 0x80000000)
                    flags.z = result == 0
                    self.rf.set_flags(flags)
                self.mul_uop = None
                self.mul_sets_flags = False

    def _execute_ex2(self, uop):
        inst = uop.inst
        op = inst.op
        if not uop.cond_pass:
            self.wb.append(uop)
            return
        if op == Op.HLT:
            detail = "fetch outside text" if uop.bad_fetch \
                else "executed HLT/pool word"
            kind = "mem-fault" if uop.bad_fetch else "halt-trap"
            raise SimFault(kind, detail, addr=uop.pc)
        if op == Op.SVC:
            self._exec_svc(uop)
            self.wb.append(uop)
            return
        if uop.is_mem:
            self._exec_mem_ex2(uop)
        self.wb.append(uop)

    def _exec_svc(self, uop):
        def read_reg(index):
            return uop.operands.get(index, 0)

        def read_byte(addr):
            value, _ = self.dcache.access(addr, 1, write=False,
                                          cycle=self.cycle)
            self._charge_dcache()
            return value

        try:
            result = self.syscalls.handle(uop.inst.imm, read_reg, read_byte)
        except SyscallError as exc:
            raise SimFault("syscall-error", str(exc), addr=uop.pc) from exc
        uop.results[0] = result
        if self.syscalls.exited:
            self.exited = True

    def _charge_dcache(self):
        if self.dcache.stall_cycles:
            self.stall_until = max(
                self.stall_until, self.cycle + self.dcache.stall_cycles
            )

    def _exec_mem_ex2(self, uop):
        inst = uop.inst
        op = inst.op
        if op == Op.LDM:
            base = uop.operands[inst.rn]
            addr = base
            for i in range(16):
                if inst.reglist & (1 << i):
                    value, _ = self.dcache.access(addr, 4, write=False,
                                                  cycle=self.cycle)
                    self._charge_dcache()
                    if i == _PC:
                        self._deep_redirect(uop, value & 0xFFFFFFFC)
                    else:
                        uop.results[i] = value
                    addr += 4
            return
        if op == Op.STM:
            for addr, size, value in uop.store_pending:
                self.dcache.access(addr, size, write=True, value=value,
                                   cycle=self.cycle)
                self._charge_dcache()
            return
        size = MEM_SIZE[op]
        if op in LOAD_OPS:
            addr = uop.store_pending[0][0]  # agen result from EX1
            value, _ = self.dcache.access(addr, size, write=False,
                                          cycle=self.cycle)
            self._charge_dcache()
            if inst.rd == _PC:
                self._deep_redirect(uop, value & 0xFFFFFFFC)
            else:
                uop.results[inst.rd] = value
        else:
            addr, _, value = uop.store_pending[0]
            self.dcache.access(addr, size, write=True, value=value,
                               cycle=self.cycle)
            self._charge_dcache()

    def _deep_redirect(self, uop, target):
        """A PC load resolved at EX2: kill everything younger."""
        self.mispredicts += 1
        uop.actual_next = target
        self.fetch_buffer = []
        self.decode_q = []
        self.ex1 = []
        self.rr_blocked = True
        self.redirect_target = target
        self.redirect_cycle = self.cycle + self.cfg.mispredict_penalty + 1
        self.current_line = None

    # ------------------------------------------------------------------
    # EX1: ALU / shifter / branch resolution / address generation
    # ------------------------------------------------------------------

    def _stage_ex1(self):
        for uop in self.ex1:
            try:
                self._execute_ex1(uop)
            except SimFault as exc:
                self.fault = exc
                self.ex1 = []
                return
            if uop.inst.op in (Op.MUL, Op.MLA) and uop.cond_pass:
                self.mul_uop = uop
                self.mul_remaining = self.cfg.mul_latency - 1
                self.mul_sets_flags = uop.inst.s
            else:
                self.ex2.append(uop)
            if uop.is_branch and uop.next_pc() != uop.predicted_next:
                # Branches never share an issue slot, so nothing younger
                # is in EX1; flush the front of the machine and redirect.
                self.mispredicts += 1
                self.fetch_buffer = []
                self.decode_q = []
                self.rr_blocked = True
                self.redirect_target = uop.next_pc()
                self.redirect_cycle = self.cycle + self.cfg.mispredict_penalty
                self.current_line = None
        self.ex1 = []

    def _execute_ex1(self, uop):
        inst = uop.inst
        op = inst.op
        flags = self.rf.flags()
        uop.cond_pass = cond_passed(inst.cond, flags)
        if not uop.cond_pass:
            for arch in uop.dests:
                uop.results[arch] = uop.old_values[arch]
            if op == Op.B and inst.cond != Cond.AL:
                self.predictor.update(uop.pc, taken=False)
            return

        if op in DP_REG_OPS or op in DP_IMM_OPS:
            self._exec_dp(uop, flags)
        elif op == Op.MOVW:
            uop.results[inst.rd] = inst.imm & 0xFFFF
        elif op == Op.MOVT:
            old = uop.operands[inst.rd]
            uop.results[inst.rd] = (
                (old & 0xFFFF) | ((inst.imm & 0xFFFF) << 16)
            )
        elif op in (Op.MUL, Op.MLA):
            uop.results[inst.rd] = alu.multiply(
                op, uop.operands[inst.rn], uop.operands[inst.rm],
                uop.operands.get(inst.ra, 0),
            )
        elif op in MEM_SIZE:
            self._agen(uop, flags)
        elif op == Op.LDM:
            base = uop.operands[inst.rn]
            if base % 4:
                raise SimFault("align-fault", "ldm", addr=base)
            count = bin(inst.reglist).count("1")
            if base + 4 * count > self.ram.size:
                raise SimFault("mem-fault", "ldm beyond RAM", addr=base)
            if inst.writeback and not (inst.reglist & (1 << inst.rn)):
                uop.results[inst.rn] = (base + 4 * count) & 0xFFFFFFFF
        elif op == Op.STM:
            base = uop.operands[inst.rn]
            count = bin(inst.reglist).count("1")
            addr = (base - 4 * count) & 0xFFFFFFFF
            if addr % 4:
                raise SimFault("align-fault", "stm", addr=addr)
            if addr + 4 * count > self.ram.size:
                raise SimFault("mem-fault", "stm beyond RAM", addr=addr)
            ops = []
            for i in range(16):
                if inst.reglist & (1 << i):
                    ops.append((addr, 4, uop.operands[i]))
                    addr += 4
            uop.store_pending = ops
            if inst.writeback:
                uop.results[inst.rn] = (base - 4 * count) & 0xFFFFFFFF
        elif op == Op.B:
            uop.actual_next = (uop.pc + inst.imm) & 0xFFFFFFFC
            if inst.cond != Cond.AL:
                self.predictor.update(uop.pc, taken=True)
        elif op == Op.BL:
            uop.results[14] = (uop.pc + 4) & 0xFFFFFFFF
            uop.actual_next = (uop.pc + inst.imm) & 0xFFFFFFFC
        elif op == Op.BX:
            uop.actual_next = uop.operands[inst.rm] & 0xFFFFFFFC
        elif op in (Op.SVC, Op.NOP, Op.HLT):
            pass
        else:  # pragma: no cover - decode is exhaustive
            raise SimFault("undefined-inst", repr(op), addr=uop.pc)

    def _exec_dp(self, uop, flags):
        inst = uop.inst
        if inst.op in DP_IMM_OPS:
            op2, shifter_carry = inst.imm & 0xFFFFFFFF, flags.c
        else:
            value = uop.operands[inst.rm]
            if inst.shift_reg is not None:
                amount = uop.operands[inst.shift_reg] & 0xFF
            else:
                amount = inst.shift_amount
            op2, shifter_carry = alu.barrel_shift(
                value, inst.shift_kind, amount, flags.c
            )
        op = DP_REG_FORM.get(inst.op, inst.op)
        rn_value = 0 if op in UNARY_OPS else uop.operands[inst.rn]
        result, new_flags = alu.dp_compute(op, rn_value, op2, flags,
                                           shifter_carry)
        if inst.s or op in COMPARE_OPS:
            self.rf.set_flags(new_flags)
        if op not in COMPARE_OPS:
            if inst.rd == _PC:
                uop.actual_next = result & 0xFFFFFFFC
            else:
                uop.results[inst.rd] = result

    def _agen(self, uop, flags):
        inst = uop.inst
        size = MEM_SIZE[inst.op]
        base = uop.operands[inst.rn]
        if inst.op in (Op.LDR, Op.STR, Op.LDRB, Op.STRB, Op.LDRH, Op.STRH):
            offset = inst.imm
        else:
            offset, _ = alu.barrel_shift(
                uop.operands[inst.rm], inst.shift_kind, inst.shift_amount,
                flags.c,
            )
        addr = (base + offset) & 0xFFFFFFFF if inst.pre else base
        if addr % size:
            raise SimFault("align-fault", f"{size}-byte access", addr=addr)
        if addr + size > self.ram.size:
            raise SimFault("mem-fault", "access beyond RAM", addr=addr)
        if inst.op in STORE_OPS:
            uop.store_pending = [(addr, size, uop.operands[inst.rd])]
        else:
            uop.store_pending = [(addr, size, 0)]
        if inst.writeback or not inst.pre:
            if not (inst.op in LOAD_OPS and inst.rn == inst.rd):
                uop.results[inst.rn] = (base + offset) & 0xFFFFFFFF

    # ------------------------------------------------------------------
    # RR: issue + operand read (bypass network)
    # ------------------------------------------------------------------

    def _bypass_read(self, arch, pc):
        """Read one operand through the bypass network.

        Returns the value, or the ``_STALL`` sentinel when the youngest
        in-flight writer has not produced it yet.
        """
        if arch == _PC:
            return (pc + 8) & 0xFFFFFFFF
        for uop in reversed(self.ex2):
            if arch in uop.dests:
                return uop.results.get(arch, _STALL)
        if self.mul_uop is not None and arch in self.mul_uop.dests:
            return _STALL
        for uop in reversed(self.wb):
            if arch in uop.dests:
                return uop.results.get(arch, _STALL)
        return self.rf.read(arch)

    def _try_read_operands(self, uop):
        """Collect source operands (and old dest values for conditional
        instructions).  Returns False when the uop must stall."""
        inst = uop.inst
        operands = {}
        for arch in set(inst.src_regs()):
            value = self._bypass_read(arch, uop.pc)
            if value is _STALL:
                return False
            operands[arch] = value
        old_values = {}
        if inst.cond != Cond.AL:
            for arch in uop.dests:
                value = self._bypass_read(arch, uop.pc)
                if value is _STALL:
                    return False
                old_values[arch] = value
        uop.operands = operands
        uop.old_values = old_values
        return True

    def _can_issue_second(self, first, second):
        """Dual-issue pairing rules: the younger slot takes only a simple
        data-processing op with no dependency on (or conflict with) the
        older slot."""
        inst = second.inst
        op = inst.op
        if first.is_branch or first.inst.op in (Op.SVC, Op.HLT) \
                or first.is_mem:
            return False
        if op not in DP_REG_OPS and op not in DP_IMM_OPS and \
                op not in (Op.MOVW, Op.MOVT, Op.NOP):
            return False
        if second.is_branch or second.bad_fetch:
            return False
        first_dests = set(first.dests)
        reads = set(a for a in inst.src_regs() if a != _PC)
        if inst.cond != Cond.AL:
            reads |= set(second.dests)
        if reads & first_dests:
            return False
        if set(second.dests) & first_dests:
            return False
        if (inst.cond != Cond.AL or inst.reads_flags()) \
                and first.inst.writes_flags():
            # Same-cycle flag forwarding exists (EX1 is processed in slot
            # order) but the RT design does not pair flag-setter with
            # flag-reader.
            return False
        return True

    def _stage_issue(self):
        if self.rr_blocked:
            return
        issued = []
        while self.decode_q and len(issued) < self.cfg.issue_width:
            uop = self.decode_q[0]
            inst = uop.inst
            if issued and not self._can_issue_second(issued[0], uop):
                break
            if inst.op in (Op.MUL, Op.MLA) and self.mul_uop is not None:
                break
            if self.mul_uop is not None and self.mul_sets_flags and (
                    inst.cond != Cond.AL or inst.reads_flags()
                    or inst.writes_flags()):
                break
            if self.mul_uop is not None and \
                    set(uop.dests) & set(self.mul_uop.dests):
                break  # WAW with the in-flight multiply
            if not self._try_read_operands(uop):
                break
            self.decode_q.pop(0)
            issued.append(uop)
            self.ex1.append(uop)
            if uop.is_branch or inst.op in (Op.SVC, Op.HLT) or uop.is_mem:
                break  # these issue without a younger partner

    # ------------------------------------------------------------------
    # D: decode (one cycle through the decode queue)
    # ------------------------------------------------------------------

    def _stage_decode(self):
        moved = 0
        while self.fetch_buffer and len(self.decode_q) < 4 and moved < 2:
            self.decode_q.append(self.fetch_buffer.pop(0))
            moved += 1

    # ------------------------------------------------------------------
    # F: fetch with prediction and the I-cache FSM
    # ------------------------------------------------------------------

    def _stage_fetch(self):
        if self.redirect_target is not None:
            if self.cycle < self.redirect_cycle:
                return
            self.pc = self.redirect_target
            self.redirect_target = None
        if self.draining or self.exited:
            return
        if self.fetch_stall_until > self.cycle:
            return
        fetched = 0
        while fetched < 2 and len(self.fetch_buffer) < 4:
            inst = self.program.inst_at(self.pc)
            if inst is None:
                # Possibly a wrong-path runaway: deliver a bad-fetch uop
                # that faults only if it is architecturally reached.
                uop = Uop(_BAD_FETCH, self.pc, self.pc + 4)
                uop.bad_fetch = True
                self.fetch_buffer.append(uop)
                return
            line = self.pc & ~(self.cfg.line_size - 1)
            if line != self.current_line:
                self.current_line = line
                _, way = self.icache.probe(line)
                self.icache.access(line, 4, write=False, cycle=self.cycle)
                if way is None:
                    self.fetch_stall_until = (
                        self.cycle + self.icache.stall_cycles
                    )
                    return
            predicted = self._predict_next(inst, self.pc)
            uop = Uop(inst, self.pc, predicted)
            self.fetch_buffer.append(uop)
            self.pc = predicted
            fetched += 1

    def _predict_next(self, inst, pc):
        op = inst.op
        if op == Op.B:
            if inst.cond == Cond.AL or self.predictor.predict_taken(pc):
                return (pc + inst.imm) & 0xFFFFFFFC
            return pc + 4
        if op == Op.BL:
            self.predictor.push_return(pc + 4)
            return (pc + inst.imm) & 0xFFFFFFFC
        if op == Op.BX:
            target = self.predictor.pop_return()
            return target & 0xFFFFFFFC if target is not None else pc + 4
        return pc + 4

    # ------------------------------------------------------------------

    def quiesced(self):
        return (
            not self.fetch_buffer and not self.decode_q and not self.ex1
            and not self.ex2 and not self.wb and self.mul_uop is None
            and self.cycle >= self.stall_until
        )
