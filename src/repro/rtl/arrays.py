"""Bit-accurate storage arrays of the RT-level design.

The register-file macro of an A9-class design holds more than the 16
user-mode registers: the banked-mode copies (FIQ/IRQ/SVC/ABT/UND) and the
spare slots that back the core's limited renaming share the same SRAM/flop
array.  An RTL injector targets the *whole* array -- which is also what
makes the RT-level register-file population equivalent to the
microarchitectural model's 56-entry physical register file (the paper's
"equivalent configurations of the hardware structures", SS I).  Bare-metal
user-mode execution reads and writes only the first 16 entries; faults in
the banked/spare entries are architecturally masked, at both levels.
"""

import numpy as np

from repro.isa.flags import Flags

#: Size of the register-file macro (matches Table I's physical RF).
RF_MACRO_ENTRIES = 56


class RTLRegisterFile:
    """Register-file macro (user regs + banked/spare entries) + CPSR."""

    def __init__(self, entries=RF_MACRO_ENTRIES):
        self.entries = entries
        self.regs = np.zeros(entries, dtype=np.uint32)
        self.cpsr = 0  # packed NZCV
        #: Optional access hook ``(index, is_write)`` per register
        #: read/write; the ``rtl`` backend's lifetime-trace capture.
        self.listener = None
        #: Optional access hook ``(is_write,)`` whenever the pipeline
        #: consults (``flags()``) or replaces (``set_flags()``) the
        #: CPSR flops as a unit.
        self.flag_listener = None

    def read(self, index):
        if self.listener is not None:
            self.listener(index, False)
        return int(self.regs[index])

    def write(self, index, value):
        if self.listener is not None:
            self.listener(index, True)
        self.regs[index] = value & 0xFFFFFFFF

    def flags(self):
        if self.flag_listener is not None:
            self.flag_listener(False)
        return Flags.unpack(self.cpsr)

    def set_flags(self, flags):
        if self.flag_listener is not None:
            self.flag_listener(True)
        self.cpsr = flags.pack()

    # -- fault-injection interface --------------------------------------

    def bit_count(self, include_cpsr=False):
        return self.entries * 32 + (4 if include_cpsr else 0)

    def flip_bit(self, bit_index):
        if bit_index >= self.entries * 32:
            self.cpsr ^= 1 << (bit_index - self.entries * 32)
            return
        reg, bit = divmod(bit_index, 32)
        self.regs[reg] ^= np.uint32(1 << bit)

    def snapshot(self):
        return (self.regs.copy(), self.cpsr)

    def restore(self, state):
        regs, cpsr = state
        self.regs = regs.copy()
        self.cpsr = cpsr
