"""RT-level cache controller: bit-accurate arrays + burst-beat bus FSM.

Reuses the array geometry of :class:`repro.memory.cache.Cache` (identical
injectable bits) but models misses as explicit multi-cycle bus bursts:
a dirty eviction streams the victim line word-by-word onto the bus (each
beat is one pinout transaction), then the refill is requested and streamed
in.  The pipeline freezes for the duration, exactly like a blocking RTL
cache controller.
"""

from repro.memory.cache import Cache, CacheConfig


class RTLCache(Cache):
    """A :class:`Cache` whose misses cost explicit bus-burst cycles and
    whose write-backs appear on the pinout as per-word beats."""

    def __init__(self, name, config, ram, rtl_config, bus_listener=None,
                 access_listener=None):
        self._rtl_cfg = rtl_config
        self._beat_listener = bus_listener
        # The base class emits line-granular events; we intercept and
        # re-emit them as word beats with per-beat cycle stamps.
        super().__init__(name, config, ram,
                         bus_listener=self._line_event,
                         access_listener=access_listener)
        self.stall_cycles = 0  # cycles the last access cost beyond 1

    def _line_event(self, kind, addr, data, cycle):
        if self._beat_listener is None:
            return
        cfg = self._rtl_cfg
        if kind == "wb":
            for i in range(cfg.line_words):
                beat_cycle = cycle + (i + 1) * cfg.bus_beat_cycles
                self._beat_listener(
                    "wb", addr + 4 * i, data[4 * i:4 * i + 4], beat_cycle
                )
        else:
            self._beat_listener(kind, addr, b"", cycle)

    def access(self, addr, size, write, value=0, cycle=0):
        """One access; sets :attr:`stall_cycles` to the freeze penalty."""
        self.stall_cycles = 0
        _, way = self.probe(addr)
        if way is None:
            tag, index, _ = self.config.split(addr)
            victim = self._victim(index)
            penalty = self._rtl_cfg.refill_cycles()
            if self.valid[index, victim] and self.dirty[index, victim]:
                penalty += self._rtl_cfg.writeback_cycles()
            self.stall_cycles = penalty
        return super().access(addr, size, write, value=value, cycle=cycle)


def make_rtl_cache(name, size, ways, line_size, ram, rtl_config,
                   bus_listener=None, access_listener=None):
    return RTLCache(
        name, CacheConfig(size, ways, line_size), ram, rtl_config,
        bus_listener=bus_listener, access_listener=access_listener,
    )
