"""RT-level model configuration.

Geometry matches Table I of the paper (same caches, same ISA); the timing
knobs describe the bus and pipeline of the RT-level design, which -- as in
the paper -- is *similar but not identical* to the microarchitectural
model's timing (SS III-C: "there are cases that cannot be covered").
"""


class RTLConfig:
    def __init__(self, **overrides):
        self.dcache_size = 32 * 1024
        self.dcache_ways = 4
        self.icache_size = 32 * 1024
        self.icache_ways = 4
        self.line_size = 32
        self.issue_width = 2          # dual-issue, A9-style
        self.predictor_entries = 1024
        self.ras_entries = 8
        self.mul_latency = 4
        self.bus_request_cycles = 6   # first-beat latency
        self.bus_beat_cycles = 2      # per-word burst beat
        self.mispredict_penalty = 3   # EX1-resolved redirect bubble
        # Signal tracing (the NCSIM/Safety-Verifier golden-trace machinery;
        # see repro.rtl.trace).  On by default: this is what an RTL flow
        # does and what its throughput cost is.  Campaigns may disable it.
        self.trace_signals = True
        for key, value in overrides.items():
            if not hasattr(self, key):
                raise TypeError(f"unknown config attribute {key!r}")
            setattr(self, key, value)

    @property
    def line_words(self):
        return self.line_size // 4

    def refill_cycles(self):
        """Cycles for one line refill burst."""
        return self.bus_request_cycles + self.line_words \
            * self.bus_beat_cycles

    def writeback_cycles(self):
        """Cycles for one dirty-line write-back burst."""
        return self.line_words * self.bus_beat_cycles

    def __repr__(self):
        return (
            f"RTLConfig(dual-issue, refill={self.refill_cycles()}cyc,"
            f" wb={self.writeback_cycles()}cyc)"
        )
