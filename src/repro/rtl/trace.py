"""Signal tracing for the RT-level model (the NCSIM/Safety-Verifier part).

The paper's RTL flow observes *design signals*: every simulation records
the signal activity of the design, and safeness is computed by comparing
a run's signal trace against the golden trace.  This module reproduces
that machinery:

* every cycle, the named flop groups of the pipeline are sampled;
* value changes are appended to a VCD-style change log (exportable with
  :meth:`SignalTrace.to_vcd`);
* a rolling CRC of the change stream is maintained -- two runs with equal
  CRCs toggled exactly the same flops on exactly the same cycles, which is
  the strict signal-level safeness criterion (ablation A5).

This is also why RTL simulation is slow: the per-cycle sampling cost is
what separates the two rows of the paper's Table II.  The unit is optional
(``RTLConfig.trace_signals``); campaigns may disable it for speed, and
EXPERIMENTS.md reports throughput both ways.
"""

import zlib


def _uop_signature(uop):
    """Flop-level contents of one pipeline latch entry."""
    if uop is None:
        return b"-"
    parts = [
        uop.pc.to_bytes(4, "little"),
        int(uop.inst.op).to_bytes(1, "little"),
        b"1" if uop.cond_pass else b"0",
    ]
    for arch in sorted(uop.results):
        parts.append(bytes((arch,)))
        parts.append((uop.results[arch] & 0xFFFFFFFF).to_bytes(4, "little"))
    for addr, size, value in uop.store_pending:
        parts.append(addr.to_bytes(4, "little"))
        parts.append(bytes((size,)))
        parts.append((value & 0xFFFFFFFF).to_bytes(4, "little"))
    return b"|".join(parts)


class SignalTrace:
    """Change-detecting sampler over the RT-level core's flop groups."""

    def __init__(self, max_changes=2_000_000):
        self.previous = {}
        self.changes = []       # (cycle, signal, bitstring) tuples
        self.max_changes = max_changes
        self.crc = 0
        self.samples = 0
        self.toggles = {}       # signal -> total bits toggled (activity)

    def groups(self, core):
        """Named flop groups sampled every cycle."""
        yield "pc", core.pc.to_bytes(4, "little")
        yield "rf", core.rf.regs.tobytes()
        yield "cpsr", bytes((core.rf.cpsr,))
        yield "retired_next_pc", core.retired_next_pc.to_bytes(4, "little")
        for name, latch in (
            ("f", core.fetch_buffer), ("d", core.decode_q),
            ("ex1", core.ex1), ("ex2", core.ex2), ("wb", core.wb),
        ):
            for i in range(4):
                uop = latch[i] if i < len(latch) else None
                yield f"{name}{i}", _uop_signature(uop)
        yield "mul", _uop_signature(core.mul_uop)
        yield "mul_cnt", bytes((core.mul_remaining & 0xFF,))
        yield "stall", (max(core.stall_until - core.cycle, 0)
                        & 0xFFFFFFFF).to_bytes(4, "little")
        yield "fstall", (max(core.fetch_stall_until - core.cycle, 0)
                         & 0xFFFFFFFF).to_bytes(4, "little")

    def sample(self, core):
        """Record all flop groups that changed this cycle.

        Like a VCD dumper, the change value is rendered to its bit-vector
        string eagerly, and per-signal toggle counts (the activity numbers
        a power-estimation flow consumes) are accumulated from the XOR of
        the old and new values.  This per-cycle work is the honest cost of
        RT-level simulation and the source of Table II's throughput gap.
        """
        self.samples += 1
        cycle = core.cycle
        previous = self.previous
        toggles = self.toggles
        for name, blob in self.groups(core):
            old = previous.get(name)
            if old != blob:
                previous[name] = blob
                self.crc = zlib.crc32(blob, self.crc ^ cycle) & 0xFFFFFFFF
                new_int = int.from_bytes(blob, "little")
                old_int = int.from_bytes(old, "little") if old else 0
                toggles[name] = (
                    toggles.get(name, 0) + (new_int ^ old_int).bit_count()
                )
                if len(self.changes) < self.max_changes:
                    width = max(len(blob), 4) * 8
                    self.changes.append(
                        (cycle, name, format(new_int, f"0{width}b"))
                    )

    def to_vcd(self, title="repro-rtl"):
        """Render the change log as a (simplified) VCD text document."""
        names = sorted({name for _, name, _ in self.changes})
        codes = {name: chr(33 + i) for i, name in enumerate(names)}
        lines = [
            f"$comment {title} $end",
            "$timescale 1ns $end",
            "$scope module core $end",
        ]
        for name in names:
            lines.append(f"$var wire 32 {codes[name]} {name} $end")
        lines.append("$upscope $end")
        lines.append("$enddefinitions $end")
        last_cycle = None
        for cycle, name, bits in self.changes:
            if cycle != last_cycle:
                lines.append(f"#{cycle}")
                last_cycle = cycle
            lines.append(f"b{bits} {codes[name]}")
        return "\n".join(lines) + "\n"

    def snapshot(self):
        return (dict(self.previous), self.crc, self.samples,
                len(self.changes), dict(self.toggles))

    def restore(self, state):
        previous, crc, samples, nchanges, toggles = state
        self.previous = dict(previous)
        self.crc = crc
        self.samples = samples
        del self.changes[nchanges:]
        self.toggles = dict(toggles)
