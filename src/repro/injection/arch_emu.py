"""ArchEmu: the architectural-emulation injection front-end.

The third tier of the paper's taxonomy (SS I): fast software-level /
architectural emulation without hardware details.  The paper's study
runs at the two hardware levels; this front-end drives the same campaign
engine over the :class:`repro.sim.archsim.ArchSim` backend, giving
campaigns a cheap golden pre-run path and extending the throughput
comparison (Table II) with the emulator row the taxonomy implies.

Faults at this tier land in *architectural* state only (register file,
CPSR); the tier is structurally blind to the PRF, caches and pipeline --
quantifying what that blindness costs is precisely the kind of
cross-level delta the paper measures one level up.
"""

from repro.sim.archsim import ArchConfig
from repro.sim.frontend import Frontend


class ArchEmu(Frontend):
    """Campaign front-end over :class:`repro.sim.archsim.ArchSim`.

    Modes (the same vocabulary as :class:`~repro.injection.gefin.GeFIN`,
    so arch-tier series drop into the existing figure matrix):

    * ``pinout``         -- store-stream OP, scaled window;
    * ``pinout-notimer`` -- store-stream OP, run to program end;
    * ``avf``            -- software OP (program output), run to end;
    * ``hvf``            -- layer boundary OP: registers + memory image.
    """

    LEVEL = "arch"
    #: Same binaries as the microarchitectural flow by default.
    DEFAULT_TOOLCHAIN = "gnu"

    MODES = {
        "pinout": ("pinout", True),
        "pinout-notimer": ("pinout", False),
        "avf": ("software", False),
        "hvf": ("arch", False),
    }

    def __init__(self, workload, toolchain=None, arch_config=None,
                 scaled_caches=True):
        # ``scaled_caches`` is accepted for interface uniformity with the
        # other front-ends; the emulator has no caches to scale.
        super().__init__(workload, toolchain=toolchain,
                         sim_config=arch_config,
                         scaled_caches=scaled_caches)

    def _default_sim_config(self, scaled_caches):
        return ArchConfig()

    @property
    def arch_config(self):
        return self.sim_config
