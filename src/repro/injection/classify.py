"""Fault-effect classification.

The paper's top-level dichotomy (SS IV-A)::

    Masked/Safe : no deviation observed at the observation point
    Unsafe      : any mismatch against the fault-free simulation

We additionally keep the finer-grained classes every SFI framework
reports, and map them onto Safe/Unsafe:

========== ======= ==========================================
class      safe?   meaning
========== ======= ==========================================
MASKED     yes     observation channel identical to golden
SDC        no      program output differs silently
DUE        no      architectural exception / crash detected
HANG       no      watchdog expired (lockup)
MISMATCH   no      pinout/signal trace deviated from golden
LATENT     no      hardware state corrupted, output clean
                   (HVF-style "arch" observation point only)
========== ======= ==========================================
"""

import enum


class FaultClass(enum.Enum):
    MASKED = "masked"
    SDC = "sdc"
    DUE = "due"
    HANG = "hang"
    MISMATCH = "mismatch"
    LATENT = "latent"

    @property
    def safe(self):
        return self is FaultClass.MASKED

    @property
    def unsafe(self):
        return not self.safe


class FaultRecord:
    """Outcome of one injection run (or of one pruning decision)."""

    __slots__ = ("fault", "fclass", "detail", "sim_cycles", "wall_seconds",
                 "replay_cycles", "pruned")

    def __init__(self, fault, fclass, detail="", sim_cycles=0,
                 wall_seconds=0.0, replay_cycles=0, pruned=""):
        self.fault = fault
        self.fclass = fclass
        self.detail = detail
        self.sim_cycles = sim_cycles
        self.wall_seconds = wall_seconds
        #: Pre-injection cycles this run re-simulated to reach the
        #: fault instant (restore-to-injection distance).  Warm starts
        #: keep this below the checkpoint stride; cold starts pay the
        #: whole prefix.  Hardware-independent, so benches use the
        #: warm/cold ratio of (replay + post-injection) cycles as the
        #: deterministic speedup metric.
        self.replay_cycles = replay_cycles
        #: How the classification was reached without simulation:
        #: ``""`` -- this fault was simulated; ``"dead"`` -- the golden
        #: lifetime trace proved it Masked (dead-interval pruning);
        #: ``"group"`` -- inherited from its equivalence-group
        #: representative (``prune_mode="group"``); ``"static"`` -- the
        #: static dataflow engine proved it Masked from the program
        #: text and the retired-PC stream alone
        #: (``prune_mode="static"``, :mod:`repro.staticcheck`).
        self.pruned = pruned

    @property
    def simulated(self):
        """Whether this fault cost a simulation run."""
        return not self.pruned

    def __repr__(self):
        tag = f" [{self.pruned}]" if self.pruned else ""
        return f"FaultRecord({self.fault!r} -> {self.fclass.value}{tag})"


class Incident:
    """A fault that could not be classified: quarantined, not counted.

    Produced by the supervised executor when one fault keeps killing or
    stalling its worker (or keeps raising in-process) after the retry
    budget is spent.  Incidents are *not* :class:`FaultRecord`\\ s -- they
    carry no classification and stay out of every statistic; they
    persist in the store's ``incidents.jsonl`` sidecar with
    ``disposition="error"`` so a resumed campaign skips the poison
    fault instead of re-dying on it.

    ``kind`` is how the fault failed: ``"crash"`` (worker process
    died), ``"hang"`` (batch deadline expired, worker killed) or
    ``"exception"`` (the run raised).  ``attempts`` counts executions
    spent on the fault before giving up.
    """

    __slots__ = ("index", "fault", "kind", "detail", "attempts")

    #: Every incident shares one disposition -- the store column that
    #: distinguishes quarantined faults from classified records.
    disposition = "error"

    def __init__(self, index, fault, kind, detail="", attempts=1):
        self.index = index
        self.fault = fault
        self.kind = kind
        self.detail = detail
        self.attempts = attempts

    def __repr__(self):
        return (
            f"Incident(#{self.index} {self.fault!r} {self.kind}"
            f" after {self.attempts} attempts)"
        )


def compare_traces(golden_keys, faulty_keys, limit=None):
    """Content+order pinout comparison.

    Returns True when the faulty trace is a consistent prefix-match of the
    golden trace (the faulty run may be shorter because of the
    post-injection window).  ``limit`` bounds how many golden entries the
    faulty run was given the chance to produce.
    """
    span = len(faulty_keys) if limit is None else min(len(faulty_keys),
                                                      limit)
    if len(faulty_keys) > len(golden_keys):
        return False
    for i in range(span):
        if faulty_keys[i] != golden_keys[i]:
            return False
    return True
