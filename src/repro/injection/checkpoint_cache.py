"""Golden-run checkpoint cache: the campaign warm-start subsystem.

A campaign's faulty phase restores a pre-fault machine state once per
injection.  This module owns everything about those restart points:

* **capture** -- during the golden run the cache takes one drained
  checkpoint every ``stride`` cycles through the
  :meth:`~repro.sim.base.SimulatorBase.checkpoint_at` hook, and records
  per-boundary metadata that stays tiny even when the checkpoint payload
  itself is evicted: the post-drain cycle, the pre-drain stop cycle, the
  full :meth:`~repro.sim.base.SimulatorBase.state_digest` and the pinout
  length;
* **bounding** -- ``max_resident`` caps how many checkpoint payloads
  stay in memory (and therefore how much the parallel executor
  serializes per worker).  Eviction is LRU over restore traffic; the
  base checkpoint is pinned so every cycle stays reachable;
* **seek** -- :meth:`seek` positions a simulator at the best retained
  restart point at or before a target cycle (``warm``) or at the base
  checkpoint (``cold``), then replays the *drain-punctuated* golden
  trajectory through any evicted boundaries.

The replay detail is the correctness core: the golden run drains at
every boundary (that is how checkpoints are captured), so the golden
trajectory between checkpoints is the post-drain one.  ``seek`` replays
those same drains at the same stop cycles, which makes the pre-injection
state bit-identical no matter which checkpoint it started from -- warm
start, cold start and any eviction pattern all land in exactly the same
machine state.  That invariance is what the cross-tier equivalence suite
(tests/test_warmstart_equivalence.py) locks in.
"""

import bisect

from repro.sim.base import RunStatus


class CheckpointCache:
    """Interval checkpoints of one golden run, LRU-bounded.

    Picklable: the whole cache travels to pool workers inside the
    serialized :class:`~repro.injection.campaign.FaultRunner` payload,
    so every worker shares the same restart points (and the bound also
    caps the per-worker transfer).
    """

    #: Default capture stride (cycles between drained checkpoints) when
    #: the campaign does not configure one.
    DEFAULT_STRIDE = 4000

    def __init__(self, stride=None, max_resident=None,
                 collect_digests=True):
        if stride is not None and stride < 1:
            raise ValueError(f"stride must be >= 1, got {stride}")
        if max_resident is not None and max_resident < 1:
            raise ValueError(
                f"max_resident must be >= 1 or None, got {max_resident}"
            )
        self.stride = stride or self.DEFAULT_STRIDE
        self.max_resident = max_resident
        #: Whether boundary state digests are captured.  They are only
        #: ever consumed by the early-stop comparator, which fires on
        #: ``DRAIN_FREE`` backends -- campaigns on pipelined backends
        #: skip the capture cost (a full-state CRC per boundary).
        self.collect_digests = collect_digests
        #: Post-drain cycle of boundary ``k`` (what ``cp["cycle"]`` was).
        self.cycles = []
        #: Pre-drain stop cycle of boundary ``k`` (where the golden run
        #: paused before draining); equals ``cycles[k]`` for the base.
        self.stops = []
        #: Full state digest right after the boundary checkpoint.
        self.digests = []
        #: Pinout length at the boundary (trace comparison base).
        self.pinout_lens = []
        #: Retained checkpoint payloads, index -> checkpoint dict.
        self._entries = {}
        #: Resident indices, least-recently-used first (index 0 pinned).
        self._lru = []

    # ------------------------------------------------------------------
    # capture
    # ------------------------------------------------------------------

    def capture(self, sim, stop_cycle=None):
        """Checkpoint ``sim`` right now and retain it (LRU-bounded)."""
        cp = sim.checkpoint()
        self._retain(cp, cp["cycle"] if stop_cycle is None else stop_cycle,
                     sim)
        return cp

    def capture_golden(self, sim, on_restore=None):
        """Drive the golden run to completion, capturing every stride.

        Returns the final :class:`RunStatus`.  The caller owns listener
        setup and exit validation; this method owns the capture cadence.

        After each capture the simulator is *restored from its own
        checkpoint*.  Every faulty run starts from a restored
        checkpoint, and ``restore()`` canonicalizes microarchitectural
        residue that drain-in-place does not (which physical register
        backs an architectural one, free-list order).  Round-tripping
        the golden machine at every boundary makes the golden
        trajectory -- its pinout, its boundary digests and above all
        its lifetime access trace, whose events name *physical* storage
        cells -- the exact trajectory every warm- or cold-started
        faulty run replays.  Architectural content is unchanged by the
        round trip (that is the checkpoint contract); transient timing
        residue a drain leaves in place (current fetch line, stall
        watermarks) is re-primed, which defines the canonical golden
        timeline all equivalence contracts are stated on.

        ``restore()`` rebuilds the machine, so golden-phase listeners
        attached to its internals (the L1D acceleration access log) are
        lost at every boundary; ``on_restore(sim)``, when given, is
        called after each round trip to re-attach them.
        """
        cp = self.capture(sim)
        sim.restore(cp)
        if on_restore is not None:
            on_restore(sim)
        while True:
            stop = sim.cycle + self.stride
            status, cp = sim.checkpoint_at(stop)
            if cp is None:
                return status
            self._retain(cp, stop, sim)
            sim.restore(cp)
            if on_restore is not None:
                on_restore(sim)
            if sim.exited or sim.fault is not None:
                return status

    def _retain(self, cp, stop_cycle, sim):
        index = len(self.cycles)
        self.cycles.append(cp["cycle"])
        self.stops.append(stop_cycle)
        self.digests.append(sim.state_digest() if self.collect_digests
                            else None)
        self.pinout_lens.append(len(cp["pinout"]))
        self._entries[index] = cp
        self._touch(index)
        self._evict()

    def _touch(self, index):
        if index in self._lru:
            self._lru.remove(index)
        self._lru.append(index)

    def _evict(self):
        if self.max_resident is None:
            return
        while len(self._entries) > self.max_resident:
            victim = next(i for i in self._lru if i != 0)
            self._lru.remove(victim)
            del self._entries[victim]

    def drop_access_traces(self):
        """Strip lifetime-trace snapshots from the retained checkpoints.

        A traced golden run snapshots its access trace into every
        checkpoint (so traced runs round-trip like the pinout does),
        but the campaign needs only the *final* trace -- the faulty
        phase restores with tracing sealed -- and the per-boundary
        prefixes would otherwise bloat the per-worker executor payload
        quadratically.  Called once after the golden phase.
        """
        for cp in self._entries.values():
            cp.pop("access_trace", None)

    # ------------------------------------------------------------------
    # lookup / seek
    # ------------------------------------------------------------------

    @property
    def count(self):
        """Boundaries captured (metadata rows, not resident payloads)."""
        return len(self.cycles)

    @property
    def resident(self):
        """Checkpoint payloads currently held in memory."""
        return len(self._entries)

    def boundary_at_or_before(self, cycle):
        """Index of the last boundary whose post-drain cycle is <= cycle."""
        return max(bisect.bisect_right(self.cycles, cycle) - 1, 0)

    def trace_base(self, cycle):
        """Pinout comparison base for a fault at ``cycle``: the golden
        pinout length at the boundary :meth:`seek` targets for it.
        This is what ``seek`` returns as its first element; the lane
        engine needs it without re-seeking because one group seek
        serves faults at many cycles."""
        return self.pinout_lens[self.boundary_at_or_before(cycle)]

    def nearest_resident(self, cycle):
        """Best retained restart point at or before ``cycle`` (touches
        it for LRU purposes)."""
        j = self.boundary_at_or_before(cycle)
        while j > 0 and j not in self._entries:
            j -= 1
        self._touch(j)
        return j

    def entry(self, index):
        return self._entries[index]

    def seek(self, sim, cycle, warm=True, max_cycles=5_000_000):
        """Position ``sim`` exactly where the golden run stood when it
        was about to execute past the last boundary at or before
        ``cycle``, then leave the final advance (to the injection
        instant) to the caller.

        Returns ``(trace_base, restore_cycle)``: the pinout length at
        the target boundary (the classification comparison base) and
        the cycle of the restored checkpoint, from which the caller
        computes the replayed-cycle accounting.

        ``warm=False`` restores the base checkpoint and replays the full
        drain-punctuated prefix -- the cold-start baseline.  Both paths
        produce bit-identical machine states by construction.
        """
        target = self.boundary_at_or_before(cycle)
        start = self.nearest_resident(cycle) if warm else 0
        sim.restore(self._entries[start])
        restore_cycle = sim.cycle
        for k in range(start + 1, target + 1):
            status = sim.run(stop_cycle=self.stops[k],
                             max_cycles=max_cycles)
            if status is not RunStatus.STOPPED:
                # Unreachable on a healthy cache (the golden run crossed
                # this boundary), kept as a hard failure over silence.
                raise RuntimeError(
                    f"golden replay ended early at boundary {k}: {status}"
                )
            sim.drain()
        if start != target:
            # Canonicalize: ``restore()`` rebuilds the machine, so a
            # restored checkpoint and an in-place-drained replay agree
            # on *content* but not necessarily on microarchitectural
            # residue (e.g. which physical register backs an
            # architectural one).  Injection targets raw structures, so
            # the seek must end in exactly the state
            # ``restore(cp[target])`` would produce -- a checkpoint
            # round-trip of the replayed machine is that state, because
            # checkpoint content is architectural and the replayed
            # content equals the golden content at this boundary.
            sim.restore(sim.checkpoint())
        return self.pinout_lens[target], restore_cycle

    # ------------------------------------------------------------------

    def __repr__(self):
        bound = self.max_resident or "unbounded"
        return (
            f"CheckpointCache({self.count} boundaries,"
            f" {self.resident} resident, stride={self.stride},"
            f" max_resident={bound})"
        )
