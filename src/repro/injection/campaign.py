"""The SFI campaign engine, generic over the two abstraction levels.

A campaign follows the paper's two-step industrial flow (SS III-A):

1. **Golden simulation**: one fault-free run, recording the pinout trace,
   the program output and periodic drained checkpoints (plus, for the
   RTL acceleration, the golden L1D access log).
2. **Faulty simulations**: for each sampled fault the nearest checkpoint
   is restored, execution advances to the injection instant, one bit is
   flipped, and the run continues until the post-injection window
   expires (the paper's 20 kcycles, scaled -- see ``SCALED_WINDOW``) or,
   in "no timer" / software-observation modes, to program end.

Classification follows SS IV-A: any deviation at the configured
observation point makes a run Unsafe.

Step 2 is embarrassingly parallel: every faulty run starts from a
shared, read-only golden payload.  The per-fault execution therefore
lives in the picklable :class:`FaultRunner`, which the serial loop and
the process-pool backend (:mod:`repro.injection.executor`) both drive;
``CampaignConfig(jobs=N)`` selects the backend.  The parallel path
merges records in fault-sample order, so for a fixed seed its
``CampaignResult`` is identical to the serial one (see DESIGN.md).
"""

import bisect
import time

from repro.injection import faults as fault_mod
from repro.injection.classify import FaultClass, FaultRecord, compare_traces
from repro.injection.distributions import make_distribution, make_rng
from repro.injection.observation import hardware_state_digest
from repro.injection.sampling import (
    achieved_error_margin,
    fault_population,
    leveugle_sample_size,
    wilson_interval,
)
# RunStatus lives in the level-generic backend layer; campaign.py keeps
# this re-export for callers that historically imported it from here.
from repro.sim.base import RunStatus

#: The paper terminates each faulty run 20 kcycles after injection.  Our
#: workloads are scaled down ~500x relative to MiBench-on-A9 (DESIGN.md),
#: so the equivalent window keeping the window/run-length ratio in the
#: paper's range is ~2 kcycles.
SCALED_WINDOW = 2000


def parallel_suffix(jobs, batch_size=None, start_method=None):
    """The ``, jobs=...`` fragment of a run header (empty when serial).

    Shared by :meth:`CampaignConfig.describe` and
    :meth:`repro.core.study.StudyConfig.describe`, so every header
    identifies a parallel run's configuration the same way.
    """
    if jobs == 1:
        return ""
    suffix = f", jobs={jobs or 'auto'}"
    if batch_size is not None:
        suffix += f", batch={batch_size}"
    if start_method is not None:
        suffix += f", start={start_method}"
    return suffix


class CampaignConfig:
    """Knobs of one campaign (defaults follow the paper's setup)."""

    def __init__(self, samples=100, window=SCALED_WINDOW,
                 observation="pinout", distribution="normal", seed=2017,
                 checkpoint_interval=None, accelerate=False,
                 accelerate_lead=32, hang_factor=3.0, error_margin=0.02,
                 confidence=0.99, jobs=1, batch_size=None,
                 start_method=None):
        if observation not in ("pinout", "software", "arch"):
            raise ValueError(f"unknown observation point {observation!r}")
        if observation == "arch" and window is not None:
            raise ValueError(
                "the arch (HVF) observation point compares end-of-run "
                "state; use window=None"
            )
        if jobs is not None and jobs < 1:
            raise ValueError(f"jobs must be >= 1 or None (auto), got {jobs}")
        if batch_size is not None and batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.samples = samples
        self.window = window
        self.observation = observation
        self.distribution = distribution
        self.seed = seed
        self.checkpoint_interval = checkpoint_interval
        self.accelerate = accelerate
        self.accelerate_lead = accelerate_lead
        self.hang_factor = hang_factor
        self.error_margin = error_margin
        self.confidence = confidence
        #: Worker processes for the faulty-run phase.  ``1`` keeps the
        #: exact serial path; ``None`` means one per CPU.
        self.jobs = jobs
        #: Faults per work item handed to a worker (``None`` = auto).
        self.batch_size = batch_size
        #: ``multiprocessing`` start method (``None`` = best available).
        self.start_method = start_method

    def resolved_jobs(self, samples=None):
        """The effective worker count: ``None`` becomes the CPU count,
        and a campaign never uses more workers than faults."""
        if self.jobs is None:
            from repro.injection import executor

            jobs = executor.default_jobs()
        else:
            jobs = self.jobs
        if samples is not None:
            jobs = max(min(jobs, samples), 1)
        return jobs

    def describe(self):
        window = "to-end" if self.window is None else f"{self.window}cyc"
        parallel = parallel_suffix(self.jobs, self.batch_size,
                                   self.start_method)
        return (
            f"{self.samples} faults, window={window},"
            f" op={self.observation}, dist={self.distribution}{parallel}"
        )


class CampaignResult:
    """Counts, records and statistics of one campaign."""

    def __init__(self, workload, level, structure, config):
        self.workload = workload
        self.level = level
        self.structure = structure
        self.config = config
        self.records = []
        self.golden_cycles = 0
        self.golden_insts = 0
        self.golden_seconds = 0.0
        self.total_seconds = 0.0
        self.population = 0
        #: Worker processes the faulty-run phase actually used.
        self.jobs = 1

    def add(self, record):
        self.records.append(record)

    @property
    def n(self):
        return len(self.records)

    def count(self, fclass):
        return sum(1 for r in self.records if r.fclass is fclass)

    @property
    def unsafe_count(self):
        return sum(1 for r in self.records if r.fclass.unsafe)

    @property
    def unsafeness(self):
        """The paper's vulnerability metric: unsafe runs / injections."""
        return self.unsafe_count / self.n if self.n else 0.0

    def confidence_interval(self, confidence=0.95):
        return wilson_interval(self.unsafe_count, self.n, confidence)

    @property
    def seconds_per_run(self):
        if not self.records:
            return 0.0
        return sum(r.wall_seconds for r in self.records) / self.n

    @property
    def estimated_serial_seconds(self):
        """Wall clock a one-process run would have spent: the golden run
        plus every faulty run back to back."""
        return self.golden_seconds + sum(r.wall_seconds
                                         for r in self.records)

    @property
    def speedup(self):
        """Wall-clock speedup over the estimated serial execution."""
        if self.total_seconds <= 0.0:
            return 1.0
        return self.estimated_serial_seconds / self.total_seconds

    def recommended_samples(self):
        """Leveugle-exact sample size for the configured margins."""
        return leveugle_sample_size(
            self.population, self.config.error_margin,
            self.config.confidence,
        )

    def achieved_margin(self):
        return achieved_error_margin(self.population, self.n,
                                     self.config.confidence)

    def summary(self):
        low, high = self.confidence_interval()
        return {
            "workload": self.workload,
            "level": self.level,
            "structure": self.structure,
            "n": self.n,
            "unsafeness": self.unsafeness,
            "ci95": (low, high),
            "masked": self.count(FaultClass.MASKED),
            "sdc": self.count(FaultClass.SDC),
            "due": self.count(FaultClass.DUE),
            "hang": self.count(FaultClass.HANG),
            "mismatch": self.count(FaultClass.MISMATCH),
            "latent": self.count(FaultClass.LATENT),
            "golden_cycles": self.golden_cycles,
            "s_per_run": self.seconds_per_run,
            "jobs": self.jobs,
            "total_s": self.total_seconds,
            "speedup": self.speedup,
            "population": self.population,
            "recommended_samples": self.recommended_samples(),
            "achieved_margin": self.achieved_margin(),
        }

    def __repr__(self):
        return (
            f"CampaignResult({self.workload}/{self.level}/{self.structure}:"
            f" {self.unsafe_count}/{self.n} unsafe"
            f" = {100 * self.unsafeness:.1f}%)"
        )


class FaultRunner:
    """Executes and classifies single faulty runs against a golden payload.

    One instance holds everything step 2 of the flow needs -- the
    campaign config, the golden run's trace/checkpoints and the hang
    deadline -- and nothing else, so it pickles once per worker process
    of the parallel executor.  The serial path drives the very same
    object, which is what makes ``jobs=N`` bit-identical to ``jobs=1``
    for a fixed seed.
    """

    def __init__(self, config, golden, hang_deadline):
        self.config = config
        self.golden = golden
        self.hang_deadline = hang_deadline

    def run_one(self, sim, fault):
        """Restore, advance, inject, finish, classify: one FaultRecord."""
        cfg = self.config
        golden = self.golden
        run_start = time.perf_counter()
        cp_cycles = golden["cp_cycles"]
        cp_index = max(bisect.bisect_right(cp_cycles, fault.cycle) - 1, 0)
        checkpoint = golden["checkpoints"][cp_index]
        sim.restore(checkpoint)
        trace_base = len(checkpoint["pinout"])
        status = sim.run(stop_cycle=fault.cycle,
                         max_cycles=self.hang_deadline)
        if status is not RunStatus.STOPPED:
            # The restored run ended before the injection instant (drain
            # jitter near program end): the fault lands in dead time and
            # cannot corrupt anything.
            return FaultRecord(
                fault, FaultClass.MASKED, "after program end",
                sim_cycles=0,
                wall_seconds=time.perf_counter() - run_start,
            )
        sim.inject(fault.structure, fault.bit)
        if cfg.window is not None:
            status = sim.run(stop_cycle=fault.cycle + cfg.window,
                             max_cycles=self.hang_deadline)
        else:
            status = sim.run(max_cycles=self.hang_deadline)
        fclass, detail = self._classify(sim, status, trace_base)
        return FaultRecord(
            fault, fclass, detail,
            sim_cycles=sim.cycle - fault.cycle,
            wall_seconds=time.perf_counter() - run_start,
        )

    def _classify(self, sim, status, trace_base):
        cfg = self.config
        golden = self.golden
        if status is RunStatus.FAULT:
            return FaultClass.DUE, str(sim.fault)
        if status is RunStatus.TIMEOUT:
            return FaultClass.HANG, "watchdog expired"
        if cfg.observation == "software":
            if status is RunStatus.EXITED:
                if sim.output == golden["output"]:
                    return FaultClass.MASKED, ""
                return FaultClass.SDC, "program output differs"
            # Window expired before program end: compare the prefix.
            if golden["output"].startswith(sim.output):
                return FaultClass.MASKED, "window expired, prefix clean"
            return FaultClass.SDC, "output prefix differs"
        if cfg.observation == "arch":
            # HVF-style layer boundary: output first, then latent state.
            if sim.output != golden["output"]:
                return FaultClass.SDC, "program output differs"
            if hardware_state_digest(sim) != golden["hw_state"]:
                return FaultClass.LATENT, "hardware state differs"
            return FaultClass.MASKED, ""
        # Pinout observation: strictly the write-back/refill traffic at
        # the core pins, as in the paper.  Silent corruption that never
        # reaches the pins is invisible here -- that blindness is the
        # paper's Fig. 2 finding, so the observation stays pure.
        golden_suffix = golden["pinout_keys"][trace_base:]
        faulty_suffix = [t.key() for t in sim.pinout[trace_base:]]
        if status is RunStatus.EXITED:
            match = faulty_suffix == golden_suffix
        else:
            match = compare_traces(golden_suffix, faulty_suffix)
        if match:
            return FaultClass.MASKED, ""
        return FaultClass.MISMATCH, "pinout trace deviates"


def run_serial(sim, runner, specs, progress=None):
    """The one serial faulty-run loop.

    Used by the ``jobs=1`` path and by the executor when a shard
    degenerates to a single batch, so there is exactly one copy of the
    restore/inject/classify iteration order.
    """
    records = []
    for i, fault in enumerate(specs):
        record = runner.run_one(sim, fault)
        records.append(record)
        if progress is not None:
            progress(i + 1, len(specs), record)
    return records


class Campaign:
    """One SFI campaign against one structure of one simulator."""

    def __init__(self, sim_factory, structure, config=None, workload="?",
                 level="?"):
        self.sim_factory = sim_factory
        self.structure = structure
        self.config = config or CampaignConfig()
        self.workload = workload
        self.level = level

    # ------------------------------------------------------------------

    def _golden_phase(self, sim, result):
        """Fault-free run with periodic drained checkpoints."""
        cfg = self.config
        started = time.perf_counter()
        access_log = []
        if cfg.accelerate and self.structure.startswith("l1d."):
            sim.dcache.access_listener = (
                lambda cycle, index, way, write, addr:
                access_log.append((cycle, index, way, write, addr))
            )
        checkpoints = [sim.checkpoint()]
        interval = cfg.checkpoint_interval
        while True:
            stop = sim.cycle + (interval or 4000)
            status = sim.run(stop_cycle=stop)
            if status is not RunStatus.STOPPED:
                break
            checkpoints.append(sim.checkpoint())
            if sim.exited or sim.fault is not None:
                break
        if not sim.exited:
            raise RuntimeError(
                f"golden run did not exit cleanly: {status}, {sim.fault}"
            )
        result.golden_cycles = sim.cycle
        result.golden_insts = sim.icount
        result.golden_seconds = time.perf_counter() - started
        golden = {
            "output": sim.output,
            "pinout_keys": [t.key() for t in sim.pinout],
            "end_cycle": sim.cycle,
            "checkpoints": checkpoints,
            "cp_cycles": [cp["cycle"] for cp in checkpoints],
            "access_log": access_log,
        }
        if cfg.observation == "arch":
            golden["hw_state"] = hardware_state_digest(sim)
        return golden

    def _sample(self, sim, golden, result):
        cfg = self.config
        bit_count = sim.fault_targets()[self.structure]
        result.population = fault_population(bit_count,
                                             golden["end_cycle"])
        rng = make_rng(cfg.seed)
        distribution = make_distribution(
            cfg.distribution, 1, max(golden["end_cycle"] - 1, 1)
        )
        specs = fault_mod.sample_faults(
            rng, self.structure, bit_count, distribution, cfg.samples
        )
        if cfg.accelerate and self.structure == "l1d.data":
            index = {}
            for cycle, set_i, way, _, _ in golden["access_log"]:
                index.setdefault((set_i, way), []).append(cycle)
            specs = [
                self._accelerate_with_index(sim, fault, index)
                for fault in specs
            ]
        return specs

    def _accelerate_with_index(self, sim, fault, index):
        cfg = sim.dcache.config
        set_i, way, _, _ = fault_mod.decode_cache_data_bit(fault.bit, cfg)
        cycles = index.get((set_i, way))
        if not cycles:
            return fault
        pos = bisect.bisect_right(cycles, fault.cycle)
        if pos >= len(cycles):
            return fault
        new_cycle = max(fault.cycle,
                        cycles[pos] - self.config.accelerate_lead)
        return fault_mod.FaultSpec(fault.structure, fault.bit, new_cycle,
                                   original_cycle=fault.cycle)

    def run(self, progress=None):
        """Execute the campaign.  Returns a :class:`CampaignResult`.

        The golden phase and fault sampling always run in this process;
        the faulty runs execute serially (``jobs=1``, the default) or on
        a process pool (:mod:`repro.injection.executor`).  Both backends
        produce records in fault-sample order.
        """
        cfg = self.config
        result = CampaignResult(self.workload, self.level, self.structure,
                                cfg)
        total_start = time.perf_counter()
        sim = self.sim_factory()
        golden = self._golden_phase(sim, result)
        specs = self._sample(sim, golden, result)
        hang_deadline = int(
            golden["end_cycle"] * cfg.hang_factor
            + (cfg.window or 0) + 20_000
        )
        # Only what the faulty phase reads travels to workers -- the
        # access log (and hw_state outside arch mode) stays local.
        runner_golden = {
            key: golden[key]
            for key in ("checkpoints", "cp_cycles", "pinout_keys",
                        "output")
        }
        if cfg.observation == "arch":
            runner_golden["hw_state"] = golden["hw_state"]
        runner = FaultRunner(cfg, runner_golden, hang_deadline)
        jobs = cfg.resolved_jobs(len(specs))
        if jobs > 1:
            from repro.injection import executor

            records, jobs = executor.run_parallel(
                self.sim_factory, runner, specs, jobs=jobs,
                batch_size=cfg.batch_size, start_method=cfg.start_method,
                progress=progress, fallback_sim=sim,
            )
        else:
            records = run_serial(sim, runner, specs, progress)
        result.jobs = jobs
        for record in records:
            result.add(record)
        result.total_seconds = time.perf_counter() - total_start
        return result
