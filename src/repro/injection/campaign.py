"""The SFI campaign engine, generic over the two abstraction levels.

A campaign follows the paper's two-step industrial flow (SS III-A):

1. **Golden simulation**: one fault-free run, recording the pinout trace,
   the program output and periodic drained checkpoints (captured and
   LRU-bounded by :class:`repro.injection.checkpoint_cache
   .CheckpointCache`; plus, for the RTL acceleration, the golden L1D
   access log).
2. **Faulty simulations**: for each sampled fault the nearest retained
   checkpoint is restored (warm start; ``warm_start=False`` replays the
   whole prefix, bit-identically), execution advances to the injection
   instant, one bit is flipped, and the run continues until the
   post-injection window expires (the paper's 20 kcycles, scaled -- see
   ``SCALED_WINDOW``), or, in "no timer" / software-observation modes,
   to program end -- or until the early-stop comparator proves the
   machine re-converged with the golden state at a checkpoint boundary.

With a :class:`repro.injection.store.CampaignStore`, completed faults
persist durably and an interrupted campaign resumes by fault index.

Classification follows SS IV-A: any deviation at the configured
observation point makes a run Unsafe.

Step 2 is embarrassingly parallel: every faulty run starts from a
shared, read-only golden payload.  The per-fault execution therefore
lives in the picklable :class:`FaultRunner`, which the serial loop and
the process-pool backend (:mod:`repro.injection.executor`) both drive;
``CampaignConfig(jobs=N)`` selects the backend.  The parallel path
merges records in fault-sample order, so for a fixed seed its
``CampaignResult`` is identical to the serial one (see DESIGN.md).
"""

import bisect
import time

from repro.errors import CampaignInterrupted
from repro.injection import faults as fault_mod
from repro.injection.checkpoint_cache import CheckpointCache
from repro.injection.classify import (
    FaultClass,
    FaultRecord,
    Incident,
    compare_traces,
)
from repro.injection.distributions import make_distribution, make_rng
from repro.injection.observation import hardware_state_digest
from repro.injection.sampling import (
    achieved_error_margin,
    fault_population,
    leveugle_sample_size,
    wilson_interval,
)
# RunStatus lives in the level-generic backend layer; campaign.py keeps
# this re-export for callers that historically imported it from here.
from repro.sim.base import RunStatus

#: The paper terminates each faulty run 20 kcycles after injection.  Our
#: workloads are scaled down ~500x relative to MiBench-on-A9 (DESIGN.md),
#: so the equivalent window keeping the window/run-length ratio in the
#: paper's range is ~2 kcycles.
SCALED_WINDOW = 2000


class CampaignConfig:
    """Knobs of one campaign (defaults follow the paper's setup)."""

    def __init__(self, samples=100, window=SCALED_WINDOW,
                 observation="pinout", distribution="normal", seed=2017,
                 checkpoint_interval=None, checkpoint_bound=None,
                 warm_start=True, early_stop=True, prune_mode="dead",
                 accelerate=False, accelerate_lead=32, hang_factor=3.0,
                 error_margin=0.02, confidence=0.99, jobs=1,
                 batch_size=None, start_method=None, batch_lanes=1,
                 retries=None, batch_timeout=None, chaos=None):
        from repro.injection import supervisor
        from repro.prune import PRUNE_MODES

        if observation not in ("pinout", "software", "arch"):
            raise ValueError(f"unknown observation point {observation!r}")
        if prune_mode not in PRUNE_MODES:
            raise ValueError(
                f"unknown prune mode {prune_mode!r} (choose from "
                f"{PRUNE_MODES})"
            )
        if observation == "arch" and window is not None:
            raise ValueError(
                "the arch (HVF) observation point compares end-of-run "
                "state; use window=None"
            )
        if samples is None or isinstance(samples, bool) \
                or not isinstance(samples, int) or samples < 0:
            raise ValueError(
                f"samples must be a non-negative integer, got {samples!r}"
            )
        if jobs is not None and (isinstance(jobs, bool)
                                 or not isinstance(jobs, int) or jobs < 1):
            raise ValueError(f"jobs must be >= 1 or None (auto), got {jobs!r}")
        if batch_size is not None and (isinstance(batch_size, bool)
                                       or not isinstance(batch_size, int)
                                       or batch_size < 1):
            raise ValueError(f"batch_size must be >= 1, got {batch_size!r}")
        if batch_lanes is None or batch_lanes < 1:
            raise ValueError(f"batch_lanes must be >= 1, got {batch_lanes}")
        if checkpoint_bound is not None and checkpoint_bound < 1:
            raise ValueError(
                f"checkpoint_bound must be >= 1 or None, got "
                f"{checkpoint_bound}"
            )
        if retries is not None and (isinstance(retries, bool)
                                    or not isinstance(retries, int)
                                    or retries < 1):
            raise ValueError(
                f"retries must be >= 1 or None (default), got {retries!r}"
            )
        if batch_timeout is not None and not (
                isinstance(batch_timeout, (int, float))
                and not isinstance(batch_timeout, bool)
                and batch_timeout > 0):
            raise ValueError(
                f"batch_timeout must be a positive number of seconds or "
                f"None (derived), got {batch_timeout!r}"
            )
        if start_method is not None:
            # Validate eagerly (raises ExecutionError, a ValueError,
            # with a did-you-mean hint) -- a typo should fail at config
            # time, not as a traceback out of the first worker spawn.
            supervisor.resolve_start_method(start_method)
        self.samples = samples
        self.window = window
        self.observation = observation
        self.distribution = distribution
        self.seed = seed
        self.checkpoint_interval = checkpoint_interval
        #: Max golden checkpoints resident in memory (``None`` =
        #: unbounded); see :class:`CheckpointCache`.
        self.checkpoint_bound = checkpoint_bound
        #: Warm-start: restore the nearest golden checkpoint at or
        #: before each injection instant.  ``False`` is the cold-start
        #: baseline (replay the whole prefix from the base checkpoint);
        #: both produce bit-identical records for a fixed seed.
        self.warm_start = warm_start
        #: Terminate a faulty run as Masked as soon as its full state
        #: digest re-converges with the golden digest at a checkpoint
        #: boundary.  Applied only on backends whose ``DRAIN_FREE``
        #: protocol flag makes the comparison exact, so the
        #: classification sequence never changes -- only wall clock.
        self.early_stop = early_stop
        #: Fault pruning: ``"off"`` simulates every sampled fault;
        #: ``"dead"`` (default) classifies faults whose bit is
        #: overwritten before its next read -- or never read again -- as
        #: Masked without simulation, from the golden lifetime trace
        #: (:mod:`repro.prune`; exact: the per-fault classes match
        #: ``"off"`` fault for fault); ``"group"`` additionally
        #: collapses faults sharing a live interval onto one
        #: representative injected just before the consuming read
        #: (approximate windows; opt-in); ``"static"`` proves the same
        #: dead-interval verdicts from dataflow analysis of the program
        #: text plus the golden retired-PC stream, with no access trace
        #: captured at all (:mod:`repro.staticcheck`; arch and rtl
        #: tiers -- tiers without a static model simulate every fault).
        self.prune_mode = prune_mode
        self.accelerate = accelerate
        self.accelerate_lead = accelerate_lead
        self.hang_factor = hang_factor
        self.error_margin = error_margin
        self.confidence = confidence
        #: Worker processes for the faulty-run phase.  ``1`` keeps the
        #: exact serial path; ``None`` means one per CPU.
        self.jobs = jobs
        #: Faults per work item handed to a worker (``None`` = auto).
        self.batch_size = batch_size
        #: ``multiprocessing`` start method (``None`` = best available).
        self.start_method = start_method
        #: Vectorized lane count for the faulty phase (``repro.batch``):
        #: ``N > 1`` executes N same-segment faulty runs as one numpy
        #: pass on backends whose ``BATCHABLE`` flag allows it (the
        #: arch and rtl tiers).  Execution-only: records are
        #: bit-identical to
        #: the scalar path, so it stays out of :meth:`identity`.
        self.batch_lanes = batch_lanes
        #: Failed executions one fault may spend (worker crash, hung
        #: batch, in-run exception) before it is quarantined as an
        #: :class:`~repro.injection.classify.Incident`.  ``None`` =
        #: the supervisor default (2).  Execution-only.
        self.retries = retries
        #: Wall-clock budget (seconds) for one worker batch; an
        #: overrunning batch's worker is killed and the batch retried.
        #: ``None`` derives a budget from the golden run's wall cost x
        #: ``hang_factor``.  Execution-only.
        self.batch_timeout = batch_timeout
        #: Deterministic execution-failure injection (test hook): a
        #: chaos spec string / :class:`~repro.injection.supervisor
        #: .ChaosSpec` making workers segfault, hang or raise at chosen
        #: fault indices.  ``None`` also consults ``REPRO_CHAOS`` at
        #: run time.  Execution-only: classifications are unaffected,
        #: so it stays out of :meth:`identity`.
        self.chaos = supervisor.ChaosSpec.parse(chaos)

    def identity(self):
        """The result-affecting configuration, as a plain dict.

        This is what a campaign store's manifest records and what resume
        validates against: two campaigns with equal identities (plus
        equal workload/level/structure) produce identical fault samples
        and classification sequences (class, detail, sim_cycles), so
        their stores are interchangeable.  Execution-only knobs (jobs,
        batch_size, start_method, checkpoint_bound, batch_lanes,
        retries, batch_timeout, chaos) are excluded --
        classifications are proven independent of them.  Per-session
        *accounting* fields of a record (``wall_seconds``,
        ``replay_cycles``) are outside the identity contract: they
        describe how a session executed (pool timing, which checkpoint
        an LRU-bounded cache restored from), not what it concluded.
        """
        return {
            "samples": self.samples,
            "window": self.window,
            "observation": self.observation,
            "distribution": self.distribution,
            "seed": self.seed,
            "checkpoint_interval": self.checkpoint_interval,
            "warm_start": self.warm_start,
            "early_stop": self.early_stop,
            "prune_mode": self.prune_mode,
            "accelerate": self.accelerate,
            "accelerate_lead": self.accelerate_lead,
            "hang_factor": self.hang_factor,
        }

    def resolved_jobs(self, samples=None):
        """The effective worker count: ``None`` becomes the CPU count,
        and a campaign never uses more workers than faults."""
        if self.jobs is None:
            from repro.injection import executor

            jobs = executor.default_jobs()
        else:
            jobs = self.jobs
        if samples is not None:
            jobs = max(min(jobs, samples), 1)
        return jobs

    def describe(self):
        """One line identifying the campaign (shared knob table:
        :mod:`repro.scenario.knobs`, so this header and the study/
        scenario headers can never drift apart)."""
        from repro.scenario.knobs import describe_knobs

        return describe_knobs(f"{self.samples} faults", {
            "window": self.window,
            "observation": self.observation,
            "distribution": self.distribution,
            "warm_start": self.warm_start,
            "prune": self.prune_mode,
            "parallel": (self.jobs, self.batch_size, self.start_method),
            "lanes": self.batch_lanes,
            "retries": self.retries,
            "batch_timeout": self.batch_timeout,
            "chaos": self.chaos,
        })


class CampaignResult:
    """Counts, records and statistics of one campaign."""

    def __init__(self, workload, level, structure, config):
        self.workload = workload
        self.level = level
        self.structure = structure
        self.config = config
        self.records = []
        self.golden_cycles = 0
        self.golden_insts = 0
        self.golden_seconds = 0.0
        self.total_seconds = 0.0
        self.population = 0
        #: Worker processes the faulty-run phase actually used.
        self.jobs = 1
        #: Records loaded from a campaign store instead of simulated.
        self.resumed = 0
        #: Wall seconds those resumed records cost *their* session --
        #: excluded from this run's serial estimate, so a resumed
        #: campaign's speedup reflects only work actually done here.
        self.resumed_seconds = 0.0
        #: Global cycles the lane engine stepped in-process (``0`` on
        #: the scalar path).  The hardware-independent denominator of
        #: the batch-speedup bench: N lanes sharing one global step
        #: make this ~``simulated_cycles / N`` for well-packed groups.
        self.batch_cycles = 0
        #: High-water mark of private copy-on-write page bytes the lane
        #: store materialized in-process (``0`` on the scalar path).
        #: Sub-linear in lane count by design: lanes share the golden
        #: image and pay only for pages they actually diverge on.
        self.batch_lane_peak_bytes = 0
        #: Quarantined faults (:class:`~repro.injection.classify
        #: .Incident`): sampled but never classified -- they spent
        #: their retry budget killing, stalling or crashing their runs.
        #: Excluded from every statistic (``n`` counts records only);
        #: a non-empty list makes the campaign :attr:`degraded`.
        self.incidents = []
        #: Fault executions the supervisor re-dispatched after a worker
        #: crash, deadline kill or in-run exception.  ``0`` on an
        #: undisturbed campaign.
        self.retried_count = 0

    def add(self, record):
        self.records.append(record)

    @property
    def degraded(self):
        """True when the campaign completed but quarantined faults."""
        return bool(self.incidents)

    @property
    def n(self):
        return len(self.records)

    def count(self, fclass):
        return sum(1 for r in self.records if r.fclass is fclass)

    @property
    def pruned_count(self):
        """Faults classified from the lifetime trace, no simulation."""
        return sum(1 for r in self.records if r.pruned)

    @property
    def simulated_count(self):
        """Faults whose classification cost a simulation run."""
        return sum(1 for r in self.records if r.simulated)

    @property
    def unsafe_count(self):
        return sum(1 for r in self.records if r.fclass.unsafe)

    @property
    def unsafeness(self):
        """The paper's vulnerability metric: unsafe runs / injections."""
        return self.unsafe_count / self.n if self.n else 0.0

    def confidence_interval(self, confidence=0.95):
        return wilson_interval(self.unsafe_count, self.n, confidence)

    @property
    def seconds_per_run(self):
        if not self.records:
            return 0.0
        return sum(r.wall_seconds for r in self.records) / self.n

    @property
    def simulated_cycles(self):
        """Cycles the faulty phase re-simulated: pre-injection replay
        plus post-injection tail, summed over all runs.  Deterministic
        for a fixed seed, so warm/cold benches compare this ratio
        rather than wall-clock noise."""
        return sum(r.replay_cycles + r.sim_cycles for r in self.records)

    @property
    def estimated_serial_seconds(self):
        """Wall clock a one-process run *of this session's work* would
        have spent: the golden run plus every faulty run actually
        simulated here, back to back.  Resumed records' wall seconds
        belong to the session that produced them and are excluded."""
        return (self.golden_seconds
                + sum(r.wall_seconds for r in self.records)
                - self.resumed_seconds)

    @property
    def speedup(self):
        """Wall-clock speedup over the estimated serial execution of
        this session's work (``1.0`` when nothing was simulated, e.g.
        a fully resumed campaign)."""
        if self.total_seconds <= 0.0 or self.estimated_serial_seconds <= 0.0:
            return 1.0
        return self.estimated_serial_seconds / self.total_seconds

    def recommended_samples(self):
        """Leveugle-exact sample size for the configured margins
        (``0`` for a golden-only result, which has no population)."""
        if not self.population:
            return 0
        return leveugle_sample_size(
            self.population, self.config.error_margin,
            self.config.confidence,
        )

    def achieved_margin(self):
        if not self.population:
            return 0.0
        return achieved_error_margin(self.population, self.n,
                                     self.config.confidence)

    def summary(self):
        low, high = self.confidence_interval()
        return {
            "workload": self.workload,
            "level": self.level,
            "structure": self.structure,
            "n": self.n,
            "unsafeness": self.unsafeness,
            "ci95": (low, high),
            "masked": self.count(FaultClass.MASKED),
            "sdc": self.count(FaultClass.SDC),
            "due": self.count(FaultClass.DUE),
            "hang": self.count(FaultClass.HANG),
            "mismatch": self.count(FaultClass.MISMATCH),
            "latent": self.count(FaultClass.LATENT),
            "golden_cycles": self.golden_cycles,
            "s_per_run": self.seconds_per_run,
            "jobs": self.jobs,
            "pruned": self.pruned_count,
            "simulated": self.simulated_count,
            "resumed": self.resumed,
            "incidents": len(self.incidents),
            "retried": self.retried_count,
            "total_s": self.total_seconds,
            "speedup": self.speedup,
            "population": self.population,
            "recommended_samples": self.recommended_samples(),
            "achieved_margin": self.achieved_margin(),
        }

    def __repr__(self):
        return (
            f"CampaignResult({self.workload}/{self.level}/{self.structure}:"
            f" {self.unsafe_count}/{self.n} unsafe"
            f" = {100 * self.unsafeness:.1f}%)"
        )


class SharedGolden:
    """One captured golden run, shareable across campaigns.

    Scenario grids routinely run several campaigns against the same
    (level, workload) machine -- a prune-mode sweep, or the ``pinout``
    and ``pinout-notimer`` series of one figure.  The golden trajectory
    those campaigns capture is identical whenever every knob that
    shapes the capture agrees (see :meth:`Campaign.golden_key`), so
    :meth:`Campaign.run` can adopt a pooled instance instead of
    re-simulating it.  ``seconds`` records what the original capture
    cost; an adopting campaign's own ``golden_seconds`` stays ``0.0``
    (it did not pay the capture), keeping its serial estimate and
    speedup honest for the work done in its session.
    """

    __slots__ = ("sim", "golden", "cycles", "insts", "seconds")

    def __init__(self, sim, golden, cycles, insts, seconds):
        self.sim = sim
        self.golden = golden
        self.cycles = cycles
        self.insts = insts
        self.seconds = seconds


class FaultRunner:
    """Executes and classifies single faulty runs against a golden payload.

    One instance holds everything step 2 of the flow needs -- the
    campaign config, the golden run's trace/checkpoints and the hang
    deadline -- and nothing else, so it pickles once per worker process
    of the parallel executor.  The serial path drives the very same
    object, which is what makes ``jobs=N`` bit-identical to ``jobs=1``
    for a fixed seed.
    """

    def __init__(self, config, golden, hang_deadline):
        self.config = config
        self.golden = golden
        self.hang_deadline = hang_deadline
        #: Global lane-engine cycles this runner actually stepped --
        #: the batched analogue of per-record replay+sim cycles,
        #: accumulated by :meth:`run_many` for the speedup bench.
        self.batch_cycles = 0
        #: Peak private COW page bytes across lane-engine runs -- the
        #: memory half of the bench (dense per-lane copies would be
        #: ``lanes x footprint``; the paged store stays well under).
        self.batch_lane_peak_bytes = 0

    def run_many(self, sim, specs, progress=None, on_batch=None):
        """Execute ``specs`` in fault-sample order, vectorized when
        possible.

        With ``batch_lanes > 1`` on a ``BATCHABLE`` backend the specs
        are handed to the lane engine (:mod:`repro.batch`), which
        executes same-segment groups of up to ``batch_lanes`` faulty
        runs as one numpy pass; otherwise (or for a single fault) this
        is exactly :func:`run_serial`.  Records are bit-identical
        either way -- the cross-lane equivalence suite pins that.
        """
        cfg = self.config
        if (cfg.batch_lanes > 1 and type(sim).BATCHABLE
                and len(specs) > 1):
            from repro.batch import LaneEngine

            engine = LaneEngine(self, sim, cfg.batch_lanes)
            records = engine.run(specs)
            self.batch_cycles += engine.batch_cycles
            self.batch_lane_peak_bytes = max(
                self.batch_lane_peak_bytes, engine.peak_lane_bytes)
            for i, record in enumerate(records):
                if on_batch is not None:
                    on_batch(i, [record])
                if progress is not None:
                    progress(i + 1, len(specs), record)
            return records
        return run_serial(sim, self, specs, progress, on_batch=on_batch)

    def run_one(self, sim, fault):
        """Seek, advance, inject, finish, classify: one FaultRecord.

        The seek restores the nearest retained golden checkpoint at or
        before the injection instant (``warm_start``) or the base
        checkpoint (cold start) and replays the drain-punctuated golden
        trajectory in between, so the pre-injection state -- and hence
        the classification -- is identical either way.
        """
        cfg = self.config
        run_start = time.perf_counter()
        cache = self.golden["cache"]
        trace_base, restore_cycle = cache.seek(
            sim, fault.cycle, warm=cfg.warm_start,
            max_cycles=self.hang_deadline,
        )
        status = sim.run(stop_cycle=fault.cycle,
                         max_cycles=self.hang_deadline)
        if status is not RunStatus.STOPPED:
            # The restored run ended before the injection instant (drain
            # jitter near program end): the fault lands in dead time and
            # cannot corrupt anything.
            return FaultRecord(
                fault, FaultClass.MASKED, "after program end",
                sim_cycles=0,
                wall_seconds=time.perf_counter() - run_start,
                replay_cycles=sim.cycle - restore_cycle,
            )
        replay_cycles = sim.cycle - restore_cycle
        sim.inject(fault.structure, fault.bit)
        status, converged = self._finish(sim, fault)
        if converged:
            fclass, detail = FaultClass.MASKED, "re-converged with golden"
        else:
            fclass, detail = self._classify(sim, status, trace_base)
        return FaultRecord(
            fault, fclass, detail,
            sim_cycles=sim.cycle - fault.cycle,
            wall_seconds=time.perf_counter() - run_start,
            replay_cycles=replay_cycles,
        )

    def _finish(self, sim, fault):
        """Run the post-injection tail.  Returns ``(status, converged)``.

        With ``early_stop`` on a ``DRAIN_FREE`` backend the tail pauses
        at every golden checkpoint boundary and compares full state
        digests: equality proves the faulty machine is bit-identical to
        the golden one (state, memory, output and pinout history), so
        its future is the golden future and the run is Masked -- the
        classification an exhaustive tail run would also reach.  On
        pipelined backends golden digests are post-drain states a free
        run never re-enters, so the comparison is skipped rather than
        approximated.
        """
        cfg = self.config
        end = None if cfg.window is None else fault.cycle + cfg.window
        cache = self.golden["cache"]
        if (cfg.early_stop and type(sim).DRAIN_FREE
                and cache.collect_digests):
            first = bisect.bisect_right(cache.cycles, fault.cycle)
            for k in range(first, cache.count):
                boundary = cache.cycles[k]
                if end is not None and boundary >= end:
                    break
                status = sim.run(stop_cycle=boundary,
                                 max_cycles=self.hang_deadline)
                if status is not RunStatus.STOPPED:
                    return status, False
                if sim.state_digest() == cache.digests[k]:
                    return status, True
        if end is not None:
            return sim.run(stop_cycle=end,
                           max_cycles=self.hang_deadline), False
        return sim.run(max_cycles=self.hang_deadline), False

    def _classify(self, sim, status, trace_base):
        cfg = self.config
        golden = self.golden
        if status is RunStatus.FAULT:
            return FaultClass.DUE, str(sim.fault)
        if status is RunStatus.TIMEOUT:
            return FaultClass.HANG, "watchdog expired"
        if cfg.observation == "software":
            if status is RunStatus.EXITED:
                if sim.output == golden["output"]:
                    return FaultClass.MASKED, ""
                return FaultClass.SDC, "program output differs"
            # Window expired before program end: compare the prefix.
            if golden["output"].startswith(sim.output):
                return FaultClass.MASKED, "window expired, prefix clean"
            return FaultClass.SDC, "output prefix differs"
        if cfg.observation == "arch":
            # HVF-style layer boundary: output first, then latent state.
            if sim.output != golden["output"]:
                return FaultClass.SDC, "program output differs"
            if hardware_state_digest(sim) != golden["hw_state"]:
                return FaultClass.LATENT, "hardware state differs"
            return FaultClass.MASKED, ""
        # Pinout observation: strictly the write-back/refill traffic at
        # the core pins, as in the paper.  Silent corruption that never
        # reaches the pins is invisible here -- that blindness is the
        # paper's Fig. 2 finding, so the observation stays pure.
        golden_suffix = golden["pinout_keys"][trace_base:]
        faulty_suffix = [t.key() for t in sim.pinout[trace_base:]]
        if status is RunStatus.EXITED:
            match = faulty_suffix == golden_suffix
        else:
            match = compare_traces(golden_suffix, faulty_suffix)
        if match:
            return FaultClass.MASKED, ""
        return FaultClass.MISMATCH, "pinout trace deviates"


def run_serial(sim, runner, specs, progress=None, on_batch=None):
    """The one serial faulty-run loop.

    Used by the ``jobs=1`` path and by the executor when a shard
    degenerates to a single batch, so there is exactly one copy of the
    restore/inject/classify iteration order.  ``on_batch(start,
    records)`` -- the campaign-store append hook, sharing the parallel
    executor's signature -- fires exactly once per fault as it
    completes, with a one-record batch.
    """
    records = []
    for i, fault in enumerate(specs):
        record = runner.run_one(sim, fault)
        records.append(record)
        if on_batch is not None:
            on_batch(i, [record])
        if progress is not None:
            progress(i + 1, len(specs), record)
    return records


def _assert_static_verdict(trace, fault, detail, events_at_stop_executed):
    """Sanitizer check: a static verdict must agree with the dynamic
    lifetime trace (``REPRO_STATIC_XCHECK=1``).

    Static verdicts are whole-run claims about the golden trajectory
    (the retired-PC stream is architectural and drain-invariant), so
    the check is horizon-free on every tier:

    * *overwritten* -- the first golden event on the cell at/after the
      injection instant must exist and be a write;
    * *never read again* -- there must be no post-injection event at
      all, or the first one must be a write (a statically-silent bit
      may still be dynamically overwritten: silence is the weaker
      claim only about reads);
    * *unreachable* -- the cell must be untouched across the whole run.

    A violation means the dataflow model claimed a dead interval the
    machine actually read -- a soundness bug, raised immediately.
    """
    from repro.staticcheck import (
        STATIC_OVERWRITE_DETAIL,
        STATIC_SILENT_DETAIL,
        STATIC_UNREACHABLE_DETAIL,
        StaticCrossCheckError,
    )

    if not trace.traces(fault.structure):
        return
    cell = trace.cell_of(fault.structure, fault.bit)
    if detail == STATIC_UNREACHABLE_DETAIL:
        if trace.reachable(fault.structure, cell):
            raise StaticCrossCheckError(
                f"static analysis called {fault.structure}[{cell}] "
                f"unreachable but the golden run touched it"
            )
        return
    threshold = fault.cycle + (1 if events_at_stop_executed else 0)
    event = trace.next_event(fault.structure, cell, threshold)
    if detail == STATIC_OVERWRITE_DETAIL:
        ok = event is not None and event[1]
    elif detail == STATIC_SILENT_DETAIL:
        ok = event is None or event[1]
    else:
        raise StaticCrossCheckError(
            f"unknown static verdict detail: {detail!r}"
        )
    if not ok:
        raise StaticCrossCheckError(
            f"static analysis pruned {fault!r} ({detail}) but the "
            f"golden run's first post-injection event on "
            f"{fault.structure}[{cell}] is a read at cycle {event[0]}"
        )


class Campaign:
    """One SFI campaign against one structure of one simulator."""

    def __init__(self, sim_factory, structure, config=None, workload="?",
                 level="?"):
        self.sim_factory = sim_factory
        self.structure = structure
        self.config = config or CampaignConfig()
        self.workload = workload
        self.level = level

    # ------------------------------------------------------------------

    def _capture_shape(self):
        """What the golden phase must instrument: ``(access, pc)``.

        ``access`` -- capture the per-cell lifetime trace (the dynamic
        pruner's input); ``pc`` -- capture the retired-PC stream (the
        static pruner's anchor).  ``prune_mode="static"`` needs only the
        PC stream; the sanitizer (``REPRO_STATIC_XCHECK=1``) forces both
        on so every static verdict can be checked against the dynamic
        trace -- extra captures never change classification provenance.
        """
        from repro.staticcheck import (
            static_prune_available,
            static_xcheck_enabled,
        )

        mode = self.config.prune_mode
        xcheck = static_xcheck_enabled() and mode != "off"
        pc = ((mode == "static" or xcheck)
              and static_prune_available(self.level))
        # The sanitizer only adds the access trace where a static
        # engine exists to be checked -- on tiers without one (the
        # renamed uarch register file) the shape is exactly the
        # unsanitized shape, so the env var can never alter what the
        # partitioner sees.
        access = mode in ("dead", "group") or (xcheck and pc)
        return access, pc

    def _golden_phase(self, sim, result):
        """Fault-free run with periodic drained checkpoints.

        Checkpoint capture and retention live in
        :class:`CheckpointCache` (configurable stride, LRU-bounded
        resident set); this phase owns listener setup and the
        clean-exit contract.
        """
        cfg = self.config
        started = time.perf_counter()
        access_log = []
        attach_access_log = None
        if cfg.accelerate and self.structure.startswith("l1d."):
            def attach_access_log(target):
                target.dcache.access_listener = (
                    lambda cycle, index, way, write, addr:
                    access_log.append((cycle, index, way, write, addr))
                )
            attach_access_log(sim)
        capture_access, capture_pc = self._capture_shape()
        if capture_access:
            # No per-checkpoint trace snapshots: the capture loop
            # round-trips the same machine at the same instant, where
            # the live trace already holds the right prefix -- only the
            # final sealed trace feeds the pruner.
            sim.enable_access_trace(snapshot_in_checkpoints=False)
        if capture_pc:
            sim.enable_pc_trace()
        cache = CheckpointCache(
            stride=cfg.checkpoint_interval,
            max_resident=cfg.checkpoint_bound,
            # Digests feed only the early-stop comparator, which fires
            # only on drain-free backends -- skip the capture cost
            # elsewhere.
            collect_digests=(cfg.early_stop
                             and type(sim).DRAIN_FREE),
        )
        status = cache.capture_golden(sim, on_restore=attach_access_log)
        # The golden trajectory is complete: freeze the lifetime trace
        # and the access log before anything else touches this simulator
        # (the serial faulty path reuses it), and keep only the final
        # trace -- per-boundary prefixes would bloat the executor
        # payload for nothing.
        sim.seal_access_trace()
        sim.seal_pc_trace()
        cache.drop_access_traces()
        if attach_access_log is not None:
            sim.dcache.access_listener = None
        if not sim.exited:
            raise RuntimeError(
                f"golden run did not exit cleanly: {status}, {sim.fault}"
            )
        result.golden_cycles = sim.cycle
        result.golden_insts = sim.icount
        result.golden_seconds = time.perf_counter() - started
        golden = {
            "output": sim.output,
            "pinout_keys": [t.key() for t in sim.pinout],
            "end_cycle": sim.cycle,
            "cache": cache,
            "access_log": access_log,
            "trace": sim.access_trace() if capture_access else None,
            "pc_trace": sim.pc_trace() if capture_pc else None,
        }
        if cfg.observation == "arch":
            golden["hw_state"] = hardware_state_digest(sim)
        return golden

    def _draw_specs(self, bit_count, end_cycle):
        """Redraw the campaign's fault samples -- a pure function of
        the config identity plus the golden run's (bits, end_cycle),
        which is what makes store resume deterministic."""
        cfg = self.config
        rng = make_rng(cfg.seed)
        distribution = make_distribution(
            cfg.distribution, 1, max(end_cycle - 1, 1)
        )
        return fault_mod.sample_faults(
            rng, self.structure, bit_count, distribution, cfg.samples
        )

    def _sample(self, sim, golden, result):
        cfg = self.config
        bit_count = sim.fault_targets()[self.structure]
        result.population = fault_population(bit_count,
                                             golden["end_cycle"])
        golden["bits"] = bit_count
        specs = self._draw_specs(bit_count, golden["end_cycle"])
        if cfg.accelerate and self.structure == "l1d.data":
            index = {}
            for cycle, set_i, way, _, _ in golden["access_log"]:
                index.setdefault((set_i, way), []).append(cycle)
            specs = [
                self._accelerate_with_index(sim, fault, index)
                for fault in specs
            ]
        return specs

    def _accelerate_with_index(self, sim, fault, index):
        cfg = sim.dcache.config
        set_i, way, _, _ = fault_mod.decode_cache_data_bit(fault.bit, cfg)
        cycles = index.get((set_i, way))
        if not cycles:
            return fault
        pos = bisect.bisect_right(cycles, fault.cycle)
        if pos >= len(cycles):
            return fault
        new_cycle = max(fault.cycle,
                        cycles[pos] - self.config.accelerate_lead)
        return fault_mod.FaultSpec(fault.structure, fault.bit, new_cycle,
                                   original_cycle=fault.cycle)

    def _prune_partition(self, sim, golden, specs):
        """Consult the fault pruner (:mod:`repro.prune`) over ``specs``.

        Returns ``(pruned_records, effective_specs, member_of)``:

        * ``pruned_records`` -- fault index -> :class:`FaultRecord`
          classified from the golden lifetime trace, no simulation;
        * ``effective_specs`` -- the spec list with equivalence-group
          representatives moved to the latest stop cycle before their
          consuming read (``group`` mode; identical to ``specs``
          otherwise -- ``original_cycle`` is preserved either way);
        * ``member_of`` -- non-representative group member index ->
          its representative's index; the member inherits the
          representative's classification after the faulty phase.
        """
        cfg = self.config
        pruned_records = {}
        member_of = {}
        if cfg.prune_mode == "off":
            return pruned_records, specs, member_of
        events_at_stop = type(sim).TRACE_EVENTS_AT_STOP_EXECUTED
        pruner = None
        if golden.get("trace") is not None:
            from repro.prune import FaultPruner

            cache = golden["cache"]
            pruner = FaultPruner(
                golden["trace"],
                events_at_stop,
                cfg.observation,
                # Pipelined backends: golden events are provably the
                # faulty machine's events only within the injection's
                # checkpoint segment (see repro.prune.pruner).
                # Drain-free backends share the whole trajectory.
                segments=(None if type(sim).DRAIN_FREE
                          else (cache.cycles, cache.stops)),
            )
        static = None
        if golden.get("pc_trace") is not None:
            from repro.staticcheck import StaticPruner

            static = StaticPruner(
                sim.program, self.level, cfg.observation,
                golden["pc_trace"], events_at_stop,
            )
        if cfg.prune_mode == "static" and static is None:
            # No static engine at this tier: every fault simulates.
            # (The dynamic trace, were one ever present, checks static
            # verdicts -- it never substitutes for them.)
            return pruned_records, specs, member_of
        if pruner is None and static is None:
            return pruned_records, specs, member_of
        xcheck = pruner is not None and static is not None
        effective = list(specs)
        groups = {}
        for i, fault in enumerate(specs):
            if static is not None:
                static_verdict = static.classify(fault)
                if static_verdict is not None and xcheck:
                    _assert_static_verdict(golden["trace"], fault,
                                           static_verdict[1],
                                           events_at_stop)
                if cfg.prune_mode == "static":
                    # Static mode classifies from static evidence only;
                    # the dynamic trace (when the sanitizer forced its
                    # capture) never decides, it only checks.
                    if static_verdict is not None:
                        fclass, detail = static_verdict
                        pruned_records[i] = FaultRecord(
                            fault, fclass, detail, pruned="static"
                        )
                    continue
            verdict = pruner.classify(fault)
            if verdict is not None:
                fclass, detail = verdict
                pruned_records[i] = FaultRecord(fault, fclass, detail,
                                                pruned="dead")
                continue
            if cfg.prune_mode != "group":
                continue
            interval = pruner.group_interval(fault)
            if interval is None:
                continue
            rep = groups.get(interval.key)
            if rep is None:
                # First sampled fault of this live interval becomes the
                # representative, injected right before the read that
                # consumes the corruption (the MeRLiN move).
                groups[interval.key] = i
                rep_cycle = pruner.representative_cycle(interval)
                if rep_cycle > fault.cycle:
                    effective[i] = fault_mod.FaultSpec(
                        fault.structure, fault.bit, rep_cycle,
                        original_cycle=fault.original_cycle,
                    )
            else:
                member_of[i] = rep
        return pruned_records, effective, member_of

    def identity(self):
        """What a campaign store records and resume validates: the
        target plus every result-affecting config knob."""
        return {
            "workload": self.workload,
            "level": self.level,
            "structure": self.structure,
            "config": self.config.identity(),
        }

    def golden_key(self):
        """Pool key under which this campaign's golden run is shareable.

        Two campaigns may adopt the same :class:`SharedGolden` exactly
        when every knob that shapes the golden capture agrees: the
        machine itself (level, workload -- the pool owner must also
        guarantee one toolchain policy per pool), whether the arch
        (HVF) observation point captures the end-of-run hardware
        digest, which golden instrumentation the pruning mode and the
        static sanitizer demand (the :meth:`_capture_shape` pair --
        lifetime trace, retired-PC stream), the checkpoint
        stride/bound, whether boundary
        digests are collected for the early-stop comparator, and --
        when the inject-near-consumption acceleration is live -- the
        structure whose access log is captured.  Sampling knobs
        (samples, seed, window, distribution) never touch the golden
        trajectory and stay out of the key.
        """
        cfg = self.config
        accelerated = cfg.accelerate and self.structure.startswith("l1d.")
        return (
            self.level, self.workload,
            cfg.observation == "arch",
            self._capture_shape(),
            cfg.checkpoint_interval, cfg.checkpoint_bound,
            cfg.early_stop,
            (self.structure, cfg.accelerate_lead) if accelerated
            else None,
        )

    def run(self, progress=None, store=None, resume=False,
            golden_pool=None):
        """Execute the campaign.  Returns a :class:`CampaignResult`.

        The golden phase and fault sampling always run in this process;
        the faulty runs execute serially (``jobs=1``, the default) or on
        a process pool (:mod:`repro.injection.executor`).  Both backends
        produce records in fault-sample order.

        With a :class:`~repro.injection.store.CampaignStore` every
        completed fault is appended durably; with ``resume=True`` faults
        already on disk are loaded instead of re-run (the merged record
        sequence is bit-identical to an uninterrupted campaign, because
        the sample list is a pure function of the stored identity).
        ``progress`` then counts only the faults actually simulated this
        session.  A fully completed store resumes without building a
        simulator at all.

        ``golden_pool`` (a plain dict the caller owns, keyed by
        :meth:`golden_key`) lets campaigns of one scenario grid share
        golden captures: on a hit the whole golden phase is skipped and
        the pooled simulator/payload adopted; on a miss this campaign's
        capture is published for the cells after it.  Classifications
        are unaffected -- the key covers every capture-shaping knob,
        and warm-start ``seek`` restores bit-identical pre-injection
        states from any checkpoint-cache residency pattern.

        Failure model (see DESIGN.md, "Failure model & recovery
        semantics"): a fault that keeps killing, stalling or crashing
        its runs is quarantined as an :class:`~repro.injection.classify
        .Incident` after ``retries`` failed executions -- the campaign
        then completes *degraded* (``result.incidents`` non-empty)
        while every other fault classifies bit-identically.  The first
        SIGINT/SIGTERM drains in-flight work, flushes the store and
        raises :class:`~repro.errors.CampaignInterrupted` (resumable);
        a second signal hard-kills.
        """
        from repro.injection import supervisor

        cfg = self.config
        result = CampaignResult(self.workload, self.level, self.structure,
                                cfg)
        total_start = time.perf_counter()
        stored = {}
        stored_incidents = {}
        if store is not None:
            stored = store.begin(self.identity(), resume=resume)
            stored_incidents = store.incidents()
        chaos = supervisor.resolve_chaos(cfg.chaos)
        retries = cfg.retries or supervisor.DEFAULT_RETRIES
        try:
            with supervisor.GracefulShutdown() as shutdown:
                if store is not None and self._resume_complete(
                        result, stored, stored_incidents, store):
                    result.total_seconds = (time.perf_counter()
                                            - total_start)
                    return result
                shared = None
                if golden_pool is not None:
                    shared = golden_pool.get(self.golden_key())
                if shared is None:
                    sim = self.sim_factory()
                    golden = self._golden_phase(sim, result)
                    if golden_pool is not None:
                        golden_pool[self.golden_key()] = SharedGolden(
                            sim, golden, result.golden_cycles,
                            result.golden_insts, result.golden_seconds)
                else:
                    sim, golden = shared.sim, shared.golden
                    result.golden_cycles = shared.cycles
                    result.golden_insts = shared.insts
                    # This session spent nothing capturing the golden
                    # run -- the original capture's cost stays with the
                    # campaign that paid it, so the serial estimate (and
                    # hence speedup, ~1.0 at jobs=1) reflects only work
                    # actually done here, exactly like resumed records.
                    result.golden_seconds = 0.0
                specs = self._sample(sim, golden, result)
                if store is not None:
                    store.set_golden(result.golden_cycles,
                                     result.golden_insts,
                                     golden["end_cycle"],
                                     result.population,
                                     golden["bits"],
                                     trace=golden.get("trace"))
                self._check_stored_faults(stored, specs)
                self._check_stored_faults(stored_incidents, specs)
                pruned_records, eff_specs, member_of = \
                    self._prune_partition(sim, golden, specs)
                if store is not None:
                    for i in sorted(pruned_records):
                        if i not in stored and i not in stored_incidents:
                            store.append(i, pruned_records[i])
                remaining = [
                    (i, eff_specs[i]) for i in range(len(specs))
                    if i not in stored and i not in pruned_records
                    and i not in member_of and i not in stored_incidents
                ]
                result.resumed = len(stored)
                result.resumed_seconds = sum(
                    stored[i].wall_seconds for i in range(len(specs))
                    if i in stored
                )
                on_record = None
                if store is not None:
                    def on_record(index, record):
                        store.append(index, record)

                def on_incident(incident):
                    if store is not None:
                        store.append_incident(incident)
                hang_deadline = int(
                    golden["end_cycle"] * cfg.hang_factor
                    + (cfg.window or 0) + 20_000
                )
                # Per-fault wall budget feeding derived batch deadlines:
                # a faulty run costs at most ~a golden run's wall time
                # scaled by the watchdog factor; the supervisor applies
                # a generous floor on top (adopted goldens report 0.0s
                # here and fall straight to the floor).
                fault_timeout_hint = (
                    result.golden_seconds * cfg.hang_factor * 4
                )
                # Only what the faulty phase reads travels to workers --
                # the access log (and hw_state outside arch mode) stays
                # local.  The checkpoint cache ships whole, so workers
                # share the same (bounded) restart points and boundary
                # digests.
                runner_golden = {
                    key: golden[key]
                    for key in ("cache", "pinout_keys", "output")
                }
                if cfg.observation == "arch":
                    runner_golden["hw_state"] = golden["hw_state"]
                runner = FaultRunner(cfg, runner_golden, hang_deadline)
                jobs = cfg.resolved_jobs(len(remaining))
                stop = shutdown.requested
                if jobs > 1:
                    from repro.injection import executor

                    (records_map, incidents, requeued, _,
                     jobs) = executor.run_parallel(
                        self.sim_factory, runner, remaining, jobs=jobs,
                        batch_size=cfg.batch_size,
                        start_method=cfg.start_method,
                        progress=progress, fallback_sim=sim,
                        on_record=on_record, on_incident=on_incident,
                        stop=stop, retries=retries,
                        batch_timeout=cfg.batch_timeout,
                        fault_timeout_hint=fault_timeout_hint,
                        chaos=chaos,
                    )
                else:
                    records_map, incidents, requeued, _ = \
                        supervisor.run_in_process(
                            sim, runner, remaining, retries=retries,
                            chaos=chaos, progress=progress,
                            on_record=on_record, on_incident=on_incident,
                            stop=stop,
                        )
                    jobs = 1
                result.jobs = jobs
                result.retried_count = requeued
                result.batch_cycles = runner.batch_cycles
                result.batch_lane_peak_bytes = runner.batch_lane_peak_bytes
                # Merge by fault index: pruned classifications and
                # stored records fill the gaps around the simulated
                # ones; every index appears exactly once, in
                # fault-sample order (the store stays authoritative for
                # anything it already holds).
                merged = dict(pruned_records)
                merged.update(records_map)
                merged.update(stored)
                all_incidents = dict(stored_incidents)
                for incident in incidents:
                    all_incidents[incident.index] = incident
                # Group members inherit their representative's verdict
                # (the representative is in ``merged``: simulated this
                # session or loaded from the store) -- unless the
                # representative was quarantined, in which case the
                # member has no verdict to inherit and is quarantined
                # with it.
                for m in sorted(member_of):
                    if m in merged or m in all_incidents:
                        continue  # resumed from the store
                    rep = member_of[m]
                    if rep in all_incidents:
                        member = Incident(
                            m, specs[m], "exception",
                            f"equivalence-group representative #{rep} "
                            f"was quarantined", attempts=0)
                        all_incidents[m] = member
                        on_incident(member)
                        continue
                    rep_record = merged[rep]
                    member = FaultRecord(specs[m], rep_record.fclass,
                                         rep_record.detail,
                                         pruned="group")
                    merged[m] = member
                    if store is not None:
                        store.append(m, member)
                resolved = set(merged) | set(all_incidents)
                if len(resolved) < len(specs):
                    # A drain request stopped the faulty phase early.
                    # Everything completed so far is flushed (the store
                    # appends per record), so the store resumes exactly
                    # where this run stopped.
                    raise CampaignInterrupted(
                        len(resolved), len(specs),
                        signame=shutdown.signame or "signal",
                        stored=store is not None,
                    )
                for i in range(len(specs)):
                    if i in all_incidents:
                        result.incidents.append(all_incidents[i])
                    else:
                        result.add(merged[i])
                result.total_seconds = time.perf_counter() - total_start
                return result
        finally:
            if store is not None:
                store.close()

    @staticmethod
    def _check_stored_faults(stored, specs):
        """Cross-check stored records against the redrawn sample list.

        The manifest identity covers every config knob, but a code
        change to the sampling itself would redraw different faults
        under an identical identity -- and the index merge would then
        silently mix two incompatible sample lists.  Records (and
        quarantined incidents) carry their fault, so verify it matches
        the spec at the same index (on ``original_cycle``, which is
        invariant under the inject-near-consumption acceleration).
        """
        from repro.injection.store import StoreMismatchError

        for i, record in stored.items():
            if i >= len(specs):
                raise StoreMismatchError(
                    f"stored record #{i} is beyond the {len(specs)} "
                    f"redrawn fault samples"
                )
            spec, fault = specs[i], record.fault
            if (fault.structure, fault.bit, fault.original_cycle) != (
                    spec.structure, spec.bit, spec.original_cycle):
                raise StoreMismatchError(
                    f"stored record #{i} was injected as {fault!r} but "
                    f"the redrawn sample is {spec!r}; the store predates "
                    f"a sampling change -- delete it and re-run"
                )

    def _resume_complete(self, result, stored, stored_incidents, store):
        """Fast path: every fault is on disk (classified record *or*
        quarantined incident) and the golden summary is recorded --
        rebuild the result without simulating anything.  The stored
        faults are still cross-checked against a redraw of the sample
        list (cheap: the manifest carries the golden run's bit count
        and end cycle), so a store predating a sampling change fails
        loudly here too.  Quarantined faults stay quarantined: a
        resume never re-runs a poison fault, which is what makes
        resuming a degraded campaign a no-op."""
        samples = self.config.samples
        if not all(i in stored or i in stored_incidents
                   for i in range(samples)):
            return False
        golden_info = store.golden_info()
        if golden_info is None or "bits" not in golden_info:
            return False
        redrawn = self._draw_specs(golden_info["bits"],
                                   golden_info["end_cycle"])
        self._check_stored_faults(stored, redrawn)
        self._check_stored_faults(stored_incidents, redrawn)
        result.golden_cycles = golden_info["cycles"]
        result.golden_insts = golden_info["insts"]
        result.population = golden_info["population"]
        for i in range(samples):
            if i in stored_incidents:
                result.incidents.append(stored_incidents[i])
            else:
                result.add(stored[i])
        result.resumed = len(result.records)
        result.resumed_seconds = sum(r.wall_seconds
                                     for r in result.records)
        return True
