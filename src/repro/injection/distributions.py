"""Injection-instant distributions.

The paper injects "a single transient fault (bit-flip) ... per run, on a
normal distribution" (SS IV): the injection instant is drawn from a normal
distribution over the run, truncated to the observable execution window.
A uniform alternative is provided for ablation A4.
"""

import random


class InjectionTimeDistribution:
    """Base: draws integer cycles in ``[start, end]`` inclusive."""

    name = "base"

    def __init__(self, start, end):
        if end < start:
            raise ValueError(f"empty injection window [{start}, {end}]")
        self.start = start
        self.end = end

    def draw(self, rng):
        raise NotImplementedError


class UniformDistribution(InjectionTimeDistribution):
    """Every cycle equally likely."""

    name = "uniform"

    def draw(self, rng):
        return rng.randint(self.start, self.end)


class TruncatedNormalDistribution(InjectionTimeDistribution):
    """Normal around mid-run, rejected-sampled into the window.

    ``sigma_fraction`` scales the standard deviation relative to the
    window length; the paper does not state sigma, so the default keeps
    ~95 % of the mass inside the central half of the run.
    """

    name = "normal"

    def __init__(self, start, end, sigma_fraction=0.25):
        super().__init__(start, end)
        self.mean = (start + end) / 2.0
        self.sigma = max((end - start) * sigma_fraction, 1.0)

    def draw(self, rng):
        for _ in range(64):
            value = int(round(rng.gauss(self.mean, self.sigma)))
            if self.start <= value <= self.end:
                return value
        return rng.randint(self.start, self.end)


def make_distribution(name, start, end):
    if name == "uniform":
        return UniformDistribution(start, end)
    if name == "normal":
        return TruncatedNormalDistribution(start, end)
    raise ValueError(f"unknown distribution {name!r}")


def make_rng(seed):
    """The campaign RNG (isolated from the global random state)."""
    return random.Random(seed)
