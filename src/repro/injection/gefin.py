"""GeFIN: the microarchitecture-level injection front-end.

Models the paper's GeFIN framework (Kaliorakis et al., IISWC 2015;
Chatzidimitriou & Gizopoulos, ISPASS 2016) as configured for this study
(SS III-B/C): gem5-style Cortex-A9 core, syscall-emulation mode, and --
after the paper's modification -- the same core-pinout observation point
as the RTL flow.
"""

from repro.sim.frontend import Frontend
from repro.uarch.config import CortexA9Config


class GeFIN(Frontend):
    """Campaign front-end over :class:`repro.uarch.MicroArchSim`.

    Modes (matching the paper's figure series):

    * ``pinout``         -- core-pinout OP, scaled 20 kcycle window
      (the blue bars of Figs. 1-2);
    * ``pinout-notimer`` -- core-pinout OP, run to program end
      (the grey "GeFIN-no timer" bars);
    * ``avf``            -- software OP, run to end (Fig. 3 AVF);
    * ``hvf``            -- GeFIN's native layer-boundary OP: committed
      registers + coherent memory (HVF-style; adds the LATENT class).
    """

    LEVEL = "uarch"
    #: The paper builds the same sources with different toolchains; the
    #: microarchitectural flow uses the GNU-style variant.
    DEFAULT_TOOLCHAIN = "gnu"

    MODES = {
        "pinout": ("pinout", True),
        "pinout-notimer": ("pinout", False),
        "avf": ("software", False),
        # GeFIN's native layer-boundary observation point (SS III-C):
        # any corruption of the committed hardware state counts.
        "hvf": ("arch", False),
    }

    def __init__(self, workload, toolchain=None, core_config=None,
                 scaled_caches=True):
        super().__init__(workload, toolchain=toolchain,
                         sim_config=core_config,
                         scaled_caches=scaled_caches)

    def _default_sim_config(self, scaled_caches):
        if scaled_caches:
            return CortexA9Config(
                dcache_size=self.SCALED_CACHE_BYTES,
                icache_size=self.SCALED_CACHE_BYTES,
            )
        return CortexA9Config()

    @property
    def core_config(self):
        return self.sim_config
