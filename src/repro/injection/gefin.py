"""GeFIN: the microarchitecture-level injection front-end.

Models the paper's GeFIN framework (Kaliorakis et al., IISWC 2015;
Chatzidimitriou & Gizopoulos, ISPASS 2016) as configured for this study
(SS III-B/C): gem5-style Cortex-A9 core, syscall-emulation mode, and --
after the paper's modification -- the same core-pinout observation point
as the RTL flow.
"""

from repro.injection.campaign import Campaign, CampaignConfig, SCALED_WINDOW
from repro.isa.toolchain import Toolchain
from repro.uarch.config import CortexA9Config
from repro.uarch.simulator import MicroArchSim
from repro.workloads import registry


class GeFIN:
    """Campaign front-end over :class:`MicroArchSim`.

    Modes (matching the paper's figure series):

    * ``pinout``         -- core-pinout OP, scaled 20 kcycle window
      (the blue bars of Figs. 1-2);
    * ``pinout-notimer`` -- core-pinout OP, run to program end
      (the grey "GeFIN-no timer" bars);
    * ``avf``            -- software OP, run to end (Fig. 3 AVF);
    * ``hvf``            -- GeFIN's native layer-boundary OP: committed
      registers + coherent memory (HVF-style; adds the LATENT class).
    """

    LEVEL = "uarch"
    #: The paper builds the same sources with different toolchains; the
    #: microarchitectural flow uses the GNU-style variant.
    DEFAULT_TOOLCHAIN = "gnu"

    #: Campaign cache size: the workloads are scaled ~500x relative to
    #: full MiBench, so campaigns shrink both L1s (same 4-way geometry)
    #: to keep the live fraction of the array -- and hence the per-bit
    #: vulnerability -- in the paper's range.  Table I reporting uses the
    #: unscaled configuration.  Applied identically at both levels.
    SCALED_CACHE_BYTES = 1024

    def __init__(self, workload, toolchain=None, core_config=None,
                 scaled_caches=True):
        self.workload = workload
        self.toolchain = Toolchain(toolchain or self.DEFAULT_TOOLCHAIN)
        if core_config is None:
            if scaled_caches:
                core_config = CortexA9Config(
                    dcache_size=self.SCALED_CACHE_BYTES,
                    icache_size=self.SCALED_CACHE_BYTES,
                )
            else:
                core_config = CortexA9Config()
        self.core_config = core_config
        self.program = registry.build(workload, self.toolchain)

    def sim_factory(self):
        return MicroArchSim(self.program, self.core_config)

    def make_config(self, mode, samples, seed=2017, window=SCALED_WINDOW,
                    distribution="normal", **extra):
        if mode == "pinout":
            return CampaignConfig(samples=samples, window=window,
                                  observation="pinout", seed=seed,
                                  distribution=distribution, **extra)
        if mode == "pinout-notimer":
            return CampaignConfig(samples=samples, window=None,
                                  observation="pinout", seed=seed,
                                  distribution=distribution, **extra)
        if mode == "avf":
            return CampaignConfig(samples=samples, window=None,
                                  observation="software", seed=seed,
                                  distribution=distribution, **extra)
        if mode == "hvf":
            # GeFIN's native layer-boundary observation point (SS III-C):
            # any corruption of the committed hardware state counts.
            return CampaignConfig(samples=samples, window=None,
                                  observation="arch", seed=seed,
                                  distribution=distribution, **extra)
        raise ValueError(f"unknown mode {mode!r}")

    def campaign(self, structure, mode="pinout", samples=100, seed=2017,
                 window=SCALED_WINDOW, distribution="normal",
                 progress=None, **extra):
        """Run one campaign.  ``structure`` is e.g. ``regfile`` or
        ``l1d.data``.

        Extra keyword arguments reach :class:`CampaignConfig` -- most
        notably ``jobs=N``/``batch_size=M`` to fan the faulty runs out
        over a process pool (:mod:`repro.injection.executor`); results
        are identical for any worker count.
        """
        config = self.make_config(mode, samples, seed=seed, window=window,
                                  distribution=distribution, **extra)
        runner = Campaign(
            self.sim_factory, structure, config,
            workload=self.workload, level=self.LEVEL,
        )
        return runner.run(progress=progress)

    def golden_run(self):
        """One fault-free run; returns the simulator for inspection."""
        sim = self.sim_factory()
        sim.run()
        return sim

    def __repr__(self):
        return f"GeFIN({self.workload!r}, toolchain={self.toolchain.name})"
