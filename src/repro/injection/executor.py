"""Parallel faulty-run execution: the campaign engine's process pool.

A campaign's step 2 (the faulty simulations) is embarrassingly
parallel: every run restores a golden checkpoint, injects one bit and
compares against read-only golden data.  This module shards the sampled
faults into contiguous batches and fans them out over a
``multiprocessing`` pool:

* the golden payload (trace keys, output, checkpoints) and the
  simulator factory are **serialized once** and shipped to each worker
  through the pool initializer -- workers never recompute the golden
  run;
* each worker builds one simulator and reuses it across all its
  batches, exactly like the serial loop reuses one simulator across
  faults (``restore`` rebuilds the machine, so no state leaks between
  runs);
* batches complete in any order, but records are merged back by fault
  index, so the resulting sequence -- classes, details, cycle counts --
  is identical to what ``jobs=1`` produces for the same seed.  Only the
  ``wall_seconds`` timings differ.

The pool start method defaults to ``fork`` on Linux (cheapest: the
~100s-of-kB payload still transfers explicitly, but the interpreter
and imports come for free) and to ``spawn`` elsewhere.  Both are
supported; ``REPRO_MP_START`` or ``CampaignConfig(start_method=...)``
override the choice.
"""

import math
import multiprocessing
import os
import pickle
import sys

#: Per-process worker state: ``(simulator, FaultRunner)``.  Set by
#: :func:`_init_worker` in each pool process, never in the parent.
_WORKER = None


def default_jobs():
    """The ``jobs=None`` resolution: one worker per *available* CPU.

    CPU affinity masks (taskset, container cpusets) make
    ``os.cpu_count()`` an overcount; honouring them avoids spawning
    dozens of workers pinned to one core.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def resolve_start_method(name=None):
    """Pick the ``multiprocessing`` start method.

    Priority: explicit ``name`` argument, then the ``REPRO_MP_START``
    environment variable, then ``fork`` where available (Linux/macOS
    CPython builds that offer it), else ``spawn``.
    """
    name = name or os.environ.get("REPRO_MP_START")
    available = multiprocessing.get_all_start_methods()
    if name:
        if name not in available:
            raise ValueError(
                f"start method {name!r} not available (have {available})"
            )
        return name
    # fork is the cheap path but is only reliably safe on Linux --
    # macOS offers it yet made spawn its default for a reason
    # (post-initialization forks can abort in system frameworks).
    if sys.platform.startswith("linux") and "fork" in available:
        return "fork"
    return "spawn"


def shard(specs, jobs, batch_size=None):
    """Split ``specs`` into contiguous ``(start_index, faults)`` batches.

    The default batch size aims at ~4 batches per worker so a slow batch
    (hangs cost ``hang_factor`` times a normal run) cannot straggle the
    whole pool, without paying per-fault IPC overhead.
    """
    if batch_size is None:
        batch_size = max(1, math.ceil(len(specs) / (jobs * 4)))
    return [
        (start, specs[start:start + batch_size])
        for start in range(0, len(specs), batch_size)
    ]


def _init_worker(payload):
    """Pool initializer: unpack the campaign context, build one sim."""
    global _WORKER
    sim_factory, runner = pickle.loads(payload)
    _WORKER = (sim_factory(), runner)


def _run_batch(batch):
    """Execute one batch of faults on this worker's simulator."""
    start, faults = batch
    sim, runner = _WORKER
    return start, runner.run_many(sim, faults)


def run_parallel(sim_factory, runner, specs, jobs, batch_size=None,
                 start_method=None, progress=None, fallback_sim=None,
                 on_batch=None):
    """Execute ``specs`` on a pool of up to ``jobs`` workers.

    Returns ``(records, jobs_used)``: the
    :class:`~repro.injection.classify.FaultRecord` list in fault-sample
    order (deterministic merge) plus the worker count actually used,
    which may be lower than requested when there are fewer batches than
    workers (``1`` means no pool was built).  ``progress``, if given,
    is called as ``progress(done, total, record)`` after each batch
    with the batch's last record; ``done`` counts each fault exactly
    once regardless of how the batch boundaries fall.  ``on_batch``, if
    given, is called as ``on_batch(start_index, batch_records)`` as
    each batch lands (completion order, not merge order) -- the
    campaign-store append hook.  ``fallback_sim``, if given, serves
    the degenerate single-batch case instead of building a fresh
    simulator.
    """
    batches = shard(specs, jobs, batch_size)
    jobs = min(jobs, len(batches))
    if jobs <= 1:
        # Degenerate shard (e.g. one batch): stay in-process.
        sim = fallback_sim if fallback_sim is not None else sim_factory()
        return runner.run_many(sim, specs, progress,
                               on_batch=on_batch), 1
    payload = pickle.dumps((sim_factory, runner),
                           protocol=pickle.HIGHEST_PROTOCOL)
    ctx = multiprocessing.get_context(resolve_start_method(start_method))
    records = [None] * len(specs)
    done = 0
    with ctx.Pool(jobs, initializer=_init_worker,
                  initargs=(payload,)) as pool:
        for start, batch_records in pool.imap_unordered(_run_batch,
                                                        batches):
            records[start:start + len(batch_records)] = batch_records
            done += len(batch_records)
            if on_batch is not None:
                on_batch(start, batch_records)
            if progress is not None:
                progress(done, len(specs), batch_records[-1])
    return records, jobs
