"""Parallel faulty-run execution: sharding and the supervised pool.

A campaign's step 2 (the faulty simulations) is embarrassingly
parallel: every run restores a golden checkpoint, injects one bit and
compares against read-only golden data.  This module shards the sampled
faults into contiguous batches and fans them out over the supervised
worker set of :mod:`repro.injection.supervisor`:

* the golden payload (trace keys, output, checkpoints) and the
  simulator factory are **serialized once** and shipped to each worker
  at spawn -- workers never recompute the golden run;
* each worker builds one simulator and reuses it across all its
  batches, exactly like the serial loop reuses one simulator across
  faults (``restore`` rebuilds the machine, so no state leaks between
  runs);
* batches complete in any order, but records are merged back by fault
  index, so the resulting sequence -- classes, details, cycle counts --
  is identical to what ``jobs=1`` produces for the same seed.  Only the
  ``wall_seconds`` timings differ;
* unlike the fire-and-forget pool this replaced, worker death, hung
  batches and poison faults are survivable: the supervisor respawns,
  re-shards with backoff, bisects repeated failures down to the
  offending fault and quarantines it as an
  :class:`~repro.injection.classify.Incident` (see DESIGN.md, "Failure
  model & recovery semantics").

The worker start method defaults to ``fork`` on Linux (cheapest: the
~100s-of-kB payload still transfers explicitly, but the interpreter
and imports come for free) and to ``spawn`` elsewhere.  Both are
supported; ``REPRO_MP_START`` or ``CampaignConfig(start_method=...)``
override the choice.
"""

import math
import os

from repro.injection import supervisor
from repro.injection.supervisor import (  # noqa: F401  (re-exports)
    DEFAULT_RETRIES,
    resolve_start_method,
)


def default_jobs():
    """The ``jobs=None`` resolution: one worker per *available* CPU.

    CPU affinity masks (taskset, container cpusets) make
    ``os.cpu_count()`` an overcount; honouring them avoids spawning
    dozens of workers pinned to one core.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def shard(specs, jobs, batch_size=None):
    """Split ``specs`` into contiguous ``(start_index, faults)`` batches.

    The default batch size aims at ~4 batches per worker so a slow batch
    (hangs cost ``hang_factor`` times a normal run) cannot straggle the
    whole pool, without paying per-fault IPC overhead.  Smaller batches
    also shrink the blast radius of a worker crash: only the dead
    worker's batch is re-sharded and retried.
    """
    if batch_size is None:
        batch_size = max(1, math.ceil(len(specs) / (jobs * 4)))
    return [
        (start, specs[start:start + batch_size])
        for start in range(0, len(specs), batch_size)
    ]


def run_parallel(sim_factory, runner, items, jobs, batch_size=None,
                 start_method=None, progress=None, fallback_sim=None,
                 on_record=None, on_incident=None, stop=None,
                 retries=DEFAULT_RETRIES, batch_timeout=None,
                 fault_timeout_hint=None, chaos=None):
    """Execute ``items`` (``(fault_index, spec)`` pairs) on up to
    ``jobs`` supervised workers.

    Returns ``(records, incidents, requeued, drained, jobs_used)``:

    * ``records`` -- fault index -> :class:`~repro.injection.classify
      .FaultRecord` for every fault that classified (deterministic:
      bit-identical to the serial loop for a fixed seed, whatever
      crashes or retries happened along the way);
    * ``incidents`` -- quarantined faults (:class:`~repro.injection
      .classify.Incident`), each after ``retries`` failed executions;
    * ``requeued`` -- fault executions re-dispatched after a crash,
      deadline kill or exception;
    * ``drained`` -- True when ``stop()`` requested a graceful drain;
    * ``jobs_used`` -- may be lower than requested when there are fewer
      batches than workers (``1`` means everything ran in-process).

    ``progress(done, total, record)`` fires as each batch lands;
    ``done`` counts each fault exactly once regardless of batch
    boundaries or retries (a quarantined fault counts as done with
    ``record=None``).  ``on_record(index, record)`` is the
    campaign-store append hook -- called exactly once per classified
    fault, in completion order.  ``fallback_sim``, if given, serves the
    degenerate single-batch case instead of building a fresh simulator.
    """
    specs = [spec for _, spec in items]
    batches = shard(specs, jobs, batch_size)
    jobs = min(jobs, len(batches))
    if jobs <= 1:
        # Degenerate shard (e.g. one batch): stay in-process -- no
        # context, no queues, no payload pickling.
        sim = fallback_sim if fallback_sim is not None else sim_factory()
        records, incidents, requeued, drained = supervisor.run_in_process(
            sim, runner, items, retries=retries, chaos=chaos,
            progress=progress, on_record=on_record,
            on_incident=on_incident, stop=stop,
        )
        return records, incidents, requeued, drained, 1
    entry_batches = []
    offset = 0
    for _, faults in batches:
        entry_batches.append([
            (items[offset + k][0], spec, 0)
            for k, spec in enumerate(faults)
        ])
        offset += len(faults)
    pool = supervisor.WorkerSupervisor(
        sim_factory, runner, jobs, start_method=start_method,
        retries=retries, batch_timeout=batch_timeout,
        fault_timeout_hint=fault_timeout_hint, chaos=chaos,
    )
    records, incidents, requeued, drained = pool.run(
        entry_batches, progress=progress, on_record=on_record,
        on_incident=on_incident, stop=stop,
    )
    # Lane-engine accounting flows back from the workers (the old pool
    # dropped it for jobs>1).
    runner.batch_cycles += pool.batch_cycles
    runner.batch_lane_peak_bytes = max(runner.batch_lane_peak_bytes,
                                       pool.batch_lane_peak_bytes)
    return records, incidents, requeued, drained, jobs
