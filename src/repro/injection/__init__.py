"""Statistical fault injection (SFI) -- the paper's methodology.

The campaign engine (:mod:`repro.injection.campaign`) is generic over the
simulator protocol shared by :class:`repro.uarch.MicroArchSim` and
:class:`repro.rtl.RTLSim`; the two front-ends --
:class:`repro.injection.gefin.GeFIN` (microarchitecture level) and
:class:`repro.injection.safety_verifier.SafetyVerifier` (RT level) --
apply the same faults, the same observation points and the same
termination rules at both abstraction levels, which is exactly the
experimental design of the paper (SS III).
"""

from repro.injection.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    FaultRunner,
)
from repro.injection.classify import FaultClass
from repro.injection.faults import FaultSpec
from repro.injection.gefin import GeFIN
from repro.injection.safety_verifier import SafetyVerifier
from repro.injection.sampling import leveugle_sample_size, wilson_interval

__all__ = [
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "FaultClass",
    "FaultRunner",
    "FaultSpec",
    "GeFIN",
    "SafetyVerifier",
    "leveugle_sample_size",
    "wilson_interval",
]
