"""Statistical fault injection (SFI) -- the paper's methodology.

The campaign engine (:mod:`repro.injection.campaign`) is generic over
the simulator protocol of :class:`repro.sim.base.SimulatorBase`, shared
by every backend in :mod:`repro.sim.registry`.  The front-ends --
:class:`repro.injection.arch_emu.ArchEmu` (architectural emulation),
:class:`repro.injection.gefin.GeFIN` (microarchitecture level) and
:class:`repro.injection.safety_verifier.SafetyVerifier` (RT level) --
apply the same faults, the same observation points and the same
termination rules at every abstraction level, which is exactly the
experimental design of the paper (SS III).
"""

from repro.injection.arch_emu import ArchEmu
from repro.injection.campaign import (
    Campaign,
    CampaignConfig,
    CampaignResult,
    FaultRunner,
)
from repro.injection.checkpoint_cache import CheckpointCache
from repro.injection.classify import FaultClass
from repro.injection.faults import FaultSpec
from repro.injection.gefin import GeFIN
from repro.injection.safety_verifier import SafetyVerifier
from repro.injection.sampling import leveugle_sample_size, wilson_interval
from repro.injection.store import (
    CampaignStore,
    StoreError,
    StoreMismatchError,
)

__all__ = [
    "ArchEmu",
    "Campaign",
    "CampaignConfig",
    "CampaignResult",
    "CampaignStore",
    "CheckpointCache",
    "FaultClass",
    "FaultRunner",
    "FaultSpec",
    "GeFIN",
    "SafetyVerifier",
    "StoreError",
    "StoreMismatchError",
    "leveugle_sample_size",
    "wilson_interval",
]
