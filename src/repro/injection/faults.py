"""Fault model: single transient bit flips in named storage structures."""


class FaultSpec:
    """One fault to inject: flip ``bit`` of ``structure`` at ``cycle``."""

    __slots__ = ("structure", "bit", "cycle", "original_cycle")

    def __init__(self, structure, bit, cycle, original_cycle=None):
        self.structure = structure
        self.bit = bit
        self.cycle = cycle
        #: The cycle drawn from the distribution, before any
        #: inject-near-consumption acceleration moved it.
        self.original_cycle = (
            cycle if original_cycle is None else original_cycle
        )

    @property
    def accelerated(self):
        return self.cycle != self.original_cycle

    def __repr__(self):
        moved = f" (<-{self.original_cycle})" if self.accelerated else ""
        return (
            f"FaultSpec({self.structure}[bit {self.bit}]"
            f" @ cycle {self.cycle}{moved})"
        )


def sample_faults(rng, structure, bit_count, distribution, samples):
    """Draw ``samples`` independent (bit, cycle) faults."""
    out = []
    for _ in range(samples):
        bit = rng.randrange(bit_count)
        cycle = distribution.draw(rng)
        out.append(FaultSpec(structure, bit, cycle))
    return out


def decode_cache_data_bit(bit_index, cache_config):
    """Locate a flat L1 data-array bit: returns (set, way, byte, bit)."""
    byte_index, bit = divmod(bit_index, 8)
    line = cache_config.line_size
    ways = cache_config.ways
    set_index = byte_index // (ways * line)
    way = (byte_index // line) % ways
    offset = byte_index % line
    return set_index, way, offset, bit


def accelerate_fault(fault, cache_config, access_log, lead_cycles=32):
    """The paper's RTL-framework optimisation (SS IV-B): move the injection
    instant "closer to its consumption time".

    Given the golden run's access log (``(cycle, set, way, write, addr)``
    tuples), the injection cycle is advanced to ``lead_cycles`` before the
    next access that touches the faulted line, so the flipped bit is far
    more likely to be consumed -- and observed -- within the small
    post-injection window.  Faults whose line is never touched again keep
    their drawn instant.
    """
    if not fault.structure.endswith(".data"):
        return fault
    set_index, way, _, _ = decode_cache_data_bit(fault.bit, cache_config)
    for cycle, acc_set, acc_way, _, _ in access_log:
        if cycle <= fault.cycle:
            continue
        if acc_set == set_index and acc_way == way:
            new_cycle = max(fault.cycle, cycle - lead_cycles)
            return FaultSpec(fault.structure, fault.bit, new_cycle,
                             original_cycle=fault.cycle)
    return fault
