"""Format-2 campaign store codec: bitpacked records, interned strings,
RLE lifetime traces.

This module owns the byte-level layout of a binary campaign store; the
durability/resume policy lives in :mod:`repro.injection.store`.  Three
files make up the record side of a format-2 store directory:

* ``records.bin`` -- a 16-byte header followed by fixed-width
  bitpacked fault records (:data:`RECORD_BYTES` each, little-endian).
  Append-only; a torn trailing record is truncated on recovery, so a
  kill loses at most the fault in flight.
* ``strings.dat`` -- the store's append-only string table.  Structure
  names and detail messages are interned here and referenced from
  records by small integer ids; a string is flushed *before* the first
  record that references it, so an intact record never dangles.
* ``trace.bin`` -- the golden lifetime trace, run-length encoded
  (optional; written atomically after the golden phase).

The packing follows the analyze -> choose encoding -> emit idiom: the
record layout analyzes each field's value range once (the :data:`LANES`
table fixes a bit width per field), the trace codec analyzes each event
stream's delta mask to choose the narrowest per-stream byte width, and
both then emit packed blobs.  The read path is the mirror image: the
record file is mapped with :class:`numpy.memmap` and each lane is
extracted as a vectorized shift-and-mask over the raw byte columns, so
queries (class tallies, classification diffs) touch numpy arrays only
and never construct per-record Python objects.
"""

import os
import struct

import numpy as np

from repro.injection.classify import FaultClass


class StoreError(Exception):
    """A campaign store is unreadable or corrupt beyond recovery."""


class StoreMismatchError(StoreError):
    """Resume rejected: the store was written by a different campaign."""


# ----------------------------------------------------------------------
# record layout
# ----------------------------------------------------------------------

#: One packed fault record, little-endian bit order within the blob.
RECORD_BYTES = 27

RECORDS_MAGIC = b"RPROREC2"
RECORDS_LAYOUT = 1
#: magic(8) + u16 record bytes + u16 layout version + u32 reserved.
RECORDS_HEADER_BYTES = 16

#: ``(field, bit offset, bit width)`` -- the full 216-bit record.
#: Widths are sized to the simulators' ranges with headroom: 2^24
#: sample indices / bits per structure, 2^28 cycles (an order of
#: magnitude past the largest workload windows), 16 structure names and
#: 65536 distinct detail strings per store.
LANES = (
    ("index",          0, 24),
    ("structure_id",  24,  4),
    ("fclass",        28,  3),
    ("pruned",        31,  2),
    ("detail_id",     33, 16),
    ("bit",           49, 24),
    ("cycle",         73, 28),
    ("original_cycle", 101, 28),
    ("sim_cycles",    129, 28),
    ("replay_cycles", 157, 28),
    ("wall_us",       185, 30),
)
LANE_MAP = {name: (offset, width) for name, offset, width in LANES}
assert LANES[-1][1] + LANES[-1][2] <= RECORD_BYTES * 8

#: Class codes are part of the on-disk format -- never renumber.
FCLASS_CODES = {
    FaultClass.MASKED: 0,
    FaultClass.SDC: 1,
    FaultClass.DUE: 2,
    FaultClass.HANG: 3,
    FaultClass.MISMATCH: 4,
    FaultClass.LATENT: 5,
}
FCLASS_BY_CODE = tuple(sorted(FCLASS_CODES, key=FCLASS_CODES.get))

PRUNED_CODES = {"": 0, "dead": 1, "group": 2, "static": 3}
PRUNED_BY_CODE = ("", "dead", "group", "static")

#: ``wall_seconds`` is stored as whole microseconds (30 bits, ~18
#: minutes per fault).  Quantization is exact for values that are whole
#: microseconds and loses sub-microsecond noise otherwise -- wall time
#: is per-session accounting, outside the bit-identity contract.
WALL_US_MAX = (1 << 30) - 1


def records_header():
    return RECORDS_MAGIC + struct.pack(
        "<HHI", RECORD_BYTES, RECORDS_LAYOUT, 0)


def check_records_header(header, path):
    if header[:len(RECORDS_MAGIC)] != RECORDS_MAGIC:
        raise StoreError(
            f"{path} is not a format-2 record file (bad magic)")
    record_bytes, layout = struct.unpack_from(
        "<HH", header, len(RECORDS_MAGIC))
    if record_bytes != RECORD_BYTES or layout != RECORDS_LAYOUT:
        raise StoreError(
            f"{path} holds layout-{layout} records of {record_bytes} "
            f"bytes; this code reads layout {RECORDS_LAYOUT} at "
            f"{RECORD_BYTES} bytes/record"
        )


def wall_to_us(wall_seconds):
    return min(max(int(round(wall_seconds * 1e6)), 0), WALL_US_MAX)


def pack_record(index, record, structure_id, detail_id):
    """One :class:`FaultRecord` as a :data:`RECORD_BYTES` blob."""
    try:
        fclass = FCLASS_CODES[record.fclass]
    except KeyError:
        raise StoreError(
            f"unknown fault class {record.fclass!r}: format 2 encodes "
            f"{[f.value for f in FCLASS_BY_CODE]}")
    try:
        pruned = PRUNED_CODES[record.pruned]
    except KeyError:
        raise StoreError(
            f"unknown pruned tag {record.pruned!r}: format 2 encodes "
            f"{sorted(PRUNED_CODES)}")
    values = {
        "index": index,
        "structure_id": structure_id,
        "fclass": fclass,
        "pruned": pruned,
        "detail_id": detail_id,
        "bit": record.fault.bit,
        "cycle": record.fault.cycle,
        "original_cycle": record.fault.original_cycle,
        "sim_cycles": record.sim_cycles,
        "replay_cycles": record.replay_cycles,
        "wall_us": wall_to_us(record.wall_seconds),
    }
    acc = 0
    for name, offset, width in LANES:
        value = values[name]
        if not 0 <= value < (1 << width):
            raise StoreError(
                f"record field {name}={value} does not fit its "
                f"{width}-bit lane (fault #{index})")
        acc |= value << offset
    return acc.to_bytes(RECORD_BYTES, "little")


def extract_lane(rows, offset, width):
    """One lane of an ``(n, RECORD_BYTES)`` uint8 view as uint64.

    Vectorized shift-and-mask: gather the ``(shift + width + 7) // 8``
    bytes that cover the lane into a uint64 accumulator, then shift out
    the leading bits and mask to ``width``.  Never copies the record
    blob and never constructs Python objects.
    """
    start, shift = divmod(offset, 8)
    nbytes = (shift + width + 7) // 8
    acc = np.zeros(rows.shape[0], dtype=np.uint64)
    for b in range(nbytes):
        acc |= rows[:, start + b].astype(np.uint64) << np.uint64(8 * b)
    return (acc >> np.uint64(shift)) & np.uint64((1 << width) - 1)


def recover_records_tail(path):
    """Truncate a torn trailing record (or torn header) in place."""
    try:
        size = os.path.getsize(path)
    except OSError:
        size = -1
    if size < RECORDS_HEADER_BYTES:
        # Killed before the header made it to disk: an empty store.
        path.write_bytes(records_header())
        return
    whole = (size - RECORDS_HEADER_BYTES) // RECORD_BYTES
    keep = RECORDS_HEADER_BYTES + whole * RECORD_BYTES
    if keep != size:
        with open(path, "rb+") as fh:
            fh.truncate(keep)


# ----------------------------------------------------------------------
# string table
# ----------------------------------------------------------------------

STRINGS_MAGIC = b"RPROSTR2"
KIND_STRUCTURE = 0
KIND_DETAIL = 1
#: Sized to the record lanes: 4-bit structure ids, 16-bit detail ids.
MAX_STRINGS = {KIND_STRUCTURE: 1 << 4, KIND_DETAIL: 1 << 16}

_ENTRY_HEADER = struct.Struct("<BH")  # kind, utf-8 byte length


def load_strings(path):
    """Parse a string table: ``(structures, details, valid_bytes)``.

    Ids are implicit append order per kind.  A torn trailing entry (the
    footprint of a kill mid-intern) is tolerated and excluded from
    ``valid_bytes``; corruption before that is an error.  An orphan
    *intact* entry -- flushed for a record that never made it to disk --
    is harmless: re-interning the same string reuses it.
    """
    try:
        blob = path.read_bytes()
    except OSError:
        return [], [], len(STRINGS_MAGIC)
    if len(blob) < len(STRINGS_MAGIC):
        return [], [], len(STRINGS_MAGIC)  # torn header
    if blob[:len(STRINGS_MAGIC)] != STRINGS_MAGIC:
        raise StoreError(
            f"{path} is not a format-2 string table (bad magic)")
    tables = ([], [])
    pos = len(STRINGS_MAGIC)
    while pos + _ENTRY_HEADER.size <= len(blob):
        kind, length = _ENTRY_HEADER.unpack_from(blob, pos)
        if kind not in (KIND_STRUCTURE, KIND_DETAIL):
            raise StoreError(
                f"corrupt string table at {path} offset {pos}: "
                f"unknown kind {kind}")
        end = pos + _ENTRY_HEADER.size + length
        if end > len(blob):
            break  # torn trailing entry
        try:
            text = blob[pos + _ENTRY_HEADER.size:end].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StoreError(
                f"corrupt string table at {path} offset {pos}: {exc}")
        tables[kind].append(text)
        pos = end
    return tables[0], tables[1], pos


def recover_strings_tail(path):
    """Truncate a torn trailing entry (or torn header) in place."""
    _, _, valid = load_strings(path)
    try:
        size = os.path.getsize(path)
    except OSError:
        size = -1
    if size < len(STRINGS_MAGIC):
        path.write_bytes(STRINGS_MAGIC)
    elif size > valid:
        with open(path, "rb+") as fh:
            fh.truncate(valid)


class StringTable:
    """The append-only interned strings of one binary store.

    Opening recovers a torn tail, then appends.  :meth:`intern` flushes
    a new entry before returning its id, so callers can safely write
    records that reference it immediately afterwards.
    """

    def __init__(self, path):
        self.path = path
        recover_strings_tail(path)
        structures, details, _ = load_strings(path)
        self._ids = {
            KIND_STRUCTURE: {s: i for i, s in enumerate(structures)},
            KIND_DETAIL: {d: i for i, d in enumerate(details)},
        }
        self._file = open(path, "ab")

    def intern(self, kind, text):
        table = self._ids[kind]
        ident = table.get(text)
        if ident is not None:
            return ident
        if self._file is None:
            raise StoreError("string table is closed")
        blob = text.encode("utf-8")
        if len(blob) > 0xFFFF:
            raise StoreError(
                f"string of {len(blob)} UTF-8 bytes exceeds the "
                f"format-2 entry limit (65535)")
        ident = len(table)
        if ident >= MAX_STRINGS[kind]:
            what = ("structure names" if kind == KIND_STRUCTURE
                    else "detail strings")
            raise StoreError(
                f"store exceeds the format-2 limit of "
                f"{MAX_STRINGS[kind]} distinct {what}")
        self._file.write(_ENTRY_HEADER.pack(kind, len(blob)) + blob)
        self._file.flush()
        table[text] = ident
        return ident

    def close(self):
        if self._file is not None:
            self._file.close()
            self._file = None


# ----------------------------------------------------------------------
# mmap-backed record reader
# ----------------------------------------------------------------------

class PackedReader:
    """Lane-wise view of a format-2 record file.

    The record file is mapped read-only; :meth:`lane` extracts one
    field for all records as a uint64 array.  A trailing partial record
    (torn tail) is ignored, exactly as the JSONL reader ignores a torn
    final line.
    """

    def __init__(self, records_path, strings_path):
        self.records_path = records_path
        self.structures, self.details, _ = load_strings(strings_path)
        try:
            size = os.path.getsize(records_path)
        except OSError:
            size = 0
        if size >= RECORDS_HEADER_BYTES:
            raw = np.memmap(records_path, dtype=np.uint8, mode="r")
            check_records_header(
                bytes(raw[:RECORDS_HEADER_BYTES]), records_path)
            n = (size - RECORDS_HEADER_BYTES) // RECORD_BYTES
            self._rows = raw[
                RECORDS_HEADER_BYTES:
                RECORDS_HEADER_BYTES + n * RECORD_BYTES
            ].reshape(n, RECORD_BYTES)
        else:
            # Missing file, or killed before the header flush: empty.
            self._rows = np.zeros((0, RECORD_BYTES), dtype=np.uint8)
        self._lanes = {}

    def __len__(self):
        return self._rows.shape[0]

    def lane(self, name):
        arr = self._lanes.get(name)
        if arr is None:
            offset, width = LANE_MAP[name]
            arr = extract_lane(self._rows, offset, width)
            self._lanes[name] = arr
        return arr

    def check_duplicates(self):
        """Raise if any fault index appears twice (double-append)."""
        index = self.lane("index")
        values, counts = np.unique(index, return_counts=True)
        if len(values) != len(index):
            dup = int(values[counts > 1][0])
            raise StoreError(
                f"duplicate fault index #{dup} in {self.records_path}: "
                f"the store was double-appended; delete it and re-run")

    def _names(self, lane, table, what):
        ids = self.lane(lane)
        if len(ids) and int(ids.max()) >= len(table):
            raise StoreError(
                f"record references {what} id {int(ids.max())} but the "
                f"string table holds {len(table)} -- {self.records_path}"
                f" is corrupt")
        lookup = np.array(list(table) or [""], dtype=object)
        return lookup[ids.astype(np.intp)]

    def structure_names(self):
        return self._names("structure_id", self.structures, "structure")

    def detail_names(self):
        return self._names("detail_id", self.details, "detail")

    def fclass_codes(self):
        codes = self.lane("fclass")
        if len(codes) and int(codes.max()) >= len(FCLASS_BY_CODE):
            raise StoreError(
                f"corrupt fault class code {int(codes.max())} in "
                f"{self.records_path}")
        return codes

    def fclass_values(self):
        lookup = np.array([f.value for f in FCLASS_BY_CODE],
                          dtype=object)
        return lookup[self.fclass_codes().astype(np.intp)]

    def pruned_tags(self):
        codes = self.lane("pruned")
        if len(codes) and int(codes.max()) >= len(PRUNED_BY_CODE):
            raise StoreError(
                f"corrupt pruned code {int(codes.max())} in "
                f"{self.records_path}")
        return codes

    def class_tally(self):
        """Per-class counts off the lanes -- no per-record objects."""
        codes = self.fclass_codes()
        counts = np.bincount(codes.astype(np.intp),
                             minlength=len(FCLASS_BY_CODE))
        classes = {f.value: int(c)
                   for f, c in zip(FCLASS_BY_CODE, counts)}
        masked = counts[FCLASS_CODES[FaultClass.MASKED]]
        return {
            "n": int(len(codes)),
            "unsafe": int(len(codes) - masked),
            "pruned": int(np.count_nonzero(self.pruned_tags())),
            "classes": classes,
        }


# ----------------------------------------------------------------------
# RLE lifetime-trace codec
# ----------------------------------------------------------------------

TRACE_MAGIC = b"RPROTRC2"


def _delta_width(max_delta):
    for width in (1, 2, 4):
        if max_delta < (1 << (8 * width)):
            return width
    return 8


def encode_trace(snapshot):
    """A :meth:`LifetimeTrace.snapshot` as a compact RLE blob.

    Event streams are sorted monotone integers, so each is stored as
    its first value plus run-length-encoded deltas; the analyze step
    picks the narrowest byte width that holds the stream's largest
    delta (register-file access patterns are loops, so runs are long
    and deltas small).
    """
    events, bits_per_cell, reachable = snapshot
    out = [TRACE_MAGIC, struct.pack("<I", len(bits_per_cell))]
    for structure in sorted(bits_per_cell):
        name = structure.encode("utf-8")
        out.append(struct.pack("<H", len(name)) + name)
        out.append(struct.pack("<I", bits_per_cell[structure]))
        cells_reach = reachable.get(structure)
        if cells_reach is None:
            out.append(b"\x00")
        else:
            rc = sorted(cells_reach)
            out.append(b"\x01" + struct.pack("<I", len(rc)))
            out.append(np.asarray(rc, dtype="<u4").tobytes())
        cells = events.get(structure, {})
        out.append(struct.pack("<I", len(cells)))
        for cell in sorted(cells):
            stream = cells[cell]
            out.append(struct.pack("<II", cell, len(stream)))
            if not stream:
                continue
            arr = np.asarray(stream, dtype=np.int64)
            # Encoded events are (cycle << 1) | is_write: cycles are
            # monotone but a write (odd) followed by a read (even) at
            # the *same* cycle steps back by exactly 1, so deltas are
            # stored with a +1 bias to stay unsigned.
            deltas = np.diff(arr) + 1
            if len(deltas) and int(deltas.min()) < 0:
                raise StoreError(
                    f"event stream for {structure}[{cell}] is not "
                    f"sorted; refusing to encode")
            width = _delta_width(
                int(deltas.max()) if len(deltas) else 0)
            if len(deltas):
                starts = np.concatenate(
                    ([0], np.flatnonzero(np.diff(deltas)) + 1))
                run_values = deltas[starts]
                run_counts = np.diff(
                    np.concatenate((starts, [len(deltas)])))
            else:
                run_values = run_counts = np.zeros(0, dtype=np.int64)
            out.append(struct.pack("<QBI", int(arr[0]), width,
                                   len(run_values)))
            out.append(run_counts.astype("<u4").tobytes())
            out.append(run_values.astype(f"<u{width}").tobytes())
    return b"".join(out)


def decode_trace(blob):
    """Inverse of :func:`encode_trace`: the snapshot tuple."""
    if blob[:len(TRACE_MAGIC)] != TRACE_MAGIC:
        raise StoreError("not a format-2 trace file (bad magic)")
    pos = len(TRACE_MAGIC)

    def take(fmt):
        nonlocal pos
        values = struct.unpack_from(fmt, blob, pos)
        pos += struct.calcsize(fmt)
        return values

    try:
        events, bits, reachable = {}, {}, {}
        (n_structures,) = take("<I")
        for _ in range(n_structures):
            (name_len,) = take("<H")
            name = blob[pos:pos + name_len].decode("utf-8")
            pos += name_len
            (bits[name],) = take("<I")
            (flag,) = take("<B")
            if flag:
                (count,) = take("<I")
                cells = np.frombuffer(blob, dtype="<u4", count=count,
                                      offset=pos)
                pos += 4 * count
                reachable[name] = frozenset(int(c) for c in cells)
            else:
                reachable[name] = None
            (n_cells,) = take("<I")
            streams = {}
            for _ in range(n_cells):
                cell, n_events = take("<II")
                if n_events == 0:
                    streams[cell] = []
                    continue
                first, width, n_runs = take("<QBI")
                if width not in (1, 2, 4, 8):
                    raise StoreError(
                        f"corrupt trace: delta width {width}")
                counts = np.frombuffer(blob, dtype="<u4", count=n_runs,
                                       offset=pos)
                pos += 4 * n_runs
                values = np.frombuffer(blob, dtype=f"<u{width}",
                                       count=n_runs, offset=pos)
                pos += width * n_runs
                deltas = np.repeat(values.astype(np.int64) - 1,
                                   counts.astype(np.intp))
                if len(deltas) != n_events - 1:
                    raise StoreError(
                        "corrupt trace: run lengths disagree with the "
                        "event count")
                stream = np.concatenate(
                    ([first], first + np.cumsum(deltas)))
                streams[cell] = [int(v) for v in stream]
            events[name] = streams
    except (struct.error, ValueError, UnicodeDecodeError) as exc:
        raise StoreError(f"corrupt trace file: {exc}")
    return events, bits, reachable
