"""Observation points between the system layers (paper SS III-C).

GeFIN natively offers observation points *between* the stack layers: the
hardware/software boundary gives the Hardware Vulnerability Factor (HVF,
Sridharan & Kaeli, ISCA 2010) and the program output gives AVF.  The
paper modified GeFIN down to the RTL flow's pinout; this module keeps the
native layer-boundary observation available as well:

* :func:`memory_digest` -- the memory image as the *next layer* would see
  it (RAM with dirty cache lines written through), so a fault that
  corrupted memory without ever reaching the program output is still
  observable ("latent" corruption);
* :func:`arch_digest`  -- committed architectural registers + flags.

Campaigns with ``observation="arch"`` classify output-visible corruption
as SDC and state-only corruption as LATENT; both are Unsafe, which is
exactly the HVF-vs-AVF gap the referenced work measures.
"""

import zlib


def memory_digest(ram, caches):
    """CRC of the coherent memory image (RAM + dirty lines).

    Non-destructive: the caches are not flushed; dirty lines are overlaid
    onto a copy of the RAM contents.
    """
    image = bytearray(ram.data)
    for cache in caches:
        config = cache.config
        for index in range(config.sets):
            for way in range(config.ways):
                if cache.valid[index, way] and cache.dirty[index, way]:
                    base = cache._line_base(index, way)
                    image[base:base + config.line_size] = (
                        cache.data[index, way].tobytes()
                    )
    return zlib.crc32(bytes(image)) & 0xFFFFFFFF


def arch_digest(sim):
    """Committed architectural registers + flags, as a hashable tuple."""
    state = sim.arch_state()
    return (tuple(state["regs"]), state["flags"])


def hardware_state_digest(sim):
    """The full hardware-visible state: registers + coherent memory.

    Level-generic: backends without a cache model (the ``arch`` tier)
    contribute their RAM image directly.
    """
    caches = tuple(
        cache for cache in (getattr(sim, "dcache", None),)
        if cache is not None
    )
    return (arch_digest(sim), memory_digest(sim.ram, caches))
