"""Statistical machinery: Leveugle sample sizing and Wilson intervals.

The paper (SS IV) sizes its campaigns with the formulation of Leveugle et
al., "Statistical fault injection: quantified error and confidence",
DATE 2009: for a fault population of size N, error margin e and a
confidence level with normal quantile t, assuming worst-case p = 0.5::

    n = N / (1 + e^2 * (N - 1) / (t^2 * p * (1 - p)))

With e = 2 %, 99 % confidence and the large populations of the register
file and L1D over full runs, n converges to ~4000 -- the paper's number.
"""

import math

#: Two-sided normal quantiles for common confidence levels.
_Z = {
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.98: 2.3263478740408408,
    0.99: 2.5758293035489004,
    0.995: 2.807033768343811,
}


def z_score(confidence):
    """Two-sided normal quantile for ``confidence`` (e.g. 0.99)."""
    if confidence in _Z:
        return _Z[confidence]
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence {confidence} outside (0, 1)")
    # Acklam-style rational approximation through the error function
    # inverse; adequate for sample sizing.
    return math.sqrt(2.0) * _erfinv(confidence)


def _erfinv(y):
    # Winitzki approximation, refined by one Newton step.
    a = 0.147
    sign = 1.0 if y >= 0 else -1.0
    ln_term = math.log(1.0 - y * y)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    x = sign * math.sqrt(math.sqrt(first * first - ln_term / a) - first)
    for _ in range(2):
        err = math.erf(x) - y
        x -= err / (2.0 / math.sqrt(math.pi) * math.exp(-x * x))
    return x


def leveugle_sample_size(population, error_margin=0.02, confidence=0.99,
                         p=0.5):
    """Number of faults to inject for the requested statistical quality.

    ``population`` is the size of the fault space (bits x cycles for a
    time-dependent transient-fault campaign).
    """
    if population <= 0:
        raise ValueError("population must be positive")
    t = z_score(confidence)
    numerator = population
    denominator = 1.0 + (error_margin ** 2) * (population - 1) / (
        t * t * p * (1.0 - p)
    )
    return max(1, math.ceil(numerator / denominator))


def fault_population(bit_count, cycles):
    """Transient-fault population: every (bit, cycle) pair."""
    return bit_count * max(cycles, 1)


def wilson_interval(successes, trials, confidence=0.95):
    """Wilson score interval for a binomial proportion.

    Returns ``(low, high)``; degenerates gracefully for 0 trials.
    """
    if trials == 0:
        return (0.0, 1.0)
    z = z_score(confidence)
    phat = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = phat + z2 / (2 * trials)
    margin = z * math.sqrt(
        (phat * (1.0 - phat) + z2 / (4 * trials)) / trials
    )
    low = max(0.0, (centre - margin) / denom)
    high = min(1.0, (centre + margin) / denom)
    # Pin the exact endpoints (rounding can push them past phat).
    if successes == 0:
        low = 0.0
    if successes == trials:
        high = 1.0
    return (min(low, phat), max(high, phat))


def achieved_error_margin(population, samples, confidence=0.99, p=0.5):
    """Invert the Leveugle formula: the error margin a given sample size
    actually buys (reported by the harness when scaled-down campaigns are
    run)."""
    if samples <= 0:
        return 1.0
    t = z_score(confidence)
    if samples >= population:
        return 0.0
    return math.sqrt(
        (population - samples) * t * t * p * (1 - p)
        / (samples * (population - 1))
    )
