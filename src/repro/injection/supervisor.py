"""Supervised campaign execution: crash-safe workers, quarantine, drain.

The process-pool of PR 1 was fire-and-forget: one worker OOM-kill or
native segfault lost the whole sweep, a hung run stalled it forever,
and Ctrl-C left the campaign store wherever the last flush happened to
land.  This module replaces the pool with an explicitly supervised
worker set:

* **crash detection** -- each worker is a plain ``Process`` fed over
  its own task queue; the supervisor polls liveness, respawns dead
  workers and re-shards their in-flight batch (with capped exponential
  backoff) instead of deadlocking on a result that will never come;
* **deadlines** -- every batch gets a wall-clock budget (explicit
  ``batch_timeout`` or derived from the golden run's wall cost x
  ``hang_factor``); an expired batch's worker is killed and the batch
  retried like a crash;
* **poison-fault quarantine** -- a batch that keeps failing is bisected
  until the offending fault is isolated; once a single fault has spent
  its retry budget it is recorded as an :class:`~repro.injection
  .classify.Incident` (``disposition="error"``, persisted in the
  store's ``incidents.jsonl`` sidecar) and the campaign completes
  *degraded* while every other fault classifies bit-identically;
* **graceful shutdown** -- :class:`GracefulShutdown` turns the first
  SIGINT/SIGTERM into a drain request (in-flight batches finish and
  flush to the store, then :class:`~repro.errors.CampaignInterrupted`
  is raised with a resumable store); a second signal hard-kills.

Determinism: retries never change classifications.  A faulty run is a
pure function of the golden payload and the fault spec, so a record
computed on attempt 3 of a respawned worker is bit-identical to the
record an undisturbed run produces -- the supervisor only decides
*where and when* a fault executes, never *what* it computes.

The :class:`ChaosSpec` hook exists to prove all of the above under
test: ``CampaignConfig(chaos=...)`` or ``REPRO_CHAOS`` deterministically
makes workers segfault, hang or raise at chosen fault indices.  It is
an execution-only knob (excluded from the store identity) and inert in
production.
"""

import difflib
import multiprocessing
import os
import pickle
import queue
import signal
import sys
import threading
import time

from repro.errors import ExecutionError
from repro.injection.classify import Incident

#: Failed executions a single fault may spend before quarantine: the
#: issue's "kills or stalls a worker twice" contract.
DEFAULT_RETRIES = 2

#: Retry backoff: ``min(base * 2**attempt, cap)`` seconds.  Small base
#: (the common transient is a dead worker, already paid for by the
#: respawn), hard cap so a poison batch cannot stall the campaign.
_BACKOFF_BASE = 0.05
_BACKOFF_CAP = 2.0

#: Floor for derived batch deadlines.  The derivation multiplies the
#: golden run's wall cost, which for the scaled-down workloads is
#: milliseconds -- without a generous floor, scheduler jitter alone
#: would kill healthy batches.
_MIN_BATCH_TIMEOUT = 20.0

#: Supervisor poll granularity bounds (seconds): how long one result
#: wait may block before liveness/deadline/stop checks run again.
_POLL_MIN = 0.005
_POLL_MAX = 0.25


def resolve_start_method(name=None):
    """Pick the ``multiprocessing`` start method.

    Priority: explicit ``name`` argument, then the ``REPRO_MP_START``
    environment variable, then ``fork`` where available (Linux), else
    ``spawn``.  An unknown name raises :class:`ExecutionError` (a
    ``ValueError``) with a did-you-mean hint, so a typo in
    ``REPRO_MP_START`` surfaces as one friendly line instead of a
    worker-spawn traceback.
    """
    name = name or os.environ.get("REPRO_MP_START")
    available = multiprocessing.get_all_start_methods()
    if name:
        if name not in available:
            close = difflib.get_close_matches(str(name), available, n=1)
            hint = f"; did you mean {close[0]!r}?" if close else ""
            raise ExecutionError(
                f"unknown start method {name!r}: choose one of "
                f"{', '.join(available)}{hint}"
            )
        return name
    # fork is the cheap path but is only reliably safe on Linux --
    # macOS offers it yet made spawn its default for a reason
    # (post-initialization forks can abort in system frameworks).
    if sys.platform.startswith("linux") and "fork" in available:
        return "fork"
    return "spawn"


# ----------------------------------------------------------------------
# chaos hook
# ----------------------------------------------------------------------

class ChaosError(RuntimeError):
    """The failure a ``raise`` chaos action injects into a run."""


class ChaosSpec:
    """Deterministic failure injection for the execution layer itself.

    Parsed from a spec string of comma-separated ``kind@index`` actions
    (``CampaignConfig(chaos=...)`` or the ``REPRO_CHAOS`` environment
    variable)::

        segv@3          worker segfaults when it picks up fault #3
        hang@7          worker sleeps forever on fault #7
        raise@2         fault #2 raises ChaosError
        sleep@*         every fault pauses ~0.25 s (signal-test pacing)

    ``index`` is the campaign's global fault-sample index (``*`` =
    every fault).  An action fires **once** -- on the fault's first
    execution attempt -- unless the kind carries a ``*`` suffix
    (``segv*@3``), which makes it persistent across retries; one-shot
    actions model transient failures (the retry succeeds), persistent
    ones model poison faults (the retry budget drains and the fault is
    quarantined).  Determinism needs no shared state: the attempt
    counter travels with the task, so a retried fault is distinguishable
    from a fresh one in any worker.

    In-process execution (``jobs=1`` or a degenerate shard) honours
    only ``raise`` and ``sleep``: ``segv``/``hang`` would take down the
    supervising process itself, which no retry could observe.
    """

    KINDS = ("segv", "hang", "raise", "sleep")

    __slots__ = ("entries",)

    def __init__(self, entries):
        self.entries = tuple(entries)

    @classmethod
    def parse(cls, text):
        """``"segv*@3,raise@0"`` -> ChaosSpec (``None``/blank -> None)."""
        if text is None or isinstance(text, ChaosSpec):
            return text
        entries = []
        for chunk in str(text).split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, sep, where = chunk.partition("@")
            if not sep or not where.strip():
                raise ExecutionError(
                    f"bad chaos action {chunk!r}: expected kind@index "
                    f"(e.g. segv@3, hang*@7, raise@*)"
                )
            kind = kind.strip()
            persistent = kind.endswith("*")
            if persistent:
                kind = kind[:-1]
            if kind not in cls.KINDS:
                close = difflib.get_close_matches(kind, cls.KINDS, n=1)
                hint = f"; did you mean {close[0]!r}?" if close else ""
                raise ExecutionError(
                    f"unknown chaos kind {kind!r}: choose one of "
                    f"{', '.join(cls.KINDS)}{hint}"
                )
            where = where.strip()
            if where == "*":
                index = None
            else:
                try:
                    index = int(where)
                except ValueError:
                    raise ExecutionError(
                        f"bad chaos index {where!r} in {chunk!r}: expected "
                        f"a fault-sample index or *"
                    ) from None
                if index < 0:
                    raise ExecutionError(
                        f"chaos index must be >= 0, got {index}"
                    )
            entries.append((kind, index, persistent))
        if not entries:
            return None
        return cls(entries)

    def fire(self, index, attempt, allow_kill=True):
        """Execute the actions matching ``(index, attempt)``, if any."""
        for kind, target, persistent in self.entries:
            if target is not None and target != index:
                continue
            if not persistent and attempt > 0:
                continue
            if kind == "sleep":
                time.sleep(0.25)
            elif kind == "raise":
                raise ChaosError(
                    f"chaos: injected failure at fault #{index} "
                    f"(attempt {attempt})"
                )
            elif not allow_kill:
                # segv/hang in the supervising process would be suicide,
                # not chaos -- only sacrificial workers honour them.
                continue
            elif kind == "segv":
                os.kill(os.getpid(), signal.SIGSEGV)
            elif kind == "hang":
                while True:  # pragma: no cover - killed by the deadline
                    time.sleep(3600)

    def __str__(self):
        return ",".join(
            f"{kind}{'*' if persistent else ''}"
            f"@{'*' if index is None else index}"
            for kind, index, persistent in self.entries
        )

    def __repr__(self):
        return f"ChaosSpec({str(self)!r})"


def resolve_chaos(configured=None):
    """The effective chaos spec: config knob first, then ``REPRO_CHAOS``.

    Resolved at run time (not config time) so one exported variable
    reaches every campaign of a scenario grid without touching specs.
    """
    if configured is not None:
        return ChaosSpec.parse(configured)
    return ChaosSpec.parse(os.environ.get("REPRO_CHAOS"))


# ----------------------------------------------------------------------
# graceful shutdown
# ----------------------------------------------------------------------

class GracefulShutdown:
    """Two-stage SIGINT/SIGTERM policy for a running campaign.

    First signal: set a flag the execution loops poll -- in-flight
    faults finish and flush, queued work is abandoned, and the campaign
    raises :class:`~repro.errors.CampaignInterrupted` over a resumable
    store.  Second signal: raise ``KeyboardInterrupt`` right in the
    handler -- the hard kill for when the drain itself is stuck.

    A no-op outside the main thread (Python only delivers signals
    there) and on platforms without the signals; the previous handlers
    are restored on exit, so nesting and test harnesses stay safe.
    """

    def __init__(self):
        self._requested = False
        self.signame = None
        self._previous = {}

    def __enter__(self):
        if threading.current_thread() is threading.main_thread():
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[sig] = signal.signal(sig, self._handle)
                except (ValueError, OSError, AttributeError):
                    self._previous.pop(sig, None)
        return self

    def __exit__(self, *exc):
        for sig, previous in self._previous.items():
            try:
                signal.signal(sig, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()
        return False

    def _handle(self, signum, frame):
        if self._requested:
            raise KeyboardInterrupt
        self._requested = True
        try:
            self.signame = signal.Signals(signum).name
        except ValueError:  # pragma: no cover - unnamed signal number
            self.signame = f"signal {signum}"

    def requested(self):
        return self._requested


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

def _worker_main(payload, task_q, result_q, worker_id):
    """One supervised worker: build a sim once, serve batches forever.

    Tasks are ``(batch_id, [(fault_index, spec, attempt), ...])``;
    ``None`` is the shutdown sentinel.  Results are ``("done", ...)``
    or ``("error", ...)`` -- a worker survives an in-run exception and
    keeps serving (the supervisor decides about retries), so only
    process death or a deadline kill costs a respawn.
    """
    # The parent broadcasts SIGINT to the group on Ctrl-C; workers must
    # outlive it so the drain can finish.  SIGTERM keeps its default
    # (die), which is exactly what the crash-recovery path exercises.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover
        pass
    sim_factory, runner, chaos = pickle.loads(payload)
    sim = sim_factory()
    while True:
        task = task_q.get()
        if task is None:
            return
        batch_id, entries = task
        base_cycles = runner.batch_cycles
        try:
            if chaos is None:
                records = runner.run_many(sim,
                                          [spec for _, spec, _ in entries])
            else:
                # Per-fault loop so each action fires at its exact
                # index/attempt; chaos runs are test runs, the lane
                # engine's throughput does not matter here.
                records = []
                for index, spec, attempt in entries:
                    chaos.fire(index, attempt)
                    records.append(runner.run_one(sim, spec))
            result_q.put((
                "done", worker_id, batch_id, records,
                runner.batch_cycles - base_cycles,
                runner.batch_lane_peak_bytes,
            ))
        except Exception as exc:
            result_q.put((
                "error", worker_id, batch_id,
                f"{type(exc).__name__}: {exc}",
            ))


# ----------------------------------------------------------------------
# supervisor side
# ----------------------------------------------------------------------

class _Batch:
    """One unit of dispatch: entries plus its retry/deadline state."""

    __slots__ = ("id", "entries", "not_before", "deadline")

    def __init__(self, batch_id, entries, not_before=0.0):
        self.id = batch_id
        self.entries = entries
        #: Earliest monotonic instant this batch may be dispatched
        #: (retry backoff).
        self.not_before = not_before
        #: Monotonic instant the batch is declared hung (set at
        #: dispatch).
        self.deadline = 0.0


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("id", "proc", "task_q")

    def __init__(self, worker_id, proc, task_q):
        self.id = worker_id
        self.proc = proc
        self.task_q = task_q


class WorkerSupervisor:
    """Drives up to ``jobs`` worker processes over explicit queues.

    Unlike ``multiprocessing.Pool``, every batch is tracked from
    dispatch to completion: a worker that dies or overruns its deadline
    is respawned and its batch re-sharded, so ``jobs=N`` can never
    deadlock waiting on a result that no process will produce.
    """

    def __init__(self, sim_factory, runner, jobs, start_method=None,
                 retries=DEFAULT_RETRIES, batch_timeout=None,
                 fault_timeout_hint=None, chaos=None):
        self.sim_factory = sim_factory
        self.runner = runner
        self.jobs = max(1, jobs)
        self.retries = max(1, retries or DEFAULT_RETRIES)
        #: Explicit per-batch wall-clock budget; ``None`` derives one
        #: from ``fault_timeout_hint`` (seconds per fault, already
        #: scaled by ``hang_factor`` -- see ``Campaign.run``).
        self.batch_timeout = batch_timeout
        self.fault_timeout_hint = fault_timeout_hint or 0.0
        self.chaos = chaos
        self._ctx = multiprocessing.get_context(
            resolve_start_method(start_method))
        #: Lane-engine accounting aggregated from worker reports (the
        #: old pool simply lost these for ``jobs>1``).
        self.batch_cycles = 0
        self.batch_lane_peak_bytes = 0
        self._next_batch_id = 0
        self._next_worker_id = 0

    # -- helpers -------------------------------------------------------

    def _make_batch(self, entries, not_before=0.0):
        self._next_batch_id += 1
        return _Batch(self._next_batch_id, entries, not_before)

    def _spawn(self, payload, result_q):
        self._next_worker_id += 1
        task_q = self._ctx.SimpleQueue()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(payload, task_q, result_q, self._next_worker_id),
            name=f"repro-worker-{self._next_worker_id}",
            daemon=True,
        )
        proc.start()
        return _Worker(self._next_worker_id, proc, task_q)

    def _timeout_for(self, batch):
        if self.batch_timeout is not None:
            return self.batch_timeout
        return max(_MIN_BATCH_TIMEOUT,
                   self.fault_timeout_hint * len(batch.entries) * 8)

    @staticmethod
    def _kill(proc):
        if proc.is_alive():
            proc.terminate()
            proc.join(0.5)
        if proc.is_alive():
            proc.kill()
            proc.join(0.5)
        proc.join(0.0)

    # -- the supervision loop ------------------------------------------

    def run(self, entry_batches, progress=None, on_record=None,
            on_incident=None, stop=None):
        """Execute ``entry_batches`` (lists of ``(index, spec, attempt)``).

        Returns ``(records, incidents, requeued, drained)``:
        ``records`` maps fault index -> FaultRecord for every fault
        that classified; ``incidents`` lists the quarantined ones;
        ``requeued`` counts fault executions re-dispatched after a
        failure; ``drained`` is True when ``stop()`` interrupted the
        run (in-flight batches were finished and flushed, queued ones
        abandoned).
        """
        total = sum(len(b) for b in entry_batches)
        pending = [self._make_batch(list(b)) for b in entry_batches if b]
        records = {}
        incidents = []
        failures = {}
        requeued = 0
        done = 0
        drained = False
        inflight = {}   # batch_id -> (_Batch, _Worker)
        workers = {}    # worker_id -> _Worker
        payload = pickle.dumps(
            (self.sim_factory, self.runner, self.chaos),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        result_q = self._ctx.Queue()

        def requeue(entries):
            nonlocal requeued
            requeued += len(entries)
            bumped = [(i, spec, attempt + 1)
                      for i, spec, attempt in entries]
            worst = max(attempt for _, _, attempt in bumped)
            delay = min(_BACKOFF_BASE * (2 ** min(worst, 6)), _BACKOFF_CAP)
            pending.append(self._make_batch(bumped,
                                            time.monotonic() + delay))

        def fail(batch, kind, detail):
            nonlocal done
            for index, _, _ in batch.entries:
                failures[index] = failures.get(index, 0) + 1
            if len(batch.entries) > 1:
                # Bisect: halves re-run independently, so repeated
                # failures converge on the single offending fault while
                # its innocent batch-mates complete normally.
                mid = (len(batch.entries) + 1) // 2
                requeue(batch.entries[:mid])
                requeue(batch.entries[mid:])
                return
            index, spec, _ = batch.entries[0]
            if failures[index] >= self.retries:
                incident = Incident(index, spec, kind, detail,
                                    attempts=failures[index])
                incidents.append(incident)
                if on_incident is not None:
                    on_incident(incident)
                done += 1
                if progress is not None:
                    progress(done, total, None)
                return
            requeue(batch.entries)

        try:
            while pending or inflight:
                now = time.monotonic()
                if stop is not None and not drained and stop():
                    # Drain: finish what is running, abandon the queue.
                    drained = True
                    pending.clear()
                # Reap workers that died while idle (nothing to retry).
                for worker in [w for w in workers.values()
                               if not w.proc.is_alive()
                               and all(wk is not w
                                       for _, wk in inflight.values())]:
                    worker.proc.join(0.0)
                    del workers[worker.id]
                # Dispatch ready batches onto idle (spawning) workers.
                busy = {worker.id for _, worker in inflight.values()}
                for batch in [b for b in sorted(pending,
                                                key=lambda b: b.id)
                              if b.not_before <= now]:
                    worker = next(
                        (w for w in workers.values()
                         if w.id not in busy and w.proc.is_alive()),
                        None,
                    )
                    if worker is None:
                        if len(workers) >= self.jobs:
                            break
                        worker = self._spawn(payload, result_q)
                        workers[worker.id] = worker
                    pending.remove(batch)
                    batch.deadline = now + self._timeout_for(batch)
                    inflight[batch.id] = (batch, worker)
                    busy.add(worker.id)
                    worker.task_q.put((batch.id, batch.entries))
                # Wait for the next event: a result, a deadline, or a
                # backoff expiry -- bounded so liveness checks and the
                # stop flag are polled regularly.
                horizon = [b.deadline for b, _ in inflight.values()]
                horizon += [b.not_before for b in pending]
                wait = _POLL_MAX
                if horizon:
                    wait = min(wait, max(min(horizon) - now, _POLL_MIN))
                message = None
                if inflight:
                    try:
                        message = result_q.get(timeout=wait)
                    except queue.Empty:
                        pass
                elif pending:
                    time.sleep(wait)
                if message is not None:
                    tag, _, batch_id = message[:3]
                    landed = inflight.pop(batch_id, None)
                    if landed is None:
                        # Stale: the batch was already failed over (for
                        # example its worker was deadline-killed right
                        # after posting).  The retry recomputes the
                        # same records; dropping this copy keeps every
                        # index appended to the store exactly once.
                        continue
                    batch, worker = landed
                    if tag == "done":
                        _, _, _, batch_records, cycles, peak = message
                        self.batch_cycles += cycles
                        self.batch_lane_peak_bytes = max(
                            self.batch_lane_peak_bytes, peak)
                        for (index, _, _), record in zip(batch.entries,
                                                         batch_records):
                            records[index] = record
                            if on_record is not None:
                                on_record(index, record)
                        done += len(batch_records)
                        if progress is not None:
                            progress(done, total, batch_records[-1])
                    else:
                        fail(batch, "exception", message[3])
                # Liveness and deadlines for everything still in flight.
                now = time.monotonic()
                for batch_id, (batch, worker) in list(inflight.items()):
                    if not worker.proc.is_alive():
                        inflight.pop(batch_id)
                        worker.proc.join(0.0)
                        workers.pop(worker.id, None)
                        code = worker.proc.exitcode
                        fail(batch, "crash",
                             f"worker died (exit code {code}) while "
                             f"running {len(batch.entries)} fault(s)")
                    elif now >= batch.deadline:
                        inflight.pop(batch_id)
                        workers.pop(worker.id, None)
                        self._kill(worker.proc)
                        fail(batch, "hang",
                             f"batch overran its "
                             f"{self._timeout_for(batch):.1f}s deadline")
            return records, incidents, requeued, drained
        finally:
            for worker in workers.values():
                if worker.proc.is_alive():
                    try:
                        worker.task_q.put(None)
                    except Exception:  # pragma: no cover - broken pipe
                        pass
            deadline = time.monotonic() + 1.0
            for worker in workers.values():
                worker.proc.join(max(0.0,
                                     deadline - time.monotonic()))
                self._kill(worker.proc)
            result_q.close()
            result_q.cancel_join_thread()


# ----------------------------------------------------------------------
# in-process supervised execution (jobs=1 and degenerate shards)
# ----------------------------------------------------------------------

def run_serial_supervised(sim, runner, items, retries=DEFAULT_RETRIES,
                          chaos=None, progress=None, on_record=None,
                          on_incident=None, stop=None):
    """The serial loop under the same failure contract as the pool.

    ``items`` is a list of ``(fault_index, spec)``.  A run that raises
    is retried up to ``retries`` executions, then quarantined as an
    ``"exception"`` incident -- same budget, same bookkeeping as the
    supervised workers, minus the process machinery (an in-process
    segfault or hang is not survivable, so chaos fires with
    ``allow_kill=False``).  ``stop()`` is polled between faults.
    """
    retries = max(1, retries or DEFAULT_RETRIES)
    records = {}
    incidents = []
    requeued = 0
    done = 0
    total = len(items)
    drained = False
    for index, spec in items:
        if stop is not None and stop():
            drained = True
            break
        attempt = 0
        while True:
            try:
                if chaos is not None:
                    chaos.fire(index, attempt, allow_kill=False)
                record = runner.run_one(sim, spec)
            except Exception as exc:
                attempt += 1
                if attempt >= retries:
                    incident = Incident(
                        index, spec, "exception",
                        f"{type(exc).__name__}: {exc}", attempts=attempt)
                    incidents.append(incident)
                    if on_incident is not None:
                        on_incident(incident)
                    done += 1
                    if progress is not None:
                        progress(done, total, None)
                    break
                requeued += 1
                continue
            records[index] = record
            if on_record is not None:
                on_record(index, record)
            done += 1
            if progress is not None:
                progress(done, total, record)
            break
    return records, incidents, requeued, drained


def run_in_process(sim, runner, items, retries=DEFAULT_RETRIES,
                   chaos=None, progress=None, on_record=None,
                   on_incident=None, stop=None):
    """In-process execution with the lane engine when it applies.

    The vectorized lane path (``batch_lanes > 1`` on a ``BATCHABLE``
    backend) runs whole same-segment groups as one numpy pass, which
    has no per-fault retry boundary -- so it is used exactly when no
    chaos is configured, and an exception there propagates as it
    always did.  Everything else goes through
    :func:`run_serial_supervised`.
    """
    cfg = runner.config
    specs = [spec for _, spec in items]
    if (chaos is None and cfg.batch_lanes > 1 and type(sim).BATCHABLE
            and len(specs) > 1):
        if stop is not None and stop():
            return {}, [], 0, True
        indices = [index for index, _ in items]
        on_batch = None
        if on_record is not None:
            def on_batch(start, batch_records):
                for offset, record in enumerate(batch_records):
                    on_record(indices[start + offset], record)
        batch_records = runner.run_many(sim, specs, progress,
                                        on_batch=on_batch)
        return dict(zip(indices, batch_records)), [], 0, False
    return run_serial_supervised(
        sim, runner, items, retries=retries, chaos=chaos,
        progress=progress, on_record=on_record, on_incident=on_incident,
        stop=stop,
    )
