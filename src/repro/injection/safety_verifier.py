"""Safety Verifier: the RT-level injection front-end.

Models the paper's industrial workflow (Yogitech s.p.a. / Intel: Cadence
NCSIM simulation driven by the Yogitech Safety Verifier, SS III-A):
bare-metal RT-level simulation, safeness computed at the core pinout, and
the two study-specific extensions the paper describes --

* an injection model for the L1 data cache (normally considered protected
  by the safety industry), including the framework optimisation that
  moves the injection instant next to the fault's consumption time
  (SS IV-B);
* a software observation point (SOP) enabling AVF computation (SS IV-C).
"""

from repro.rtl.config import RTLConfig
from repro.sim.frontend import Frontend


class SafetyVerifier(Frontend):
    """Campaign front-end over :class:`repro.rtl.RTLSim`.

    Modes:

    * ``pinout`` -- safeness at the core pinout with the scaled 20 kcycle
      window (the orange bars of Figs. 1-2).  For L1D data campaigns the
      inject-near-consumption acceleration defaults to on, as in the
      paper's RTL framework.
    * ``sop``    -- software observation point, run to end (Fig. 3 AVF).
    """

    LEVEL = "rtl"
    #: Different toolchain from the microarchitectural flow (SS III-C).
    DEFAULT_TOOLCHAIN = "armcc"

    MODES = {
        "pinout": ("pinout", True),
        "sop": ("software", False),
    }

    def __init__(self, workload, toolchain=None, rtl_config=None,
                 trace_signals=False, scaled_caches=True):
        # Campaigns default to tracing off for wall-clock tractability;
        # Table II measures the traced (NCSIM-like) throughput explicitly.
        self._trace_signals = trace_signals
        super().__init__(workload, toolchain=toolchain,
                         sim_config=rtl_config,
                         scaled_caches=scaled_caches)

    def _default_sim_config(self, scaled_caches):
        kwargs = {"trace_signals": self._trace_signals}
        if scaled_caches:
            kwargs["dcache_size"] = self.SCALED_CACHE_BYTES
            kwargs["icache_size"] = self.SCALED_CACHE_BYTES
        return RTLConfig(**kwargs)

    @property
    def rtl_config(self):
        return self.sim_config

    def _default_accelerate(self, structure, mode):
        return structure == "l1d.data" and mode == "pinout"
