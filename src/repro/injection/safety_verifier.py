"""Safety Verifier: the RT-level injection front-end.

Models the paper's industrial workflow (Yogitech s.p.a. / Intel: Cadence
NCSIM simulation driven by the Yogitech Safety Verifier, SS III-A):
bare-metal RT-level simulation, safeness computed at the core pinout, and
the two study-specific extensions the paper describes --

* an injection model for the L1 data cache (normally considered protected
  by the safety industry), including the framework optimisation that
  moves the injection instant next to the fault's consumption time
  (SS IV-B);
* a software observation point (SOP) enabling AVF computation (SS IV-C).
"""

from repro.injection.campaign import Campaign, CampaignConfig, SCALED_WINDOW
from repro.isa.toolchain import Toolchain
from repro.rtl.config import RTLConfig
from repro.rtl.simulator import RTLSim
from repro.workloads import registry


class SafetyVerifier:
    """Campaign front-end over :class:`RTLSim`.

    Modes:

    * ``pinout`` -- safeness at the core pinout with the scaled 20 kcycle
      window (the orange bars of Figs. 1-2).  For L1D data campaigns the
      inject-near-consumption acceleration defaults to on, as in the
      paper's RTL framework.
    * ``sop``    -- software observation point, run to end (Fig. 3 AVF).
    """

    LEVEL = "rtl"
    #: Different toolchain from the microarchitectural flow (SS III-C).
    DEFAULT_TOOLCHAIN = "armcc"

    #: Same campaign cache scaling as GeFIN (equivalent setup, SS III-C).
    SCALED_CACHE_BYTES = 1024

    def __init__(self, workload, toolchain=None, rtl_config=None,
                 trace_signals=False, scaled_caches=True):
        self.workload = workload
        self.toolchain = Toolchain(toolchain or self.DEFAULT_TOOLCHAIN)
        # Campaigns default to tracing off for wall-clock tractability;
        # Table II measures the traced (NCSIM-like) throughput explicitly.
        if rtl_config is None:
            kwargs = {"trace_signals": trace_signals}
            if scaled_caches:
                kwargs["dcache_size"] = self.SCALED_CACHE_BYTES
                kwargs["icache_size"] = self.SCALED_CACHE_BYTES
            rtl_config = RTLConfig(**kwargs)
        self.rtl_config = rtl_config
        self.program = registry.build(workload, self.toolchain)

    def sim_factory(self):
        return RTLSim(self.program, self.rtl_config)

    def campaign(self, structure, mode="pinout", samples=100, seed=2017,
                 window=SCALED_WINDOW, distribution="normal",
                 accelerate=None, progress=None, **extra):
        """Run one campaign.  As with :meth:`GeFIN.campaign`, extra
        keyword arguments reach :class:`CampaignConfig` (e.g. ``jobs=N``
        for the parallel executor)."""
        if accelerate is None:
            accelerate = structure == "l1d.data" and mode == "pinout"
        if mode == "pinout":
            config = CampaignConfig(
                samples=samples, window=window, observation="pinout",
                seed=seed, distribution=distribution,
                accelerate=accelerate, **extra,
            )
        elif mode == "sop":
            config = CampaignConfig(
                samples=samples, window=None, observation="software",
                seed=seed, distribution=distribution,
                accelerate=accelerate, **extra,
            )
        else:
            raise ValueError(f"unknown mode {mode!r}")
        runner = Campaign(
            self.sim_factory, structure, config,
            workload=self.workload, level=self.LEVEL,
        )
        return runner.run(progress=progress)

    def golden_run(self):
        sim = self.sim_factory()
        sim.run()
        return sim

    def __repr__(self):
        return (
            f"SafetyVerifier({self.workload!r},"
            f" toolchain={self.toolchain.name})"
        )
